"""Explore FACIL's mapping space: selector decisions and bank placement.

For a handful of weight-matrix shapes on a Jetson-class memory system,
prints the selector's MapID decision (paper Fig. 9/10), the resulting
PA-to-DA bit layout (Fig. 8), and — on a small functional system — an
ASCII picture of which bank each matrix row lands in.

Run with::

    python examples/mapping_explorer.py
"""

import numpy as np

from repro.core.mapping import max_map_id
from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig, build_selected_mapping, select_mapping
from repro.dram.config import DramOrganization, lpddr5_organization
from repro.pim.chunk import enumerate_placements
from repro.pim.config import AIM_LPDDR5

JETSON_ORG = lpddr5_organization(bus_width_bits=256, capacity_gb=64)

SHAPES = [
    ("k_proj (GQA)", MatrixConfig(1024, 4096)),
    ("q_proj", MatrixConfig(4096, 4096)),
    ("gate_proj", MatrixConfig(14336, 4096)),
    ("down_proj", MatrixConfig(4096, 14336)),
    ("lm_head", MatrixConfig(128256, 4096)),
]


def explore_selector() -> None:
    print(f"Jetson-class system: {JETSON_ORG.total_banks} banks, "
          f"max MapID = {max_map_id(JETSON_ORG, 2 << 20)}\n")
    print(f"{'layer':14s} {'shape':14s} {'MapID':>5s} {'partitioned':>11s} "
          f"{'PUs/row':>7s}  mapping (MSB..LSB)")
    for name, matrix in SHAPES:
        selection = select_mapping(matrix, JETSON_ORG, AIM_LPDDR5)
        mapping = build_selected_mapping(matrix, JETSON_ORG, AIM_LPDDR5)
        print(
            f"{name:14s} {matrix.rows:>6d}x{matrix.cols:<7d} "
            f"{selection.map_id:>5d} {str(selection.needs_partition):>11s} "
            f"{selection.partitions_per_row:>7d}  {mapping.describe()}"
        )


def visualize_placement() -> None:
    """Bank occupancy picture on a tiny functional system."""
    org = DramOrganization(
        n_channels=2, ranks_per_channel=1, banks_per_rank=4,
        rows_per_bank=4096, row_bytes=256, transfer_bytes=32,
    )
    from repro.pim.config import aim_config_for

    system = PimSystem.build(org, aim_config_for(org))
    matrix = MatrixConfig(rows=16, cols=256)
    tensor = system.pimalloc(matrix)
    tensor.store(np.zeros((16, 256), dtype=np.float16))

    print(f"\nplacement of a {matrix.rows}x{matrix.cols} matrix on "
          f"{org.total_banks} banks (rows -> PUs):\n")
    grid = {}
    for seg in enumerate_placements(tensor):
        grid.setdefault(seg.m, set()).add(seg.pu)
    bank_labels = [
        f"ch{ch}b{bk}"
        for ch in range(org.n_channels)
        for bk in range(org.banks_per_rank)
    ]
    print("        " + " ".join(f"{b:>6s}" for b in bank_labels))
    for m in sorted(grid):
        row = []
        for ch in range(org.n_channels):
            for bk in range(org.banks_per_rank):
                row.append("  ####" if (ch, 0, bk) in grid[m] else "     .")
        print(f"row {m:>3d} " + " ".join(row))
    print("\neach matrix row occupies exactly one bank; consecutive rows "
          "rotate across PUs\n(the all-bank lock-step placement of paper "
          "Fig. 4)")


if __name__ == "__main__":
    explore_selector()
    visualize_placement()
