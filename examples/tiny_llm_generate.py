"""Run a whole (tiny) transformer on the FACIL memory system.

Allocates every linear weight of a 2-layer toy decoder with ``pimalloc``,
then generates text tokens the FACIL way: the prompt's prefill GEMMs run
on the SoC path (virtual-address reads of the PIM-placed weights) and
each decode step's GEMVs run on the functional PIM machine (raw bank
reads).  The resulting token stream is compared against a pure-numpy
transformer using the same weights.

Run with::

    python examples/tiny_llm_generate.py
"""

import time

import numpy as np

from repro.core.pimalloc import PimSystem
from repro.dram.config import DramOrganization
from repro.llm.tiny_runtime import TINY_LLM, FunctionalLlm
from repro.pim.config import aim_config_for


def main() -> None:
    org = DramOrganization(
        n_channels=2, ranks_per_channel=1, banks_per_rank=8,
        rows_per_bank=4096, row_bytes=512, transfer_bytes=32,
    )
    system = PimSystem.build(org, aim_config_for(org))
    print(f"functional memory system: {org.total_banks} banks, "
          f"{org.capacity_bytes >> 20} MiB")

    start = time.time()
    model = FunctionalLlm(TINY_LLM, system, seed=3)
    print(f"model: {TINY_LLM.n_layers} layers, d={TINY_LLM.d_model}, "
          f"{len(model.tensors)} pimalloc'ed weight tensors "
          f"({time.time() - start:.1f}s to place)\n")

    for key, tensor in list(model.tensors.items())[:4]:
        layer, name = key
        print(f"  layer {layer} {name:10s}: MapID {tensor.selection.map_id}, "
              f"{tensor.selection.partitions_per_row} PU(s)/row, "
              f"va={tensor.va:#x}")
    print("  ...\n")

    prompt = [3, 141, 59, 265, 35, 897]
    start = time.time()
    tokens, reference = model.generate(prompt, n_tokens=10)
    elapsed = time.time() - start

    print(f"prompt tokens   : {prompt}")
    print(f"FACIL generation: {tokens}")
    print(f"numpy reference : {reference}")
    print(f"identical       : {tokens == reference}  "
          f"({elapsed:.1f}s for 10 tokens, prefill on SoC path, "
          "decode on PIM path)")


if __name__ == "__main__":
    main()
