"""Quickstart: store a weight matrix once, use it from both processors.

Builds a small functional FACIL system, allocates a matrix with
``pimalloc``, and shows the paper's headline property end-to-end:

* the PIM executes GEMV reading raw bank contents,
* the SoC executes GEMM through plain contiguous virtual addresses,

with the *same physical bytes* and zero re-layout.  Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import DramOrganization
from repro.pim.config import AIM_LPDDR5
from repro.pim.functional import pim_gemv
from repro.soc.kernels import gemm_reference, soc_gemm


def main() -> None:
    # A 128-bank LPDDR5-style organization, small enough to simulate
    # functionally (128 MiB).
    org = DramOrganization(
        n_channels=4,
        ranks_per_channel=2,
        banks_per_rank=16,
        rows_per_bank=512,
        row_bytes=2048,
        transfer_bytes=32,
    )
    system = PimSystem.build(org, AIM_LPDDR5)
    print(f"memory system : {org.n_channels} ch x {org.ranks_per_channel} rk "
          f"x {org.banks_per_rank} banks = {org.total_banks} PIM PUs")
    print(f"peak bandwidth: {org.peak_bandwidth_gbps:.1f} GB/s external\n")

    # --- pimalloc: the user-level FACIL API -----------------------------
    matrix = MatrixConfig(rows=96, cols=4096)  # one attention projection
    tensor = system.pimalloc(matrix)
    print(f"pimalloc({matrix.rows} x {matrix.cols}, fp16)")
    print(f"  selected MapID : {tensor.selection.map_id}")
    print(f"  mapping        : {tensor.mapping.describe()}")
    print(f"  partitions/row : {tensor.selection.partitions_per_row}")
    print(f"  virtual address: {tensor.va:#x} (lda={tensor.lda})\n")

    # --- store through virtual addresses (SoC view) ---------------------
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((matrix.rows, matrix.cols)).astype(np.float16)
    tensor.store(weights)

    # --- decode phase: GEMV on the PIM ----------------------------------
    x = rng.standard_normal(matrix.cols).astype(np.float16)
    y_pim, stats = pim_gemv(tensor, x)
    reference = weights.astype(np.float32) @ x.astype(np.float32)
    print("PIM GEMV (reads raw bank rows):")
    print(f"  chunks processed : {stats.chunks_processed}")
    print(f"  GB loads         : {stats.total_gb_loads}")
    print(f"  max |error|      : {np.abs(y_pim - reference).max():.4f}\n")

    # --- prefill phase: GEMM on the SoC, same bytes, no re-layout -------
    activations = rng.standard_normal((matrix.cols, 4)).astype(np.float16)
    out = soc_gemm(tensor, activations)
    expected = gemm_reference(weights, activations)
    print("SoC GEMM (reads the contiguous virtual view):")
    print(f"  matches reference: {np.allclose(out, expected)}")
    print(f"  re-layouts needed: 0  <- FACIL's point\n")

    # --- the hardware cost: a handful of muxes --------------------------
    muxes = system.controller.mux_array()
    fan_in = max(m.fan_in for m in muxes)
    print(f"controller frontend: {len(muxes)} address-bit muxes, "
          f"max fan-in {fan_in} (one input per registered mapping)")


if __name__ == "__main__":
    main()
