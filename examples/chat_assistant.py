"""Scenario: an on-device chat assistant (Jetson AGX Orin, Llama3-8B).

Replays a conversation-style workload (Alpaca-like length trace) under
each execution policy and reports the user-facing metrics the paper
argues about: time-to-first-token (the responsiveness users feel) and
time-to-last-token.  The paper's usability anchors: users perceive <100 ms
as instantaneous, and a voice assistant needs TTFT under ~250 ms.

Run with::

    python examples/chat_assistant.py
"""

from repro.engine.policies import POLICIES, InferenceEngine
from repro.engine.runner import dataset_eval
from repro.llm.datasets import ALPACA_LIKE, sample_trace
from repro.platforms.specs import JETSON_ORIN

INSTANT_MS = 100.0
VOICE_ASSISTANT_MS = 250.0


def main() -> None:
    engine = InferenceEngine(JETSON_ORIN)
    print(f"platform: {JETSON_ORIN.name}  model: {engine.model.name} "
          f"({engine.model.weight_bytes()/2**30:.1f} GiB fp16)\n")

    # -- one representative query, end to end -----------------------------
    prefill, decode = 24, 64
    print(f"single query (prefill={prefill}, decode={decode}):")
    print(f"  {'policy':16s} {'TTFT':>10s} {'TTLT':>10s}  verdict")
    for policy in POLICIES:
        q = engine.run_query(policy, prefill, decode)
        if q.ttft_ms < INSTANT_MS:
            verdict = "feels instantaneous"
        elif q.ttft_ms < VOICE_ASSISTANT_MS:
            verdict = "OK for voice assistants"
        else:
            verdict = "noticeable lag"
        print(f"  {policy:16s} {q.ttft_ms:8.1f}ms {q.ttlt_ms:8.1f}ms  {verdict}")

    # -- a whole conversation trace ---------------------------------------
    n_queries = 80
    result = dataset_eval(engine, ALPACA_LIKE, n_queries=n_queries)
    print(f"\n{n_queries}-query conversation trace ({ALPACA_LIKE.name}):")
    print(f"  {'policy':16s} {'mean TTFT':>10s} {'mean TTLT':>10s} "
          f"{'<250ms TTFT':>12s}")
    trace = sample_trace(ALPACA_LIKE, n_queries)
    for policy in POLICIES:
        ttfts = result.ttft_ns[policy]
        ok = sum(1 for t in ttfts if t / 1e6 < VOICE_ASSISTANT_MS)
        print(
            f"  {policy:16s} {result.mean_ttft_ns(policy)/1e6:8.1f}ms "
            f"{result.mean_ttlt_ns(policy)/1e6:8.1f}ms "
            f"{ok:>6d}/{n_queries}"
        )

    print(
        f"\nFACIL vs hybrid-static: "
        f"{result.ttft_speedup_over('hybrid-static'):.2f}x TTFT, "
        f"{result.ttlt_speedup_over('hybrid-static'):.2f}x TTLT "
        f"(paper: 2.37x / ~1.20x on Alpaca)"
    )
    print(
        f"FACIL vs SoC-only:      "
        f"{result.ttft_speedup_over('soc-only'):.2f}x TTFT, "
        f"{result.ttlt_speedup_over('soc-only'):.2f}x TTLT "
        f"(SoC-only collapses during decode)"
    )


if __name__ == "__main__":
    main()
