"""Scenario: code autocompletion on a laptop NPU (IdeaPad, OPT-6.7B).

Autocomplete fires on every typing pause: prefill lengths are small, the
completion is a line or two, and the latency budget is brutal — the
suggestion must land before the programmer types the next character.
This script replays a RealHumanEval-style trace and also shows the
dynamic SoC/PIM prefill offload decision FACIL applies per request.

Run with::

    python examples/code_autocomplete.py
"""

from repro.engine.policies import InferenceEngine
from repro.engine.runner import dataset_eval
from repro.llm.datasets import HUMANEVAL_AUTOCOMPLETE_LIKE
from repro.platforms.specs import IDEAPAD, IPHONE_15_PRO


def main() -> None:
    for platform in (IDEAPAD, IPHONE_15_PRO):
        engine = InferenceEngine(platform)
        print(f"=== {platform.name} ({engine.model.name}) ===")

        # -- the per-request offload decision ---------------------------
        hybrid_threshold = engine.prefill_crossover()
        facil_threshold = engine.facil_crossover()
        print(f"profiled prefill crossover (SoC beats PIM at):")
        print(f"  hybrid baseline: >= {hybrid_threshold} tokens "
              "(SoC path pays full re-layout)")
        print(f"  FACIL          : >= {facil_threshold} tokens "
              "(SoC path is re-layout-free)")

        # -- latency vs context size ------------------------------------
        print(f"\n  {'prefill':>8s} {'static TTFT':>12s} {'FACIL TTFT':>11s} "
              f"{'speedup':>8s}  FACIL prefill ran on")
        for prefill in (4, 16, 64, 256):
            static = engine.run_query("hybrid-static", prefill, 8)
            facil = engine.run_query("facil", prefill, 8)
            where = "PIM" if "prefill_pim" in facil.breakdown else "SoC"
            print(
                f"  {prefill:>8d} {static.ttft_ms:>10.1f}ms "
                f"{facil.ttft_ms:>9.1f}ms "
                f"{static.ttft_ns/facil.ttft_ns:>7.2f}x  {where}"
            )

        # -- full autocomplete trace ------------------------------------
        result = dataset_eval(engine, HUMANEVAL_AUTOCOMPLETE_LIKE, n_queries=80)
        print(
            f"\n  80-request autocomplete trace: FACIL gives "
            f"{result.ttft_speedup_over('hybrid-static'):.2f}x TTFT and "
            f"{result.ttlt_speedup_over('hybrid-static'):.2f}x TTLT over the "
            "static baseline"
        )
        print(
            f"  (and {result.ttft_speedup_over('hybrid-dynamic'):.2f}x TTFT "
            "over the optimized dynamic baseline)\n"
        )


if __name__ == "__main__":
    main()
