"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package in offline environments (PEP 660 needs bdist_wheel)."""
from setuptools import setup

setup()
