"""Crash-in-flight migration: every site recovers whole, never torn.

Each test arms one checkpoint of the two-phase MIGRATE transaction,
crashes a partial-range migration there, recovers, and asserts the
never-torn invariant at PTE level: the migrated range is either
entirely the old slots (rolled back — any crash strictly before the
``committed`` journal step) or entirely the promoted slot (rolled
forward — at or after it), and pages outside the range never move.
The bounded CRC audit then proves the bytes read back intact through
whichever mapping recovery chose.
"""

import pytest

from repro.adaptive.arena import AdaptiveArena
from repro.core.journal import MIGRATE_CRASH_SITES, InjectedCrash
from repro.reliability.faults import FaultInjector

#: commit point: "committed" and later roll forward, everything else back
_ROLLS_FORWARD = {"migrate:committed": True, "migrate:cleanup": True}


@pytest.fixture(scope="module")
def crash_rig():
    arena = AdaptiveArena(seed=1, name="crash/arena")
    injector = FaultInjector(1).attach(arena.system)
    yield arena, injector
    injector.detach()


def crash_and_recover(arena, injector, site, after=0,
                      page_start=1, page_count=2):
    """Crash one migration at *site*, recover, assert never-torn, and
    return whether recovery rolled forward."""
    # a target MapID no current page carries, so slot changes are visible
    target = next(k for k in (5, 4, 6) if k not in arena.page_k)
    before = list(arena.system.space.area_page_map_ids(arena.tensor.va))
    injector.schedule_crash(site, after=after)
    with pytest.raises(InjectedCrash):
        arena.system.allocator.migrate_pages(
            arena.tensor, target, page_start=page_start, page_count=page_count
        )
    recovery = arena.system.recover()
    action = next(a for a in recovery.actions if a.op == "migrate")
    forward = action.resolution == "rolled-forward"
    assert forward == _ROLLS_FORWARD.get(site, False)

    after_slots = list(arena.system.space.area_page_map_ids(arena.tensor.va))
    expected = list(before)
    if forward:
        promoted = action.detail["promoted_map_id"]
        expected[page_start:page_start + page_count] = [promoted] * page_count
        for index in range(page_start, page_start + page_count):
            arena.page_k[index] = target
    assert after_slots == expected  # never torn, outside pages untouched
    assert arena.verify(pages=range(page_start, page_start + page_count)) == []
    arena.system.journal.truncate_committed()
    return forward


@pytest.mark.parametrize("site", MIGRATE_CRASH_SITES)
def test_crash_at_site_recovers_whole(crash_rig, site):
    arena, injector = crash_rig
    crash_and_recover(arena, injector, site)


def test_crash_mid_page_walk_rolls_back_every_flip(crash_rig):
    # the second PTE flip of a two-page range: one page already points
    # at the new mapping when the crash lands — recovery must restore it
    arena, injector = crash_rig
    forward = crash_and_recover(arena, injector, "migrate:page", after=1)
    assert not forward
