"""Shared fixtures for the adaptive-remapping suite.

Real :class:`~repro.adaptive.arena.AdaptiveArena` instances carry an
8 MiB functional system — building one costs ~1.5 s and every migration
~1-5 s — so only the tests whose *point* is the real PTE/byte machinery
use one.  Controller-behaviour and property tests drive the controller
against :class:`FakeArena`, which mirrors the arena's decision surface
(geometry, penalty model, MapID mirror) with free migrations.
"""

from typing import List, Optional

import pytest

from repro.adaptive.arena import ADAPTIVE_ARENA_ORG, AdaptiveArena
from repro.pim.config import aim_config_for


class FakeArena:
    """The controller-facing surface of an AdaptiveArena, minus the
    functional system: migrations are instant ledger updates, and the
    audit reports whatever the test scripts via ``verify_problems``."""

    # decision-model methods shared verbatim with the real arena, so the
    # fake cannot drift from what the controller actually prices
    ideal_map_id = AdaptiveArena.ideal_map_id
    hot_matrix = AdaptiveArena.hot_matrix
    penalty = staticmethod(AdaptiveArena.penalty)
    mean_penalty = AdaptiveArena.mean_penalty

    def __init__(self, n_pages: int = 4, start_k: int = 3) -> None:
        self.name = "fake/arena"
        self.org = ADAPTIVE_ARENA_ORG
        self.pim = aim_config_for(self.org)
        self.huge_page_bytes = 1 << 21
        self.page_k: List[int] = [start_k] * n_pages
        self.max_map_id = 10
        self.full_migration_cost_ns = 655_360.0
        self.migrations: List[tuple] = []
        self.verify_problems: List[str] = []
        self.verify_calls: List[Optional[tuple]] = []

    @property
    def n_pages(self) -> int:
        return len(self.page_k)

    def migrate(self, map_id: int, page_start: int = 0,
                page_count: Optional[int] = None) -> dict:
        if page_count is None:
            page_count = self.n_pages - page_start
        assert 0 <= page_start and page_start + page_count <= self.n_pages
        self.migrations.append((map_id, page_start, page_count))
        for index in range(page_start, page_start + page_count):
            self.page_k[index] = map_id
        return {"new_map_id": map_id, "pages": page_count,
                "released_map_ids": []}

    def verify(self, pages=None) -> List[str]:
        self.verify_calls.append(None if pages is None else tuple(pages))
        return list(self.verify_problems)


def drive(controller, prefill_tokens: int, n: int = 1, *, served: bool = True,
          pim_base_ns: float = 2e6, ttft_ns: float = 1e6, pim_ok: bool = True,
          brownout: bool = False, start_req: int = 0) -> float:
    """Tick *n* requests of one hot shape through *controller*, pricing
    the observed PIM time with the controller's own multiplier — exactly
    the serving loop's contract.  Request ids double as the clock (one
    tick per ns), so event timestamps count requests.  Returns the total
    migration ns charged."""
    charged = 0.0
    for i in range(start_req, start_req + n):
        k_req = controller.ideal_map_id(prefill_tokens)
        mult = controller.pim_multiplier(k_req)
        charged += controller.tick(
            i, float(i), k_req, served, ttft_ns, pim_base_ns,
            pim_obs_ns=pim_base_ns * mult, pim_ok=pim_ok, brownout=brownout,
        )
    return charged


@pytest.fixture
def fake_arena():
    return FakeArena()


@pytest.fixture(scope="module")
def real_arena():
    """One real arena per module — tests sharing it must leave every
    page back at the selector's MapID 3 (assert it on entry)."""
    return AdaptiveArena(seed=0, name="test/arena")
