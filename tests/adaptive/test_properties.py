"""Property tests for the adaptive controller's flap-damping contracts.

Three properties the docs promise, checked over arbitrary drifting /
alternating workloads (hot-shape blocks of varying length):

* **Pacing (no oscillation)**: two canaries can never start closer than
  ``canary_window + cooldown + window`` requests apart — a full verdict,
  a full cooldown, and a full fresh decision window sit between them.
* **Cooldown strictly enforced**: after any decision (promote or
  rollback), no new canary starts for ``cooldown + window`` requests.
* **Rollback restores the MapID mirror byte-identically**: a pinned
  pessimal advisor (the forced-bad-advisor drill) is always caught by
  the canary, every rollback lands the page MapIDs exactly where they
  started, and nothing is ever promoted.

The fake arena's request ids double as the clock (one tick per ns), so
event timestamps count requests directly.
"""

from hypothesis import given, settings, strategies as st

from repro.adaptive.controller import AdaptiveConfig, AdaptiveController

from tests.adaptive.conftest import FakeArena, drive

_SETTINGS = dict(max_examples=20, deadline=None)

WINDOW = 8
CANARY = 4
COOLDOWN = 10

#: blocks of (hot-shape prefill, repeat count): 800 tokens wants MapID 3
#: (the pages' start), 1500 wants 4, 3000 wants 5
workloads = st.lists(
    st.tuples(st.sampled_from([800, 1500, 3000]), st.integers(1, 20)),
    min_size=1,
    max_size=10,
)


def run_workload(blocks, **overrides):
    defaults = dict(
        mode="active", window_requests=WINDOW, canary_window=CANARY,
        cooldown_requests=COOLDOWN, hysteresis=2.0, canary_fraction=0.25,
        max_migrations=8, penalty_coeff=0.05, slo_margin=0.10,
    )
    defaults.update(overrides)
    arena = FakeArena()
    ctrl = AdaptiveController(AdaptiveConfig(**defaults), arena=arena)
    tick = 0
    for prefill, count in blocks:
        drive(ctrl, prefill, n=count, start_req=tick)
        tick += count
    return ctrl, arena, tick


class TestPacing:
    @given(blocks=workloads)
    @settings(**_SETTINGS)
    def test_canaries_never_oscillate(self, blocks):
        ctrl, _, ticks = run_workload(blocks)
        canaries = [e.t_ns for e in ctrl.events if e.kind == "canary"]
        for earlier, later in zip(canaries, canaries[1:]):
            assert later - earlier >= CANARY + COOLDOWN + WINDOW
        # pacing also bounds the total: one canary per full cycle
        assert len(canaries) <= 1 + ticks // (CANARY + COOLDOWN + WINDOW)

    @given(blocks=workloads, cooldown=st.integers(0, 40))
    @settings(**_SETTINGS)
    def test_cooldown_strictly_enforced(self, blocks, cooldown):
        ctrl, _, _ = run_workload(blocks, cooldown_requests=cooldown)
        for i, event in enumerate(ctrl.events):
            if event.kind not in ("promote", "rollback"):
                continue
            for later in ctrl.events[i + 1:]:
                if later.kind == "canary":
                    assert later.t_ns - event.t_ns >= cooldown + WINDOW
                    break


class TestRollbackRestores:
    @given(blocks=workloads)
    @settings(**_SETTINGS)
    def test_pinned_pessimal_advisor_always_rolls_back_clean(self, blocks):
        # MapID 0 degrades every hot shape; a 2% margin catches even the
        # mildest one (800 tokens: +8.75% PIM slowdown)
        ctrl, arena, ticks = run_workload(
            blocks, pinned_map_id=0, slo_margin=0.02
        )
        # flush any canary still in flight at the end of the workload
        drive(ctrl, blocks[-1][0], n=2 * CANARY + COOLDOWN, start_req=ticks)
        assert ctrl.promotions == 0
        assert ctrl.rollbacks == ctrl.migrations_started
        # every rollback restored the MapID mirror byte for byte
        assert arena.page_k == [3, 3, 3, 3]
        # and the one-canary-per-answer damping held: the pinned MapID
        # was canaried at most once
        assert ctrl.migrations_started <= 1
