"""The real arena: geometry, penalty model, live migration, CRC audit.

These tests exercise the functional bridge — actual huge pages, PTEs,
table refcounts, and bytes — so they share one module-scoped arena and
each leaves it exactly as found (every page back at the selector's
MapID 3, audit clean).
"""

import pytest

from repro.adaptive.arena import AdaptiveArena


@pytest.fixture(autouse=True)
def _arena_invariant(real_arena):
    assert real_arena.page_k == [3] * 4
    yield
    assert real_arena.page_k == [3] * 4
    assert real_arena.verify(pages=()) == []  # structural audit stays clean


class TestGeometry:
    def test_four_pages_selected_at_map_id_3(self, real_arena):
        assert real_arena.n_pages == 4
        assert real_arena.tensor.selection.map_id == 3
        assert real_arena.max_map_id == 10
        assert real_arena.full_migration_cost_ns > 0

    def test_ideal_map_id_closed_form(self, real_arena):
        # smallest k with chunk_row_bytes << k >= prefill * dtype_bytes
        assert real_arena.ideal_map_id(128) == 0
        assert real_arena.ideal_map_id(512) == 2
        assert real_arena.ideal_map_id(1024) == 3
        assert real_arena.ideal_map_id(1025) == 4
        assert real_arena.ideal_map_id(4096) == 5
        # monster shapes saturate at the geometry's largest MapID
        assert real_arena.ideal_map_id(10**9) == real_arena.max_map_id

    def test_hot_matrix_spans_2k_chunk_rows(self, real_arena):
        for k in (0, 3, 5):
            matrix = real_arena.hot_matrix(k)
            row_bytes = matrix.cols * matrix.dtype_bytes
            assert row_bytes == real_arena.pim.chunk_row_bytes << k

    def test_penalty_is_two_sided(self, real_arena):
        # below the ideal: partial sums split across PUs, exponential
        assert real_arena.penalty(5, 3) == 3.0
        assert real_arena.penalty(5, 0) == 31.0
        # above the ideal: wasted interleave, linear
        assert real_arena.penalty(3, 5) == 2.0
        assert real_arena.penalty(4, 4) == 0.0

    def test_mean_penalty_over_pages(self, real_arena):
        assert real_arena.mean_penalty(5) == 3.0
        assert real_arena.mean_penalty(5, page_ks=[5, 3, 3, 3]) == 2.25


class TestMigration:
    def test_partial_migration_leaves_sound_mixed_state(self, real_arena):
        result = real_arena.migrate(5, page_start=0, page_count=2)
        assert result["pages"] == 2
        assert real_arena.page_k == [5, 5, 3, 3]
        # PTEs agree with the mirror: exactly two distinct live slots
        slots = real_arena.system.space.area_page_map_ids(real_arena.tensor.va)
        assert slots[0] == slots[1] != slots[2] == slots[3]
        # refcounts: conventional pin + one per distinct slot in use
        assert real_arena.system.controller.table.refcounts() == {
            0: 1, slots[0]: 1, slots[2]: 1,
        }
        # the migrated bytes still CRC-match ground truth (bounded read)
        assert real_arena.verify(pages=range(2)) == []
        real_arena.migrate(3, page_start=0, page_count=2)
        assert real_arena.verify(pages=range(2)) == []

    def test_full_migration_round_trip_preserves_bytes(self, real_arena):
        real_arena.migrate(5)
        assert real_arena.page_k == [5] * 4
        assert real_arena.verify() == []
        real_arena.migrate(3)
        assert real_arena.verify() == []
        # readback through the restored mapping equals the stored data
        raw = real_arena.system.allocator.read_virtual(
            real_arena.tensor.va, real_arena.nbytes
        )
        assert raw.tobytes() == real_arena.data.tobytes()


class TestAudit:
    def test_crc_audit_detects_a_flipped_byte(self, real_arena):
        allocator = real_arena.system.allocator
        va = real_arena.tensor.va
        original = allocator.read_virtual(va, 1)
        allocator.write_virtual(va, original ^ 0xFF)
        try:
            problems = real_arena.verify(pages=[0])
            assert any("CRC" in p for p in problems)
            # the bounded audit never reads the untouched pages
            assert real_arena.verify(pages=[1, 2, 3]) == []
        finally:
            allocator.write_virtual(va, original)
        assert real_arena.verify(pages=[0]) == []

    def test_fresh_arena_is_deterministic(self):
        a = AdaptiveArena(seed=42, name="det/a")
        b = AdaptiveArena(seed=42, name="det/b")
        assert a.crc == b.crc
        assert a.page_crcs == b.page_crcs
        assert a.page_k == b.page_k
