"""Controller behaviour against the fake arena (see conftest).

The contract under test is the guarded WATCHING → CANARY → COOLDOWN
cycle: triggers only fire on a full window that clears the cost/benefit
bar with a healthy PIM, every migration starts as a bounded canary,
verdicts promote or roll back against the pre-migration baseline, and
every decision starts a cooldown.  Traffic is described by prefill
length: 800 tokens is the pre-drift hot shape (ideal MapID 3 — the
pages' starting MapID, zero penalty) and 3000 tokens the post-drift one
(ideal MapID 5, penalty 3 per page while the pages sit at 3).
"""

import pytest

from repro.adaptive.controller import (
    CANARY,
    COOLDOWN,
    WATCHING,
    AdaptiveConfig,
    AdaptiveController,
)

from tests.adaptive.conftest import drive

PRE_DRIFT = 800  # ideal MapID 3
POST_DRIFT = 3000  # ideal MapID 5


def make_controller(fake_arena, **overrides):
    defaults = dict(
        mode="active", window_requests=8, canary_window=4,
        cooldown_requests=10, hysteresis=2.0, canary_fraction=0.25,
        max_migrations=8, penalty_coeff=0.05, slo_margin=0.10,
    )
    defaults.update(overrides)
    return AdaptiveController(AdaptiveConfig(**defaults), arena=fake_arena)


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(mode="aggressive"),
        dict(window_requests=0),
        dict(canary_window=0),
        dict(cooldown_requests=-1),
        dict(hysteresis=0.0),
        dict(canary_fraction=0.0),
        dict(canary_fraction=1.0),
        dict(max_migrations=-1),
        dict(penalty_coeff=-0.1),
        dict(slo_margin=-0.1),
    ])
    def test_rejects_bad_knobs(self, bad):
        with pytest.raises(ValueError):
            AdaptiveConfig(**bad)


class TestTriggering:
    def test_no_trigger_before_window_fills(self, fake_arena):
        ctrl = make_controller(fake_arena)
        drive(ctrl, POST_DRIFT, n=7)
        assert ctrl.state == WATCHING
        assert fake_arena.migrations == []
        drive(ctrl, POST_DRIFT, n=1, start_req=7)
        assert ctrl.state == CANARY
        # a canary never migrates the whole arena: 25% of 4 pages = 1
        assert fake_arena.migrations == [(5, 0, 1)]
        assert ctrl.migrations_started == 1

    def test_matched_workload_never_triggers(self, fake_arena):
        ctrl = make_controller(fake_arena)
        drive(ctrl, PRE_DRIFT, n=40)
        assert fake_arena.migrations == []
        assert ctrl.state == WATCHING

    def test_cost_benefit_gate_blocks_small_benefit(self, fake_arena):
        # drifted traffic, but with so little PIM time per window that
        # the projected saving cannot clear hysteresis x relayout cost
        ctrl = make_controller(fake_arena)
        drive(ctrl, POST_DRIFT, n=40, pim_base_ns=10.0)
        assert fake_arena.migrations == []
        assert ctrl.report()["last_recommendation"] == 5

    def test_static_mode_observes_but_never_migrates(self, fake_arena):
        ctrl = make_controller(fake_arena, mode="static")
        drive(ctrl, POST_DRIFT, n=40)
        assert fake_arena.migrations == []
        assert ctrl.report()["last_recommendation"] == 5
        assert ctrl.report()["page_map_ids"] == [3, 3, 3, 3]

    def test_brownout_blocks_the_trigger_tick(self, fake_arena):
        ctrl = make_controller(fake_arena)
        drive(ctrl, POST_DRIFT, n=8, brownout=True)
        assert fake_arena.migrations == []
        assert ctrl.state == WATCHING

    def test_pim_breaker_trip_poisons_the_window(self, fake_arena):
        ctrl = make_controller(fake_arena)
        # one unhealthy tick anywhere in the window blocks its trigger
        drive(ctrl, POST_DRIFT, n=1, pim_ok=False)
        drive(ctrl, POST_DRIFT, n=7, start_req=1)
        assert fake_arena.migrations == []
        # the next, fully healthy window triggers normally
        drive(ctrl, POST_DRIFT, n=8, start_req=8)
        assert ctrl.state == CANARY

    def test_budget_bounds_total_migrations(self, fake_arena):
        ctrl = make_controller(fake_arena, max_migrations=1)
        drive(ctrl, POST_DRIFT, n=12)  # canary + promote
        assert ctrl.promotions == 1
        # the workload swings back: re-migrating would want MapID 3,
        # but the global budget is spent
        drive(ctrl, PRE_DRIFT, n=60, start_req=12)
        assert ctrl.migrations_started == 1
        assert fake_arena.page_k == [5, 5, 5, 5]


class TestCanaryVerdict:
    def test_healthy_canary_promotes(self, fake_arena):
        ctrl = make_controller(fake_arena)
        charged = drive(ctrl, POST_DRIFT, n=12)
        assert ctrl.promotions == 1
        assert ctrl.rollbacks == 0
        assert fake_arena.page_k == [5, 5, 5, 5]
        assert [e.kind for e in ctrl.events] == ["canary", "promote"]
        # canary (1 page) plus promotion (3 pages) charge the full
        # relayout cost to the PIM timeline, pro-rated by pages
        assert charged == pytest.approx(fake_arena.full_migration_cost_ns)
        assert ctrl.state == COOLDOWN

    def test_audits_are_bounded_to_migrated_pages(self, fake_arena):
        ctrl = make_controller(fake_arena)
        drive(ctrl, POST_DRIFT, n=12)
        assert fake_arena.verify_calls == [(0,), (1, 2, 3)]

    def test_pinned_pessimal_advisor_rolls_back_once(self, fake_arena):
        # the forced-bad-advisor drill: recommendation pinned to MapID 0
        # bypasses the cost/benefit gate; the canary must catch it
        ctrl = make_controller(fake_arena, pinned_map_id=0)
        drive(ctrl, POST_DRIFT, n=12)
        assert ctrl.rollbacks == 1
        assert ctrl.promotions == 0
        # rollback restored the MapID mirror byte for byte
        assert fake_arena.page_k == [3, 3, 3, 3]
        assert [e.kind for e in ctrl.events] == ["canary", "rollback"]
        assert "breached" in ctrl.events[-1].reason
        # flap damping: the rejected MapID never gets a second canary
        # while the (pinned) recommendation stays the same
        drive(ctrl, POST_DRIFT, n=100, start_req=12)
        assert ctrl.migrations_started == 1

    def test_different_recommendation_clears_rejected_block(self, fake_arena):
        ctrl = make_controller(fake_arena)
        ctrl._rejected_map_id = 5  # as if a canary to 5 just rolled back
        drive(ctrl, POST_DRIFT, n=10)
        assert fake_arena.migrations == []  # still blocked
        # a different hot shape (ideal MapID 4) is a fresh answer; its
        # smaller penalty (1 vs 3 per page) needs more PIM demand per
        # window to clear the unchanged cost/benefit bar
        drive(ctrl, 1500, n=24, start_req=10, pim_base_ns=8e6)
        assert fake_arena.migrations
        assert fake_arena.migrations[0][0] == 4

    def test_empty_canary_window_rolls_back(self, fake_arena):
        ctrl = make_controller(fake_arena)
        drive(ctrl, POST_DRIFT, n=8)
        assert ctrl.state == CANARY
        drive(ctrl, POST_DRIFT, n=4, start_req=8, served=False)
        assert ctrl.rollbacks == 1
        assert fake_arena.page_k == [3, 3, 3, 3]
        assert ctrl.events[-1].reason == "no served requests in canary window"

    def test_breaker_trip_mid_canary_rolls_back(self, fake_arena):
        ctrl = make_controller(fake_arena)
        drive(ctrl, POST_DRIFT, n=8)
        drive(ctrl, POST_DRIFT, n=4, start_req=8, pim_ok=False)
        assert ctrl.rollbacks == 1
        assert ctrl.events[-1].reason == "PIM breaker tripped during canary"


class TestCooldownAndAudit:
    def test_cooldown_blocks_retriggering(self, fake_arena):
        ctrl = make_controller(fake_arena, cooldown_requests=10)
        drive(ctrl, POST_DRIFT, n=12)  # promote at tick 11
        assert ctrl.state == COOLDOWN
        # swing the workload back: 9 cooldown ticks + 7 window ticks
        # can never re-trigger (needs 10 + a full window of 8)
        drive(ctrl, PRE_DRIFT, n=16, start_req=12)
        assert ctrl.migrations_started == 1
        # ... but 10 + 8 can
        drive(ctrl, PRE_DRIFT, n=2, start_req=28)
        assert ctrl.migrations_started == 2
        assert fake_arena.migrations[-1][0] == 3

    def test_audit_failure_is_a_finding(self, fake_arena):
        ctrl = make_controller(fake_arena)
        fake_arena.verify_problems = ["arena page 0 bytes fail CRC"]
        drive(ctrl, POST_DRIFT, n=12)
        assert ctrl.findings
        assert all(f.rule_id == "AD003" for f in ctrl.findings)
        assert ctrl.report()["audit_findings"] == len(ctrl.findings)

    def test_controller_is_deterministic(self, fake_arena):
        def run():
            ctrl = make_controller(fake_arena.__class__())
            drive(ctrl, POST_DRIFT, n=30)
            drive(ctrl, PRE_DRIFT, n=30, start_req=30)
            return ctrl.report()

        assert run() == run()

    def test_report_shape(self, fake_arena):
        ctrl = make_controller(fake_arena)
        drive(ctrl, POST_DRIFT, n=12)
        report = ctrl.report()
        assert report["mode"] == "active"
        assert report["migrations_started"] == 1
        assert report["promotions"] == 1
        assert report["budget"] == 8
        assert report["page_map_ids"] == [5, 5, 5, 5]
        event = report["events"][0]
        assert set(event) == {
            "t_ms", "kind", "from_map_id", "to_map_id", "pages",
            "cost_ms", "baseline_ttft_ms", "observed_ttft_ms", "reason",
        }
