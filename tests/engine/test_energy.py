"""Tests for the per-query energy accounting extension."""

import pytest

from repro.dram.energy import LPDDR5_ENERGY, gemv_energy_pj, sim_energy_pj
from repro.engine.energy import EnergyModel, query_energy
from repro.engine.policies import InferenceEngine
from repro.platforms.specs import JETSON_ORIN


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(JETSON_ORIN)


class TestDramEnergyModel:
    def test_io_energy_dominates_external_reads(self):
        internal = LPDDR5_ENERGY.read_pj(1024, external=False)
        external = LPDDR5_ENERGY.read_pj(1024, external=True)
        assert external > 2 * internal

    def test_gemv_energy_scales_with_matrix(self, engine):
        small = engine._costs["k_proj"].pim_gemv
        large = engine._costs["gate_proj"].pim_gemv
        banks = JETSON_ORIN.dram.org.total_banks
        assert gemv_energy_pj(large, banks, 8192, 4096) > gemv_energy_pj(
            small, banks, 8192, 4096
        )

    def test_sim_energy_counts_activations(self):
        import numpy as np
        from repro.core.controller import MemoryController
        from repro.dram.system import DramTimingSimulator, requests_from_fields

        controller = MemoryController(JETSON_ORIN.dram.org)
        sim = DramTimingSimulator(JETSON_ORIN.dram)
        pas = np.arange(0, 1 << 20, 32, dtype=np.int64)
        result = sim.run(requests_from_fields(controller.translate_array(pas, 0)))
        energy = sim_energy_pj(result, 32)
        # lower bound: pure array+IO read energy of the bytes moved
        assert energy >= LPDDR5_ENERGY.read_pj(result.bytes_moved)


class TestQueryEnergy:
    def test_policy_ordering(self, engine):
        """FACIL <= static < SoC-only: re-layout wastes energy, SoC decode
        pays external I/O for every weight byte."""
        soc = query_energy(engine, "soc-only", 24, 64)
        static = query_energy(engine, "hybrid-static", 24, 64)
        facil = query_energy(engine, "facil", 24, 64)
        assert facil.total_mj < static.total_mj < soc.total_mj

    def test_relayout_energy_only_in_hybrid_baselines(self, engine):
        assert query_energy(engine, "hybrid-static", 8, 8).relayout_mj > 0
        assert query_energy(engine, "hybrid-dynamic", 8, 8).relayout_mj > 0
        assert query_energy(engine, "facil", 8, 8).relayout_mj == 0
        assert query_energy(engine, "soc-only", 8, 8).relayout_mj == 0

    def test_decode_energy_scales_with_length(self, engine):
        short = query_energy(engine, "facil", 16, 8)
        long = query_energy(engine, "facil", 16, 64)
        assert long.decode_mj > 5 * short.decode_mj

    def test_pim_decode_cheaper_than_soc_decode(self, engine):
        """The I/O-free weight streaming is the decode energy win."""
        pim = query_energy(engine, "facil", 16, 64)
        soc = query_energy(engine, "soc-only", 16, 64)
        assert pim.decode_mj < 0.8 * soc.decode_mj

    def test_custom_model(self, engine):
        expensive_io = EnergyModel(
            dram=LPDDR5_ENERGY.__class__(io_pj_per_byte=20.0)
        )
        base = query_energy(engine, "soc-only", 8, 8)
        costly = query_energy(engine, "soc-only", 8, 8, model=expensive_io)
        assert costly.total_mj > base.total_mj
