"""Tests for multi-turn chat sessions."""

import pytest

from repro.engine.policies import InferenceEngine
from repro.engine.session import ChatSession
from repro.kvcache import BlockPool, KvCacheManager, KvSpec
from repro.platforms.specs import JETSON_ORIN


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(JETSON_ORIN)


class TestSessionMechanics:
    def test_context_accumulates(self, engine):
        session = ChatSession(engine, "facil")
        session.turn(10, 20)
        assert session.context == 30
        session.turn(5, 5)
        assert session.context == 40
        assert len(session.turns) == 2

    def test_turn_metadata(self, engine):
        session = ChatSession(engine, "facil")
        first = session.turn(10, 20)
        second = session.turn(8, 16)
        assert first.turn == 1 and second.turn == 2
        assert second.context_before == 30

    def test_bad_policy_rejected(self, engine):
        with pytest.raises(ValueError):
            ChatSession(engine, "quantum")

    def test_bad_tokens_rejected(self, engine):
        session = ChatSession(engine, "facil")
        with pytest.raises(ValueError):
            session.turn(0, 5)


class TestSessionCosts:
    def test_later_turns_cost_more_decode(self, engine):
        """Attention over the growing KV cache makes per-turn TTLT creep
        upward even at fixed turn sizes."""
        session = ChatSession(engine, "facil")
        first = session.turn(16, 32)
        for _ in range(4):
            last = session.turn(16, 32)
        assert last.ttlt_ns > first.ttlt_ns

    def test_static_baseline_pays_relayout_every_turn(self, engine):
        static = ChatSession(engine, "hybrid-static")
        facil = ChatSession(engine, "facil")
        for _ in range(4):
            static.turn(16, 32)
            facil.turn(16, 32)
        gap = static.total_ns - facil.total_ns
        assert gap > 3 * engine.relayout_total_ns()
        assert static.total_relayout_ns == 4 * engine.relayout_total_ns()
        assert facil.total_relayout_ns == 0.0

    def test_facil_ttft_stable_across_turns(self, engine):
        """The user-facing point: FACIL's TTFT stays ~flat across a
        conversation; the static baseline's stays inflated every turn."""
        facil = ChatSession(engine, "facil")
        static = ChatSession(engine, "hybrid-static")
        for _ in range(5):
            f = facil.turn(24, 48)
            s = static.turn(24, 48)
        assert s.ttft_ns > 2 * f.ttft_ns

    def test_incremental_prefill_cheaper_than_full(self, engine):
        """Turn 2's prefill covers only the new tokens (the KV cache
        already holds the conversation)."""
        session = ChatSession(engine, "soc-only")
        session.turn(64, 64)
        second = session.turn(8, 8)
        fresh = ChatSession(engine, "soc-only")
        fresh_big = fresh.turn(136, 8)
        assert second.ttft_ns <= fresh_big.ttft_ns

    def test_dynamic_policy_at_least_as_good_as_static(self, engine):
        static = ChatSession(engine, "hybrid-static")
        dynamic = ChatSession(engine, "hybrid-dynamic")
        for _ in range(3):
            s = static.turn(4, 16)
            d = dynamic.turn(4, 16)
            assert d.ttft_ns <= s.ttft_ns + 1e-6


class TestPolicySwitch:
    def test_relayout_total_survives_mid_conversation_switch(self, engine):
        """Regression: total_relayout_ns used to be re-priced against the
        *current* policy (len(turns) * relayout), so switching away from
        hybrid-static zeroed — and switching to it inflated — history."""
        relayout = engine.relayout_total_ns()
        session = ChatSession(engine, "hybrid-static")
        session.turn(16, 32)
        session.turn(16, 32)
        assert session.total_relayout_ns == 2 * relayout
        session.set_policy("facil")
        session.turn(16, 32)
        session.turn(16, 32)
        # the two static turns keep their cost; the facil turns add none
        assert session.total_relayout_ns == 2 * relayout

    def test_switch_into_static_only_charges_new_turns(self, engine):
        relayout = engine.relayout_total_ns()
        session = ChatSession(engine, "soc-only")
        session.turn(16, 32)
        session.set_policy("hybrid-static")
        session.turn(16, 32)
        assert session.total_relayout_ns == relayout
        assert session.turns[0].relayout_ns == 0.0
        assert session.turns[1].relayout_ns == relayout

    def test_bad_policy_switch_rejected(self, engine):
        session = ChatSession(engine, "facil")
        with pytest.raises(ValueError):
            session.set_policy("quantum")


class TestManagedKv:
    def make_kv(self, num_blocks=64, block_tokens=16):
        pool = BlockPool(num_blocks, KvSpec(block_tokens=block_tokens))
        return KvCacheManager(pool)

    def test_later_turns_hit_the_block_cache(self, engine):
        kv = self.make_kv()
        session = ChatSession(engine, "facil", kv=kv, conversation_id=3)
        first = session.turn(32, 32)
        assert first.cached_tokens == 0
        assert first.recomputed_tokens == 32
        second = session.turn(16, 16)
        # turn 1's 64 tokens were published as four full 16-token blocks
        assert second.cached_tokens == 64
        assert second.recomputed_tokens == 16
        assert kv.audit() == []

    def test_partial_tail_blocks_are_recomputed(self, engine):
        kv = self.make_kv()
        session = ChatSession(engine, "facil", kv=kv, conversation_id=4)
        session.turn(20, 20)  # 40 tokens: two full blocks + a partial
        second = session.turn(8, 8)
        assert second.cached_tokens == 32
        assert second.recomputed_tokens == (40 - 32) + 8

    def test_managed_cache_never_beats_perfect_persistence(self, engine):
        """The unmanaged session assumes every past token stays cached;
        the managed one recomputes partial tails — so its prefills can
        only be equal or larger."""
        kv = self.make_kv()
        managed = ChatSession(engine, "facil", kv=kv, conversation_id=5)
        perfect = ChatSession(engine, "facil")
        for _ in range(4):
            m = managed.turn(20, 20)
            p = perfect.turn(20, 20)
            assert m.ttft_ns >= p.ttft_ns - 1e-6

    def test_conversations_do_not_cross_pollinate(self, engine):
        kv = self.make_kv()
        a = ChatSession(engine, "facil", kv=kv, conversation_id=1)
        b = ChatSession(engine, "facil", kv=kv, conversation_id=2)
        a.turn(32, 32)
        first_b = b.turn(32, 32)
        assert first_b.cached_tokens == 0
        assert kv.audit() == []
