"""Tests for the experiment sweep runners."""

import pytest

from repro.engine.policies import InferenceEngine
from repro.engine.runner import dataset_eval, ttft_speedup_sweep, ttlt_speedup_grid
from repro.llm.datasets import ALPACA_LIKE
from repro.platforms.specs import JETSON_ORIN


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(JETSON_ORIN)


class TestTtftSweep:
    def test_points_cover_lengths(self, engine):
        points = ttft_speedup_sweep(engine, prefill_lengths=(8, 32))
        assert [p.prefill for p in points] == [8, 32]
        for p in points:
            assert p.ttft_speedup > 1.0

    def test_speedup_definition(self, engine):
        p = ttft_speedup_sweep(engine, prefill_lengths=(16,))[0]
        assert p.ttft_speedup == pytest.approx(
            p.baseline.ttft_ns / p.facil.ttft_ns
        )


class TestTtltGrid:
    def test_grid_shape(self, engine):
        grid = ttlt_speedup_grid(
            engine, prefill_lengths=(16, 64), decode_lengths=(8, 32)
        )
        assert len(grid) == 4

    def test_speedup_amortizes_with_decode(self, engine):
        """Fig. 14: longer decode amortizes the prefill advantage."""
        grid = ttlt_speedup_grid(
            engine, prefill_lengths=(64,), decode_lengths=(8, 256)
        )
        assert grid[0].ttlt_speedup > grid[1].ttlt_speedup


class TestDatasetEval:
    @pytest.fixture(scope="class")
    def result(self, engine):
        return dataset_eval(engine, ALPACA_LIKE, n_queries=20, seed=3)

    def test_per_query_records(self, result):
        assert result.n_queries == 20
        for policy in ("soc-only", "hybrid-static", "hybrid-dynamic", "facil"):
            assert len(result.ttft_ns[policy]) == 20

    def test_geomean_speedup_positive(self, result):
        assert result.ttft_speedup_over("hybrid-static") > 1.0
        assert result.ttlt_speedup_over("hybrid-static") > 1.0

    def test_mean_accessors(self, result):
        assert result.mean_ttft_ns("facil") < result.mean_ttft_ns("hybrid-static")

    def test_dataset_metadata(self, result):
        assert result.dataset == "alpaca-like"
        assert result.platform == "jetson-agx-orin"


class TestDatasetEvalValidation:
    def test_rejects_nonpositive_query_counts(self, engine):
        with pytest.raises(ValueError, match="n_queries"):
            dataset_eval(engine, ALPACA_LIKE, n_queries=0)
        with pytest.raises(ValueError, match="n_queries"):
            dataset_eval(engine, ALPACA_LIKE, n_queries=-5)

    def test_rejects_empty_policy_list(self, engine):
        with pytest.raises(ValueError, match="policies"):
            dataset_eval(engine, ALPACA_LIKE, n_queries=4, policies=())

    def test_rejects_unknown_policies(self, engine):
        with pytest.raises(ValueError, match="unknown policies"):
            dataset_eval(
                engine, ALPACA_LIKE, n_queries=4, policies=("facil", "warp-drive")
            )

    def test_empty_result_mean_raises_value_error(self):
        # A result that somehow holds no queries must raise a clear
        # ValueError, not ZeroDivisionError, from the mean accessors.
        from repro.engine.runner import DatasetResult

        empty = DatasetResult(
            dataset="d", platform="p", n_queries=0,
            ttft_ns={"facil": []}, ttlt_ns={"facil": []},
        )
        with pytest.raises(ValueError, match="empty"):
            empty.mean_ttft_ns("facil")
        with pytest.raises(ValueError, match="empty"):
            empty.mean_ttlt_ns("facil")
