"""Robustness of the evaluation pipeline: seed stability, platform
variants, and model overrides."""

from dataclasses import replace

import pytest

from repro.engine.metrics import geomean
from repro.engine.policies import InferenceEngine
from repro.engine.runner import dataset_eval, ttft_speedup_sweep
from repro.llm.datasets import ALPACA_LIKE
from repro.llm.model_config import LLAMA3_8B, PHI_1_5
from repro.pim.config import AIM_GDDR6, HBM_PIM
from repro.platforms.specs import JETSON_ORIN
from repro.soc.processor import ideal_npu


class TestSeedStability:
    def test_dataset_geomean_stable_across_seeds(self):
        """The headline dataset speedups are properties of the length
        distribution, not of one lucky sample."""
        engine = InferenceEngine(JETSON_ORIN)
        geomeans = [
            dataset_eval(engine, ALPACA_LIKE, n_queries=60, seed=seed)
            .ttft_speedup_over("hybrid-static")
            for seed in range(5)
        ]
        spread = max(geomeans) / min(geomeans)
        assert spread < 1.10

    def test_sample_size_convergence(self):
        engine = InferenceEngine(JETSON_ORIN)
        small = dataset_eval(engine, ALPACA_LIKE, n_queries=30).ttft_speedup_over(
            "hybrid-static"
        )
        large = dataset_eval(engine, ALPACA_LIKE, n_queries=200).ttft_speedup_over(
            "hybrid-static"
        )
        assert abs(small - large) / large < 0.15


class TestPimDeviceVariants:
    def test_hbm_pim_style_platform_works_end_to_end(self):
        """The whole engine runs with the HBM-PIM chunk shape — the
        mapping formulation's generality carries through the stack."""
        platform = replace(JETSON_ORIN, pim=HBM_PIM)
        engine = InferenceEngine(platform)
        gm = geomean([p.ttft_speedup for p in ttft_speedup_sweep(engine)])
        assert 1.5 < gm < 3.5

    def test_gddr6_pim_shrinks_decode_step(self):
        from repro.dram.config import DramConfig, GDDR6_16000_TIMINGS

        gddr6_platform = replace(
            JETSON_ORIN,
            pim=AIM_GDDR6,
            dram=DramConfig(
                JETSON_ORIN.dram.org, GDDR6_16000_TIMINGS
            ).with_data_rate(16000),
        )
        fast = InferenceEngine(gddr6_platform)
        slow = InferenceEngine(JETSON_ORIN)
        assert fast.pim_decode_step_ns(88) < 0.5 * slow.pim_decode_step_ns(88)


class TestOverrides:
    def test_model_override(self):
        engine = InferenceEngine(JETSON_ORIN, model=PHI_1_5)
        assert engine.model.name == "phi-1.5"
        # a 1.4B model decodes far faster than the 8B default
        base = InferenceEngine(JETSON_ORIN)
        assert engine.soc_decode_step_ns(64) < base.soc_decode_step_ns(64) / 3

    def test_soc_override_ideal_npu(self):
        npu = InferenceEngine(
            JETSON_ORIN, soc_override=ideal_npu(JETSON_ORIN.peak_bw_gbps)
        )
        base = InferenceEngine(JETSON_ORIN)
        assert npu.soc_decode_step_ns(64) < base.soc_decode_step_ns(64)

    def test_memoization_consistency(self):
        """Cached pricing functions return identical values on repeat
        calls (and the caches actually engage)."""
        engine = InferenceEngine(JETSON_ORIN)
        first = engine.pim_decode_step_ns(321)
        second = engine.pim_decode_step_ns(321)
        assert first == second
        info = engine.pim_decode_step_ns.cache_info()
        assert info.hits >= 1

    def test_relayout_mode_override(self):
        simulated_free = InferenceEngine(JETSON_ORIN, relayout_mode="peak-bw")
        assert simulated_free.relayout_total_ns() > 0
