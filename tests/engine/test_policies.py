"""Tests for the four execution policies (paper §VI)."""

import pytest

from repro.engine.policies import POLICIES, InferenceEngine
from repro.llm.model_config import LLAMA3_8B
from repro.platforms.specs import IDEAPAD, JETSON_ORIN, MACBOOK_PRO


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(JETSON_ORIN)


class TestConstruction:
    def test_model_defaults_from_platform(self, engine):
        assert engine.model.name == "llama3-8b"

    def test_explicit_model(self):
        eng = InferenceEngine(IDEAPAD)
        assert eng.model.name == "opt-6.7b"

    def test_costs_precomputed_per_spec(self, engine):
        assert set(engine._costs) == {
            "q_proj", "k_proj", "v_proj", "o_proj",
            "gate_proj", "up_proj", "down_proj", "lm_head",
        }


class TestPhasePrimitives:
    def test_relayout_total_scale(self, engine):
        """Re-layout of all Llama3-8B linears at full Jetson bandwidth:
        ~150 ms (the Fig. 6 inflation source)."""
        assert 0.10 < engine.relayout_total_ns() / 1e9 < 0.20

    def test_prefill_memory_bound_at_small_lengths(self, engine):
        """Jetson's ridge point is ~200 flop/byte: prefill times for
        lengths 8..64 are all pinned at the weight-read floor."""
        t8 = engine.soc_prefill_ns(8)
        t64 = engine.soc_prefill_ns(64)
        assert t64 < 1.15 * t8

    def test_facil_layout_slowdown_applied(self, engine):
        plain = engine.soc_prefill_ns(64)
        facil = engine.soc_prefill_ns(64, pim_layout=True)
        assert plain < facil < plain * 1.05

    def test_pim_decode_step_beats_soc(self, engine):
        assert engine.pim_decode_step_ns(128) < engine.soc_decode_step_ns(128) / 3

    def test_decode_step_grows_with_context(self, engine):
        assert engine.pim_decode_step_ns(2048) > engine.pim_decode_step_ns(64)


class TestPolicies:
    def test_unknown_policy_rejected(self, engine):
        with pytest.raises(ValueError, match="unknown policy"):
            engine.run_query("magic", 64, 64)

    def test_bad_lengths_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.run_query("facil", 0, 64)

    def test_static_ttft_is_relayout_plus_gemm(self, engine):
        q = engine.run_query("hybrid-static", 64, 64)
        assert q.ttft_ns == pytest.approx(
            q.breakdown["relayout"] + q.breakdown["prefill_soc"]
        )

    def test_facil_beats_static_ttft(self, engine):
        static = engine.run_query("hybrid-static", 64, 64)
        facil = engine.run_query("facil", 64, 64, dynamic_offload=False)
        assert facil.ttft_ns < static.ttft_ns / 2

    def test_dynamic_never_worse_than_static(self, engine):
        for prefill in (4, 16, 64, 256):
            static = engine.run_query("hybrid-static", prefill, 16)
            dynamic = engine.run_query("hybrid-dynamic", prefill, 16)
            assert dynamic.ttft_ns <= static.ttft_ns + 1e-6

    def test_soc_only_has_fast_ttft_slow_ttlt(self, engine):
        """§VI-C: SoC-only gives competitive TTFT but suffers badly in
        TTLT because decode is memory-bound."""
        soc = engine.run_query("soc-only", 16, 64)
        facil = engine.run_query("facil", 16, 64)
        assert soc.ttft_ns < 2 * facil.ttft_ns
        assert soc.ttlt_ns > 2 * facil.ttlt_ns

    def test_ttlt_includes_decode(self, engine):
        short = engine.run_query("facil", 64, 2)
        long = engine.run_query("facil", 64, 64)
        assert long.ttlt_ns > short.ttlt_ns
        assert long.ttft_ns == pytest.approx(short.ttft_ns)

    def test_single_token_decode_means_ttlt_equals_ttft(self, engine):
        q = engine.run_query("facil", 64, 1)
        assert q.ttlt_ns == pytest.approx(q.ttft_ns)

    def test_all_policies_produce_breakdowns(self, engine):
        for policy in POLICIES:
            q = engine.run_query(policy, 32, 8)
            assert q.breakdown
            assert q.ttlt_ns >= q.ttft_ns


class TestDynamicOffload:
    def test_crossover_profile(self, engine):
        """Re-layout costs ~150 ms; PIM prefill costs ~23 ms/token: the
        SoC path wins somewhere in the tens of tokens."""
        threshold = engine.prefill_crossover()
        assert 2 <= threshold <= 512

    def test_facil_crossover_below_hybrid(self, engine):
        """Without re-layout on its SoC path, FACIL switches to the SoC
        at a shorter prefill than the hybrid baseline."""
        assert engine.facil_crossover() <= engine.prefill_crossover()

    def test_facil_dynamic_helps_tiny_prefill(self, engine):
        fixed = engine.run_query("facil", 1, 8, dynamic_offload=False)
        dynamic = engine.run_query("facil", 1, 8, dynamic_offload=True)
        assert dynamic.ttft_ns <= fixed.ttft_ns


class TestCrossPlatform:
    def test_macbook_diminishes_faster_than_jetson(self):
        """Fig. 13's mechanism: the lower the ridge point, the faster the
        TTFT speedup decays with prefill length."""
        jetson = InferenceEngine(JETSON_ORIN)
        macbook = InferenceEngine(MACBOOK_PRO)

        def decay(engine):
            s8 = (
                engine.run_query("hybrid-static", 8, 8).ttft_ns
                / engine.run_query("facil", 8, 8, dynamic_offload=False).ttft_ns
            )
            s128 = (
                engine.run_query("hybrid-static", 128, 8).ttft_ns
                / engine.run_query("facil", 128, 8, dynamic_offload=False).ttft_ns
            )
            return s128 / s8

        assert decay(macbook) < decay(jetson)
        assert MACBOOK_PRO.soc.ridge_point_flop_per_byte < JETSON_ORIN.soc.ridge_point_flop_per_byte
