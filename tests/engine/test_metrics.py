"""Tests for latency metrics and aggregation."""

import pytest

from repro.engine.metrics import QueryLatency, geomean, speedup


class TestQueryLatency:
    def test_derived_fields(self):
        q = QueryLatency(
            policy="facil", prefill_tokens=64, decode_tokens=32,
            ttft_ns=1e8, ttlt_ns=5e8,
        )
        assert q.ttft_ms == pytest.approx(100.0)
        assert q.ttlt_ms == pytest.approx(500.0)
        assert q.decode_ns == pytest.approx(4e8)


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestSpeedup:
    def test_basic(self):
        assert speedup(300.0, 100.0) == pytest.approx(3.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
