"""Tests for the Fig. 2 / Fig. 3 profiling helpers."""

import pytest

from repro.engine.policies import InferenceEngine
from repro.engine.profiling import (
    decode_time_breakdown,
    gemv_utilization,
    pim_offload_speedup,
)
from repro.platforms.specs import JETSON_ORIN


class TestFig2aBreakdown:
    def test_linear_dominates_decode(self):
        """Fig. 2a: >90 % of the decode step is linear (GEMV) work."""
        engine = InferenceEngine(JETSON_ORIN)
        breakdown = decode_time_breakdown(engine, context_len=64)
        assert breakdown.linear_fraction > 0.9
        assert breakdown.other_ns > 0


class TestFig2bUtilization:
    def test_compute_low_memory_high(self):
        """Fig. 2b: GEMV compute utilization stays below 1 % while memory
        bandwidth utilization approaches the measured ceiling."""
        engine = InferenceEngine(JETSON_ORIN)
        points = gemv_utilization(JETSON_ORIN.soc, engine.model)
        assert len(points) >= 4
        for point in points:
            assert point.compute_utilization < 0.01
            assert point.memory_utilization > 0.5

    def test_distinct_dims_only(self):
        engine = InferenceEngine(JETSON_ORIN)
        points = gemv_utilization(JETSON_ORIN.soc, engine.model)
        shapes = [(p.m, p.k) for p in points]
        assert len(shapes) == len(set(shapes))


class TestFig3Offload:
    def test_pim_beats_ideal_npu(self):
        """Fig. 3's headline: PIM outruns even an NPU with infinite FLOPS
        at 100 % of peak bandwidth (3.32x in the paper)."""
        result = pim_offload_speedup(JETSON_ORIN)
        assert result.pim_vs_ideal_npu > 2.0
        assert result.pim_vs_soc > result.npu_vs_soc > 1.0

    def test_ordering(self):
        result = pim_offload_speedup(JETSON_ORIN)
        assert result.pim_step_ns < result.ideal_npu_step_ns < result.soc_step_ns
