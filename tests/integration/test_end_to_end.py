"""End-to-end integration: the paper's headline claim, demonstrated.

One matrix, stored once through pimalloc (virtual addresses, PIM-optimized
physical placement), is consumed by

* the PIM functional executor reading raw bank contents, and
* the SoC's BLAS-style kernels reading the contiguous virtual view,

with *no re-layout* in between — and both agree with numpy.
"""

import numpy as np
import pytest

from repro.core.controller import CONVENTIONAL_MAP_ID
from repro.core.pimalloc import PimSystem
from repro.core.relayout import relayout_functional
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG, DramOrganization
from repro.pim.chunk import enumerate_placements, verify_placement_invariants
from repro.pim.config import AIM_LPDDR5, aim_config_for
from repro.pim.functional import pim_gemv
from repro.soc.kernels import gemm_reference, soc_gemm, soc_gemv

MEDIUM_ORG = DramOrganization(
    n_channels=4, ranks_per_channel=2, banks_per_rank=16,
    rows_per_bank=512, row_bytes=2048, transfer_bytes=32,
)


class TestRelayoutFreeSharing:
    """The core FACIL demonstration (Fig. 5c vs 5a/5b)."""

    @pytest.mark.parametrize(
        "org,pim,rows,cols",
        [
            (TINY_ORG, None, 48, 700),
            (MEDIUM_ORG, AIM_LPDDR5, 96, 4096),
            (MEDIUM_ORG, AIM_LPDDR5, 24, 14336),  # partitioned rows
        ],
    )
    def test_same_bytes_serve_pim_gemv_and_soc_gemm(self, org, pim, rows, cols, rng):
        pim = pim if pim is not None else aim_config_for(org)
        system = PimSystem.build(org, pim)
        weights = rng.standard_normal((rows, cols)).astype(np.float16)
        x = rng.standard_normal(cols).astype(np.float16)
        activations = rng.standard_normal((cols, 3)).astype(np.float16)

        tensor = system.pimalloc(MatrixConfig(rows=rows, cols=cols))
        tensor.store(weights)

        # placement is PIM-legal
        verify_placement_invariants(enumerate_placements(tensor), tensor)

        # decode path: PIM GEMV on raw banks
        y_pim, _ = pim_gemv(tensor, x)
        np.testing.assert_allclose(
            y_pim, weights.astype(np.float32) @ x.astype(np.float32),
            rtol=2e-2, atol=1e-2,
        )

        # prefill path: SoC GEMM through virtual addresses, zero re-layout
        out = soc_gemm(tensor, activations)
        np.testing.assert_allclose(out, gemm_reference(weights, activations))

        # and the SoC's own GEMV agrees with the PIM result
        y_soc = soc_gemv(tensor, x)
        np.testing.assert_allclose(y_pim, y_soc, rtol=2e-2, atol=1e-2)


class TestBaselineEquivalence:
    def test_relayout_produces_identical_data(self, rng):
        """The hybrid baseline's re-layout is numerically a no-op — it
        exists purely to restore conventional DRAM placement; FACIL makes
        it unnecessary."""
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=256))
        weights = rng.standard_normal((16, 256)).astype(np.float16)
        tensor.store(weights)
        relaid = relayout_functional(tensor)
        direct = system.allocator.read_virtual(tensor.va, tensor.nbytes_padded)
        assert np.array_equal(relaid, direct)


class TestPhysicalLayoutsDiffer:
    def test_pim_and_conventional_place_bytes_differently(self, rng):
        """Same physical frames, different MapIDs: the bank images must
        differ — otherwise the mapping would be doing nothing."""
        system_a = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        system_b = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        data = rng.integers(0, 255, (16, 512)).astype(np.uint16)

        tensor = system_a.pimalloc(MatrixConfig(rows=16, cols=512))
        tensor.store(data)
        va_b = system_b.allocator.malloc(tensor.nbytes_padded, huge=True)
        system_b.allocator.write_virtual(va_b, data.reshape(-1).view(np.uint8))

        bank_a = system_a.memory.bank(0, 0, 0).copy()
        bank_b = system_b.memory.bank(0, 0, 0).copy()
        assert not np.array_equal(bank_a, bank_b)


class TestMultiTensorSystem:
    def test_mixed_mappings_coexist(self, rng):
        """Tensors with different MapIDs plus a conventional allocation
        share one memory system without interference."""
        system = PimSystem.build(MEDIUM_ORG, AIM_LPDDR5)
        shapes = [(16, 1024), (8, 4096), (4, 16384)]
        tensors = []
        for rows, cols in shapes:
            t = system.pimalloc(MatrixConfig(rows=rows, cols=cols))
            data = rng.standard_normal((rows, cols)).astype(np.float16)
            t.store(data)
            tensors.append((t, data))
        # distinct selections produce distinct MapIDs
        map_ids = {t.map_id for t, _ in tensors}
        assert len(map_ids) >= 2

        plain_va = system.allocator.malloc(64 * 1024, huge=True)
        plain = rng.integers(0, 255, 64 * 1024).astype(np.uint8)
        system.allocator.write_virtual(plain_va, plain)

        for t, data in tensors:
            assert np.array_equal(t.load(np.float16), data)
            x = rng.standard_normal(t.matrix.cols).astype(np.float16)
            y, _ = pim_gemv(t, x)
            np.testing.assert_allclose(
                y, data.astype(np.float32) @ x.astype(np.float32),
                rtol=2e-2, atol=1e-2,
            )
        assert np.array_equal(
            system.allocator.read_virtual(plain_va, len(plain)), plain
        )


class TestTlbTransparency:
    def test_accesses_hit_tlb_after_warmup(self, rng):
        """Programmer-transparency has no TLB cost: the MapID rides in
        the existing entries (paper §V-A)."""
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=256))
        tensor.store(rng.standard_normal((16, 256)).astype(np.float16))
        tlb = system.space.mmu.tlb
        hits_before = tlb.stats.hits
        tensor.load(np.float16)
        assert tlb.stats.hits > hits_before
