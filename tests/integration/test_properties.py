"""Property-based integration tests (hypothesis) over the whole stack."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.controller import MemoryController
from repro.core.mapping import conventional_mapping, pim_optimized_mapping
from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.dram.memory import PhysicalMemory
from repro.pim.config import aim_config_for
from repro.pim.functional import pim_gemv

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _fresh_system():
    return PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))


class TestStoreLoadProperty:
    @given(
        rows=st.integers(min_value=1, max_value=64),
        cols=st.integers(min_value=16, max_value=1024),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**_SETTINGS)
    def test_roundtrip_any_shape(self, rows, cols, seed):
        system = _fresh_system()
        tensor = system.pimalloc(MatrixConfig(rows=rows, cols=cols))
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 1 << 16, (rows, cols)).astype(np.uint16)
        tensor.store(data)
        assert np.array_equal(tensor.load(np.uint16), data)


class TestGemvProperty:
    @given(
        rows=st.integers(min_value=1, max_value=32),
        cols=st.integers(min_value=16, max_value=512),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**_SETTINGS)
    def test_pim_gemv_matches_numpy(self, rows, cols, seed):
        system = _fresh_system()
        tensor = system.pimalloc(MatrixConfig(rows=rows, cols=cols))
        rng = np.random.default_rng(seed)
        weights = (rng.standard_normal((rows, cols)) * 0.25).astype(np.float16)
        x = (rng.standard_normal(cols) * 0.25).astype(np.float16)
        tensor.store(weights)
        y, _ = pim_gemv(tensor, x)
        reference = weights.astype(np.float32) @ x.astype(np.float32)
        np.testing.assert_allclose(y, reference, rtol=2e-2, atol=1e-2)


class TestControllerPermutationProperty:
    @given(
        map_seed=st.integers(min_value=0, max_value=5),
        payload=st.binary(min_size=1, max_size=4096),
        offset=st.integers(min_value=0, max_value=1 << 16),
    )
    @settings(**_SETTINGS)
    def test_any_mapping_preserves_bytes(self, map_seed, payload, offset):
        """Whatever MapID routes the bytes, write-then-read through the
        same MapID is the identity."""
        memory = PhysicalMemory(TINY_ORG)
        controller = MemoryController(TINY_ORG, memory=memory)
        pim = aim_config_for(TINY_ORG)
        map_id = controller.table.register(
            pim_optimized_mapping(
                TINY_ORG, pim.chunk_rows, pim.chunk_cols, pim.dtype_bytes,
                map_seed % 3, 21,
            )
        )
        controller.write(offset, payload, map_id)
        assert bytes(controller.read(offset, len(payload), map_id)) == payload

    @given(
        payload=st.binary(min_size=32, max_size=1024),
    )
    @settings(**_SETTINGS)
    def test_cross_mapping_read_is_permutation(self, payload):
        """Mappings permute bytes *within a huge page*: reading the whole
        page through the wrong MapID yields the same byte multiset."""
        memory = PhysicalMemory(TINY_ORG)
        controller = MemoryController(TINY_ORG, memory=memory)
        pim = aim_config_for(TINY_ORG)
        map_id = controller.table.register(
            pim_optimized_mapping(TINY_ORG, 1, pim.chunk_cols, 2, 1, 21)
        )
        controller.write(0, payload, map_id)
        page = controller.read(0, 2 << 20, 0)
        expected = np.zeros(2 << 20, dtype=np.uint8)
        expected[: len(payload)] = np.frombuffer(payload, dtype=np.uint8)
        assert np.array_equal(
            np.bincount(page, minlength=256),
            np.bincount(expected, minlength=256),
        )
