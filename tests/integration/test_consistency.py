"""Consistency checks across independent implementations of the same
quantity — places where two code paths must agree by construction."""

import numpy as np
import pytest

from repro.core.controller import MemoryController
from repro.core.mapping import conventional_mapping, max_map_id, pim_optimized_mapping
from repro.core.selector import MatrixConfig, select_mapping
from repro.engine.policies import InferenceEngine
from repro.llm.layers import total_linear_bytes
from repro.llm.model_config import LLAMA3_8B
from repro.platforms.specs import ALL_PLATFORMS, JETSON_ORIN


class TestFormulaVsConstruction:
    @pytest.mark.parametrize("platform", ALL_PLATFORMS, ids=lambda p: p.name)
    def test_max_map_id_is_constructible_and_tight(self, platform):
        """The §IV-B formula counts the positions available for the
        PU-changing bits; with an AiM chunk consuming the column bits,
        the largest constructible MapID is exactly the formula minus the
        chunk's column-bit count."""
        org = platform.dram.org
        formula = max_map_id(org, 2 << 20)
        expected_max = formula - org.col_bits
        built = -1
        for map_id in range(formula + 2):
            try:
                pim_optimized_mapping(org, 1, 1024, 2, map_id, 21)
                built = map_id
            except ValueError:
                break
        assert built == expected_max


class TestEngineInternalConsistency:
    @pytest.fixture(scope="class")
    def engine(self):
        return InferenceEngine(JETSON_ORIN)

    def test_relayout_matches_linear_bytes(self, engine):
        """The engine's total re-layout cost must equal the model's total
        linear bytes priced by the cost model (read + write at peak)."""
        expected = (
            2.0
            * total_linear_bytes(engine.model)
            / JETSON_ORIN.peak_bw_gbps
        )
        assert engine.relayout_total_ns() == pytest.approx(expected, rel=1e-6)

    def test_breakdowns_sum_to_totals(self, engine):
        for policy in ("soc-only", "hybrid-static", "facil"):
            q = engine.run_query(policy, 32, 16)
            assert sum(q.breakdown.values()) == pytest.approx(q.ttlt_ns, rel=1e-9)

    def test_dynamic_equals_static_at_long_prefill(self, engine):
        """Beyond the crossover, hybrid-dynamic degenerates to the static
        baseline exactly."""
        threshold = engine.prefill_crossover()
        long_prefill = max(threshold * 2, 256)
        static = engine.run_query("hybrid-static", long_prefill, 8)
        dynamic = engine.run_query("hybrid-dynamic", long_prefill, 8)
        assert dynamic.ttft_ns == pytest.approx(static.ttft_ns)

    def test_facil_without_dynamic_is_pure_soc_path(self, engine):
        q = engine.run_query("facil", 4, 8, dynamic_offload=False)
        assert "prefill_soc" in q.breakdown
        assert "prefill_pim" not in q.breakdown


class TestTranslationAgreesWithItself:
    def test_conventional_equals_pim_with_identity_layout(self):
        """A 'PIM' mapping whose chunk equals the whole interleave unit
        of the conventional spec is still a valid permutation — and both
        translate the zero page identically at coordinate zero."""
        org = JETSON_ORIN.dram.org
        conv = conventional_mapping(org, 21)
        pim = pim_optimized_mapping(org, 1, 1024, 2, 1, 21)
        assert conv.decode(0) == pim.decode(0)

    def test_selector_selection_matches_allocated_mapping(self):
        from repro.core.selector import build_selected_mapping, pu_order_for

        for cols in (1024, 4096, 14336):
            matrix = MatrixConfig(64, cols)
            selection = select_mapping(matrix, JETSON_ORIN.dram.org, JETSON_ORIN.pim)
            mapping = build_selected_mapping(
                matrix, JETSON_ORIN.dram.org, JETSON_ORIN.pim
            )
            rebuilt = pim_optimized_mapping(
                JETSON_ORIN.dram.org, 1, 1024, 2, selection.map_id, 21,
                pu_order=pu_order_for(selection),
            )
            assert mapping.fields == rebuilt.fields


class TestControllerTableSharedAcrossTensors:
    def test_distinct_selections_share_one_table(self):
        from repro.core.pimalloc import PimSystem
        from repro.dram.config import DramOrganization
        from repro.pim.config import AIM_LPDDR5

        org = DramOrganization(
            n_channels=4, ranks_per_channel=2, banks_per_rank=16,
            rows_per_bank=512, row_bytes=2048, transfer_bytes=32,
        )
        system = PimSystem.build(org, AIM_LPDDR5, functional=False)
        shapes = [(8, 1024), (8, 2048), (8, 4096), (8, 8192), (8, 16384)]
        ids = [system.pimalloc(MatrixConfig(r, c)).map_id for r, c in shapes]
        # table stays bounded: at most one entry per distinct mapping
        assert len(system.controller.table) == len(set(ids)) + 1
