"""End-to-end transformer parity: a complete decoder forward pass with
every linear weight in pimalloc'ed tensors, checked against pure numpy.
"""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.dram.config import DramOrganization
from repro.llm.model_config import LlmConfig
from repro.llm.tiny_runtime import TINY_LLM, FunctionalLlm, reference_forward
from repro.pim.config import aim_config_for

ORG = DramOrganization(
    n_channels=2, ranks_per_channel=1, banks_per_rank=8,
    rows_per_bank=4096, row_bytes=512, transfer_bytes=32,
)


@pytest.fixture(scope="module")
def model():
    system = PimSystem.build(ORG, aim_config_for(ORG))
    return FunctionalLlm(TINY_LLM, system, seed=3)


PROMPT = [3, 141, 59, 265, 35, 897]


class TestPrefillParity:
    def test_soc_gemm_prefill_matches_reference(self, model):
        logits, _ = model.forward(PROMPT, on_pim=False)
        reference, _ = reference_forward(model, PROMPT)
        np.testing.assert_allclose(logits, reference, rtol=1e-2, atol=5e-3)

    def test_single_token_prefill(self, model):
        logits, _ = model.forward([7], on_pim=False)
        reference, _ = reference_forward(model, [7])
        np.testing.assert_allclose(logits, reference, rtol=1e-2, atol=5e-3)


class TestDecodeParity:
    def test_pim_gemv_decode_matches_reference(self, model):
        _, cache = model.forward(PROMPT, on_pim=False)
        _, ref_cache = reference_forward(model, PROMPT)
        logits, _ = model.forward([42], cache, on_pim=True)
        reference, _ = reference_forward(model, [42], ref_cache)
        np.testing.assert_allclose(logits, reference, rtol=1e-2, atol=5e-3)

    def test_kv_cache_grows(self, model):
        _, cache = model.forward(PROMPT, on_pim=False)
        assert cache.keys[0].shape[0] == len(PROMPT)
        _, cache = model.forward([1], cache, on_pim=True)
        assert cache.keys[0].shape[0] == len(PROMPT) + 1


class TestGeneration:
    def test_greedy_tokens_identical(self, model):
        """Prefill on the SoC path, decode on the PIM path, and the
        token stream is identical to the numpy-only transformer — the
        repository's strongest end-to-end claim."""
        out, reference = model.generate(PROMPT, n_tokens=8)
        assert out == reference
        assert len(out) == 8

    def test_generation_deterministic(self, model):
        a, _ = model.generate(PROMPT, n_tokens=4)
        b, _ = model.generate(PROMPT, n_tokens=4)
        assert a == b


class TestMlpVariant:
    def test_mlp_ffn_model(self):
        cfg = LlmConfig(
            name="tiny-mlp", n_layers=1, d_model=128, n_heads=4,
            n_kv_heads=4, d_ff=256, vocab_size=512, ffn_kind="mlp",
        )
        system = PimSystem.build(ORG, aim_config_for(ORG))
        model = FunctionalLlm(cfg, system, seed=1)
        logits, _ = model.forward([5, 9, 2], on_pim=False)
        reference, _ = reference_forward(model, [5, 9, 2])
        np.testing.assert_allclose(logits, reference, rtol=1e-2, atol=5e-3)
