"""Cross-layer behaviors that no single module test covers."""

import numpy as np
import pytest

from repro.core.controller import MemoryController
from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.dram.memory import PhysicalMemory
from repro.pim.config import aim_config_for


class TestPageBoundaryCrossing:
    """Writes spanning multiple huge pages must route each page through
    its own frame (and potentially its own MapID)."""

    def test_multi_page_tensor_roundtrip(self, rng):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        # 3 MB of data -> two huge pages
        matrix = MatrixConfig(rows=1024, cols=1500)
        tensor = system.pimalloc(matrix)
        area = system.space.areas[tensor.va]
        assert area.n_pages >= 2
        data = rng.integers(0, 1 << 16, (1024, 1500)).astype(np.uint16)
        tensor.store(data)
        assert np.array_equal(tensor.load(np.uint16), data)

    def test_pages_may_be_physically_discontiguous(self, rng):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        # fragment the frame space so consecutive pages land apart
        spacer = system.allocator.malloc(2 << 20, huge=True)
        a = system.pimalloc(MatrixConfig(rows=512, cols=1024))
        system.space.munmap(spacer)
        b = system.pimalloc(MatrixConfig(rows=1024, cols=1500))  # 4 MB -> 2 pages
        frames_b = system.space.areas[b.va].frames
        assert len(frames_b) == 2
        # the freed spacer frame sits below tensor a's frame: the two
        # pages of b are not physically adjacent
        assert frames_b[1] - frames_b[0] != 512
        b_data = rng.standard_normal((1024, 1500)).astype(np.float16)
        b.store(b_data)
        assert np.array_equal(b.load(np.float16), b_data)


class TestControllerUnalignedAccess:
    def test_odd_offsets_and_lengths(self, rng):
        memory = PhysicalMemory(TINY_ORG)
        controller = MemoryController(TINY_ORG, memory=memory)
        payload = bytes(rng.integers(0, 256, 999).astype(np.uint8))
        controller.write(12345, payload)
        assert bytes(controller.read(12345, 999)) == payload

    def test_interleaved_writers_do_not_clobber(self, rng):
        memory = PhysicalMemory(TINY_ORG)
        controller = MemoryController(TINY_ORG, memory=memory)
        a = bytes(rng.integers(0, 256, 100).astype(np.uint8))
        b = bytes(rng.integers(0, 256, 100).astype(np.uint8))
        controller.write(0, a)
        controller.write(100, b)
        assert bytes(controller.read(0, 100)) == a
        assert bytes(controller.read(100, 100)) == b


class TestMmuAccounting:
    def test_tensor_access_counts_walks_once_per_page(self, rng):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        tensor = system.pimalloc(MatrixConfig(rows=64, cols=512))
        tensor.store(rng.standard_normal((64, 512)).astype(np.float16))
        walks_before = system.space.page_table.walks
        tensor.load(np.float16)
        walks = system.space.page_table.walks - walks_before
        # one page -> at most one walk (TLB covers the rest)
        assert walks <= system.space.areas[tensor.va].n_pages


class TestAllocatorReuse:
    def test_free_then_realloc_reuses_frames(self, rng):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        first = system.pimalloc(MatrixConfig(rows=256, cols=1024))
        frames_first = list(system.space.areas[first.va].frames)
        first.free()
        second = system.pimalloc(MatrixConfig(rows=256, cols=1024))
        frames_second = list(system.space.areas[second.va].frames)
        assert frames_first == frames_second  # buddy min-frame policy
        data = rng.standard_normal((256, 1024)).astype(np.float16)
        second.store(data)
        assert np.array_equal(second.load(np.float16), data)

    def test_stale_data_not_visible_through_new_mapping(self, rng):
        """After free+realloc with a different shape/MapID, reads return
        the new tensor's data, not ghosts of the old placement."""
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        old = system.pimalloc(MatrixConfig(rows=64, cols=2048))
        old.store(np.full((64, 2048), 7.0, dtype=np.float16))
        old.free()
        new = system.pimalloc(MatrixConfig(rows=512, cols=200))
        new.store(np.zeros((512, 200), dtype=np.float16))
        assert np.all(new.load(np.float16) == 0)
