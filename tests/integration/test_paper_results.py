"""Shape-level reproduction checks against the paper's reported numbers.

These assert the *qualitative* results — who wins, by roughly what factor,
where the trends point — with bands wide enough to absorb the
simulator-vs-testbed gap documented in EXPERIMENTS.md.
"""

import pytest

from repro.engine.metrics import geomean
from repro.engine.policies import InferenceEngine
from repro.engine.profiling import pim_offload_speedup
from repro.engine.runner import dataset_eval, ttft_speedup_sweep, ttlt_speedup_grid
from repro.llm.datasets import ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE
from repro.platforms.specs import ALL_PLATFORMS, IDEAPAD, JETSON_ORIN


@pytest.fixture(scope="module")
def engines():
    return {p.name: InferenceEngine(p) for p in ALL_PLATFORMS}


class TestFig3:
    def test_pim_vs_ideal_npu_near_paper(self):
        """Paper: 3.32x over the ideal NPU on Jetson/Llama3-8B."""
        result = pim_offload_speedup(JETSON_ORIN)
        assert 2.3 < result.pim_vs_ideal_npu < 4.5


class TestFig6:
    def test_relayout_inflates_jetson_ttft(self, engines):
        """Paper: re-layout inflates TTFT roughly 3x (~100 -> ~300 ms);
        our conservative full-bandwidth re-layout gives ~2.4x."""
        engine = engines["jetson-agx-orin"]
        for prefill in (4, 16, 64):
            facil = engine.run_query("facil", prefill, 8, dynamic_offload=False)
            static = engine.run_query("hybrid-static", prefill, 8)
            ratio = static.ttft_ns / facil.ttft_ns
            assert 2.0 < ratio < 3.5
            # absolute scale: FACIL TTFT ~100 ms on Jetson
            assert 0.05 < facil.ttft_ns / 1e9 < 0.2


class TestFig13:
    PAPER_GEOMEANS = {
        "jetson-agx-orin": 2.89,
        "macbook-pro-m3-max": 2.19,
        "ideapad-slim-5": 1.55,
        "iphone-15-pro": 2.36,
    }

    def test_geomeans_within_band(self, engines):
        for name, engine in engines.items():
            points = ttft_speedup_sweep(engine)
            ours = geomean([p.ttft_speedup for p in points])
            paper = self.PAPER_GEOMEANS[name]
            assert paper * 0.65 < ours < paper * 1.35, (name, ours)

    def test_ideapad_is_the_smallest_speedup(self, engines):
        """§VI-C: the IdeaPad's low bandwidth utilization makes prefill
        slow, shrinking the re-layout share and thus FACIL's gain."""
        geomeans = {
            name: geomean([p.ttft_speedup for p in ttft_speedup_sweep(engine)])
            for name, engine in engines.items()
        }
        assert min(geomeans, key=geomeans.get) == "ideapad-slim-5"

    def test_speedup_diminishes_with_prefill(self, engines):
        for engine in engines.values():
            points = ttft_speedup_sweep(engine, prefill_lengths=(8, 512))
            assert points[0].ttft_speedup >= points[1].ttft_speedup


class TestFig14:
    def test_ttlt_speedup_at_64_64(self, engines):
        """Paper: ~10 % TTLT improvement at decode length 64."""
        for engine in engines.values():
            point = ttlt_speedup_grid(
                engine, prefill_lengths=(64,), decode_lengths=(64,)
            )[0]
            assert 1.04 < point.ttlt_speedup < 1.30

    def test_long_decode_amortizes(self, engines):
        engine = engines["jetson-agx-orin"]
        grid = ttlt_speedup_grid(
            engine, prefill_lengths=(64,), decode_lengths=(16, 512)
        )
        assert grid[0].ttlt_speedup > grid[1].ttlt_speedup
        assert grid[1].ttlt_speedup > 1.0


class TestFig15Fig16:
    @pytest.fixture(scope="class")
    def results(self, engines):
        out = {}
        for dataset in (ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE):
            out[dataset.name] = {
                name: dataset_eval(engine, dataset, n_queries=60)
                for name, engine in engines.items()
            }
        return out

    def test_ttft_speedups_near_paper(self, results):
        """Paper: geomean TTFT speedup 2.37x (Alpaca) and 2.63x (code)."""
        alpaca = geomean(
            [r.ttft_speedup_over("hybrid-static") for r in results["alpaca-like"].values()]
        )
        code = geomean(
            [
                r.ttft_speedup_over("hybrid-static")
                for r in results["humaneval-autocomplete-like"].values()
            ]
        )
        assert 1.8 < alpaca < 3.0
        assert 1.9 < code < 3.3
        assert code > alpaca  # the paper's ordering

    def test_facil_beats_dynamic_baseline(self, results):
        """§VI-C: FACIL outperforms even the optimized dynamic baseline."""
        for per_platform in results.values():
            for r in per_platform.values():
                assert r.ttft_speedup_over("hybrid-dynamic") > 1.1

    def test_ttft_close_to_soc_only(self, results):
        """§VI-C: FACIL achieves TTFT comparable to (or slightly better
        than) SoC-only inference."""
        for per_platform in results.values():
            for r in per_platform.values():
                assert r.ttft_speedup_over("soc-only") > 0.85

    def test_ttlt_crushes_soc_only(self, results):
        """Paper: 3.55x / 3.58x TTLT over SoC-only on the two datasets."""
        for per_platform in results.values():
            for r in per_platform.values():
                assert r.ttlt_speedup_over("soc-only") > 2.0

    def test_ttlt_gain_over_static_modest(self, results):
        """Paper: ~1.20x TTLT over the static baseline."""
        for per_platform in results.values():
            for r in per_platform.values():
                assert 1.02 < r.ttlt_speedup_over("hybrid-static") < 1.9


class TestTable1Shape:
    def test_fragmentation_trends(self):
        from repro.os.loadsim import simulate_weight_load

        model = int(16.2e9)
        low = simulate_weight_load(model, 2.5, 0.05, sim_model_bytes=32 << 20)
        worst = simulate_weight_load(model, 1.1, 0.75, sim_model_bytes=32 << 20)
        assert 1.05 < low.normalized < 1.3  # paper 1.17
        assert 1.6 < worst.normalized < 2.3  # paper 1.90
