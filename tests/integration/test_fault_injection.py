"""Fault injection: corrupt each layer of the stack and verify the
failure surfaces where it should.

These tests double as proof that the functional paths really flow through
the modeled hardware — a bit flipped in a DRAM bank *must* reach the PIM
result; a wrong MapID in a PTE *must* scramble the SoC's view.
"""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.os.page_table import PageFaultError
from repro.pim.config import aim_config_for
from repro.pim.functional import pim_gemv


@pytest.fixture
def system():
    return PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))


class TestBankBitFlips:
    def test_flipped_weight_bit_reaches_pim_result(self, system, rng):
        """PIM GEMV reads raw bank rows: a single corrupted byte in a
        bank must change the output (no hidden numpy shortcut)."""
        matrix = MatrixConfig(rows=16, cols=256)
        tensor = system.pimalloc(matrix)
        weights = rng.standard_normal((16, 256)).astype(np.float16)
        x = np.ones(256, dtype=np.float16)
        tensor.store(weights)
        clean, _ = pim_gemv(tensor, x)

        # flip the top bit of one byte in some bank holding tensor data
        memory = system.memory
        key = next(iter(memory.touched_banks()))
        bank = memory.bank(*key)
        nz = np.argwhere(bank != 0)
        r, c = nz[len(nz) // 2]
        bank[r, c] ^= 0x80

        dirty, _ = pim_gemv(tensor, x)
        assert not np.array_equal(clean, dirty)

    def test_flip_reaches_soc_view_too(self, system, rng):
        """The SoC's virtual view reads the same physical bytes."""
        matrix = MatrixConfig(rows=16, cols=256)
        tensor = system.pimalloc(matrix)
        weights = rng.standard_normal((16, 256)).astype(np.float16)
        tensor.store(weights)
        key = next(iter(system.memory.touched_banks()))
        bank = system.memory.bank(*key)
        nz = np.argwhere(bank != 0)
        r, c = nz[0]
        bank[r, c] ^= 0xFF
        assert not np.array_equal(tensor.load(np.float16), weights)


class TestMapIdCorruption:
    def test_wrong_pte_map_id_scrambles_reads(self, system, rng):
        """If the PTE's MapID were lost (the failure FACIL's PTE encoding
        prevents), the controller would apply the wrong permutation and
        the SoC would read garbage — exactly the paper's motivation for
        carrying the MapID through translation."""
        from repro.os.page_table import PAGE_SHIFT, PteFlags

        matrix = MatrixConfig(rows=16, cols=256)
        tensor = system.pimalloc(matrix)
        weights = rng.standard_normal((16, 256)).astype(np.float16)
        tensor.store(weights)

        # remap the page with MapID 0 (conventional), same frame
        area = system.space.areas[tensor.va]
        table = system.space.page_table
        table.unmap_page(tensor.va, huge=True)
        system.space.mmu.tlb.flush()
        table.map_page(
            tensor.va,
            area.frames[0] << PAGE_SHIFT,
            huge=True,
            map_id=0,
            flags=PteFlags.PRESENT | PteFlags.WRITABLE,
        )
        scrambled = tensor.load(np.float16)
        assert not np.array_equal(scrambled, weights)

    def test_stale_tlb_would_serve_old_map_id(self, system, rng):
        """Without invalidation the TLB keeps serving the old MapID —
        the reason munmap shoots down entries."""
        matrix = MatrixConfig(rows=8, cols=128)
        tensor = system.pimalloc(matrix)
        tensor.store(rng.standard_normal((8, 128)).astype(np.float16))
        translation = system.space.mmu.translate(tensor.va)
        assert translation.map_id == tensor.map_id
        # cached entry survives page-table mutation until invalidated
        system.space.page_table.unmap_page(tensor.va, huge=True)
        still_cached = system.space.mmu.translate(tensor.va)
        assert still_cached.map_id == tensor.map_id
        system.space.mmu.tlb.invalidate(tensor.va, 21)
        with pytest.raises(PageFaultError):
            system.space.mmu.translate(tensor.va)


class TestUseAfterFree:
    def test_freed_tensor_faults(self, system, rng):
        matrix = MatrixConfig(rows=8, cols=128)
        tensor = system.pimalloc(matrix)
        tensor.store(rng.standard_normal((8, 128)).astype(np.float16))
        tensor.free()
        with pytest.raises(PageFaultError):
            tensor.load(np.float16)

    def test_double_free_rejected(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=8, cols=128))
        tensor.free()
        with pytest.raises(ValueError):
            tensor.free()
