"""Tests for the Table I model-load simulation."""

import pytest

from repro.os.loadsim import (
    LoadCostModel,
    build_fragmented_arena,
    simulate_weight_load,
)

MODEL = int(16.2e9)  # Llama3-8B FP16, as in the paper
SIM = 32 << 20  # small scaled model for fast tests


class TestArenaBuilder:
    @pytest.mark.parametrize("target", [0.1, 0.45, 0.75])
    def test_hits_fmfi_band(self, target):
        arena, fmfi = build_fragmented_arena(
            total_pages=16384, used_pages=8192, target_fmfi=target
        )
        assert abs(fmfi - target) < 0.12
        assert arena.used_pages == 8192

    def test_rejects_full_arena(self):
        with pytest.raises(ValueError):
            build_fragmented_arena(1024, 1024, 0.5)

    def test_low_fmfi_leaves_free_blocks(self):
        arena, _ = build_fragmented_arena(16384, 8192, 0.05)
        assert arena.free_blocks(9) >= 10


class TestBaseline:
    def test_baseline_matches_paper_scale(self):
        """The paper's implied 4 KB baseline is ~8.8 s for 16.2 GB."""
        out = simulate_weight_load(MODEL, 2.5, 0.1, use_huge_pages=False)
        assert 8.0 < out.seconds < 9.5
        assert out.normalized == 1.0
        assert out.pages_moved == 0

    def test_free_ratio_must_exceed_one(self):
        with pytest.raises(ValueError):
            simulate_weight_load(MODEL, 0.9, 0.1)


class TestHugePageOverheads:
    def test_low_fmfi_fixed_overhead(self):
        """Table I row 1: ~1.16x regardless of free memory."""
        out = simulate_weight_load(MODEL, 2.5, 0.05, sim_model_bytes=SIM)
        assert 1.05 < out.normalized < 1.30
        assert out.pages_moved == 0

    def test_high_fmfi_tight_memory_worst_case(self):
        """Table I corner: FMFI 0.7-0.8 at 1.1x free -> ~1.9x."""
        out = simulate_weight_load(MODEL, 1.1, 0.75, sim_model_bytes=SIM)
        assert 1.6 < out.normalized < 2.3
        assert out.pages_moved > 0

    def test_monotone_in_fmfi(self):
        times = [
            simulate_weight_load(MODEL, 1.5, fmfi, sim_model_bytes=SIM).seconds
            for fmfi in (0.05, 0.45, 0.75)
        ]
        assert times[0] <= times[1] <= times[2]

    def test_monotone_in_memory_pressure(self):
        times = [
            simulate_weight_load(MODEL, ratio, 0.75, sim_model_bytes=SIM).seconds
            for ratio in (2.5, 1.5, 1.1)
        ]
        assert times[0] <= times[1] <= times[2]

    def test_one_time_cost_amortizes(self):
        """§V-C: the worst-case overhead stays within ~2x of baseline —
        a one-time cost amortized over many inferences."""
        out = simulate_weight_load(MODEL, 1.1, 0.78, sim_model_bytes=SIM)
        assert out.normalized < 2.5


class TestCostModel:
    def test_custom_costs_scale(self):
        slow_ssd = LoadCostModel(ssd_gbps=0.5)
        out = simulate_weight_load(
            MODEL, 2.0, 0.05, costs=slow_ssd, sim_model_bytes=SIM
        )
        assert out.baseline_seconds > 30
