"""Tests for the buddy allocator, FMFI, and compaction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.os.buddy import BuddyAllocator, OutOfMemoryError


class TestInitialState:
    def test_all_memory_in_max_order_blocks(self):
        buddy = BuddyAllocator(2048, max_order=9)
        assert buddy.free_blocks(9) == 4
        assert buddy.free_pages == 2048
        assert buddy.used_pages == 0

    def test_tail_pages_split(self):
        buddy = BuddyAllocator(512 + 96, max_order=9)
        assert buddy.free_pages == 608
        assert buddy.free_blocks(9) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BuddyAllocator(0)


class TestAllocFree:
    def test_alloc_splits(self):
        buddy = BuddyAllocator(512, max_order=9)
        frame = buddy.alloc(0)
        assert frame == 0
        assert buddy.free_pages == 511
        # one free block at every order below max
        for order in range(9):
            assert buddy.free_blocks(order) == 1

    def test_alignment(self):
        buddy = BuddyAllocator(2048, max_order=9)
        for order in (0, 3, 5, 9):
            frame = buddy.alloc(order)
            assert frame % (1 << order) == 0

    def test_free_merges_back(self):
        buddy = BuddyAllocator(512, max_order=9)
        frames = [buddy.alloc(0) for _ in range(8)]
        for frame in frames:
            buddy.free(frame)
        assert buddy.free_blocks(9) == 1
        assert buddy.free_pages == 512

    def test_double_free_rejected(self):
        buddy = BuddyAllocator(64, max_order=4)
        frame = buddy.alloc(0)
        buddy.free(frame)
        with pytest.raises(ValueError):
            buddy.free(frame)

    def test_oom(self):
        buddy = BuddyAllocator(16, max_order=4)
        buddy.alloc(4)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(0)

    def test_bad_order(self):
        buddy = BuddyAllocator(16, max_order=4)
        with pytest.raises(ValueError):
            buddy.alloc(5)

    @given(st.lists(st.integers(min_value=0, max_value=4), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_all_restores_state(self, orders):
        """Property: allocating any feasible sequence then freeing it all
        restores a fully-coalesced arena."""
        buddy = BuddyAllocator(1024, max_order=9)
        frames = []
        for order in orders:
            try:
                frames.append(buddy.alloc(order))
            except OutOfMemoryError:
                break
        for frame in frames:
            buddy.free(frame)
        assert buddy.free_pages == 1024
        assert buddy.free_blocks(9) == 2


class TestFmfi:
    def test_pristine_arena_is_zero(self):
        buddy = BuddyAllocator(2048, max_order=9)
        assert buddy.fmfi(9) == 0.0

    def test_fully_shattered_is_near_one(self):
        buddy = BuddyAllocator(1024, max_order=9)
        # pin one page in every 512-page window
        buddy.fragment_to(0.99, order=9, rng=random.Random(1))
        assert buddy.fmfi(9) > 0.9

    def test_fragment_to_mid_band(self):
        buddy = BuddyAllocator(4096, max_order=9)
        achieved = buddy.fragment_to(0.5, order=9, rng=random.Random(2))
        assert 0.3 <= achieved <= 0.7

    def test_exhausted_arena(self):
        buddy = BuddyAllocator(16, max_order=4)
        buddy.alloc(4)
        assert buddy.fmfi(4) == 1.0


class TestFragmentToEdges:
    def test_max_order_arena_without_max_blocks(self):
        """An arena too small to hold any max-order block is already at
        FMFI 1.0 for that order; fragment_to pins nothing."""
        buddy = BuddyAllocator(96, max_order=9)
        assert buddy.fmfi(9) == 1.0
        achieved = buddy.fragment_to(0.99, order=9, rng=random.Random(0))
        assert achieved == 1.0
        assert buddy.pinned == []

    def test_fully_fragmented_pool_stops_without_candidates(self):
        """Once every free block is pinned down to singles, the injector
        runs out of candidates and returns instead of spinning."""
        buddy = BuddyAllocator(16, max_order=4)
        while True:
            try:
                frame = buddy.alloc(0)
            except OutOfMemoryError:
                break
            buddy.pinned.append(frame)
        achieved = buddy.fragment_to(0.99, order=4, rng=random.Random(0))
        assert achieved == 1.0  # no free memory left at all
        assert buddy.free_pages == 0

    def test_target_zero_is_a_noop(self):
        buddy = BuddyAllocator(1024, max_order=9)
        achieved = buddy.fragment_to(0.0, order=9, rng=random.Random(0))
        assert achieved == 0.0
        assert buddy.pinned == []
        assert buddy.free_pages == 1024


class TestCompactionEdges:
    def test_max_order_block_minted_from_fully_fragmented_pool(self):
        """Every window shattered by movable pins: compaction at
        order == max_order must still reconstitute a block."""
        buddy = BuddyAllocator(1024, max_order=9)
        buddy.fragment_to(0.99, order=9, rng=random.Random(11))
        assert buddy.free_blocks(9) == 0
        result = buddy.alloc_with_compaction(9)
        assert result.frame % 512 == 0
        assert result.pages_moved > 0
        assert buddy.allocated[result.frame] == 9
        # moved pins were rehomed, not lost
        assert buddy.used_pages == 512 + len(buddy.pinned) + sum(
            1 for f, o in buddy.allocated.items()
            if o == 0 and f not in buddy.pinned
        )

    def test_evacuation_fails_when_residents_cannot_be_rehomed(self):
        """Enough pages are free in total, but the displaced order-2
        resident has no aligned home outside the window: the evacuation
        itself runs out of memory."""
        buddy = BuddyAllocator(32, max_order=4)
        resident = buddy.alloc(2)  # pages 0-3, inside window [0, 16)
        assert resident == 0
        # shatter window [16, 32): pin the first page of every order-2
        # group so no 4-page block survives there
        for frame in (16, 20, 24, 28):
            buddy._reserve_range(frame, 1)
            buddy.allocated[frame] = 0
        assert buddy.free_pages == 24  # >= the 16 the block needs
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_with_compaction(4)

    def test_compaction_with_insufficient_free_pages_names_the_gap(self):
        buddy = BuddyAllocator(32, max_order=4)
        buddy.alloc(4)
        buddy.alloc(3)
        with pytest.raises(OutOfMemoryError, match="pages free"):
            buddy.alloc_with_compaction(4)


class TestReserveRange:
    def test_reserves_exact_pages(self):
        buddy = BuddyAllocator(64, max_order=4)
        buddy._reserve_range(10, 6)
        assert buddy.free_pages == 58
        # pages 10..15 are gone: allocating everything never returns them
        taken = set()
        while True:
            try:
                taken.add(buddy.alloc(0))
            except OutOfMemoryError:
                break
        assert taken.isdisjoint(range(10, 16))

    def test_rejects_overlap_with_allocated(self):
        buddy = BuddyAllocator(64, max_order=4)
        frame = buddy.alloc(0)
        with pytest.raises(OutOfMemoryError):
            buddy._reserve_range(frame, 4)


class TestCompaction:
    def test_no_compaction_when_block_free(self):
        buddy = BuddyAllocator(1024, max_order=9)
        result = buddy.alloc_with_compaction(9)
        assert result.pages_moved == 0

    def test_compaction_mints_block(self):
        buddy = BuddyAllocator(1024, max_order=9)
        # shatter both windows with movable singles
        buddy.fragment_to(0.99, order=9, rng=random.Random(3))
        assert buddy.free_blocks(9) == 0
        result = buddy.alloc_with_compaction(9)
        assert result.pages_moved > 0
        assert result.frame % 512 == 0
        assert buddy.allocated[result.frame] == 9

    def test_compaction_moves_cheapest_window(self):
        buddy = BuddyAllocator(1024, max_order=9)
        # window 0: 100 singles, window 1: 1 single
        for page in range(100):
            buddy._reserve_range(page * 2, 1)
            buddy.allocated[page * 2] = 0
        buddy._reserve_range(512, 1)
        buddy.allocated[512] = 0
        result = buddy.alloc_with_compaction(9)
        assert result.frame == 512
        assert result.pages_moved == 1

    def test_raises_when_not_enough_free(self):
        buddy = BuddyAllocator(512, max_order=9)
        buddy.alloc(8)  # half the arena used
        buddy.alloc(8)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_with_compaction(9)


class TestFromAllocated:
    def test_complement_coalesces(self):
        buddy = BuddyAllocator.from_allocated(1024, {0}, max_order=9)
        assert buddy.free_pages == 1023
        assert buddy.free_blocks(9) == 1  # the untouched window

    def test_empty_allocation_fully_free(self):
        buddy = BuddyAllocator.from_allocated(1024, set(), max_order=9)
        assert buddy.free_blocks(9) == 2

    def test_matches_incremental_construction(self):
        incremental = BuddyAllocator(256, max_order=4)
        taken = {incremental.alloc(0) for _ in range(5)}
        direct = BuddyAllocator.from_allocated(256, taken, max_order=4)
        for order in range(5):
            assert direct.free_blocks(order) == incremental.free_blocks(order)
