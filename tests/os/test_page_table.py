"""Tests for the radix page table and the MapID-bearing PTE (Fig. 11)."""

import pytest

from repro.os.page_table import (
    HUGE_SHIFT,
    MAP_ID_BITS,
    PAGE_SHIFT,
    PageFaultError,
    PageTable,
    PteFlags,
    pack_pte,
    unpack_pte,
)


class TestPtePacking:
    def test_roundtrip_base_page(self):
        pte = pack_pte(0x1234, PteFlags.PRESENT | PteFlags.WRITABLE)
        leaf = unpack_pte(pte)
        assert leaf.pa == 0x1234 << PAGE_SHIFT
        assert leaf.page_shift == PAGE_SHIFT
        assert leaf.map_id == 0

    def test_roundtrip_huge_page_with_map_id(self):
        pfn = 0x200  # 2 MB aligned (low 9 bits clear)
        pte = pack_pte(pfn, PteFlags.PRESENT | PteFlags.HUGE, map_id=11)
        leaf = unpack_pte(pte)
        assert leaf.pa == pfn << PAGE_SHIFT
        assert leaf.is_huge
        assert leaf.map_id == 11

    def test_map_id_lives_in_unused_bits(self):
        """The MapID occupies PTE bits [12,16) — inside the PFN field but
        necessarily zero for a 2 MB page, so no extra storage is used."""
        pfn = 0x200
        base = pack_pte(pfn, PteFlags.PRESENT | PteFlags.HUGE, map_id=0)
        tagged = pack_pte(pfn, PteFlags.PRESENT | PteFlags.HUGE, map_id=0xF)
        assert tagged ^ base == 0xF << PAGE_SHIFT

    def test_map_id_width_bounded(self):
        """The paper: even 14 extra mappings need only 4 bits."""
        assert MAP_ID_BITS == 4
        with pytest.raises(ValueError, match="bits"):
            pack_pte(0x200, PteFlags.HUGE, map_id=16)

    def test_map_id_on_base_page_rejected(self):
        with pytest.raises(ValueError, match="huge"):
            pack_pte(0x1234, PteFlags.PRESENT, map_id=1)

    def test_unaligned_huge_pfn_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            pack_pte(0x201, PteFlags.HUGE, map_id=0)

    def test_pfn_range_check(self):
        with pytest.raises(ValueError):
            pack_pte(-1, PteFlags.PRESENT)
        with pytest.raises(ValueError):
            pack_pte(1 << 41, PteFlags.PRESENT)


class TestPageTableBasePages:
    def test_map_walk(self):
        table = PageTable()
        table.map_page(0x7000_0000_0000, 0x4000, huge=False)
        leaf = table.walk(0x7000_0000_0123)
        assert leaf.pa == 0x4000
        assert leaf.page_shift == PAGE_SHIFT

    def test_unmapped_faults(self):
        table = PageTable()
        with pytest.raises(PageFaultError):
            table.walk(0x1234_5000)

    def test_double_map_rejected(self):
        table = PageTable()
        table.map_page(0x1000, 0x2000)
        with pytest.raises(ValueError, match="already mapped"):
            table.map_page(0x1000, 0x3000)

    def test_unmap(self):
        table = PageTable()
        table.map_page(0x1000, 0x2000)
        table.unmap_page(0x1000)
        with pytest.raises(PageFaultError):
            table.walk(0x1000)

    def test_unmap_missing_faults(self):
        table = PageTable()
        with pytest.raises(PageFaultError):
            table.unmap_page(0x1000)


class TestPageTableHugePages:
    def test_huge_leaf_covers_2mb(self):
        table = PageTable()
        table.map_page(0x4000_0000, 0x20_0000, huge=True, map_id=3)
        for offset in (0, 0x1000, 0x1F_FFFF):
            leaf = table.walk(0x4000_0000 + offset)
            assert leaf.pa == 0x20_0000
            assert leaf.map_id == 3

    def test_misaligned_huge_rejected(self):
        table = PageTable()
        with pytest.raises(ValueError, match="aligned"):
            table.map_page(0x4000_1000, 0x20_0000, huge=True)

    def test_huge_and_base_coexist(self):
        table = PageTable()
        table.map_page(0x4000_0000, 0x20_0000, huge=True, map_id=1)
        table.map_page(0x5000_0000, 0x1000, huge=False)
        assert table.walk(0x4000_0000).is_huge
        assert not table.walk(0x5000_0000).is_huge

    def test_base_page_under_huge_mapping_rejected(self):
        table = PageTable()
        table.map_page(0x4000_0000, 0x20_0000, huge=True)
        with pytest.raises(ValueError, match="overlaps"):
            table.map_page(0x4000_1000, 0x9000, huge=False)

    def test_walk_counter(self):
        table = PageTable()
        table.map_page(0x1000, 0x2000)
        table.walk(0x1000)
        table.walk(0x1000)
        assert table.walks == 2
