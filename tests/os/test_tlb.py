"""Tests for the set-associative TLB."""

import pytest

from repro.os.page_table import HUGE_SHIFT, PAGE_SHIFT, WalkResult
from repro.os.tlb import Tlb


def _leaf(pa, huge=False, map_id=0):
    return WalkResult(
        pa=pa,
        page_shift=HUGE_SHIFT if huge else PAGE_SHIFT,
        map_id=map_id,
        flags=1,
    )


class TestBasics:
    def test_miss_then_hit(self):
        tlb = Tlb()
        assert tlb.lookup(0x1234) is None
        tlb.fill(0x1234, _leaf(0x8000))
        assert tlb.lookup(0x1234).pa == 0x8000
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Tlb(n_sets=0)

    def test_map_id_travels_with_entry(self):
        tlb = Tlb()
        tlb.fill(0x40_0000, _leaf(0x20_0000, huge=True, map_id=5))
        assert tlb.lookup(0x40_0000).map_id == 5


class TestHugePageReach:
    def test_one_entry_covers_whole_huge_page(self):
        tlb = Tlb()
        tlb.fill(0x40_0000, _leaf(0x20_0000, huge=True))
        for offset in (0, 0x1000, 0x10_0000, 0x1F_F000):
            assert tlb.lookup(0x40_0000 + offset) is not None

    def test_base_entry_does_not_cover_neighbours(self):
        tlb = Tlb()
        tlb.fill(0x1000, _leaf(0x8000))
        assert tlb.lookup(0x2000) is None


class TestEviction:
    def test_lru_eviction_within_set(self):
        tlb = Tlb(n_sets=1, ways=2)
        tlb.fill(0x1000, _leaf(0x1000))
        tlb.fill(0x2000, _leaf(0x2000))
        tlb.lookup(0x1000)  # touch first -> second becomes LRU
        tlb.fill(0x3000, _leaf(0x3000))  # evicts 0x2000
        assert tlb.lookup(0x1000) is not None
        assert tlb.lookup(0x2000) is None
        assert tlb.stats.evictions == 1

    def test_refill_updates_in_place(self):
        tlb = Tlb(n_sets=1, ways=1)
        tlb.fill(0x1000, _leaf(0x1000))
        tlb.fill(0x1000, _leaf(0x9000))
        assert tlb.lookup(0x1000).pa == 0x9000
        assert tlb.stats.evictions == 0


class TestInvalidate:
    def test_invalidate_specific(self):
        tlb = Tlb()
        tlb.fill(0x1000, _leaf(0x1000))
        tlb.invalidate(0x1000, PAGE_SHIFT)
        assert tlb.lookup(0x1000) is None

    def test_flush(self):
        tlb = Tlb()
        tlb.fill(0x1000, _leaf(0x1000))
        tlb.fill(0x40_0000, _leaf(0x20_0000, huge=True))
        tlb.flush()
        assert tlb.lookup(0x1000) is None
        assert tlb.lookup(0x40_0000) is None


class TestStats:
    def test_hit_rate(self):
        tlb = Tlb()
        tlb.fill(0x1000, _leaf(0x1000))
        tlb.lookup(0x1000)
        tlb.lookup(0x1000)
        tlb.lookup(0x9_9000)
        assert tlb.stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_stats(self):
        assert Tlb().stats.hit_rate == 0.0
