"""Tests for the MMU (translation + range splitting)."""

import pytest

from repro.os.mmu import Mmu
from repro.os.page_table import PageFaultError, PageTable, PteFlags
from repro.os.tlb import Tlb


def _mmu_with_pages():
    table = PageTable()
    # two adjacent 4 KB pages, physically contiguous
    table.map_page(0x1000, 0x8000)
    table.map_page(0x2000, 0x9000)
    # a third page, physically discontiguous
    table.map_page(0x3000, 0x20000)
    # one huge page with a MapID
    table.map_page(0x40_0000, 0x20_0000, huge=True, map_id=2)
    return Mmu(table)


class TestTranslate:
    def test_offset_preserved(self):
        mmu = _mmu_with_pages()
        t = mmu.translate(0x1234)
        assert t.pa == 0x8234
        assert t.map_id == 0

    def test_huge_page_map_id(self):
        mmu = _mmu_with_pages()
        t = mmu.translate(0x40_1234)
        assert t.pa == 0x20_1234
        assert t.map_id == 2

    def test_fault_propagates(self):
        mmu = _mmu_with_pages()
        with pytest.raises(PageFaultError):
            mmu.translate(0x9999_0000)

    def test_tlb_caches_walks(self):
        mmu = _mmu_with_pages()
        mmu.translate(0x1010)
        walks_before = mmu.page_table.walks
        mmu.translate(0x1020)
        assert mmu.page_table.walks == walks_before  # TLB hit, no walk


class TestTranslateRange:
    def test_merges_contiguous_pages(self):
        mmu = _mmu_with_pages()
        runs = mmu.translate_range(0x1800, 0x1000)
        assert runs == [(0x8800, 0x1000, 0)]

    def test_splits_discontiguous(self):
        mmu = _mmu_with_pages()
        runs = mmu.translate_range(0x2800, 0x1000)
        assert runs == [(0x9800, 0x800, 0), (0x20000, 0x800, 0)]

    def test_within_one_page(self):
        mmu = _mmu_with_pages()
        runs = mmu.translate_range(0x1100, 0x200)
        assert runs == [(0x8100, 0x200, 0)]

    def test_carries_map_id(self):
        mmu = _mmu_with_pages()
        runs = mmu.translate_range(0x40_0000, 0x1000)
        assert runs == [(0x20_0000, 0x1000, 2)]

    def test_huge_page_single_run(self):
        mmu = _mmu_with_pages()
        runs = mmu.translate_range(0x40_0000, 2 << 20)
        assert len(runs) == 1
        assert runs[0][1] == 2 << 20
