"""Property-based tests for the fragmentation arena builder."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.os.buddy import BuddyAllocator
from repro.os.loadsim import build_fragmented_arena

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestArenaProperties:
    @given(
        windows=st.integers(min_value=8, max_value=48),
        used_fraction=st.floats(min_value=0.1, max_value=0.7),
        target=st.floats(min_value=0.05, max_value=0.9),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(**_SETTINGS)
    def test_invariants(self, windows, used_fraction, target, seed):
        total = windows * 512
        used = int(total * used_fraction)
        arena, fmfi = build_fragmented_arena(total, used, target, seed=seed)
        # exact accounting
        assert arena.used_pages == used
        assert arena.free_pages == total - used
        # achieved FMFI is a valid index
        assert 0.0 <= fmfi <= 1.0
        # free lists are internally consistent: buddy merge of everything
        # allocated restores a whole arena
        for frame in sorted(arena.allocated):
            arena.free(frame)
        assert arena.free_pages == total

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(**_SETTINGS)
    def test_extremes_reachable(self, seed):
        total, used = 32 * 512, 8 * 512
        _, low = build_fragmented_arena(total, used, 0.02, seed=seed)
        _, high = build_fragmented_arena(total, used, 0.98, seed=seed)
        assert low < 0.35
        assert high > 0.65


class TestCompactionUnderArena:
    @given(
        target=st.floats(min_value=0.3, max_value=0.9),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(**_SETTINGS)
    def test_allocation_always_succeeds_with_enough_free(self, target, seed):
        """As long as >=512 free pages exist, compaction can always mint
        a huge page, whatever the fragmentation."""
        arena, _ = build_fragmented_arena(24 * 512, 10 * 512, target, seed=seed)
        minted = 0
        while arena.free_pages >= 512:
            result = arena.alloc_with_compaction(9)
            assert result.frame % 512 == 0
            minted += 1
            if minted >= 8:
                break
        assert minted >= 1
