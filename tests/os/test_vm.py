"""Tests for the mmap-style address space with the MapID extension."""

import pytest

from repro.os.buddy import BuddyAllocator, OutOfMemoryError
from repro.os.page_table import HUGE_SHIFT, PAGE_SHIFT, PteFlags
from repro.os.vm import AddressSpace


def _space(pages=4096):
    return AddressSpace(BuddyAllocator(pages, max_order=9))


class TestMmapBasics:
    def test_base_pages(self):
        space = _space()
        va = space.mmap(3 * 4096)
        area = space.areas[va]
        assert area.page_shift == PAGE_SHIFT
        assert area.n_pages == 3
        assert space.mmu.translate(va).map_id == 0

    def test_huge_pages(self):
        space = _space()
        va = space.mmap(2 << 20, huge=True)
        area = space.areas[va]
        assert area.page_shift == HUGE_SHIFT
        assert va % (2 << 20) == 0

    def test_length_rounds_up(self):
        space = _space()
        va = space.mmap(5000)
        assert space.areas[va].length == 8192

    def test_map_id_requires_huge(self):
        """The paper's extended mmap() only accepts a MapID for huge
        pages (§V-A)."""
        space = _space()
        with pytest.raises(ValueError, match="huge"):
            space.mmap(4096, huge=False, map_id=1)

    def test_map_id_lands_in_pte(self):
        space = _space()
        va = space.mmap(2 << 20, huge=True, map_id=3)
        t = space.mmu.translate(va + 0x1234)
        assert t.map_id == 3
        assert t.flags & PteFlags.PIM

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            _space().mmap(0)

    def test_vas_do_not_overlap(self):
        space = _space()
        a = space.mmap(4096)
        b = space.mmap(2 << 20, huge=True)
        c = space.mmap(4096)
        assert a + 4096 <= b
        assert b + (2 << 20) <= c


class TestMunmap:
    def test_frees_frames_and_ptes(self):
        space = _space()
        free_before = space.buddy.free_pages
        va = space.mmap(2 << 20, huge=True, map_id=1)
        space.munmap(va)
        assert space.buddy.free_pages == free_before
        with pytest.raises(Exception):
            space.mmu.translate(va)

    def test_unknown_va_rejected(self):
        with pytest.raises(ValueError):
            _space().munmap(0xDEAD_0000)

    def test_tlb_invalidated(self):
        space = _space()
        va = space.mmap(4096)
        space.mmu.translate(va)  # fill TLB
        space.munmap(va)
        assert space.mmu.tlb.lookup(va) is None


class TestRollback:
    def test_partial_failure_releases_everything(self):
        """Asking for more huge pages than the arena holds must not leak
        frames or PTEs."""
        space = _space(pages=1024)  # two 2 MB windows
        free_before = space.buddy.free_pages
        with pytest.raises(OutOfMemoryError):
            space.mmap(3 * (2 << 20), huge=True, compact=False)
        assert space.buddy.free_pages == free_before
        assert not space.areas


class TestCompactionAccounting:
    def test_moves_counted(self):
        space = _space(pages=1024)
        # fragment: pin a movable page in each window
        import random

        space.buddy.fragment_to(0.99, order=9, rng=random.Random(0))
        va = space.mmap(2 << 20, huge=True, compact=True)
        assert space.compaction_moves > 0
        assert va in space.areas


class TestAreaOf:
    def test_lookup_by_interior_address(self):
        space = _space()
        va = space.mmap(3 * 4096)
        assert space.area_of(va + 5000).va == va

    def test_missing(self):
        with pytest.raises(KeyError):
            _space().area_of(0x1)
