"""Repo lint rules: each RL rule on synthetic sources, waivers, and the
live tree staying clean."""

from repro.analysis.repolint import lint_source, lint_tree


def _rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestRl001BareAssert:
    def test_fires_in_library_code(self):
        findings = lint_source("assert x > 0\n", "repro/core/thing.py")
        assert _rule_ids(findings) == ["RL001"]

    def test_waiver_suppresses(self):
        source = "assert x > 0  # lint: waive[RL001]\n"
        assert lint_source(source, "repro/core/thing.py") == []


class TestRl002BitProbe:
    def test_fires_outside_bitfield(self):
        findings = lint_source("y = (x >> 3) & 1\n", "repro/dram/x.py")
        assert _rule_ids(findings) == ["RL002"]

    def test_reversed_operands(self):
        findings = lint_source("y = 1 & (x >> k)\n", "repro/dram/x.py")
        assert _rule_ids(findings) == ["RL002"]

    def test_allowed_in_bitfield_module(self):
        assert lint_source("y = (x >> 3) & 1\n",
                           "repro/core/bitfield.py") == []

    def test_dtype_stable_mask_allowed(self):
        source = "y = (x >> np.uint8(3)) & np.uint8(1)\n"
        assert lint_source(source, "repro/dram/x.py") == []

    def test_wide_mask_allowed(self):
        assert lint_source("y = (x >> 3) & 0xFF\n", "repro/dram/x.py") == []


class TestRl003FrozenDataclass:
    SOURCE = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class M:\n"
        "    x: int\n"
    )

    def test_fires_in_mapping_module(self):
        findings = lint_source(self.SOURCE, "repro/core/mapping.py")
        assert _rule_ids(findings) == ["RL003"]

    def test_frozen_ok(self):
        source = self.SOURCE.replace("@dataclass", "@dataclass(frozen=True)")
        assert lint_source(source, "repro/core/mapping.py") == []

    def test_other_modules_unconstrained(self):
        assert lint_source(self.SOURCE, "repro/engine/runner.py") == []


class TestRl004Print:
    def test_fires_in_library_code(self):
        findings = lint_source("print('hi')\n", "repro/core/mapping.py")
        assert _rule_ids(findings) == ["RL004"]

    def test_allowed_in_cli(self):
        assert lint_source("print('hi')\n", "repro/cli.py") == []


class TestLiveTree:
    def test_src_tree_is_clean(self):
        findings, checked = lint_tree()
        assert checked > 50  # the whole package was scanned
        assert findings == [], [f.render() for f in findings]

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "repro/core/x.py")
        assert len(findings) == 1
        assert "does not parse" in findings[0].message
