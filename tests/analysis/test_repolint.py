"""Repo lint rules: each RL rule on synthetic sources, waivers, and the
live tree staying clean."""

from repro.analysis.repolint import lint_source, lint_tree


def _rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestRl001BareAssert:
    def test_fires_in_library_code(self):
        findings = lint_source("assert x > 0\n", "repro/core/thing.py")
        assert _rule_ids(findings) == ["RL001"]

    def test_waiver_suppresses(self):
        source = "assert x > 0  # lint: waive[RL001]\n"
        assert lint_source(source, "repro/core/thing.py") == []


class TestRl002BitProbe:
    def test_fires_outside_bitfield(self):
        findings = lint_source("y = (x >> 3) & 1\n", "repro/dram/x.py")
        assert _rule_ids(findings) == ["RL002"]

    def test_reversed_operands(self):
        findings = lint_source("y = 1 & (x >> k)\n", "repro/dram/x.py")
        assert _rule_ids(findings) == ["RL002"]

    def test_allowed_in_bitfield_module(self):
        assert lint_source("y = (x >> 3) & 1\n",
                           "repro/core/bitfield.py") == []

    def test_dtype_stable_mask_allowed(self):
        source = "y = (x >> np.uint8(3)) & np.uint8(1)\n"
        assert lint_source(source, "repro/dram/x.py") == []

    def test_wide_mask_allowed(self):
        assert lint_source("y = (x >> 3) & 0xFF\n", "repro/dram/x.py") == []


class TestRl003FrozenDataclass:
    SOURCE = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class M:\n"
        "    x: int\n"
    )

    def test_fires_in_mapping_module(self):
        findings = lint_source(self.SOURCE, "repro/core/mapping.py")
        assert _rule_ids(findings) == ["RL003"]

    def test_frozen_ok(self):
        source = self.SOURCE.replace("@dataclass", "@dataclass(frozen=True)")
        assert lint_source(source, "repro/core/mapping.py") == []

    def test_other_modules_unconstrained(self):
        assert lint_source(self.SOURCE, "repro/engine/runner.py") == []


class TestRl004Print:
    def test_fires_in_library_code(self):
        findings = lint_source("print('hi')\n", "repro/core/mapping.py")
        assert _rule_ids(findings) == ["RL004"]

    def test_allowed_in_cli(self):
        assert lint_source("print('hi')\n", "repro/cli.py") == []


class TestRl005GlobalRandomness:
    def test_fires_on_global_random_call(self):
        findings = lint_source("x = random.randint(0, 3)\n", "repro/core/x.py")
        assert _rule_ids(findings) == ["RL005"]

    def test_fires_on_legacy_numpy_random(self):
        findings = lint_source("x = np.random.rand(4)\n", "repro/core/x.py")
        assert _rule_ids(findings) == ["RL005"]
        findings = lint_source("x = numpy.random.normal()\n", "repro/core/x.py")
        assert _rule_ids(findings) == ["RL005"]

    def test_generator_constructors_allowed(self):
        source = (
            "rng = random.Random(7)\n"
            "srng = random.SystemRandom()\n"
            "nrng = np.random.default_rng(7)\n"
            "x = rng.random()\n"
        )
        assert lint_source(source, "repro/core/x.py") == []

    def test_bound_generator_methods_allowed(self):
        # draws through an injected generator are the sanctioned form
        assert lint_source("x = self.rng.randint(0, 3)\n", "repro/core/x.py") == []

    def test_waiver_suppresses(self):
        source = "x = random.random()  # lint: waive[RL005] -- seeding demo\n"
        assert lint_source(source, "repro/core/x.py") == []


class TestRl006WallClock:
    def test_time_time_fires(self):
        findings = lint_source("t = time.time()\n", "repro/serving/x.py")
        assert _rule_ids(findings) == ["RL006"]

    def test_perf_counter_variants_fire(self):
        for fn in ("perf_counter", "perf_counter_ns",
                   "monotonic", "monotonic_ns", "time_ns"):
            findings = lint_source(f"t = time.{fn}()\n", "repro/dram/x.py")
            assert _rule_ids(findings) == ["RL006"], fn

    def test_argless_datetime_now_fires(self):
        for call in ("datetime.now()", "datetime.utcnow()",
                     "datetime.datetime.now()"):
            findings = lint_source(f"t = {call}\n", "repro/core/x.py")
            assert _rule_ids(findings) == ["RL006"], call

    def test_tz_aware_now_allowed(self):
        # an explicit timezone argument marks a deliberate wall-time use
        source = "t = datetime.now(timezone.utc)\n"
        assert lint_source(source, "repro/core/x.py") == []

    def test_allowed_in_telemetry_package(self):
        source = "t = time.perf_counter()\n"
        assert lint_source(source, "repro/telemetry/tracer.py") == []

    def test_other_time_attrs_allowed(self):
        assert lint_source("t = time.sleep(1)\n", "repro/core/x.py") == []

    def test_waiver_suppresses(self):
        source = "t = time.time()  # lint: waive[RL006] -- boot banner\n"
        assert lint_source(source, "repro/cli.py") == []


class TestLiveTree:
    def test_src_tree_is_clean(self):
        findings, checked = lint_tree()
        assert checked > 50  # the whole package was scanned
        assert findings == [], [f.render() for f in findings]

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "repro/core/x.py")
        assert len(findings) == 1
        assert "does not parse" in findings[0].message
