"""Shared fixtures for the analysis test suite."""

import pytest

from repro.engine.policies import InferenceEngine
from repro.platforms.specs import IPHONE_15_PRO
from repro.serving.workload import Request


@pytest.fixture(scope="session")
def iphone_engine():
    """One engine on the smallest model (cheap to construct, cached)."""
    return InferenceEngine(IPHONE_15_PRO)


@pytest.fixture
def make_requests():
    """A small deterministic workload builder for replay tests."""

    def build(n):
        return [
            Request(
                req_id=i,
                tenant="chat",
                policy="facil",
                arrival_ns=i * 50e6,
                prefill_tokens=32 + 16 * (i % 3),
                decode_tokens=8,
                deadline_ns=i * 50e6 + 10_000e6,
            )
            for i in range(n)
        ]

    return build
