"""Journal-discipline sanitizer: each JD rule on synthetic sources, the
seeded-mutation acceptance tests on scratch copies of the real modules,
the RL007-RL010 determinism rules, and the live tree staying clean."""

import ast

from repro.analysis.repolint import (
    default_source_root,
    lint_determinism_source,
    lint_determinism_tree,
)
from repro.analysis.sanitize import (
    JOURNAL_MODULES,
    _declared_sites,
    run_sanitize,
    sanitize_sources,
    sanitize_tree,
)


def _rule_ids(findings):
    return sorted({f.rule_id for f in findings})


def _jd(source, rel="repro/core/toy.py"):
    return sanitize_sources({rel: source})


DECL = (
    'TOY_CRASH_SITES = (\n'
    '    "op:begin",\n'
    '    "op:done",\n'
    ')\n'
)

GOOD = DECL + (
    "class Thing:\n"
    "    def op(self):\n"
    '        txn = self.journal.begin("op")\n'
    '        self.journal.checkpoint("op:begin")\n'
    "        self.space.mmap(4096)\n"
    '        self.journal.step(txn, "mapped")\n'
    '        self.journal.checkpoint("op:done")\n'
    "        self.table.register(m)\n"
    "        self.journal.commit(txn)\n"
)


class TestJournalDiscipline:
    def test_disciplined_function_is_clean(self):
        assert _jd(GOOD) == []

    def test_jd001_mutation_outside_transaction(self):
        source = (
            "class T:\n"
            "    def op(self):\n"
            "        self.space.mmap(4096)\n"
        )
        findings = _jd(source)
        assert _rule_ids(findings) == ["JD001"]
        assert findings[0].location == "repro/core/toy.py:3"
        assert "op()" in findings[0].detail

    def test_jd001_attribute_write(self):
        source = (
            "class T:\n"
            "    def op(self, block):\n"
            "        block.ref_count = 1\n"
        )
        assert _rule_ids(_jd(source)) == ["JD001"]

    def test_jd001_waiver_suppresses(self):
        source = (
            "class T:\n"
            "    def op(self):\n"
            "        self.space.mmap(4096)  # lint: waive[JD001]\n"
        )
        assert _jd(source) == []

    def test_jd002_two_mutations_no_record_between(self):
        source = (
            "class T:\n"
            "    def op(self):\n"
            '        txn = self.journal.begin("op")\n'
            "        self.space.mmap(4096)\n"
            "        self.space.munmap(va)\n"
            "        self.journal.commit(txn)\n"
        )
        findings = _jd(source)
        assert _rule_ids(findings) == ["JD002"]
        assert findings[0].location.endswith(":5")

    def test_jd002_attr_run_counts_as_one_step(self):
        # consecutive attribute-state writes model one logical
        # activation; a *call* mutation after them still needs a record
        source = (
            "class T:\n"
            "    def op(self, block):\n"
            '        txn = self.journal.begin("op")\n'
            "        block.state = 1\n"
            "        block.ref_count = 1\n"
            "        block.generation += 1\n"
            "        self.journal.commit(txn)\n"
        )
        assert _jd(source) == []

    def test_jd002_call_after_attr_run_still_fires(self):
        source = (
            "class T:\n"
            "    def op(self, block):\n"
            '        txn = self.journal.begin("op")\n'
            "        block.state = 1\n"
            "        self._free.append(block)\n"
            "        self.journal.commit(txn)\n"
        )
        assert _rule_ids(_jd(source)) == ["JD002"]

    def test_except_handler_bodies_are_exempt(self):
        source = (
            "class T:\n"
            "    def op(self):\n"
            '        txn = self.journal.begin("op")\n'
            "        try:\n"
            '            self.journal.step(txn, "go")\n'
            "            self.space.mmap(4096)\n"
            "        except RuntimeError:\n"
            "            self.space.munmap(va)\n"
            "            self.table.release(m)\n"
            "        self.journal.commit(txn)\n"
        )
        assert _jd(source) == []

    def test_jd003_undeclared_literal_site(self):
        source = DECL + (
            "class T:\n"
            "    def op(self):\n"
            '        txn = self.journal.begin("op")\n'
            '        self.journal.checkpoint("op:unknown")\n'
            "        self.journal.commit(txn)\n"
        )
        findings = _jd(source)
        assert "JD003" in _rule_ids(findings)
        assert any("op:unknown" in f.message for f in findings)

    def test_jd003_non_literal_site_outside_forwarder(self):
        source = (
            "class T:\n"
            "    def op(self, site):\n"
            "        self.journal.checkpoint(site)\n"
        )
        assert _rule_ids(_jd(source)) == ["JD003"]

    def test_non_literal_site_allowed_in_forwarder(self):
        source = (
            "class T:\n"
            "    def _checkpoint(self, site):\n"
            "        self.journal.checkpoint(site)\n"
        )
        assert _jd(source) == []

    def test_jd004_declared_site_never_checkpointed(self):
        findings = _jd(DECL)
        assert _rule_ids(findings) == ["JD004"]
        assert len(findings) == 2  # both sites dead
        assert any("op:begin" in f.message for f in findings)

    def test_jd004_spans_files(self):
        # declaration in one module, discharging checkpoint in another
        checkpoints = (
            "class T:\n"
            "    def op(self):\n"
            '        txn = self.journal.begin("op")\n'
            '        self.journal.checkpoint("op:begin")\n'
            '        self.journal.checkpoint("op:done")\n'
            "        self.journal.commit(txn)\n"
        )
        findings = sanitize_sources({
            "repro/core/decl.py": DECL,
            "repro/core/impl.py": checkpoints,
        })
        assert findings == []

    def test_jd005_begin_without_commit(self):
        source = (
            "class T:\n"
            "    def op(self):\n"
            '        txn = self.journal.begin("op")\n'
            '        self.journal.step(txn, "go")\n'
            "        self.space.mmap(4096)\n"
        )
        findings = _jd(source)
        assert _rule_ids(findings) == ["JD005"]
        assert "op()" in findings[0].message

    def test_syntax_error_reported_not_raised(self):
        findings = _jd("def broken(:\n")
        assert _rule_ids(findings) == ["JD001"]
        assert "does not parse" in findings[0].message


def _real_sources():
    root = default_source_root()
    return {
        rel: (root / rel).read_text(encoding="utf-8")
        for rel in JOURNAL_MODULES
    }


class TestSeededMutations:
    """The ISSUE acceptance tests: mutate a scratch copy of the real
    sources and prove the sanitizer notices."""

    def test_real_modules_are_clean(self):
        assert sanitize_sources(_real_sources()) == []

    def test_removing_a_checkpoint_fires_jd004(self):
        sources = _real_sources()
        needle = 'self._jcheckpoint("alloc:registered")'
        assert needle in sources["repro/core/pimalloc.py"]
        sources["repro/core/pimalloc.py"] = sources[
            "repro/core/pimalloc.py"
        ].replace(needle, "pass")
        findings = sanitize_sources(sources)
        assert any(
            f.rule_id == "JD004" and "alloc:registered" in f.message
            for f in findings
        )

    def test_removing_a_begin_fires_jd001(self):
        sources = _real_sources()
        needle = 'txn = self.journal.begin("kvalloc")'
        assert needle in sources["repro/kvcache/pool.py"]
        sources["repro/kvcache/pool.py"] = sources[
            "repro/kvcache/pool.py"
        ].replace(needle, "txn = None")
        findings = sanitize_sources(sources)
        assert any(f.rule_id == "JD001" for f in findings)

    def test_removing_a_site_declaration_fires_jd003(self):
        sources = _real_sources()
        needle = '"alloc:registered",'
        assert needle in sources["repro/core/journal.py"]
        sources["repro/core/journal.py"] = sources[
            "repro/core/journal.py"
        ].replace(needle, "")
        findings = sanitize_sources(sources)
        assert any(
            f.rule_id == "JD003" and "alloc:registered" in f.message
            for f in findings
        )


DET = lint_determinism_source


class TestRl007SetIteration:
    def test_set_literal_in_for(self):
        source = "for x in {1, 2}:\n    f(x)\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL007"]

    def test_set_call_in_comprehension(self):
        source = "ys = [f(x) for x in set(xs)]\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL007"]

    def test_set_algebra(self):
        source = "for x in {1} | other:\n    f(x)\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL007"]

    def test_sorted_wrapper_allowed(self):
        source = "for x in sorted({1, 2}):\n    f(x)\n"
        assert DET(source, "repro/core/x.py") == []

    def test_dict_views_allowed(self):
        source = "for k in d.keys():\n    f(k)\n"
        assert DET(source, "repro/core/x.py") == []

    def test_waiver_suppresses(self):
        source = "for x in {1, 2}:  # lint: waive[RL007]\n    f(x)\n"
        assert DET(source, "repro/core/x.py") == []


class TestRl008HashOrderKey:
    def test_sorted_key_id(self):
        source = "ys = sorted(xs, key=id)\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL008"]

    def test_sort_key_lambda_hash(self):
        source = "xs.sort(key=lambda v: hash(v))\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL008"]

    def test_value_key_allowed(self):
        assert DET("ys = sorted(xs, key=str)\n", "repro/core/x.py") == []


class TestRl009UnseededRng:
    def test_argless_random(self):
        source = "r = random.Random()\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL009"]

    def test_argless_default_rng(self):
        source = "r = np.random.default_rng()\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL009"]

    def test_system_random_even_seeded(self):
        source = "r = random.SystemRandom(5)\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL009"]

    def test_seeded_rng_allowed(self):
        assert DET("r = random.Random(7)\n", "repro/core/x.py") == []
        assert DET("r = default_rng(3)\n", "repro/core/x.py") == []


class TestRl010FsAndEnvOrder:
    def test_listdir(self):
        source = "names = os.listdir(p)\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL010"]

    def test_sorted_listdir_allowed(self):
        assert DET("names = sorted(os.listdir(p))\n",
                   "repro/core/x.py") == []

    def test_rglob(self):
        source = "for p in root.rglob('*.py'):\n    f(p)\n"
        assert _rule_ids(DET(source, "repro/core/x.py")) == ["RL010"]

    def test_environ_reads(self):
        assert _rule_ids(DET("v = os.environ['X']\n",
                             "repro/core/x.py")) == ["RL010"]
        assert _rule_ids(DET("v = os.environ.get('X')\n",
                             "repro/core/x.py")) == ["RL010"]
        assert _rule_ids(DET("v = os.getenv('X')\n",
                             "repro/core/x.py")) == ["RL010"]

    def test_cli_module_exempt(self):
        assert DET("v = os.environ.get('X')\n", "repro/cli.py") == []


class TestLiveTree:
    def test_journaled_modules_exist_and_scan(self):
        findings, checked = sanitize_tree()
        assert findings == []
        assert checked == len(JOURNAL_MODULES)

    def test_determinism_sweep_is_clean(self):
        findings, checked = lint_determinism_tree()
        assert findings == []
        assert checked > 50  # the whole src/ tree, not just one package

    def test_run_sanitize_combines_both(self):
        findings, checked = run_sanitize()
        assert findings == []
        assert checked > len(JOURNAL_MODULES)

    def test_declared_sites_match_live_registries(self):
        """The parsed declarations the sanitizer checks against must be
        exactly the live tuples the campaigns import."""
        from repro.core.journal import CRASH_SITES, MIGRATE_CRASH_SITES
        from repro.kvcache.pool import KV_CRASH_SITES

        root = default_source_root()
        parsed = set()
        for rel in JOURNAL_MODULES:
            tree = ast.parse((root / rel).read_text(encoding="utf-8"))
            parsed |= {site for site, _, _ in _declared_sites(tree)}
        live = set(CRASH_SITES) | set(MIGRATE_CRASH_SITES) | set(KV_CRASH_SITES)
        assert parsed == live
