"""The ``repro-facil analyze`` subcommand: formats, pass selection, and
exit codes (zero on clean, nonzero on findings)."""

import json

import pytest

from repro.cli import main


class TestAnalyzeCommand:
    def test_repolint_pass_exits_zero(self, capsys):
        assert main(["analyze", "--pass", "repolint"]) == 0
        out = capsys.readouterr().out
        assert "repolint" in out and "PASS" in out

    def test_json_format_is_sarif(self, capsys):
        assert main(["analyze", "--pass", "repolint",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == (
            "repro-facil-analyze"
        )

    def test_seeded_bad_trace_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text(
            "# channel rank bank row col R/W [tag]\n"
            "0 0 99 5 0 R\n"
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--pass", "tracelint", "--trace", str(bad)])
        assert excinfo.value.code == 1
        assert "TL004" in capsys.readouterr().out

    def test_waive_turns_failure_into_pass(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 0 99 5 0 R\n")
        assert main([
            "analyze", "--pass", "tracelint", "--trace", str(bad),
            "--waive", "TL004",
        ]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_mapverify_pass_clean(self, capsys):
        assert main(["analyze", "--pass", "mapverify"]) == 0
        out = capsys.readouterr().out
        assert "mapverify" in out and "PASS" in out

    def test_sanitize_pass_clean(self, capsys):
        assert main(["analyze", "--pass", "sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitize" in out and "PASS" in out

    def test_sarif_format_synonym(self, capsys):
        assert main(["analyze", "--pass", "sanitize",
                     "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert "sanitize" in doc["runs"][0]["properties"]["passes"]


class TestExitCodeSemantics:
    def test_unknown_pass_is_rejected_by_the_cli(self, capsys):
        """A typo'd pass name must error, never silently analyze
        nothing and exit zero."""
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--pass", "bogus"])
        assert excinfo.value.code != 0
        assert "bogus" in capsys.readouterr().err

    def test_unknown_pass_is_rejected_by_the_api(self):
        from repro.analysis import run_all

        with pytest.raises(ValueError, match="unknown analysis pass"):
            run_all(passes=("repolint", "bogus"))

    def test_waived_findings_do_not_fail_but_stay_visible(
            self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 0 99 5 0 R\n")
        assert main([
            "analyze", "--pass", "tracelint", "--trace", str(bad),
            "--waive", "TL004",
        ]) == 0
        out = capsys.readouterr().out
        assert "waived TL004" in out
        assert "waived]" in out  # the verdict line counts them

    def test_waived_findings_suppressed_in_sarif(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 0 99 5 0 R\n")
        assert main([
            "analyze", "--pass", "tracelint", "--trace", str(bad),
            "--waive", "TL004", "--format", "sarif",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        suppressed = [
            r for r in doc["runs"][0]["results"] if "suppressions" in r
        ]
        assert suppressed
        assert all(r["ruleId"] == "TL004" for r in suppressed)
