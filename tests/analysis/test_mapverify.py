"""Mapping verifier: GF(2) machinery, seeded-bug fixtures for every MV
rule, and the platform sweep (exhaustive version under ``-m analysis``)."""

import numpy as np
import pytest

from repro.analysis.mapverify import (
    chunk_max_map_id,
    gf2_rank,
    mapping_matrix,
    unsafe_mapping,
    verify_kv_blocks,
    verify_mapping,
    verify_pim_mapping,
    verify_platform,
    verify_selection,
)
from repro.core.bitfield import ilog2
from repro.core.mapping import conventional_mapping, pim_optimized_mapping
from repro.core.selector import MatrixConfig
from repro.dram.config import DramOrganization, lpddr5_organization
from repro.pim.config import AIM_LPDDR5, HBM_PIM, PimConfig
from repro.platforms.specs import ALL_PLATFORMS

ORG = lpddr5_organization(256, 64)
N_BITS = 21


def _rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestGf2:
    def test_identity_full_rank(self):
        assert gf2_rank(np.eye(8, dtype=np.uint8)) == 8

    def test_duplicate_row_rank_deficient(self):
        m = np.eye(8, dtype=np.uint8)
        m[3] = m[2]
        assert gf2_rank(m) == 7

    def test_xor_dependency_detected(self):
        # row3 = row0 ^ row1 is invisible to real-valued rank heuristics
        m = np.eye(4, dtype=np.uint8)
        m[3] = m[0] ^ m[1]
        assert gf2_rank(m) == 3

    def test_mapping_matrix_is_permutation(self):
        mapping = conventional_mapping(ORG, N_BITS)
        matrix = mapping_matrix(mapping)
        assert matrix.shape == (N_BITS, N_BITS)
        assert (matrix.sum(axis=0) == 1).all()
        assert (matrix.sum(axis=1) == 1).all()
        assert gf2_rank(matrix) == N_BITS


@pytest.fixture(scope="module")
def pim_mapping():
    return pim_optimized_mapping(
        ORG, chunk_rows=1, chunk_cols=1024, dtype_bytes=2,
        map_id=1, n_bits=N_BITS,
    )


class TestCleanMappings:
    def test_conventional_clean(self):
        assert verify_mapping(conventional_mapping(ORG, N_BITS), ORG) == []

    def test_pim_clean(self, pim_mapping):
        assert verify_pim_mapping(pim_mapping, ORG, AIM_LPDDR5) == []


class TestSeededBugs:
    """Each fixture plants one defect the constructor would reject and
    asserts the verifier finds it with the right rule ID."""

    def test_duplicated_bit_mv001(self, pim_mapping):
        fields = dict(pim_mapping.fields)
        col = list(fields["col"])
        col[0] = col[1]  # PA bit feeds two outputs, another is dropped
        fields["col"] = tuple(col)
        findings = verify_mapping(unsafe_mapping("dup", N_BITS, fields))
        assert "MV001" in _rule_ids(findings)

    def test_out_of_range_bit_mv002(self, pim_mapping):
        fields = dict(pim_mapping.fields)
        col = list(fields["col"])
        col[0] = N_BITS + 5  # output driven by no in-page PA bit
        fields["col"] = tuple(col)
        findings = verify_mapping(unsafe_mapping("oob", N_BITS, fields))
        assert "MV002" in _rule_ids(findings)

    def test_wrong_field_widths_mv003(self, pim_mapping):
        fields = dict(pim_mapping.fields)
        # Move a column bit into the bank field: widths disagree with the
        # organization even though the permutation stays intact.
        fields["bank"] = fields["bank"] + (fields["col"][-1],)
        fields["col"] = fields["col"][:-1]
        findings = verify_mapping(unsafe_mapping("widths", N_BITS, fields), ORG)
        assert "MV003" in _rule_ids(findings)

    def test_pu_bit_inside_chunk_mv004(self, pim_mapping):
        fields = dict(pim_mapping.fields)
        bank = list(fields["bank"])
        col = list(fields["col"])
        bank[0], col[0] = col[0], bank[0]  # bank bit into the chunk span
        fields["bank"] = tuple(bank)
        fields["col"] = tuple(col)
        findings = verify_pim_mapping(
            unsafe_mapping("puin", N_BITS, fields), ORG, AIM_LPDDR5
        )
        assert "MV004" in _rule_ids(findings)

    def test_shuffled_chunk_mv005(self, pim_mapping):
        fields = dict(pim_mapping.fields)
        col = list(fields["col"])
        col[0], col[1] = col[1], col[0]  # chunk walk order broken
        fields["col"] = tuple(col)
        findings = verify_pim_mapping(
            unsafe_mapping("shuffled", N_BITS, fields), ORG, AIM_LPDDR5
        )
        assert "MV005" in _rule_ids(findings)

    def test_multirow_chunk_crossing_rows_mv006(self):
        # HBM-PIM-style chunk (8 rows x 128 cols) on an organization with
        # room: swap the chunk's row-select col bit (directly below the
        # PU bits) with a row bit above them — still a permutation, but
        # the chunk's rows now land in different DRAM rows.
        org = DramOrganization(
            n_channels=2, ranks_per_channel=1, banks_per_rank=8,
            rows_per_bank=1 << 14, row_bytes=2048, transfer_bytes=32,
        )
        pim = HBM_PIM
        mapping = pim_optimized_mapping(
            org, pim.chunk_rows, pim.chunk_cols, pim.dtype_bytes,
            map_id=0, n_bits=N_BITS,
        )
        assert verify_pim_mapping(mapping, org, pim) == []
        pu_low = min(
            mapping.positions("channel")
            + mapping.positions("rank")
            + mapping.positions("bank")
        )
        select_bit = pu_low - 1  # chunk's row-select column bit
        fields = {name: list(pos) for name, pos in mapping.fields.items()}
        row_hi = max(fields["row"])
        ci = fields["col"].index(select_bit)
        ri = fields["row"].index(row_hi)
        fields["col"][ci], fields["row"][ri] = row_hi, select_bit
        broken = unsafe_mapping(
            "xrow", N_BITS, {k: tuple(v) for k, v in fields.items()}
        )
        findings = verify_pim_mapping(broken, org, pim)
        assert "MV006" in _rule_ids(findings)

    def test_pte_budget_mv007(self):
        findings = verify_selection(
            MatrixConfig(rows=64, cols=4096), ORG, AIM_LPDDR5,
            pte_map_id_bits=0,  # a zero-bit PTE budget fits only MapID 0
        )
        assert "MV007" in _rule_ids(findings)


class TestPlatformSweep:
    def test_chunk_ceiling_below_theoretical(self):
        from repro.core.mapping import max_map_id

        ceiling = chunk_max_map_id(ORG, AIM_LPDDR5, N_BITS)
        assert 0 <= ceiling <= max_map_id(ORG, 2 << 20)

    def test_default_sweep_clean_on_first_platform(self):
        spec = ALL_PLATFORMS[0]
        conv = conventional_mapping(spec.dram.org, N_BITS)
        findings, checked = verify_platform(
            spec.name, spec.dram.org, spec.pim, conv
        )
        assert findings == []
        assert checked > 2

    @pytest.mark.analysis
    @pytest.mark.parametrize(
        "spec", ALL_PLATFORMS, ids=[s.name for s in ALL_PLATFORMS]
    )
    def test_exhaustive_sweep(self, spec):
        """Every platform x every chunk-admissible MapID x both PU
        orders x a wide matrix battery — slow, so ``-m analysis``."""
        org = spec.dram.org
        battery = [
            (rows, cols)
            for rows in (1, 8, 256, 4096)
            for cols in (64, 1024, 4096, 11008, 65536, 1 << 18)
        ]
        conv = conventional_mapping(org, N_BITS)
        findings, checked = verify_platform(
            spec.name, org, spec.pim, conv, matrices=battery
        )
        assert findings == []
        assert checked >= len(battery)


class TestKvBlockRules:
    """MV010/MV011: paged KV blocks must be whole, chunk-aligned runs."""

    CRB = AIM_LPDDR5.chunk_row_bytes  # 2048

    def test_aligned_blocks_clean(self, pim_mapping):
        findings = verify_kv_blocks(
            pim_mapping, ORG, AIM_LPDDR5, block_bytes=8 * self.CRB
        )
        assert findings == []

    def test_misaligned_block_size_mv010(self, pim_mapping):
        findings = verify_kv_blocks(
            pim_mapping, ORG, AIM_LPDDR5, block_bytes=3 * self.CRB // 2
        )
        assert _rule_ids(findings) == ["MV010"]

    def test_misaligned_base_offset_mv010(self, pim_mapping):
        findings = verify_kv_blocks(
            pim_mapping, ORG, AIM_LPDDR5,
            block_bytes=2 * self.CRB, base_offset=64,
        )
        assert _rule_ids(findings) == ["MV010"]

    def test_conventional_mapping_straddles_mv011(self):
        # the conventional map interleaves channels at transfer
        # granularity: a chunk-row window cannot stay on one PU
        conv = conventional_mapping(ORG, N_BITS)
        findings = verify_kv_blocks(
            conv, ORG, AIM_LPDDR5, block_bytes=2 * self.CRB
        )
        assert "MV011" in _rule_ids(findings)

    def test_platform_sweep_includes_kv_battery(self):
        from repro.analysis.mapverify import KV_BLOCK_BATTERY

        spec = ALL_PLATFORMS[0]
        conv = conventional_mapping(spec.dram.org, N_BITS)
        _, baseline = verify_platform(
            spec.name, spec.dram.org, spec.pim, conv, matrices=[(64, 1024)]
        )
        assert baseline > len(KV_BLOCK_BATTERY)


class TestSelectorVerification:
    def test_selection_verifies_clean(self):
        for rows, cols in ((1, 64), (4096, 4096), (4, 1 << 18)):
            findings = verify_selection(
                MatrixConfig(rows=rows, cols=cols), ORG, AIM_LPDDR5
            )
            assert findings == [], (rows, cols)

    def test_budget_headroom_documented(self):
        # The 4 spare PTE bits hold MapIDs 0..15; every platform's
        # theoretical maximum must fit (paper: 4 bits suffice for 2 MB
        # pages on all evaluated organizations).
        from repro.core.mapping import max_map_id
        from repro.os.page_table import MAP_ID_BITS

        for spec in ALL_PLATFORMS:
            assert max_map_id(spec.dram.org, 2 << 20) < (1 << MAP_ID_BITS)
