"""Replay-diff oracle: barrier cadence, divergence localization, the
RD rules on synthetic runs, and the serving runtime staying identical
with a recorder attached."""

import random

import pytest

from repro.analysis.replay import (
    BarrierRecorder,
    replay_diff,
    state_hash,
)
from repro.serving import ServingConfig, ServingRuntime


class TestStateHash:
    def test_stable_across_calls(self):
        assert state_hash((1, "a", 2.5)) == state_hash((1, "a", 2.5))

    def test_sensitive_to_value(self):
        assert state_hash([1, 2]) != state_hash([1, 3])

    def test_short_hex(self):
        digest = state_hash("x")
        assert len(digest) == 16
        int(digest, 16)


class TestBarrierRecorder:
    def test_snaps_once_per_epoch(self):
        rec = BarrierRecorder(every=16)
        snapped = [pos for pos in range(40)
                   if rec.observe(pos, lambda: {"n": 1})]
        assert snapped == [0, 16, 32]
        assert [b.label for b in rec.barriers] == [
            "epoch-0", "epoch-1", "epoch-2"
        ]

    def test_state_fn_is_lazy(self):
        rec = BarrierRecorder(every=8)
        calls = []

        def state():
            calls.append(1)
            return {"n": 1}

        for pos in range(24):
            rec.observe(pos, state)
        assert len(calls) == 3  # hashed only at epoch crossings

    def test_components_sorted_by_name(self):
        rec = BarrierRecorder()
        barrier = rec.snap("final", 9, {"z": 1, "a": 2})
        assert [name for name, _ in barrier.components] == ["a", "z"]

    def test_rejects_nonpositive_cadence(self):
        with pytest.raises(ValueError, match="positive"):
            BarrierRecorder(every=0)


def _deterministic_run(rec):
    rng = random.Random(7)
    acc = []
    for i in range(40):
        acc.append(rng.random())
        rec.observe(i, lambda: {"rng": rng.getstate(), "n": len(acc)})
    rec.snap("final", 40, {"sum": sum(acc)})
    return sum(acc)


class TestReplayDiff:
    def test_deterministic_run_is_ok(self):
        report = replay_diff(_deterministic_run, every=8,
                             final_hash=state_hash)
        assert report.ok
        assert report.barriers == 6  # epochs 0..4 plus the final snap
        assert report.result == pytest.approx(_deterministic_run(
            BarrierRecorder()))
        assert "OK (6 barriers identical)" in report.render()

    def test_rd001_names_first_diverging_barrier(self):
        calls = {"n": 0}

        def run(rec):
            calls["n"] += 1
            salt = calls["n"]
            for i in range(40):
                # runs agree until position 20, then drift apart
                v = i if i < 20 else i * salt
                rec.observe(i, lambda v=v: {"v": v})
            return salt

        report = replay_diff(run, every=8)
        assert not report.ok
        assert [f.rule_id for f in report.findings] == ["RD001"]
        finding = report.findings[0]
        # positions 0,8,16 agree; 24 is the first diverging barrier
        assert "barrier 3" in finding.message
        assert "position 24" in finding.message
        assert "v" in finding.message
        assert "DIVERGED" in report.render()

    def test_rd001_on_barrier_count_mismatch(self):
        calls = {"n": 0}

        def run(rec):
            calls["n"] += 1
            rec.snap("only", 0, {"fixed": 1})
            if calls["n"] == 2:
                rec.snap("extra", 1, {"fixed": 1})
            return None

        report = replay_diff(run)
        assert [f.rule_id for f in report.findings] == ["RD001"]
        assert "barrier counts" in report.findings[0].message

    def test_rd002_when_barriers_too_coarse(self):
        calls = {"n": 0}

        def run(rec):
            calls["n"] += 1
            rec.snap("only", 0, {"fixed": 1})
            return calls["n"]

        report = replay_diff(run, final_hash=state_hash)
        assert [f.rule_id for f in report.findings] == ["RD002"]
        assert "barriers matched" in report.findings[0].message

    def test_result_is_first_runs(self):
        calls = {"n": 0}

        def run(rec):
            calls["n"] += 1
            return calls["n"]

        assert replay_diff(run).result == 1


class TestServingBarriers:
    def test_recorder_does_not_perturb_the_run(self, iphone_engine,
                                               make_requests):
        """Barrier observation hashes state but must consume no
        randomness and advance no clocks: the serving report with a
        recorder attached is byte-identical to one without."""
        config = ServingConfig(seed=3)
        requests = make_requests(12)
        plain = ServingRuntime(iphone_engine, config).run(list(requests))
        rec = BarrierRecorder(every=4)
        recorded = ServingRuntime(
            iphone_engine, config, barriers=rec
        ).run(list(requests))
        assert recorded.to_json() == plain.to_json()
        assert len(rec.barriers) >= 2  # periodic epochs + the final snap
        assert rec.barriers[-1].label == "final"
        names = [name for name, _ in rec.barriers[0].components]
        assert "rng" in names and "outcomes" in names

    def test_legacy_loop_replays_identically(self, iphone_engine,
                                             make_requests):
        config = ServingConfig(seed=3)

        def run(rec):
            return ServingRuntime(
                iphone_engine, config, barriers=rec
            ).run(make_requests(12))

        report = replay_diff(
            run, every=4, final_hash=lambda r: state_hash(r.to_json())
        )
        assert report.ok
        assert report.barriers >= 2

    def test_kv_loop_replays_identically(self, iphone_engine,
                                         make_requests):
        config = ServingConfig(seed=3, kv_blocks=64)

        def run(rec):
            return ServingRuntime(
                iphone_engine, config, barriers=rec
            ).run(make_requests(12))

        report = replay_diff(
            run, every=4, final_hash=lambda r: state_hash(r.to_json())
        )
        assert report.ok
        assert report.barriers >= 2
