"""SARIF 2.1.0 schema-shape regression: the exact document structure CI
annotators consume — rule metadata, physical vs logical locations, the
deduplicated artifacts table, and suppressed (waived) results."""

import json

from repro.analysis.findings import (
    LEVEL_ERROR,
    LEVEL_WARNING,
    RULES,
    AnalysisReport,
    Finding,
    register_rules,
)

register_rules({
    "SS001": "sarif shape rule one",
    "SS002": "sarif shape rule two",
})


def _report():
    report = AnalysisReport()
    report.extend("shape", [
        Finding("SS002", LEVEL_ERROR, "late rule, early finding",
                location="repro/core/a.py:12", detail="context"),
        Finding("SS001", LEVEL_WARNING, "same file again",
                location="repro/core/a.py:40"),
        Finding("SS001", LEVEL_ERROR, "bare path",
                location="repro/core/b.py"),
        Finding("SS001", LEVEL_ERROR, "logical place",
                location="mapping slot 3"),
        Finding("SS001", LEVEL_ERROR, "nowhere"),
    ], checked=5)
    return report


class TestSarifShape:
    def test_header_and_schema(self):
        doc = _report().to_sarif()
        assert doc["$schema"] == (
            "https://json.schemastore.org/sarif-2.1.0.json"
        )
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"]) == 1

    def test_driver_rules_sorted_with_descriptions(self):
        driver = _report().to_sarif()["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-facil-analyze"
        assert [r["id"] for r in driver["rules"]] == ["SS001", "SS002"]
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"] == RULES[rule["id"]]
            assert rule["defaultConfiguration"] == {"level": "error"}

    def test_rule_index_points_into_rules_array(self):
        run = _report().to_sarif()["runs"][0]
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert rules[result["ruleIndex"]] == result["ruleId"]

    def test_physical_location_with_region(self):
        run = _report().to_sarif()["runs"][0]
        physical = run["results"][0]["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "repro/core/a.py"
        assert physical["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert physical["region"] == {"startLine": 12}

    def test_bare_path_has_no_region(self):
        run = _report().to_sarif()["runs"][0]
        physical = run["results"][2]["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "repro/core/b.py"
        assert "region" not in physical

    def test_artifacts_deduplicated_and_indexed(self):
        run = _report().to_sarif()["runs"][0]
        uris = [a["location"]["uri"] for a in run["artifacts"]]
        assert uris == ["repro/core/a.py", "repro/core/b.py"]
        # both a.py results point at the same artifact index
        indexes = [
            r["locations"][0]["physicalLocation"]["artifactLocation"]["index"]
            for r in run["results"][:2]
        ]
        assert indexes == [0, 0]
        assert run["originalUriBaseIds"]["SRCROOT"]["description"]["text"]

    def test_non_path_location_is_logical(self):
        run = _report().to_sarif()["runs"][0]
        locations = run["results"][3]["locations"]
        assert locations == [
            {"logicalLocations": [{"name": "mapping slot 3"}]}
        ]

    def test_missing_location_is_empty_list(self):
        run = _report().to_sarif()["runs"][0]
        assert run["results"][4]["locations"] == []

    def test_detail_lands_in_properties(self):
        run = _report().to_sarif()["runs"][0]
        assert run["results"][0]["properties"] == {"detail": "context"}
        assert "properties" not in run["results"][1]

    def test_pass_bookkeeping_in_run_properties(self):
        run = _report().to_sarif()["runs"][0]
        assert run["properties"]["checked"] == {"shape": 5}
        assert "shape" in run["properties"]["passes"]

    def test_render_json_round_trips(self):
        report = _report()
        assert json.loads(report.render_json()) == json.loads(
            json.dumps(report.to_sarif(), sort_keys=True)
        )


class TestWaivedResults:
    def test_waived_findings_are_suppressed_not_dropped(self):
        report = _report()
        report.waive(["SS002"])
        assert report.ok is False  # SS001 errors remain
        run = report.to_sarif()["runs"][0]
        suppressed = [r for r in run["results"] if "suppressions" in r]
        assert [r["ruleId"] for r in suppressed] == ["SS002"]
        assert suppressed[0]["suppressions"] == [
            {"kind": "external", "justification": "waived via --waive"}
        ]
        # the waived rule still appears in the driver metadata
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "SS002" in rules

    def test_waiving_every_error_turns_the_report_ok(self):
        report = _report()
        report.waive(["SS001", "SS002"])
        assert report.ok
        text = report.render_text()
        assert "PASS" in text
        assert "[5 waived]" in text
        assert text.count("waived SS") == 5
