"""Trace linter: the simulator's own command log must lint clean, and
each TL rule must fire on its seeded violation."""

import random

import pytest

from repro.analysis.tracelint import (
    lint_commands,
    lint_requests,
    lint_span_file,
    lint_spans,
    lint_trace_file,
)
from repro.dram.address import DramCoord
from repro.dram.command import DramCommand, Request
from repro.dram.config import (
    TINY_ORG,
    DramConfig,
    LPDDR5_6400_TIMINGS,
)
from repro.dram.scheduler import ChannelScheduler
from repro.dram.trace import save_trace


def _rule_ids(findings):
    return sorted({f.rule_id for f in findings})


def _run_workload(n_row_buffers=1, model_refresh=False, n=600, seed=11):
    config = DramConfig(TINY_ORG, LPDDR5_6400_TIMINGS)
    scheduler = ChannelScheduler(
        config, channel=0, n_row_buffers=n_row_buffers,
        model_refresh=model_refresh, log_commands=True,
    )
    rng = random.Random(seed)
    for index in range(n):
        coord = DramCoord(
            channel=0, rank=0,
            bank=rng.randrange(TINY_ORG.banks_per_rank),
            row=rng.randrange(128),
            col=rng.randrange(TINY_ORG.cols_per_row),
        )
        scheduler.enqueue(Request(coord=coord, is_write=index % 4 == 0))
    scheduler.drain()
    return scheduler.command_log


class TestSimulatorProtocol:
    @pytest.mark.parametrize("n_row_buffers", [1, 2])
    @pytest.mark.parametrize("model_refresh", [False, True])
    def test_scheduler_log_lints_clean(self, n_row_buffers, model_refresh):
        log = _run_workload(n_row_buffers, model_refresh)
        assert log  # commands were recorded
        findings = lint_commands(log, TINY_ORG, n_row_buffers=n_row_buffers)
        assert findings == []

    def test_refresh_emits_ref_and_closes_rows(self):
        """Regression: all-bank refresh must precharge every row buffer
        (the linter caught the scheduler leaving rows open across REF)."""
        log = _run_workload(model_refresh=True)
        ref_indices = [i for i, c in enumerate(log) if c.op == "REF"]
        assert ref_indices
        first_ref = ref_indices[0]
        reopened = [
            c for c in log[first_ref + 1:]
            if c.op == "ACT"
        ]
        assert reopened  # traffic after refresh had to re-activate


class TestCommandRules:
    def _cmd(self, op, bank=0, row=0, col=0, t=0.0):
        return DramCommand(op=op, channel=0, rank=0, bank=bank,
                           row=row, col=col, time_ns=t)

    def test_act_overflow_tl001(self):
        cmds = [self._cmd("ACT", row=1), self._cmd("ACT", row=2, t=1)]
        assert _rule_ids(lint_commands(cmds, TINY_ORG)) == ["TL001"]

    def test_pre_nothing_open_tl002(self):
        cmds = [self._cmd("PRE", row=3)]
        assert _rule_ids(lint_commands(cmds, TINY_ORG)) == ["TL002"]

    def test_column_to_closed_row_tl003(self):
        cmds = [self._cmd("ACT", row=1), self._cmd("RD", row=2, t=1)]
        assert _rule_ids(lint_commands(cmds, TINY_ORG)) == ["TL003"]

    def test_out_of_range_tl004(self):
        cmds = [self._cmd("ACT", bank=99, row=1)]
        assert _rule_ids(lint_commands(cmds, TINY_ORG)) == ["TL004"]

    def test_time_backwards_tl007(self):
        cmds = [
            self._cmd("ACT", row=1, t=10.0),
            self._cmd("RD", row=1, t=5.0),
        ]
        assert _rule_ids(lint_commands(cmds, TINY_ORG)) == ["TL007"]

    def test_redundant_act_tl008_is_warning(self):
        cmds = [self._cmd("ACT", row=1), self._cmd("ACT", row=1, t=1)]
        findings = lint_commands(cmds, TINY_ORG)
        assert _rule_ids(findings) == ["TL008"]
        assert all(f.level == "warning" for f in findings)

    def test_ref_closes_rows_in_model(self):
        cmds = [
            self._cmd("ACT", row=1),
            DramCommand(op="REF", channel=0, rank=-1, bank=-1, time_ns=1.0),
            self._cmd("RD", row=1, t=2.0),  # row lost to refresh
        ]
        assert "TL003" in _rule_ids(lint_commands(cmds, TINY_ORG))

    def test_finding_cap(self):
        cmds = [self._cmd("PRE", row=i, t=float(i)) for i in range(40)]
        findings = lint_commands(cmds, TINY_ORG)
        # 16 findings + 1 suppression note
        assert len(findings) == 17


class TestRequestRules:
    def _req(self, row, col=0, write=False, tag=""):
        return Request(
            coord=DramCoord(0, 0, 0, row, col), is_write=write, tag=tag
        )

    def test_read_never_written_tl005_warning(self):
        findings = lint_requests([self._req(7)], TINY_ORG)
        assert _rule_ids(findings) == ["TL005"]
        assert findings[0].level == "warning"

    def test_read_never_written_tl005_error_when_required(self):
        findings = lint_requests(
            [self._req(7)], TINY_ORG, require_writes=True
        )
        assert findings[0].level == "error"

    def test_written_row_reads_clean(self):
        reqs = [self._req(7, write=True), self._req(7)]
        assert lint_requests(reqs, TINY_ORG) == []

    def test_scrub_reentry_tl006(self):
        reqs = [
            self._req(1, write=True), self._req(2, write=True),
            self._req(1, tag="scrub"),
            self._req(2, tag="scrub"),
            self._req(1, tag="scrub"),  # back to a finished row
        ]
        assert "TL006" in _rule_ids(lint_requests(reqs, TINY_ORG))

    def test_scrub_same_row_burst_ok(self):
        # Multiple scrub reads of the same row back-to-back are one
        # visit, not reentrancy (a row is scrubbed word by word).
        reqs = [
            self._req(1, col=0, tag="scrub"),
            self._req(1, col=1, tag="scrub"),
            self._req(2, col=0, tag="scrub"),
        ]
        findings = lint_requests(reqs, TINY_ORG)
        assert "TL006" not in _rule_ids(findings)


class TestTraceFile:
    def test_roundtrip_and_lint(self, tmp_path):
        path = tmp_path / "trace.txt"
        reqs = [
            Request(coord=DramCoord(0, 0, 0, 5, 0), is_write=True),
            Request(coord=DramCoord(0, 0, 0, 5, 1)),
        ]
        save_trace(reqs, str(path))
        assert lint_trace_file(str(path), TINY_ORG) == []

    def test_seeded_bad_trace_found(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text(
            "# channel rank bank row col R/W [tag]\n"
            "0 0 0 5 0 W\n"
            "0 0 99 5 0 R\n"
        )
        findings = lint_trace_file(str(path), TINY_ORG)
        assert "TL004" in _rule_ids(findings)


def _span(trace_id=0, span_id=1, parent_id=None, name="s", layer="serving",
          start_ns=0.0, end_ns=100.0, **args):
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "layer": layer,
        "start_ns": start_ns,
        "end_ns": end_ns,
        "args": args,
    }


class TestSpanLint:
    def test_well_formed_tree_is_clean(self):
        spans = [
            _span(span_id=1, name="request", start_ns=0.0, end_ns=1000.0),
            _span(span_id=2, parent_id=1, name="prefill", layer="engine",
                  start_ns=10.0, end_ns=500.0),
            _span(span_id=3, parent_id=2, name="weights.dram", layer="dram",
                  start_ns=20.0, end_ns=400.0),
        ]
        assert lint_spans(spans) == []

    def test_missing_field_fires_tl009(self):
        span = _span()
        del span["layer"]
        assert _rule_ids(lint_spans([span])) == ["TL009"]

    def test_unknown_layer_fires_tl009(self):
        findings = lint_spans([_span(layer="plasma")])
        assert _rule_ids(findings) == ["TL009"]

    def test_negative_duration_fires_tl009(self):
        findings = lint_spans([_span(start_ns=100.0, end_ns=50.0)])
        assert _rule_ids(findings) == ["TL009"]

    def test_open_span_allowed(self):
        assert lint_spans([_span(end_ns=None)]) == []

    def test_child_escaping_parent_fires_tl010(self):
        spans = [
            _span(span_id=1, start_ns=0.0, end_ns=100.0),
            _span(span_id=2, parent_id=1, layer="engine",
                  start_ns=50.0, end_ns=200.0),
        ]
        assert _rule_ids(lint_spans(spans)) == ["TL010"]

    def test_subnanosecond_slack_tolerated(self):
        # the Chrome exporter round-trips through microseconds; edges may
        # wobble by well under a nanosecond
        spans = [
            _span(span_id=1, start_ns=0.0, end_ns=100.0),
            _span(span_id=2, parent_id=1, layer="engine",
                  start_ns=-0.5, end_ns=100.5),
        ]
        assert lint_spans(spans) == []

    def test_force_closed_exempt_from_containment(self):
        spans = [
            _span(span_id=1, start_ns=0.0, end_ns=100.0),
            _span(span_id=2, parent_id=1, layer="engine",
                  start_ns=50.0, end_ns=200.0, force_closed=True),
        ]
        assert lint_spans(spans) == []

    def test_dangling_parent_fires_tl011(self):
        findings = lint_spans([_span(parent_id=99)])
        assert _rule_ids(findings) == ["TL011"]

    def test_cross_trace_parent_fires_tl011(self):
        spans = [
            _span(trace_id=0, span_id=1),
            _span(trace_id=8, span_id=2, parent_id=1, layer="engine",
                  start_ns=10.0, end_ns=50.0),
        ]
        assert _rule_ids(lint_spans(spans)) == ["TL011"]


class TestSpanFile:
    def _tracer(self):
        from repro.telemetry.tracer import Tracer

        tracer = Tracer(sample_every=1)
        root = tracer.begin(0, "request", "serving", 0.0, tenant="chat")
        prefill = root.child("prefill", "engine", 1_000.0)
        prefill.record("weights.dram", "dram", 2_000.0, 400_000.0)
        prefill.close(500_000.0)
        root.record("decode", "engine", 500_000.0, 900_000.0)
        root.close(1_000_000.0)
        return tracer

    def test_jsonl_export_lints_clean(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        self._tracer().write_jsonl(str(path))
        assert lint_span_file(str(path)) == []

    def test_chrome_export_lints_clean(self, tmp_path):
        path = tmp_path / "trace.json"
        self._tracer().write_chrome(str(path))
        assert lint_span_file(str(path)) == []

    def test_force_closed_survives_chrome_roundtrip(self, tmp_path):
        from repro.telemetry.tracer import Tracer

        tracer = Tracer(sample_every=1)
        root = tracer.begin(0, "request", "serving", 0.0)
        root.child("prefill", "engine", 10.0)  # never closed
        root.close(100.0)
        assert tracer.close_all(5_000.0) == 1
        path = tmp_path / "trace.json"
        tracer.write_chrome(str(path))
        # the forced child ends after its parent, but carries the
        # force_closed marker through the Chrome args -> exempt
        assert lint_span_file(str(path)) == []

    def test_seeded_bad_jsonl_found(self, tmp_path):
        import json

        path = tmp_path / "spans.jsonl"
        lines = [
            json.dumps(_span(span_id=1)),
            json.dumps(_span(span_id=2, parent_id=7, layer="engine")),
        ]
        path.write_text("\n".join(lines) + "\n")
        assert "TL011" in _rule_ids(lint_span_file(str(path)))
