"""Finding/report plumbing: validation, rendering, SARIF, waivers."""

import json

import pytest

from repro.analysis.findings import (
    LEVEL_ERROR,
    LEVEL_WARNING,
    RULES,
    AnalysisReport,
    Finding,
    register_rules,
)

register_rules({"XX001": "test rule", "XX002": "another test rule"})


class TestFinding:
    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="level"):
            Finding("XX001", "fatal", "boom")

    def test_rejects_unregistered_rule(self):
        with pytest.raises(ValueError, match="unregistered"):
            Finding("ZZ999", LEVEL_ERROR, "boom")

    def test_render_includes_location_and_detail(self):
        f = Finding("XX001", LEVEL_ERROR, "msg", location="a.py:3",
                    detail="ctx")
        text = f.render()
        assert "XX001" in text and "a.py:3" in text and "ctx" in text

    def test_register_collision_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            register_rules({"XX001": "different text"})


class TestReport:
    def test_ok_depends_on_errors_only(self):
        report = AnalysisReport()
        report.extend("p", [Finding("XX001", LEVEL_WARNING, "w")], 1)
        assert report.ok
        report.extend("p", [Finding("XX002", LEVEL_ERROR, "e")], 1)
        assert not report.ok
        assert len(report.errors) == 1

    def test_waive_drops_rule(self):
        report = AnalysisReport()
        report.extend("p", [Finding("XX001", LEVEL_ERROR, "e")], 1)
        report.waive(["XX001"])
        assert report.ok

    def test_text_render_has_verdict(self):
        report = AnalysisReport()
        report.extend("p", [], 3)
        report.skip("q", "tool missing")
        text = report.render_text()
        assert "PASS" in text and "skipped: tool missing" in text

    def test_sarif_shape(self):
        report = AnalysisReport()
        report.extend("p", [Finding("XX001", LEVEL_ERROR, "e",
                                    location="x")], 1)
        doc = json.loads(report.render_json())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-facil-analyze"
        assert run["results"][0]["ruleId"] == "XX001"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["XX001"]
        assert RULES["XX001"] == "test rule"
