"""Tests for the augmented memory-controller frontend (paper Fig. 12)."""

import numpy as np
import pytest

from repro.core.controller import CONVENTIONAL_MAP_ID, MappingTable, MemoryController
from repro.core.mapping import Field, conventional_mapping, pim_optimized_mapping
from repro.dram.config import TINY_ORG, lpddr5_organization
from repro.dram.memory import PhysicalMemory

JETSON_ORG = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
PAGE = 2 << 20


def _pim_mapping(org, map_id=1):
    return pim_optimized_mapping(
        org, 1, org.row_bytes // 2, 2, map_id, 21
    )


class TestMappingTable:
    def test_entry_zero_is_conventional(self):
        table = MappingTable(conventional_mapping(TINY_ORG, 21))
        assert table[CONVENTIONAL_MAP_ID].name == "conventional"
        assert len(table) == 1

    def test_register_returns_new_id(self):
        table = MappingTable(conventional_mapping(TINY_ORG, 21))
        map_id = table.register(_pim_mapping(TINY_ORG))
        assert map_id == 1
        assert table[1].name.startswith("aim")

    def test_register_dedupes(self):
        table = MappingTable(conventional_mapping(TINY_ORG, 21))
        first = table.register(_pim_mapping(TINY_ORG))
        second = table.register(_pim_mapping(TINY_ORG))
        assert first == second
        assert len(table) == 2

    def test_register_conventional_returns_zero(self):
        table = MappingTable(conventional_mapping(TINY_ORG, 21))
        assert table.register(conventional_mapping(TINY_ORG, 21)) == 0

    def test_table_capacity_bounded(self):
        """The paper bounds the table size via the MapID formulation."""
        table = MappingTable(conventional_mapping(TINY_ORG, 21), max_entries=2)
        table.register(_pim_mapping(TINY_ORG, map_id=1))
        with pytest.raises(ValueError, match="full"):
            table.register(_pim_mapping(TINY_ORG, map_id=2))

    def test_mismatched_width_rejected(self):
        table = MappingTable(conventional_mapping(TINY_ORG, 21))
        with pytest.raises(ValueError):
            table.register(conventional_mapping(TINY_ORG, 20))

    def test_unknown_map_id(self):
        table = MappingTable(conventional_mapping(TINY_ORG, 21))
        with pytest.raises(KeyError):
            table[7]


class TestTranslate:
    def test_page_frame_becomes_row_msbs(self):
        controller = MemoryController(TINY_ORG, page_bytes=PAGE)
        rows_per_page = controller.rows_per_page
        coord0 = controller.translate(0)
        coord1 = controller.translate(PAGE)  # next page, same offset
        assert coord1.row == coord0.row + rows_per_page
        assert (coord1.channel, coord1.bank, coord1.col) == (
            coord0.channel, coord0.bank, coord0.col,
        )

    def test_row_overflow_rejected(self):
        controller = MemoryController(TINY_ORG, page_bytes=PAGE)
        with pytest.raises(ValueError, match="beyond"):
            controller.translate(TINY_ORG.capacity_bytes)

    def test_translate_array_matches_scalar(self):
        controller = MemoryController(JETSON_ORG, page_bytes=PAGE)
        map_id = controller.table.register(_pim_mapping(JETSON_ORG))
        pas = np.arange(0, 4 * PAGE, 4099, dtype=np.int64)
        fields = controller.translate_array(pas, map_id)
        for i in range(0, len(pas), 97):
            coord = controller.translate(int(pas[i]), map_id)
            assert fields[Field.CHANNEL][i] == coord.channel
            assert fields[Field.RANK][i] == coord.rank
            assert fields[Field.BANK][i] == coord.bank
            assert fields[Field.ROW][i] == coord.row
            assert fields[Field.COL][i] == coord.col
            assert fields[Field.OFFSET][i] == coord.offset

    def test_same_pa_differs_across_map_ids(self):
        controller = MemoryController(JETSON_ORG, page_bytes=PAGE)
        map_id = controller.table.register(_pim_mapping(JETSON_ORG))
        pa = 0x12340
        assert controller.translate(pa, 0) != controller.translate(pa, map_id)


class TestMuxArray:
    def test_one_mux_per_dram_bit(self):
        controller = MemoryController(JETSON_ORG, page_bytes=PAGE)
        controller.table.register(_pim_mapping(JETSON_ORG))
        muxes = controller.mux_array()
        assert len(muxes) == 21  # one per page-offset bit

    def test_fan_in_bounded_by_table_size(self):
        controller = MemoryController(JETSON_ORG, page_bytes=PAGE)
        controller.table.register(_pim_mapping(JETSON_ORG, map_id=0))
        controller.table.register(_pim_mapping(JETSON_ORG, map_id=1))
        for mux in controller.mux_array():
            assert 1 <= mux.fan_in <= 3

    def test_offset_bits_never_muxed(self):
        """Transfer-offset bits are identical in every mapping: their
        muxes degenerate to wires (fan-in 1) — the cheap-hardware claim."""
        controller = MemoryController(JETSON_ORG, page_bytes=PAGE)
        controller.table.register(_pim_mapping(JETSON_ORG))
        for mux in controller.mux_array():
            if mux.field == Field.OFFSET:
                assert mux.fan_in == 1


class TestFunctionalDataPath:
    def test_roundtrip_conventional(self):
        memory = PhysicalMemory(TINY_ORG)
        controller = MemoryController(TINY_ORG, page_bytes=PAGE, memory=memory)
        data = np.arange(4096, dtype=np.uint8)
        controller.write(0, data)
        assert np.array_equal(controller.read(0, 4096), data)

    def test_roundtrip_pim_mapping(self):
        memory = PhysicalMemory(TINY_ORG)
        controller = MemoryController(TINY_ORG, page_bytes=PAGE, memory=memory)
        map_id = controller.table.register(_pim_mapping(TINY_ORG))
        data = np.arange(8192, dtype=np.uint8)
        controller.write(100, data, map_id)
        assert np.array_equal(controller.read(100, 8192, map_id), data)

    def test_bytes_input_accepted(self):
        memory = PhysicalMemory(TINY_ORG)
        controller = MemoryController(TINY_ORG, page_bytes=PAGE, memory=memory)
        controller.write(0, b"hello world")
        assert bytes(controller.read(0, 11)) == b"hello world"

    def test_cross_mapping_read_scrambles(self):
        """Reading with the wrong MapID returns permuted bytes — the very
        problem FACIL's per-page MapID solves."""
        memory = PhysicalMemory(TINY_ORG)
        controller = MemoryController(TINY_ORG, page_bytes=PAGE, memory=memory)
        map_id = controller.table.register(_pim_mapping(TINY_ORG))
        data = np.arange(8192, dtype=np.int16).view(np.uint8)
        controller.write(0, data, map_id)
        wrong = controller.read(0, len(data), CONVENTIONAL_MAP_ID)
        right = controller.read(0, len(data), map_id)
        assert np.array_equal(right, data)
        assert not np.array_equal(wrong, data)
        # ... but it is a permutation: same multiset of bytes.
        assert np.array_equal(np.sort(wrong), np.sort(data))

    def test_no_memory_attached_raises(self):
        controller = MemoryController(TINY_ORG, page_bytes=PAGE)
        with pytest.raises(RuntimeError, match="timing-only"):
            controller.read(0, 16)
        with pytest.raises(RuntimeError, match="timing-only"):
            controller.write(0, b"x")
