"""Tests for pimalloc and the PimSystem facade (paper Fig. 7)."""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.os.page_table import PteFlags
from repro.pim.config import aim_config_for


@pytest.fixture
def system():
    return PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))


class TestPimallocFlow:
    def test_returns_tensor_with_selection(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=300))
        assert tensor.matrix.cols == 300
        assert tensor.lda == 512
        assert tensor.map_id >= 1  # a PIM mapping, not the conventional one

    def test_mapping_registered_in_controller_table(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=300))
        assert system.controller.table[tensor.map_id].fields == tensor.mapping.fields

    def test_same_shape_reuses_map_id(self, system):
        a = system.pimalloc(MatrixConfig(rows=16, cols=300))
        b = system.pimalloc(MatrixConfig(rows=8, cols=300))
        assert a.map_id == b.map_id

    def test_map_id_recorded_in_page_table(self, system):
        """The walk result must carry the MapID to the controller
        (paper Fig. 7b/c)."""
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=300))
        leaf = system.space.page_table.walk(tensor.va)
        assert leaf.map_id == tensor.map_id
        assert leaf.is_huge
        assert leaf.flags & PteFlags.PIM

    def test_malloc_uses_conventional(self, system):
        va = system.allocator.malloc(4096)
        leaf = system.space.page_table.walk(va)
        assert leaf.map_id == 0


class TestStoreLoad:
    def test_roundtrip_exact(self, system, rng):
        tensor = system.pimalloc(MatrixConfig(rows=32, cols=200))
        data = rng.standard_normal((32, 200)).astype(np.float16)
        tensor.store(data)
        assert np.array_equal(tensor.load(np.float16), data)

    def test_roundtrip_int16(self, system, rng):
        tensor = system.pimalloc(MatrixConfig(rows=8, cols=128))
        data = rng.integers(-1000, 1000, (8, 128)).astype(np.int16)
        tensor.store(data)
        assert np.array_equal(tensor.load(np.int16), data)

    def test_wrong_shape_rejected(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=8, cols=128))
        with pytest.raises(ValueError, match="expected"):
            tensor.store(np.zeros((8, 129), dtype=np.float16))

    def test_wrong_dtype_rejected(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=8, cols=128))
        with pytest.raises(ValueError, match="dtype"):
            tensor.store(np.zeros((8, 128), dtype=np.float32))
        with pytest.raises(ValueError, match="dtype"):
            tensor.load(np.float64)

    def test_padding_stays_zero(self, system, rng):
        tensor = system.pimalloc(MatrixConfig(rows=4, cols=100))
        tensor.store(rng.standard_normal((4, 100)).astype(np.float16))
        raw = system.allocator.read_virtual(tensor.va, tensor.nbytes_padded)
        padded = raw.view(np.float16).reshape(4, tensor.lda)
        assert np.all(padded[:, 100:] == 0)


class TestElementVa:
    def test_element_addressing(self, system, rng):
        tensor = system.pimalloc(MatrixConfig(rows=8, cols=100))
        data = rng.standard_normal((8, 100)).astype(np.float16)
        tensor.store(data)
        va = tensor.element_va(3, 77)
        raw = system.allocator.read_virtual(va, 2)
        assert raw.view(np.float16)[0] == data[3, 77]

    def test_out_of_range_rejected(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=8, cols=100))
        with pytest.raises(IndexError):
            tensor.element_va(8, 0)
        with pytest.raises(IndexError):
            tensor.element_va(0, 100)


class TestLifecycle:
    def test_free_releases_pages(self, system):
        before = system.buddy.free_pages
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=512))
        assert system.buddy.free_pages < before
        tensor.free()
        assert system.buddy.free_pages == before

    def test_many_tensors_coexist(self, system, rng):
        tensors = []
        for i in range(3):
            t = system.pimalloc(MatrixConfig(rows=4, cols=128 * (i + 1)))
            data = rng.standard_normal((4, 128 * (i + 1))).astype(np.float16)
            t.store(data)
            tensors.append((t, data))
        for t, data in tensors:
            assert np.array_equal(t.load(np.float16), data)


class TestSystemConstruction:
    def test_page_size_mismatch_rejected(self):
        from repro.core.controller import MemoryController
        from repro.core.pimalloc import PimAllocator
        from repro.os.buddy import BuddyAllocator
        from repro.os.vm import AddressSpace

        controller = MemoryController(TINY_ORG, page_bytes=2 << 20)
        space = AddressSpace(BuddyAllocator(2048))
        with pytest.raises(ValueError, match="page size"):
            PimAllocator(
                TINY_ORG, aim_config_for(TINY_ORG), controller, space,
                huge_page_bytes=1 << 20,
            )

    def test_timing_only_system(self):
        from repro.dram.config import lpddr5_organization

        org = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
        system = PimSystem.build(org, aim_config_for(org), functional=False)
        assert system.memory is None
        # translation still works
        assert system.controller.translate(0x1234).validate(org)
