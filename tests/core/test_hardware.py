"""Tests for the Verilog emitter and gate estimate."""

import pytest

from repro.core.controller import MemoryController
from repro.core.hardware import emit_verilog, mux_gate_estimate
from repro.core.mapping import pim_optimized_mapping
from repro.dram.config import lpddr5_organization

ORG = lpddr5_organization(bus_width_bits=256, capacity_gb=64)


@pytest.fixture
def controller():
    ctl = MemoryController(ORG)
    for map_id in (0, 1):
        ctl.table.register(pim_optimized_mapping(ORG, 1, 1024, 2, map_id, 21))
    return ctl


class TestVerilogEmission:
    def test_module_structure(self, controller):
        text = emit_verilog(controller)
        assert text.startswith("// Generated")
        assert "module facil_frontend (" in text
        assert "input  wire [20:0] pa," in text
        assert "endmodule" in text

    def test_every_da_bit_driven(self, controller):
        text = emit_verilog(controller)
        for field, width in (
            ("channel", 4), ("rank", 1), ("bank", 4),
            ("col", 6), ("offset", 5), ("row", 1),
        ):
            for bit in range(width):
                assert f"da_{field}[{bit}] =" in text

    def test_offset_bits_are_wires(self, controller):
        """Transfer-offset bits are identical in every mapping: pure
        wires, no map_id term."""
        text = emit_verilog(controller)
        for line in text.splitlines():
            if "assign da_offset" in line:
                assert "// wire" in line
                assert "map_id" not in line

    def test_muxed_bits_reference_map_id(self, controller):
        text = emit_verilog(controller)
        muxed = [l for l in text.splitlines() if "map_id ==" in l]
        assert muxed  # the PIM mappings move bank/channel bits

    def test_custom_module_name(self, controller):
        assert "module my_frontend (" in emit_verilog(controller, "my_frontend")


class TestGateEstimate:
    def test_conventional_only_is_free(self):
        controller = MemoryController(ORG)
        assert mux_gate_estimate(controller) == 0

    def test_paper_scale_cost_is_tiny(self, controller):
        """The §V-B claim quantified: a few hundred gates even with the
        full mapping family registered."""
        gates = mux_gate_estimate(controller)
        assert 0 < gates < 500

    def test_gates_grow_with_table(self, controller):
        before = mux_gate_estimate(controller)
        controller.table.register(
            pim_optimized_mapping(
                ORG, 8, 128, 2, 1, 21  # an HBM-PIM-style mapping too
            )
        )
        assert mux_gate_estimate(controller) > before
