"""Tests for the re-layout cost model and functional re-layout."""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.relayout import relayout_cost_ns, relayout_functional
from repro.core.selector import MatrixConfig
from repro.dram.config import (
    TINY_ORG,
    DramConfig,
    LPDDR5_6400_TIMINGS,
    lpddr5_organization,
)
from repro.pim.config import aim_config_for

JETSON = DramConfig(
    lpddr5_organization(bus_width_bits=256, capacity_gb=64), LPDDR5_6400_TIMINGS
)


class TestPeakBwMode:
    def test_cost_is_read_plus_write_at_peak(self):
        nbytes = 1 << 30
        cost = relayout_cost_ns(nbytes, JETSON, mode="peak-bw")
        expected = 2 * nbytes / JETSON.org.peak_bandwidth_gbps
        assert cost.total_ns == pytest.approx(expected)
        assert cost.bytes_read == cost.bytes_written == nbytes

    def test_llama_scale_matches_paper_ballpark(self):
        """16 GB of weights over 204.8 GB/s, read+write: ~160 ms — the
        magnitude behind Fig. 6's TTFT inflation."""
        cost = relayout_cost_ns(int(16.1e9), JETSON, mode="peak-bw")
        assert 0.10 < cost.total_ns / 1e9 < 0.20

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            relayout_cost_ns(1024, JETSON, mode="nope")


class TestSimulatedMode:
    def test_simulated_exceeds_peak_bw_estimate(self):
        """Replaying the streams through the DRAM simulator reports a
        higher cost than the paper's conservative full-bandwidth model:
        reading a PIM layout sequentially is bank-serial."""
        from repro.core.controller import MemoryController
        from repro.core.mapping import pim_optimized_mapping

        controller = MemoryController(JETSON.org)
        map_id = controller.table.register(
            pim_optimized_mapping(JETSON.org, 1, 1024, 2, 1, 21)
        )
        nbytes = 4 << 20
        conservative = relayout_cost_ns(nbytes, JETSON, mode="peak-bw")
        simulated = relayout_cost_ns(
            nbytes, JETSON, mode="simulated",
            controller=controller, pim_map_id=map_id,
            sample_transfers=8192,
        )
        assert simulated.total_ns > conservative.total_ns

    def test_simulated_requires_controller(self):
        with pytest.raises(ValueError, match="controller"):
            relayout_cost_ns(1024, JETSON, mode="simulated")


class TestFunctionalRelayout:
    def test_scratch_copy_preserves_bytes(self, rng):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=256))
        data = rng.standard_normal((16, 256)).astype(np.float16)
        tensor.store(data)
        out = relayout_functional(tensor)
        relaid = out.view(np.float16).reshape(16, tensor.lda)[:, :256]
        assert np.array_equal(relaid, data)

    def test_scratch_is_freed(self, rng):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=256))
        tensor.store(np.zeros((16, 256), dtype=np.float16))
        free_before = system.buddy.free_pages
        relayout_functional(tensor)
        assert system.buddy.free_pages == free_before
