"""Tests for the PA-to-DA mapping formulation (paper §IV-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import (
    AddressMapping,
    CONVENTIONAL_SPEC,
    Field,
    conventional_mapping,
    max_map_id,
    pim_optimized_mapping,
)
from repro.dram.address import DramCoord
from repro.dram.config import TINY_ORG, DramOrganization, lpddr5_organization

JETSON_ORG = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
PAGE_BITS = 21  # 2 MB huge pages


class TestAddressMappingValidation:
    def test_requires_full_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            AddressMapping("bad", 4, {Field.ROW: (0, 1), Field.COL: (3,)})

    def test_rejects_duplicate_positions(self):
        with pytest.raises(ValueError, match="permutation"):
            AddressMapping(
                "dup", 3, {Field.ROW: (0, 1), Field.COL: (1,), Field.BANK: (2,)}
            )

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown field"):
            AddressMapping("bad", 1, {"nonsense": (0,)})


class TestConventionalMapping:
    def test_field_widths_match_org(self):
        mapping = conventional_mapping(JETSON_ORG, PAGE_BITS)
        assert mapping.matches_organization(JETSON_ORG)
        assert mapping.field_width(Field.CHANNEL) == 4
        assert mapping.field_width(Field.BANK) == 4
        assert mapping.field_width(Field.COL) == 6
        assert mapping.field_width(Field.OFFSET) == 5
        assert mapping.field_width(Field.RANK) == 1
        assert mapping.row_bits == 21 - 20

    def test_lsb_order_follows_spec(self):
        # row rank col bank channel (MSB..LSB) => LSB after offset: channel
        mapping = conventional_mapping(JETSON_ORG, PAGE_BITS)
        assert mapping.positions(Field.OFFSET) == tuple(range(5))
        assert mapping.positions(Field.CHANNEL) == tuple(range(5, 9))
        assert mapping.positions(Field.BANK) == tuple(range(9, 13))
        assert mapping.positions(Field.COL) == tuple(range(13, 19))
        assert mapping.positions(Field.RANK) == (19,)
        assert mapping.positions(Field.ROW) == (20,)

    def test_custom_spec(self):
        mapping = conventional_mapping(
            TINY_ORG, PAGE_BITS, spec="row col rank bank channel"
        )
        # channel right above the offset bits
        assert mapping.positions(Field.CHANNEL) == (5,)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="spec"):
            conventional_mapping(TINY_ORG, PAGE_BITS, spec="row col bank channel")

    def test_page_too_small_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            conventional_mapping(JETSON_ORG, 10)

    def test_describe_renders_msb_to_lsb(self):
        text = conventional_mapping(JETSON_ORG, PAGE_BITS).describe()
        assert text == "row[1]:rank[1]:col[6]:bank[4]:channel[4]:offset[5]"

    def test_roundtrip(self):
        mapping = conventional_mapping(JETSON_ORG, PAGE_BITS)
        for pa in (0, 1, 31, 32, 0x12345, (1 << 21) - 1):
            assert mapping.encode(mapping.decode(pa)) == pa


class TestMaxMapId:
    def test_paper_worst_case_is_13(self):
        """§IV-B: single channel/rank, 8-bank DRAM, 2 MB pages, 32 B
        transfers gives log2(2MB / (8 * 32B)) = 13."""
        org = DramOrganization(
            n_channels=1,
            ranks_per_channel=1,
            banks_per_rank=8,
            rows_per_bank=1 << 16,
            row_bytes=2048,
            transfer_bytes=32,
        )
        assert max_map_id(org, 2 << 20) == 13

    def test_jetson_value(self):
        # 512 banks * 32 B = 16 KB per "slot": log2(2MB/16KB) = 7
        assert max_map_id(JETSON_ORG, 2 << 20) == 7

    def test_page_too_small(self):
        with pytest.raises(ValueError):
            max_map_id(JETSON_ORG, 1024)


class TestAimMapping:
    def test_fig8_layout(self):
        """Fig. 8a: offset, chunk-col bits, map_id row bits, PU bits
        (bank, rank, channel), remaining row bits."""
        mapping = pim_optimized_mapping(
            JETSON_ORG, chunk_rows=1, chunk_cols=1024, dtype_bytes=2,
            map_id=1, n_bits=PAGE_BITS,
        )
        assert mapping.positions(Field.OFFSET) == tuple(range(5))
        assert mapping.positions(Field.COL) == tuple(range(5, 11))
        # map_id=1 row bit right above the chunk bits
        assert 11 in mapping.positions(Field.ROW)
        assert mapping.positions(Field.BANK) == tuple(range(12, 16))
        assert mapping.positions(Field.RANK) == (16,)
        assert mapping.positions(Field.CHANNEL) == tuple(range(17, 21))

    def test_map_id_zero(self):
        mapping = pim_optimized_mapping(
            JETSON_ORG, 1, 1024, 2, map_id=0, n_bits=PAGE_BITS
        )
        assert mapping.positions(Field.BANK) == tuple(range(11, 15))
        assert mapping.row_bits == 1

    def test_map_id_too_large_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            pim_optimized_mapping(JETSON_ORG, 1, 1024, 2, map_id=2, n_bits=PAGE_BITS)

    def test_pu_order_partitioned(self):
        mapping = pim_optimized_mapping(
            JETSON_ORG, 1, 1024, 2, map_id=1, n_bits=PAGE_BITS,
            pu_order=(Field.CHANNEL, Field.RANK, Field.BANK),
        )
        assert mapping.positions(Field.CHANNEL) == tuple(range(12, 16))
        assert mapping.positions(Field.BANK) == tuple(range(17, 21))

    def test_bad_pu_order_rejected(self):
        with pytest.raises(ValueError, match="pu_order"):
            pim_optimized_mapping(
                JETSON_ORG, 1, 1024, 2, 1, PAGE_BITS,
                pu_order=(Field.CHANNEL, Field.CHANNEL, Field.BANK),
            )

    def test_roundtrip_all_map_ids(self):
        for map_id in range(2):
            mapping = pim_optimized_mapping(JETSON_ORG, 1, 1024, 2, map_id, PAGE_BITS)
            for pa in (0, 77, 2048, (1 << 21) - 1):
                assert mapping.encode(mapping.decode(pa)) == pa

    def test_chunk_contiguity_in_bank(self):
        """Consecutive PAs within one chunk share (channel, rank, bank,
        row) — the §II-C requirement."""
        mapping = pim_optimized_mapping(JETSON_ORG, 1, 1024, 2, 1, PAGE_BITS)
        base = mapping.decode(0)
        for pa in range(0, 2048, 32):
            coord = mapping.decode(pa)
            assert (coord.channel, coord.rank, coord.bank, coord.row) == (
                base.channel, base.rank, base.bank, base.row,
            )

    def test_default_name(self):
        mapping = pim_optimized_mapping(JETSON_ORG, 1, 1024, 2, 1, PAGE_BITS)
        assert mapping.name == "aim-map1"


class TestHbmPimMapping:
    def test_fig8b_layout(self):
        """Fig. 8b: 3 chunk-col bits, map_id row bits, 3 chunk-row col
        bits, then PU bits."""
        mapping = pim_optimized_mapping(
            JETSON_ORG, chunk_rows=8, chunk_cols=128, dtype_bytes=2,
            map_id=1, n_bits=PAGE_BITS,
        )
        col_positions = mapping.positions(Field.COL)
        assert col_positions[:3] == (5, 6, 7)  # chunk columns
        assert col_positions[3:] == (9, 10, 11)  # chunk rows
        assert 8 in mapping.positions(Field.ROW)
        assert mapping.positions(Field.BANK) == tuple(range(12, 16))
        assert mapping.name == "hbmpim-map1"

    def test_chunk_needs_more_col_bits_than_row_rejected(self):
        with pytest.raises(ValueError, match="column bits"):
            pim_optimized_mapping(
                JETSON_ORG, chunk_rows=64, chunk_cols=128, dtype_bytes=2,
                map_id=0, n_bits=PAGE_BITS,
            )

    def test_chunk_rows_map_to_same_dram_row(self):
        """Elements of one chunk (8 rows x 128 cols) stay in one DRAM row."""
        mapping = pim_optimized_mapping(JETSON_ORG, 8, 128, 2, 0, PAGE_BITS)
        # PA stride between chunk rows is 2**(offset+cc+map_id) = 256 B
        base = mapping.decode(0)
        for chunk_row in range(8):
            coord = mapping.decode(chunk_row * 256)
            assert coord.row == base.row
            assert coord.bank == base.bank


class TestMappingValidation:
    def test_chunk_smaller_than_transfer_rejected(self):
        with pytest.raises(ValueError, match="smaller than a DRAM"):
            pim_optimized_mapping(JETSON_ORG, 1, 8, 2, 0, PAGE_BITS)

    def test_negative_map_id_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            pim_optimized_mapping(JETSON_ORG, 1, 1024, 2, -1, PAGE_BITS)

    def test_non_pow2_chunk_rejected(self):
        with pytest.raises(ValueError, match="powers of two"):
            pim_optimized_mapping(JETSON_ORG, 3, 1024, 2, 0, PAGE_BITS)


@st.composite
def _org_and_map(draw):
    ch = draw(st.sampled_from([1, 2, 4, 8]))
    rk = draw(st.sampled_from([1, 2]))
    bk = draw(st.sampled_from([4, 8, 16]))
    org = DramOrganization(
        n_channels=ch,
        ranks_per_channel=rk,
        banks_per_rank=bk,
        rows_per_bank=1 << 16,
        row_bytes=2048,
        transfer_bytes=32,
    )
    ceiling = 21 - org.offset_bits - org.interleave_bits() - org.col_bits
    map_id = draw(st.integers(min_value=0, max_value=max(0, ceiling)))
    return org, map_id


class TestMappingProperties:
    @given(_org_and_map(), st.integers(min_value=0, max_value=(1 << 21) - 1))
    @settings(max_examples=60, deadline=None)
    def test_pim_mapping_bijective(self, org_map, pa):
        org, map_id = org_map
        mapping = pim_optimized_mapping(
            org, 1, org.row_bytes // 2, 2, map_id, 21
        )
        coord = mapping.decode(pa)
        assert mapping.encode(coord) == pa
        DramCoord(
            channel=coord.channel, rank=coord.rank, bank=coord.bank,
            row=0, col=coord.col, offset=coord.offset,
        ).validate(org)

    @given(_org_and_map())
    @settings(max_examples=40, deadline=None)
    def test_field_widths_always_match_org(self, org_map):
        org, map_id = org_map
        mapping = pim_optimized_mapping(org, 1, org.row_bytes // 2, 2, map_id, 21)
        assert mapping.matches_organization(org)
