"""Unit and property tests for the bit-permutation primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bitfield import (
    bit,
    bits_of,
    ceil_div,
    ceil_log2,
    deposit_bits,
    deposit_bits_array,
    extract_bits,
    extract_bits_array,
    ilog2,
    is_pow2,
)


class TestIsPow2:
    def test_powers(self):
        for k in range(20):
            assert is_pow2(1 << k)

    def test_non_powers(self):
        for value in (0, 3, 5, 6, 7, 9, 12, 100, -1, -4):
            assert not is_pow2(value)


class TestIlog2:
    def test_exact(self):
        for k in range(32):
            assert ilog2(1 << k) == k

    @pytest.mark.parametrize("bad", [0, 3, -8, 6])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestCeilLog2:
    def test_values(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(4) == 2
        assert ceil_log2(5) == 3
        assert ceil_log2(14336) == 14  # Llama3 FFN dim pads to 16384

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestCeilDiv:
    def test_values(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(1, 512) == 1
        assert ceil_div(0, 5) == 0

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestBitHelpers:
    def test_bit(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0

    def test_bits_of(self):
        assert bits_of(0b1011, 4) == (1, 1, 0, 1)


class TestExtractDeposit:
    def test_extract_simple(self):
        # gather bits 4,0 -> result bit0 = input bit4, bit1 = input bit0
        assert extract_bits(0b10001, (4, 0)) == 0b11
        assert extract_bits(0b10000, (4, 0)) == 0b01

    def test_deposit_inverse_of_extract(self):
        positions = (3, 1, 7, 0)
        for value in range(16):
            scattered = deposit_bits(value, positions)
            assert extract_bits(scattered, positions) == value

    def test_empty_positions(self):
        assert extract_bits(0xFF, ()) == 0
        assert deposit_bits(0, ()) == 0

    @given(
        value=st.integers(min_value=0, max_value=(1 << 21) - 1),
        perm=st.permutations(list(range(21))),
    )
    def test_permutation_is_bijective(self, value, perm):
        scattered = deposit_bits(value, perm)
        assert extract_bits(scattered, perm) == value

    def test_array_matches_scalar(self):
        positions = (5, 2, 9, 0, 14)
        values = np.arange(0, 1 << 15, 37, dtype=np.int64)
        vec = extract_bits_array(values, positions)
        for v, out in zip(values[:64], vec[:64]):
            assert out == extract_bits(int(v), positions)

    def test_deposit_array_matches_scalar(self):
        positions = (5, 2, 9, 0)
        values = np.arange(16, dtype=np.int64)
        vec = deposit_bits_array(values, positions)
        for v, out in zip(values, vec):
            assert out == deposit_bits(int(v), positions)
