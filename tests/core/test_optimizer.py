"""Tests for the exhaustive mapping-space search."""

import pytest

from repro.core.mapping import Field
from repro.core.optimizer import enumerate_candidates, optimize_mapping
from repro.core.selector import MatrixConfig, select_mapping
from repro.platforms.specs import IDEAPAD, IPHONE_15_PRO, JETSON_ORIN


class TestEnumeration:
    def test_candidates_cover_map_id_range(self):
        candidates = enumerate_candidates(
            MatrixConfig(2048, 8192), IPHONE_15_PRO.dram, IPHONE_15_PRO.pim,
            IPHONE_15_PRO.soc,
        )
        assert len(candidates) >= 3
        assert len({c.map_id for c in candidates}) >= 3

    def test_partitioned_candidates_are_channel_first(self):
        candidates = enumerate_candidates(
            MatrixConfig(4096, 4096), JETSON_ORIN.dram, JETSON_ORIN.pim,
            JETSON_ORIN.soc,
        )
        for candidate in candidates:
            if candidate.partitions_per_row > 1:
                assert candidate.pu_order[0] == Field.CHANNEL

    def test_infeasible_partitions_excluded(self):
        """Partitions beyond the channel x rank count would break the
        global-buffer lock-step; the search must never emit them."""
        candidates = enumerate_candidates(
            MatrixConfig(4096, 14336), JETSON_ORIN.dram, JETSON_ORIN.pim,
            JETSON_ORIN.soc,
        )
        org = JETSON_ORIN.dram.org
        limit = org.n_channels * org.ranks_per_channel
        assert all(c.partitions_per_row <= limit for c in candidates)

    def test_costs_are_positive(self):
        for candidate in enumerate_candidates(
            MatrixConfig(1024, 4096), IDEAPAD.dram, IDEAPAD.pim, IDEAPAD.soc
        ):
            assert candidate.gemv_ns > 0
            assert candidate.reduce_ns >= 0


class TestOptimum:
    @pytest.mark.parametrize(
        "platform,rows,cols",
        [
            (JETSON_ORIN, 4096, 4096),
            (JETSON_ORIN, 14336, 4096),
            (JETSON_ORIN, 4096, 14336),
            (IDEAPAD, 16384, 4096),
            (IDEAPAD, 4096, 16384),
            (IPHONE_15_PRO, 2048, 2048),
            (IPHONE_15_PRO, 2048, 8192),
        ],
    )
    def test_selector_formula_matches_search(self, platform, rows, cols):
        """The paper's closed-form rule is the argmin of the search for
        every evaluated layer shape (the near-tie exceptions are small
        matrices; see the ablation bench)."""
        matrix = MatrixConfig(rows, cols)
        selection = select_mapping(matrix, platform.dram.org, platform.pim)
        best = optimize_mapping(matrix, platform.dram, platform.pim, platform.soc)
        assert best.map_id == selection.map_id

    def test_near_tie_case_documented(self):
        """Jetson v_proj (1024 x 4096): the search prefers one extra level
        of partitioning because it halves global-buffer reloads; the
        selector's choice is within a whisker."""
        matrix = MatrixConfig(1024, 4096)
        selection = select_mapping(matrix, JETSON_ORIN.dram.org, JETSON_ORIN.pim)
        candidates = {
            c.map_id: c
            for c in enumerate_candidates(
                matrix, JETSON_ORIN.dram, JETSON_ORIN.pim, JETSON_ORIN.soc
            )
        }
        best = optimize_mapping(
            matrix, JETSON_ORIN.dram, JETSON_ORIN.pim, JETSON_ORIN.soc
        )
        selector_cost = candidates[selection.map_id].total_ns
        assert best.total_ns <= selector_cost <= best.total_ns * 1.05

    def test_optimum_beats_or_ties_everything(self):
        matrix = MatrixConfig(8192, 2048)
        best = optimize_mapping(
            matrix, IPHONE_15_PRO.dram, IPHONE_15_PRO.pim, IPHONE_15_PRO.soc
        )
        for candidate in enumerate_candidates(
            matrix, IPHONE_15_PRO.dram, IPHONE_15_PRO.pim, IPHONE_15_PRO.soc
        ):
            assert best.total_ns <= candidate.total_ns + 1e-9
