"""Tests for the mapping selector (paper §IV-C, Figs. 9 and 10)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import Field
from repro.core.selector import (
    MatrixConfig,
    build_selected_mapping,
    pu_order_for,
    select_mapping,
)
from repro.dram.config import DramOrganization, lpddr5_organization
from repro.pim.config import AIM_LPDDR5, HBM_PIM, PimConfig

JETSON_ORG = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
IPHONE_ORG = lpddr5_organization(bus_width_bits=64, capacity_gb=8)
HUGE = 2 << 20


class TestMatrixConfig:
    def test_padding(self):
        m = MatrixConfig(rows=4096, cols=14336)
        assert m.padded_cols == 16384
        assert m.padded_row_bytes == 32768

    def test_pow2_cols_unpadded(self):
        m = MatrixConfig(rows=10, cols=4096)
        assert m.padded_cols == 4096

    def test_nbytes(self):
        m = MatrixConfig(rows=8, cols=100, dtype_bytes=2)
        assert m.nbytes == 1600
        assert m.padded_nbytes == 8 * 128 * 2

    @pytest.mark.parametrize("rows,cols", [(0, 4), (4, 0), (-1, 4)])
    def test_rejects_bad_dims(self, rows, cols):
        with pytest.raises(ValueError):
            MatrixConfig(rows=rows, cols=cols)


class TestSelectorNoPartition:
    def test_fig9_no_partition(self):
        """iPhone org: 128 banks -> 16 KB per bank per page; a 4096-col
        FP16 row (8 KB) fits -> map_id = log2(8KB / 2KB) = 2."""
        sel = select_mapping(MatrixConfig(64, 4096), IPHONE_ORG, AIM_LPDDR5, HUGE)
        assert not sel.needs_partition
        assert sel.map_id == 2
        assert sel.partitions_per_row == 1
        assert sel.bytes_per_bank_per_page == 16384

    def test_row_equal_to_chunk(self):
        sel = select_mapping(MatrixConfig(64, 1024), IPHONE_ORG, AIM_LPDDR5, HUGE)
        assert sel.map_id == 0

    def test_row_smaller_than_chunk_clamps_to_zero(self):
        sel = select_mapping(MatrixConfig(64, 256), IPHONE_ORG, AIM_LPDDR5, HUGE)
        assert sel.map_id == 0
        assert not sel.needs_partition


class TestSelectorPartition:
    def test_fig10_partition(self):
        """Jetson org: 512 banks -> 4 KB per bank; an 8 KB row needs two
        PUs; map_id = log2(4KB / 2KB) = 1."""
        sel = select_mapping(MatrixConfig(4096, 4096), JETSON_ORG, AIM_LPDDR5, HUGE)
        assert sel.needs_partition
        assert sel.map_id == 1
        assert sel.partitions_per_row == 2

    def test_large_ffn_row(self):
        """Llama3 down_proj on Jetson: 14336 cols -> padded 32 KB row ->
        8 partitions."""
        sel = select_mapping(MatrixConfig(4096, 14336), JETSON_ORG, AIM_LPDDR5, HUGE)
        assert sel.needs_partition
        assert sel.partitions_per_row == 8
        assert sel.map_id == 1

    def test_partitioned_pu_order_spreads_channels(self):
        sel = select_mapping(MatrixConfig(4096, 4096), JETSON_ORG, AIM_LPDDR5, HUGE)
        assert pu_order_for(sel) == (Field.CHANNEL, Field.RANK, Field.BANK)

    def test_unpartitioned_pu_order_is_bank_first(self):
        sel = select_mapping(MatrixConfig(64, 4096), IPHONE_ORG, AIM_LPDDR5, HUGE)
        assert pu_order_for(sel) == (Field.BANK, Field.RANK, Field.CHANNEL)


class TestSelectorHbmPim:
    def test_group_of_chunk_rows(self):
        """HBM-PIM chunk (8, 128): the per-bank group is 8 rows; a
        4096-col row makes the group 64 KB > 16 KB -> partitioned."""
        sel = select_mapping(MatrixConfig(64, 4096), IPHONE_ORG, HBM_PIM, HUGE)
        assert sel.needs_partition
        assert sel.partitions_per_row == 4

    def test_small_matrix_unpartitioned(self):
        sel = select_mapping(MatrixConfig(64, 512), IPHONE_ORG, HBM_PIM, HUGE)
        assert not sel.needs_partition
        assert sel.map_id == 2  # log2(1KB row / 256B chunk row)


class TestSelectorErrors:
    def test_page_too_small_for_banks(self):
        org = DramOrganization(
            n_channels=8, ranks_per_channel=2, banks_per_rank=16,
            rows_per_bank=1 << 16, row_bytes=2048, transfer_bytes=32,
        )
        with pytest.raises(ValueError, match="chunk row"):
            select_mapping(MatrixConfig(4, 4096), org, AIM_LPDDR5, 256 * 1024)


class TestBuildSelectedMapping:
    def test_mapping_is_consistent_with_selection(self):
        mapping = build_selected_mapping(
            MatrixConfig(64, 4096), IPHONE_ORG, AIM_LPDDR5, HUGE
        )
        assert mapping.matches_organization(IPHONE_ORG)
        assert mapping.n_bits == 21

    def test_partitioned_mapping_channel_first(self):
        mapping = build_selected_mapping(
            MatrixConfig(4096, 4096), JETSON_ORG, AIM_LPDDR5, HUGE
        )
        ch = mapping.positions(Field.CHANNEL)
        bk = mapping.positions(Field.BANK)
        assert max(ch) < min(bk)


class TestSelectorProperties:
    @given(
        rows=st.integers(min_value=1, max_value=1 << 14),
        cols=st.integers(min_value=16, max_value=1 << 15),
    )
    @settings(max_examples=80, deadline=None)
    def test_selection_always_buildable(self, rows, cols):
        """Whatever the matrix shape, the selector's choice must yield a
        constructible mapping (the end of Fig. 9 never dangles)."""
        matrix = MatrixConfig(rows=rows, cols=cols)
        for org in (JETSON_ORG, IPHONE_ORG):
            mapping = build_selected_mapping(matrix, org, AIM_LPDDR5, HUGE)
            assert mapping.n_bits == 21

    @given(cols=st.integers(min_value=16, max_value=1 << 15))
    @settings(max_examples=60, deadline=None)
    def test_partition_arithmetic(self, cols):
        matrix = MatrixConfig(rows=32, cols=cols)
        sel = select_mapping(matrix, JETSON_ORG, AIM_LPDDR5, HUGE)
        if sel.needs_partition:
            assert (
                sel.partitions_per_row * sel.bytes_per_bank_per_page
                >= matrix.padded_row_bytes
            )
        else:
            assert matrix.padded_row_bytes <= sel.bytes_per_bank_per_page
