"""Partial-range page migration (``PimAllocator.migrate_pages``).

The adaptive controller's primitive, tested at the allocator level on a
small functional journaled system: a migrated range reads back exactly,
an un-migrated range keeps its old mapping (mixed areas are legal), and
the table-reference discipline — one reference per distinct MapID the
area's pages use, plus the conventional pin — reconciles after every
move.  Crash-in-flight recovery is covered by
tests/adaptive/test_migrate_crash.py and the chaos campaign.
"""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.pim.config import aim_config_for

#: 2048 x 1024 x 2 B = 4 MiB = two huge pages on the tiny geometry,
#: leaving room for the migration's equally-sized staging copy
_ROWS, _COLS = 2048, 1024


@pytest.fixture
def system():
    return PimSystem.build(
        TINY_ORG, aim_config_for(TINY_ORG), functional=True, journal=True
    )


@pytest.fixture
def tensor(system, rng):
    tensor = system.pimalloc(MatrixConfig(rows=_ROWS, cols=_COLS, dtype_bytes=2))
    data = rng.integers(0, 1 << 16, size=(_ROWS, _COLS), dtype=np.uint16)
    tensor.store(data)
    return tensor, data


class TestMigratePages:
    def test_full_migration_preserves_bytes_and_updates_handle(self, system, tensor):
        tensor, data = tensor
        old_map_id = tensor.map_id
        result = system.allocator.migrate_pages(tensor, 5)
        assert result["pages"] == 2
        assert tensor.map_id == result["new_map_id"] != old_map_id
        assert np.array_equal(tensor.load(np.uint16), data)
        # old mapping's reference released, new one held, pin intact
        assert system.controller.table.refcounts() == {
            0: 1, result["new_map_id"]: 1,
        }
        assert system.journal.uncommitted() == []

    def test_partial_migration_leaves_a_legal_mixed_area(self, system, tensor):
        tensor, data = tensor
        old_slots = system.space.area_page_map_ids(tensor.va)
        result = system.allocator.migrate_pages(tensor, 5, page_start=1)
        slots = system.space.area_page_map_ids(tensor.va)
        assert slots[0] == old_slots[0]
        assert slots[1] == result["new_map_id"] != slots[0]
        # a mixed area keeps the tensor handle on its old mapping
        assert tensor.map_id == old_slots[0]
        # one reference per distinct slot in use
        assert system.controller.table.refcounts() == {
            0: 1, slots[0]: 1, slots[1]: 1,
        }
        # bytes in both halves read back through their own mappings
        assert np.array_equal(tensor.load(np.uint16), data)

    def test_migrating_back_reunifies_the_area(self, system, tensor):
        tensor, data = tensor
        original = tensor.selection.map_id
        system.allocator.migrate_pages(tensor, 5, page_start=1)
        system.allocator.migrate_pages(tensor, original, page_start=1)
        slots = system.space.area_page_map_ids(tensor.va)
        assert slots[0] == slots[1]
        assert len(system.controller.table.refcounts()) == 2  # pin + one live
        assert np.array_equal(tensor.load(np.uint16), data)

    def test_migration_to_the_same_map_id_is_sound(self, system, tensor):
        tensor, data = tensor
        before = system.controller.table.refcounts()
        system.allocator.migrate_pages(tensor, tensor.selection.map_id)
        assert system.controller.table.refcounts() == before
        assert np.array_equal(tensor.load(np.uint16), data)

    def test_rejects_out_of_range_pages(self, system, tensor):
        tensor, _ = tensor
        with pytest.raises(ValueError, match="page range"):
            system.allocator.migrate_pages(tensor, 5, page_start=1, page_count=2)
        with pytest.raises(ValueError, match="page range"):
            system.allocator.migrate_pages(tensor, 5, page_start=0, page_count=0)

    def test_rejects_unmapped_tensor(self, system, tensor):
        tensor, _ = tensor
        tensor.free()
        with pytest.raises(ValueError, match="not mapped"):
            system.allocator.migrate_pages(tensor, 5)
