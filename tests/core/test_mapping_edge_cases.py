"""Edge cases of the mapping builder: small chunks (leftover column
bits), chunks spanning multiple DRAM rows, and the GDDR6 preset."""

import pytest

from repro.core.mapping import Field, pim_optimized_mapping
from repro.dram.config import DramOrganization, GDDR6_16000_TIMINGS, LPDDR5_6400_TIMINGS

ORG = DramOrganization(
    n_channels=2, ranks_per_channel=1, banks_per_rank=8,
    rows_per_bank=1 << 14, row_bytes=2048, transfer_bytes=32,
)


class TestSmallChunks:
    """Chunks smaller than one DRAM row leave column bits above the chunk
    (the `leftover_col` path): map_id bits fill the DRAM row first."""

    def test_half_row_chunk_layout(self):
        # 512-element fp16 chunk = 1 KB = half a DRAM row -> 1 leftover bit
        mapping = pim_optimized_mapping(
            ORG, chunk_rows=1, chunk_cols=512, dtype_bytes=2,
            map_id=2, n_bits=21,
        )
        col = mapping.positions(Field.COL)
        # 5 chunk-col bits right after the offset, the leftover 6th above
        assert col[:5] == tuple(range(5, 10))
        assert col[5] == 10
        # one true row bit between the leftover col bit and the PU bits
        assert mapping.positions(Field.ROW)[0] == 11

    def test_map_id_smaller_than_leftover_spills_above_pu_bits(self):
        # Regression: this used to raise "map_id=0 smaller than leftover
        # column bits" even though the selector legitimately picks
        # map_id=0 for matrix rows no larger than one chunk.  The surplus
        # column bits now sit above the PU bits instead.
        mapping = pim_optimized_mapping(
            ORG, chunk_rows=1, chunk_cols=512, dtype_bytes=2,
            map_id=0, n_bits=21,
        )
        col = mapping.positions(Field.COL)
        # 5 chunk-col bits right after the offset...
        assert col[:5] == tuple(range(5, 10))
        # ...the PU bits directly above the chunk, and the leftover
        # column bit above them.
        bank = mapping.positions(Field.BANK)
        assert min(bank) == 10
        assert col[5] > max(mapping.positions(Field.CHANNEL))
        # still a bijection
        for pa in (0, 54321, (1 << 21) - 1):
            assert mapping.encode(mapping.decode(pa)) == pa
        # a chunk row (1 KB) stays inside one bank
        pus = {
            (c.channel, c.rank, c.bank)
            for c in (mapping.decode(pa) for pa in range(0, 1024, 32))
        }
        assert len(pus) == 1

    def test_quarter_row_chunk(self):
        mapping = pim_optimized_mapping(
            ORG, chunk_rows=1, chunk_cols=256, dtype_bytes=2,
            map_id=3, n_bits=21,
        )
        # roundtrip still bijective
        for pa in (0, 1234, (1 << 21) - 1):
            assert mapping.encode(mapping.decode(pa)) == pa


class TestMultiRowChunks:
    """A chunk larger than one DRAM row claims row bits of its own."""

    def test_double_row_chunk(self):
        mapping = pim_optimized_mapping(
            ORG, chunk_rows=1, chunk_cols=2048, dtype_bytes=2,
            map_id=0, n_bits=21,
        )
        # 4 KB chunk = 2 DRAM rows: one row bit sits below the PU bits
        row = mapping.positions(Field.ROW)
        bank = mapping.positions(Field.BANK)
        assert row[0] == 11  # right above the 6 col bits
        assert min(bank) == 12

    def test_roundtrip(self):
        mapping = pim_optimized_mapping(
            ORG, chunk_rows=1, chunk_cols=2048, dtype_bytes=2,
            map_id=1, n_bits=21,
        )
        for pa in range(0, 1 << 21, 40961):
            assert mapping.encode(mapping.decode(pa)) == pa


class TestGddr6Preset:
    def test_faster_column_cadence(self):
        assert GDDR6_16000_TIMINGS.tCCD < LPDDR5_6400_TIMINGS.tCCD
        assert GDDR6_16000_TIMINGS.tRC < LPDDR5_6400_TIMINGS.tRC

    def test_aim_gddr6_full_rate(self):
        from repro.pim.config import AIM_GDDR6, AIM_LPDDR5

        assert AIM_GDDR6.mac_ccd_multiplier == 1
        assert AIM_LPDDR5.mac_ccd_multiplier == 2
        assert AIM_GDDR6.chunk_bytes == AIM_LPDDR5.chunk_bytes

    def test_gddr6_gemv_faster(self):
        from repro.core.selector import MatrixConfig
        from repro.dram.config import DramConfig, lpddr5_organization
        from repro.pim.config import AIM_GDDR6, AIM_LPDDR5
        from repro.pim.gemv import gemv_latency

        org = lpddr5_organization(256, 64)
        lpddr5 = gemv_latency(
            MatrixConfig(4096, 4096),
            DramConfig(org, LPDDR5_6400_TIMINGS),
            AIM_LPDDR5,
        )
        gddr6 = gemv_latency(
            MatrixConfig(4096, 4096),
            DramConfig(org, GDDR6_16000_TIMINGS).with_data_rate(16000),
            AIM_GDDR6,
        )
        assert gddr6.total_ns < lpddr5.total_ns / 2
