"""MapID journal: transaction API, per-site crash recovery, idempotence.

The journal's contract is that a crash at *any* announced site recovers
to the state of some crash-free history: allocations roll back to
nothing, frees and phase switches roll forward to completion (a switch
that never registered its new mapping rolls back instead).  The broad
seeded sweep lives in ``tests/serving/test_crashes.py``; this module
pins down each mechanism on hand-built states.
"""

import pytest

from repro.core.journal import CRASH_SITES, InjectedCrash, MapJournal, recover
from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.pim.config import aim_config_for
from repro.reliability.campaign import TINY_CAMPAIGN_ORG
from repro.reliability.faults import FaultInjector

MATRIX = MatrixConfig(rows=16, cols=256, dtype_bytes=2)


@pytest.fixture
def system():
    org = TINY_CAMPAIGN_ORG
    return PimSystem.build(org, aim_config_for(org), functional=True, journal=True)


@pytest.fixture
def injector(system):
    injector = FaultInjector(seed=0).attach(system)
    yield injector
    injector.detach()


def crash_at(system, injector, site, operation):
    injector.schedule_crash(site)
    with pytest.raises(InjectedCrash) as exc_info:
        operation()
    assert exc_info.value.site == site
    return system.recover()


class TestJournalApi:
    def test_begin_step_commit_lifecycle(self):
        journal = MapJournal()
        txn = journal.begin("alloc", nbytes=4096)
        journal.step(txn, "registered", map_id=3)
        assert txn.step_names() == ["registered"]
        assert txn.find_step("registered") == {"map_id": 3}
        assert journal.uncommitted() == [txn]
        journal.commit(txn)
        assert journal.uncommitted() == []

    def test_step_after_commit_raises(self):
        journal = MapJournal()
        txn = journal.begin("free", va=0)
        journal.commit(txn)
        with pytest.raises(ValueError, match="committed"):
            journal.step(txn, "unmapped")

    def test_truncate_committed_compacts(self):
        journal = MapJournal()
        done = journal.begin("alloc")
        journal.commit(done)
        open_txn = journal.begin("free", va=0)
        assert journal.truncate_committed() == 1
        assert journal.transactions() == [open_txn]

    def test_recover_without_journal_raises(self):
        org = TINY_CAMPAIGN_ORG
        plain = PimSystem.build(org, aim_config_for(org), functional=True)
        with pytest.raises(ValueError, match="journal"):
            recover(plain.allocator)


class TestAllocRollsBack:
    @pytest.mark.parametrize(
        "site", [s for s in CRASH_SITES if s.startswith("alloc:")]
    )
    def test_crashed_alloc_leaves_no_trace(self, system, injector, site):
        report = crash_at(
            system, injector, site, lambda: system.pimalloc(MATRIX)
        )
        assert len(report.actions) == 1
        assert report.actions[0].resolution in ("rolled-back", "no-op")
        # pristine: no mapped areas, only the conventional mapping
        assert not system.space.areas
        assert system.controller.table.refcounts() == {0: 1}

    def test_interrupted_alloc_releases_its_map_id(self, system, injector):
        report = crash_at(
            system,
            injector,
            "alloc:mapped",
            lambda: system.pimalloc(MATRIX),
        )
        action = report.actions[0]
        assert action.resolution == "rolled-back"
        assert "released_map_id" in action.detail
        assert "unmapped_va" in action.detail


class TestFreeRollsForward:
    @pytest.mark.parametrize(
        "site", [s for s in CRASH_SITES if s.startswith("free:")]
    )
    def test_crashed_free_completes(self, system, injector, site):
        tensor = system.pimalloc(MATRIX)
        report = crash_at(system, injector, site, tensor.free)
        action = report.actions[0]
        assert action.resolution in ("rolled-forward", "no-op")
        assert not system.space.areas
        assert system.controller.table.refcounts() == {0: 1}


class TestSwitchRecovers:
    def test_crash_before_registration_rolls_back(self, system, injector):
        tensor = system.pimalloc(MATRIX)
        old_map_id = tensor.map_id
        report = crash_at(
            system,
            injector,
            "switch:staged",
            lambda: system.allocator.switch_mapping(tensor),
        )
        action = report.actions[0]
        assert action.resolution == "rolled-back"
        assert action.detail["kept_map_id"] == old_map_id
        # region still translates through the old mapping; staging gone
        assert set(system.space.areas) == {tensor.va}
        assert system.controller.table.refcounts() == {0: 1, old_map_id: 1}

    @pytest.mark.parametrize("site", ["switch:pte", "switch:rewritten"])
    def test_crash_after_registration_rolls_forward(self, system, injector, site):
        tensor = system.pimalloc(MATRIX)
        old_map_id = tensor.map_id
        report = crash_at(
            system,
            injector,
            site,
            lambda: system.allocator.switch_mapping(tensor),
        )
        action = report.actions[0]
        assert action.resolution == "rolled-forward"
        new_map_id = action.detail["new_map_id"]
        assert new_map_id != old_map_id
        # the switch completed: old reference released, new one live
        assert system.controller.table.refcounts() == {0: 1, new_map_id: 1}
        assert set(system.space.areas) == {tensor.va}

    def test_rolled_forward_switch_preserves_bytes(self, system, injector):
        import numpy as np

        tensor = system.pimalloc(MATRIX)
        data = np.arange(MATRIX.rows * MATRIX.cols, dtype=np.uint16).reshape(
            MATRIX.rows, MATRIX.cols
        )
        tensor.store(data)
        report = crash_at(
            system,
            injector,
            "switch:pte",
            lambda: system.allocator.switch_mapping(tensor),
        )
        new_map_id = report.actions[0].detail["new_map_id"]
        tensor.map_id = new_map_id
        tensor.mapping = system.controller.table[new_map_id]
        assert np.array_equal(tensor.load(np.uint16), data)


class TestIdempotence:
    def test_recovering_twice_is_a_noop(self, system, injector):
        tensor = system.pimalloc(MATRIX)
        crash_at(system, injector, "free:unmapped", tensor.free)
        second = system.recover()
        assert second.actions == []

    def test_committed_transactions_are_untouched(self, system):
        tensor = system.pimalloc(MATRIX)
        tensor.free()
        report = system.recover()
        assert report.actions == []
        assert system.journal.uncommitted() == []
