"""Selector boundaries: Fig. 10 partitioning exactly at the per-bank
share, and matrices smaller than one chunk (regression for the
map_id-below-leftover defect the static verifier surfaced)."""

import pytest

from repro.core.mapping import Field
from repro.core.selector import (
    MatrixConfig,
    build_selected_mapping,
    pu_order_for,
    select_mapping,
)
from repro.dram.config import lpddr5_organization
from repro.pim.config import AIM_LPDDR5

ORG = lpddr5_organization(256, 64)
HP = 2 << 20
PER_BANK = HP // ORG.total_banks


class TestPartitionBoundary:
    """One matrix row vs. the bank's share of a huge page (Fig. 10)."""

    def _select(self, cols):
        return select_mapping(
            MatrixConfig(rows=64, cols=cols), ORG, AIM_LPDDR5, HP
        )

    def test_row_exactly_filling_share_not_partitioned(self):
        cols = PER_BANK // 2  # fp16: row bytes == per-bank share
        selection = self._select(cols)
        assert not selection.needs_partition
        assert selection.partitions_per_row == 1
        assert selection.padded_row_bytes == PER_BANK
        assert pu_order_for(selection)[0] == Field.BANK

    def test_one_element_over_partitions(self):
        cols = PER_BANK // 2 + 1  # pads to 2x the share
        selection = self._select(cols)
        assert selection.needs_partition
        assert selection.partitions_per_row == 2
        # Partitioned rows keep the maximal MapID: the PU bits sit at
        # the page MSB so each partition fills its bank contiguously.
        boundary = self._select(PER_BANK // 2)
        assert selection.map_id == boundary.map_id
        # and partitions spread across channels first
        assert pu_order_for(selection)[0] == Field.CHANNEL

    def test_partitioned_mapping_buildable_and_channel_first(self):
        cols = PER_BANK  # 2x over: 2 partitions
        matrix = MatrixConfig(rows=64, cols=cols)
        mapping = select_and_build(matrix)
        # partitioned placement flips the PU order: channel bits sit
        # below the bank bits so partitions spread across channels
        channel = mapping.positions(Field.CHANNEL)
        bank = mapping.positions(Field.BANK)
        assert max(channel) < min(bank)
        # adjacent partitions of one row land in different channels:
        # the first PA bit above a bank's page share flips the channel
        selection = select_mapping(matrix, ORG, AIM_LPDDR5, HP)
        a = mapping.decode(0)
        b = mapping.decode(selection.bytes_per_bank_per_page)
        assert a.channel != b.channel

    def test_page_wide_row_spans_pages(self):
        # A row wider than a whole huge page is spread over more PUs
        # than one page holds — it spans huge pages, each bank keeping
        # its per-page share.
        selection = self._select(HP)  # fp16: 4 MB row in 2 MB pages
        assert selection.needs_partition
        assert selection.partitions_per_row > ORG.total_banks
        assert (
            selection.partitions_per_row * selection.bytes_per_bank_per_page
            == selection.padded_row_bytes
        )


def select_and_build(matrix):
    return build_selected_mapping(matrix, ORG, AIM_LPDDR5, HP)


class TestSubChunkMatrices:
    """Matrices narrower than one chunk pad up to it and use MapID 0."""

    def test_tiny_matrix_selects_map_id_zero(self):
        selection = select_mapping(
            MatrixConfig(rows=1, cols=64), ORG, AIM_LPDDR5, HP
        )
        assert selection.map_id == 0
        assert selection.padded_row_bytes == AIM_LPDDR5.chunk_row_bytes

    def test_sub_chunk_mapping_builds(self):
        # Regression: the builder used to reject map_id=0 whenever the
        # chunk left leftover column bits; the selector legitimately
        # picks 0 for sub-chunk rows.
        mapping = select_and_build(MatrixConfig(rows=1, cols=64))
        for pa in (0, 12345, HP - 1):
            assert mapping.encode(mapping.decode(pa)) == pa

    def test_sub_chunk_row_stays_in_one_pu(self):
        mapping = select_and_build(MatrixConfig(rows=1, cols=64))
        pus = {
            (c.channel, c.rank, c.bank)
            for c in (
                mapping.decode(pa)
                for pa in range(0, AIM_LPDDR5.chunk_row_bytes,
                                ORG.transfer_bytes)
            )
        }
        assert len(pus) == 1

    @pytest.mark.parametrize("cols", [1, 33, 64, 100, 512, 1023])
    def test_all_sub_chunk_widths_build(self, cols):
        mapping = select_and_build(MatrixConfig(rows=8, cols=cols))
        assert mapping.encode(mapping.decode(0x1234)) == 0x1234
