"""Tests for the LLM architecture catalog."""

import pytest

from repro.llm.model_config import (
    LLAMA3_8B,
    OPT_6_7B,
    PHI_1_5,
    LlmConfig,
    model_by_name,
)


class TestWeightFootprints:
    def test_llama3_matches_paper(self):
        """The paper cites 16.2 GB for Llama3-8B at FP16 (§V-C)."""
        gb = LLAMA3_8B.weight_bytes() / 1e9
        assert 15.5 < gb < 17.0

    def test_opt_6_7b(self):
        gb = OPT_6_7B.weight_bytes() / 1e9
        assert 12.0 < gb < 14.5

    def test_phi_1_5(self):
        gb = PHI_1_5.weight_bytes() / 1e9
        assert 2.2 < gb < 3.4


class TestArchitecture:
    def test_llama_gqa(self):
        assert LLAMA3_8B.kv_dim == 1024  # 8 KV heads x 128 head dim
        assert LLAMA3_8B.head_dim == 128
        assert LLAMA3_8B.ffn_kind == "gated"

    def test_opt_mha(self):
        assert OPT_6_7B.kv_dim == OPT_6_7B.d_model
        assert OPT_6_7B.ffn_kind == "mlp"
        assert OPT_6_7B.tied_embeddings

    def test_kv_cache_traffic(self):
        per_token = LLAMA3_8B.kv_cache_bytes_per_token
        assert per_token == 2 * 1024 * 2 * 32

    def test_validation(self):
        with pytest.raises(ValueError, match="ffn_kind"):
            LlmConfig("x", 2, 128, 4, 4, 512, 1000, ffn_kind="weird")
        with pytest.raises(ValueError, match="heads"):
            LlmConfig("x", 2, 100, 3, 3, 512, 1000, ffn_kind="mlp")
        with pytest.raises(ValueError, match="GQA"):
            LlmConfig("x", 2, 128, 4, 3, 512, 1000, ffn_kind="mlp")


class TestLookup:
    def test_by_name(self):
        assert model_by_name("llama3-8b") is LLAMA3_8B

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown model"):
            model_by_name("gpt-17")
