"""Tests for the dataset length-trace samplers."""

import numpy as np

from repro.llm.datasets import (
    ALPACA_LIKE,
    HUMANEVAL_AUTOCOMPLETE_LIKE,
    DatasetSpec,
    sample_trace,
)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = sample_trace(ALPACA_LIKE, 50, seed=7)
        b = sample_trace(ALPACA_LIKE, 50, seed=7)
        assert a == b

    def test_different_seed_differs(self):
        a = sample_trace(ALPACA_LIKE, 50, seed=7)
        b = sample_trace(ALPACA_LIKE, 50, seed=8)
        assert a != b


class TestBounds:
    def test_lengths_clipped(self):
        for spec in (ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE):
            trace = sample_trace(spec, 500, seed=0)
            for query in trace:
                assert spec.prefill_min <= query.prefill_tokens <= spec.prefill_max
                assert spec.decode_min <= query.decode_tokens <= spec.decode_max


class TestDistributionShape:
    def test_alpaca_is_decode_dominated(self):
        """Conversation queries: answers longer than prompts on average."""
        trace = sample_trace(ALPACA_LIKE, 500, seed=1)
        mean_prefill = np.mean([q.prefill_tokens for q in trace])
        mean_decode = np.mean([q.decode_tokens for q in trace])
        assert mean_decode > mean_prefill

    def test_autocomplete_queries_are_short(self):
        """Autocomplete fires per keystroke burst: small prefill, small
        decode (see module docstring for why the paper pins this down)."""
        trace = sample_trace(HUMANEVAL_AUTOCOMPLETE_LIKE, 500, seed=1)
        median_prefill = np.median([q.prefill_tokens for q in trace])
        assert median_prefill < np.median(
            [q.decode_tokens for q in sample_trace(ALPACA_LIKE, 500, seed=1)]
        )

    def test_heavy_tail_exists(self):
        trace = sample_trace(ALPACA_LIKE, 1000, seed=2)
        decodes = [q.decode_tokens for q in trace]
        assert max(decodes) > 4 * np.median(decodes)


class TestCustomSpec:
    def test_fixed_lengths(self):
        spec = DatasetSpec(
            name="fixed",
            prefill_mu=np.log(32), prefill_sigma=1e-9, prefill_min=32, prefill_max=32,
            decode_mu=np.log(8), decode_sigma=1e-9, decode_min=8, decode_max=8,
        )
        trace = sample_trace(spec, 10)
        assert all(q.prefill_tokens == 32 and q.decode_tokens == 8 for q in trace)
