"""Tests for the dataset length-trace samplers."""

import numpy as np

import pytest

from repro.llm.datasets import (
    ALPACA_LIKE,
    CHAT_TO_LONG_CONTEXT_DRIFT,
    HUMANEVAL_AUTOCOMPLETE_LIKE,
    DatasetSpec,
    DriftingDatasetSpec,
    sample_trace,
)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = sample_trace(ALPACA_LIKE, 50, seed=7)
        b = sample_trace(ALPACA_LIKE, 50, seed=7)
        assert a == b

    def test_different_seed_differs(self):
        a = sample_trace(ALPACA_LIKE, 50, seed=7)
        b = sample_trace(ALPACA_LIKE, 50, seed=8)
        assert a != b


class TestBounds:
    def test_lengths_clipped(self):
        for spec in (ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE):
            trace = sample_trace(spec, 500, seed=0)
            for query in trace:
                assert spec.prefill_min <= query.prefill_tokens <= spec.prefill_max
                assert spec.decode_min <= query.decode_tokens <= spec.decode_max


class TestDistributionShape:
    def test_alpaca_is_decode_dominated(self):
        """Conversation queries: answers longer than prompts on average."""
        trace = sample_trace(ALPACA_LIKE, 500, seed=1)
        mean_prefill = np.mean([q.prefill_tokens for q in trace])
        mean_decode = np.mean([q.decode_tokens for q in trace])
        assert mean_decode > mean_prefill

    def test_autocomplete_queries_are_short(self):
        """Autocomplete fires per keystroke burst: small prefill, small
        decode (see module docstring for why the paper pins this down)."""
        trace = sample_trace(HUMANEVAL_AUTOCOMPLETE_LIKE, 500, seed=1)
        median_prefill = np.median([q.prefill_tokens for q in trace])
        assert median_prefill < np.median(
            [q.decode_tokens for q in sample_trace(ALPACA_LIKE, 500, seed=1)]
        )

    def test_heavy_tail_exists(self):
        trace = sample_trace(ALPACA_LIKE, 1000, seed=2)
        decodes = [q.decode_tokens for q in trace]
        assert max(decodes) > 4 * np.median(decodes)


class TestDriftingSpec:
    DRIFT = CHAT_TO_LONG_CONTEXT_DRIFT

    def test_weight_ramps_linearly_across_the_window(self):
        start_ns = self.DRIFT.drift_start_ms * 1e6
        end_ns = self.DRIFT.drift_end_ms * 1e6
        assert self.DRIFT.weight_after(0.0) == 0.0
        assert self.DRIFT.weight_after(start_ns) == 0.0
        mid = (start_ns + end_ns) / 2
        assert self.DRIFT.weight_after(mid) == pytest.approx(0.5)
        assert self.DRIFT.weight_after(end_ns) == 1.0
        assert self.DRIFT.weight_after(end_ns * 10) == 1.0

    def test_spec_at_returns_the_phases_outside_the_window(self):
        assert self.DRIFT.spec_at(0.0) is self.DRIFT.before
        assert self.DRIFT.spec_at(self.DRIFT.drift_end_ms * 1e6) is self.DRIFT.after
        mid = (self.DRIFT.drift_start_ms + self.DRIFT.drift_end_ms) / 2 * 1e6
        blended = self.DRIFT.spec_at(mid)
        lo = min(self.DRIFT.before.prefill_mu, self.DRIFT.after.prefill_mu)
        hi = max(self.DRIFT.before.prefill_mu, self.DRIFT.after.prefill_mu)
        assert lo < blended.prefill_mu < hi

    def test_time_blind_sampling_matches_the_before_phase(self):
        """Same draw discipline: a drifting spec handed to a time-blind
        caller reproduces the static 'before' spec byte for byte."""
        import random

        a = [self.DRIFT.sample_one(random.Random(5)) for _ in range(3)]
        b = [self.DRIFT.before.sample_one(random.Random(5)) for _ in range(3)]
        assert a == b

    def test_samples_drift_from_short_to_long(self):
        import random

        rng = random.Random(0)
        pre = [self.DRIFT.sample_at(rng, 0.0) for _ in range(200)]
        post = [
            self.DRIFT.sample_at(rng, self.DRIFT.drift_end_ms * 1e6)
            for _ in range(200)
        ]
        assert max(q.prefill_tokens for q in pre) <= self.DRIFT.before.prefill_max
        assert min(q.prefill_tokens for q in post) >= self.DRIFT.after.prefill_min
        assert np.mean([q.prefill_tokens for q in post]) > 2 * np.mean(
            [q.prefill_tokens for q in pre]
        )

    def test_batch_sample_frozen_at_a_time(self):
        frozen = self.DRIFT.sample(50, seed=1, t_ns=self.DRIFT.drift_end_ms * 1e6)
        assert frozen == self.DRIFT.after.sample(50, seed=1)

    def test_rejects_inverted_drift_window(self):
        with pytest.raises(ValueError, match="drift_end_ms"):
            DriftingDatasetSpec(
                name="bad",
                before=ALPACA_LIKE,
                after=HUMANEVAL_AUTOCOMPLETE_LIKE,
                drift_start_ms=100.0,
                drift_end_ms=100.0,
            )


class TestCustomSpec:
    def test_fixed_lengths(self):
        spec = DatasetSpec(
            name="fixed",
            prefill_mu=np.log(32), prefill_sigma=1e-9, prefill_min=32, prefill_max=32,
            decode_mu=np.log(8), decode_sigma=1e-9, decode_min=8, decode_max=8,
        )
        trace = sample_trace(spec, 10)
        assert all(q.prefill_tokens == 32 and q.decode_tokens == 8 for q in trace)
