"""Tests for the op-level model decomposition."""

from repro.llm.layers import linear_specs, total_linear_bytes
from repro.llm.model_config import LLAMA3_8B, OPT_6_7B, PHI_1_5


class TestLlamaSpecs:
    def test_spec_names(self):
        names = {spec.name for spec in linear_specs(LLAMA3_8B)}
        assert names == {
            "q_proj", "k_proj", "v_proj", "o_proj",
            "gate_proj", "up_proj", "down_proj", "lm_head",
        }

    def test_shapes(self):
        specs = {s.name: s for s in linear_specs(LLAMA3_8B)}
        assert (specs["q_proj"].out_features, specs["q_proj"].in_features) == (4096, 4096)
        assert (specs["k_proj"].out_features, specs["k_proj"].in_features) == (1024, 4096)
        assert (specs["gate_proj"].out_features, specs["gate_proj"].in_features) == (14336, 4096)
        assert (specs["down_proj"].out_features, specs["down_proj"].in_features) == (4096, 14336)
        assert specs["lm_head"].out_features == 128256

    def test_counts(self):
        specs = {s.name: s for s in linear_specs(LLAMA3_8B)}
        assert specs["q_proj"].count == 32
        assert specs["lm_head"].count == 1


class TestMlpModels:
    def test_opt_fc_shapes(self):
        specs = {s.name: s for s in linear_specs(OPT_6_7B)}
        assert specs["fc1"].out_features == 16384
        assert specs["fc2"].in_features == 16384
        assert "gate_proj" not in specs

    def test_phi_head(self):
        specs = {s.name: s for s in linear_specs(PHI_1_5)}
        assert specs["fc1"].out_features == 8192


class TestBytes:
    def test_total_matches_model_linears(self):
        total = total_linear_bytes(LLAMA3_8B)
        # embeddings are not a linear op; weight_bytes() counts them
        assert total < LLAMA3_8B.weight_bytes()
        assert total > 0.9 * LLAMA3_8B.weight_bytes() - LLAMA3_8B.vocab_size * LLAMA3_8B.d_model * 2

    def test_exclude_head(self):
        with_head = total_linear_bytes(LLAMA3_8B, include_head=True)
        without = total_linear_bytes(LLAMA3_8B, include_head=False)
        assert with_head - without == 128256 * 4096 * 2

    def test_matrix_config_conversion(self):
        spec = linear_specs(LLAMA3_8B)[0]
        cfg = spec.matrix_config()
        assert cfg.rows == spec.out_features
        assert cfg.cols == spec.in_features
