"""Unit tests for the transformer numeric building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.llm.ops import gqa_attention, rms_norm, softmax, swiglu


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = rng.standard_normal((4, 7))
        out = softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-6)

    def test_stable_for_large_inputs(self):
        out = softmax(np.array([1000.0, 1000.0, -1000.0]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[:2], 0.5, rtol=1e-6)

    @given(st.integers(min_value=2, max_value=16), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_shift_invariance(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(softmax(x), softmax(x + 42.0), rtol=1e-6)


class TestRmsNorm:
    def test_unit_rms(self, rng):
        x = rng.standard_normal((3, 64)) * 10
        out = rms_norm(x)
        rms = np.sqrt((out * out).mean(axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_scale_invariant_direction(self, rng):
        x = rng.standard_normal(32)
        np.testing.assert_allclose(rms_norm(x), rms_norm(5 * x), rtol=1e-4)


class TestSwiglu:
    def test_zero_gate_zeroes_output(self):
        up = np.ones(8)
        out = swiglu(np.full(8, -100.0), up)
        np.testing.assert_allclose(out, 0.0, atol=1e-8)

    def test_large_gate_passes_up(self):
        up = np.arange(8, dtype=float)
        out = swiglu(np.full(8, 100.0), up)
        np.testing.assert_allclose(out, up * 100.0, rtol=1e-6)


class TestGqaAttention:
    def test_single_head_matches_manual(self, rng):
        q = rng.standard_normal((2, 8)).astype(np.float32)
        k = rng.standard_normal((2, 8)).astype(np.float32)
        v = rng.standard_normal((2, 8)).astype(np.float32)
        out = gqa_attention(q, k, v, n_heads=1, n_kv_heads=1)
        scores = q @ k.T / np.sqrt(8)
        scores[0, 1] = -1e30  # causal
        expected = softmax(scores) @ v
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_causality(self, rng):
        """Changing a future key/value must not affect earlier outputs."""
        q = rng.standard_normal((3, 16)).astype(np.float32)
        k = rng.standard_normal((3, 16)).astype(np.float32)
        v = rng.standard_normal((3, 16)).astype(np.float32)
        base = gqa_attention(q, k, v, 2, 2)
        k2, v2 = k.copy(), v.copy()
        k2[2] += 1.0
        v2[2] -= 1.0
        changed = gqa_attention(q, k2, v2, 2, 2)
        np.testing.assert_allclose(base[:2], changed[:2], rtol=1e-6)
        assert not np.allclose(base[2], changed[2])

    def test_gqa_groups_share_kv(self, rng):
        """With one KV head, all query heads attend to the same K/V."""
        q = rng.standard_normal((1, 32)).astype(np.float32)
        k = rng.standard_normal((1, 8)).astype(np.float32)
        v = rng.standard_normal((1, 8)).astype(np.float32)
        out = gqa_attention(q, k, v, n_heads=4, n_kv_heads=1)
        # single context position: attention output == v for every head
        np.testing.assert_allclose(out.reshape(4, 8), np.tile(v, (4, 1)), rtol=1e-6)

    def test_offset_decode_step(self, rng):
        q = rng.standard_normal((1, 16)).astype(np.float32)
        k = rng.standard_normal((5, 16)).astype(np.float32)
        v = rng.standard_normal((5, 16)).astype(np.float32)
        out = gqa_attention(q, k, v, 2, 2, causal_offset=4)
        assert out.shape == (1, 16)

    def test_bad_head_grouping(self):
        with pytest.raises(ValueError):
            gqa_attention(np.zeros((1, 12)), np.zeros((1, 8)), np.zeros((1, 8)), 3, 2)
