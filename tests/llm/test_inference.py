"""Tests for phase plans (prefill / decode cost accounting)."""

import pytest

from repro.llm.inference import decode_step_plan, prefill_plan
from repro.llm.model_config import LLAMA3_8B


class TestPrefillPlan:
    def test_batch_tokens(self):
        plan = prefill_plan(LLAMA3_8B, 64)
        assert plan.batch_tokens == 64
        assert len(plan.linears) == 8

    def test_attention_scales_quadratically(self):
        short = prefill_plan(LLAMA3_8B, 16).attention
        long = prefill_plan(LLAMA3_8B, 64).attention
        assert long.flops > 10 * short.flops  # ~16x for 4x tokens

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            prefill_plan(LLAMA3_8B, 0)


class TestDecodePlan:
    def test_single_token(self):
        plan = decode_step_plan(LLAMA3_8B, 128)
        assert plan.batch_tokens == 1

    def test_attention_scales_with_context(self):
        early = decode_step_plan(LLAMA3_8B, 64).attention
        late = decode_step_plan(LLAMA3_8B, 512).attention
        assert late.flops > early.flops
        assert late.bytes_moved > early.bytes_moved

    def test_kv_cache_dominates_attention_bytes(self):
        plan = decode_step_plan(LLAMA3_8B, 1024)
        kv_bytes = 2 * 1024 * LLAMA3_8B.kv_dim * 2 * LLAMA3_8B.n_layers
        assert plan.attention.bytes_moved >= kv_bytes

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            decode_step_plan(LLAMA3_8B, 0)


class TestKernelCounts:
    def test_attention_kernels_scale_with_layers(self):
        plan = decode_step_plan(LLAMA3_8B, 64)
        assert plan.attention.n_kernels == 5 * 32
