"""Tests for the SoC's functional kernels over pimalloc'ed tensors.

These are the SoC half of FACIL's headline claim: BLAS-style kernels read
the same physical bytes PIM computes on, through plain virtual addresses.
"""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.pim.config import aim_config_for
from repro.soc.kernels import gemm_reference, gemv_reference, soc_gemm, soc_gemv


@pytest.fixture
def system():
    return PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))


class TestReferences:
    def test_gemm_reference_fp32_accumulation(self, rng):
        a = rng.standard_normal((8, 16)).astype(np.float16)
        b = rng.standard_normal((16, 4)).astype(np.float16)
        out = gemm_reference(a, b)
        assert out.dtype == np.float32
        np.testing.assert_allclose(
            out, a.astype(np.float32) @ b.astype(np.float32)
        )

    def test_gemv_reference(self, rng):
        a = rng.standard_normal((8, 16)).astype(np.float16)
        x = rng.standard_normal(16).astype(np.float16)
        np.testing.assert_allclose(gemv_reference(a, x), gemm_reference(a, x))


class TestSocOnPimallocTensor:
    def test_gemm_on_pim_layout_no_relayout(self, system, rng):
        weights = rng.standard_normal((16, 300)).astype(np.float16)
        activations = rng.standard_normal((300, 5)).astype(np.float16)
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=300))
        tensor.store(weights)
        out = soc_gemm(tensor, activations)
        np.testing.assert_allclose(out, gemm_reference(weights, activations))

    def test_gemv_on_pim_layout(self, system, rng):
        weights = rng.standard_normal((16, 300)).astype(np.float16)
        x = rng.standard_normal(300).astype(np.float16)
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=300))
        tensor.store(weights)
        np.testing.assert_allclose(soc_gemv(tensor, x), gemv_reference(weights, x))

    def test_shape_mismatch_rejected(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=300))
        tensor.store(np.zeros((16, 300), dtype=np.float16))
        with pytest.raises(ValueError, match="activations"):
            soc_gemm(tensor, np.zeros((299, 2), dtype=np.float16))
