"""Tests for the GEMM-on-PIM-layout slowdown machinery (Table III)."""

import numpy as np
import pytest

from repro.core.selector import MatrixConfig
from repro.platforms.specs import JETSON_ORIN
from repro.soc.layout_effects import gemm_layout_slowdown, gemm_weight_stream


class TestWeightStream:
    def test_addresses_within_allocation(self):
        matrix = MatrixConfig(rows=128, cols=512)
        pas = gemm_weight_stream(matrix, max_transfers=4096)
        assert pas.min() >= 0
        assert pas.max() < matrix.rows * matrix.padded_row_bytes

    def test_transfer_aligned(self):
        pas = gemm_weight_stream(MatrixConfig(128, 512), max_transfers=2048)
        assert np.all(pas % 32 == 0)

    def test_covers_whole_matrix_when_small(self):
        matrix = MatrixConfig(rows=64, cols=256)
        pas = gemm_weight_stream(matrix, max_transfers=1 << 20)
        expected = matrix.rows * matrix.padded_row_bytes // 32
        assert len(np.unique(pas)) == expected

    def test_orders_differ(self):
        matrix = MatrixConfig(rows=512, cols=4096)
        m_major = gemm_weight_stream(matrix, order="m", max_transfers=4096)
        k_major = gemm_weight_stream(matrix, order="k", max_transfers=4096)
        assert not np.array_equal(m_major, k_major)

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            gemm_weight_stream(MatrixConfig(8, 256), order="z")

    def test_deterministic(self):
        matrix = MatrixConfig(rows=128, cols=1024)
        a = gemm_weight_stream(matrix, max_transfers=2048)
        b = gemm_weight_stream(matrix, max_transfers=2048)
        assert np.array_equal(a, b)


class TestSlowdown:
    @pytest.fixture(scope="class")
    def effect(self):
        return gemm_layout_slowdown(
            MatrixConfig(1024, 4096),
            JETSON_ORIN.dram,
            JETSON_ORIN.pim,
            JETSON_ORIN.soc,
            prefill_len=16,
            sample_transfers=8192,
        )

    def test_slowdown_non_negative(self, effect):
        assert effect.slowdown >= 0.0
        assert effect.read_slowdown >= 0.0

    def test_conventional_reads_fast(self, effect):
        """The tuned-schedule conventional read should approach peak."""
        assert effect.conv_read_gbps > 0.7 * JETSON_ORIN.peak_bw_gbps

    def test_pim_layout_usable_by_gemm(self, effect):
        """Table III's point: GEMM can consume the PIM layout directly.
        Our cache-less replay is an upper bound on the cost (the paper,
        with full cache hierarchies, measures 0-2.1%); even so the layout
        stays within a small factor of the conventional one — nothing
        like the full re-layout the baseline pays."""
        assert effect.pim_read_gbps > 0.3 * effect.conv_read_gbps

    def test_memory_fraction_tracks_prefill(self):
        small = gemm_layout_slowdown(
            MatrixConfig(512, 4096), JETSON_ORIN.dram, JETSON_ORIN.pim,
            JETSON_ORIN.soc, prefill_len=4, sample_transfers=4096,
        )
        large = gemm_layout_slowdown(
            MatrixConfig(512, 4096), JETSON_ORIN.dram, JETSON_ORIN.pim,
            JETSON_ORIN.soc, prefill_len=2048, sample_transfers=4096,
        )
        assert small.memory_fraction >= large.memory_fraction
        assert small.slowdown >= large.slowdown
