"""Tests for the roofline SoC model."""

import pytest

from repro.soc.processor import SocProcessor, ideal_npu


def _soc(**overrides):
    defaults = dict(
        name="test", kind="gpu", peak_tflops_fp16=40.0, peak_bw_gbps=200.0,
        bw_utilization=0.8, compute_efficiency=0.8, kernel_launch_ns=0.0,
    )
    defaults.update(overrides)
    return SocProcessor(**defaults)


class TestValidation:
    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            _soc(bw_utilization=0.0)
        with pytest.raises(ValueError):
            _soc(bw_utilization=1.5)

    def test_rejects_bad_peaks(self):
        with pytest.raises(ValueError):
            _soc(peak_tflops_fp16=0)


class TestRoofline:
    def test_ridge_point(self):
        soc = _soc()
        assert soc.ridge_point_flop_per_byte == pytest.approx(200.0)

    def test_memory_bound_op(self):
        soc = _soc()
        # 1 GB at 160 GB/s effective: 6.25 ms; trivial flops
        ns = soc.op_time_ns(flops=1e6, bytes_moved=1e9)
        assert ns == pytest.approx(1e9 / 160.0)

    def test_compute_bound_op(self):
        soc = _soc()
        ns = soc.op_time_ns(flops=3.2e12, bytes_moved=1e6)
        assert ns == pytest.approx(3.2e12 / (40e3 * 0.8))

    def test_launch_overhead_added(self):
        fast = _soc(kernel_launch_ns=0.0)
        slow = _soc(kernel_launch_ns=10_000.0)
        assert slow.op_time_ns(1, 1) - fast.op_time_ns(1, 1) == pytest.approx(10_000.0)


class TestGemm:
    def test_gemv_is_memory_bound(self):
        soc = _soc()
        m, k = 4096, 4096
        ns = soc.gemv_time_ns(m, k)
        weight_bytes = m * k * 2
        assert ns >= weight_bytes / (200.0 * 0.8)

    def test_gemm_becomes_compute_bound_with_batch(self):
        soc = _soc()
        per_token_small = soc.gemm_time_ns(4096, 8, 4096) / 8
        per_token_large = soc.gemm_time_ns(4096, 4096, 4096) / 4096
        # amortization stops once compute-bound
        assert per_token_large < per_token_small

    def test_lda_padding_adds_traffic(self):
        soc = _soc()
        tight = soc.gemm_time_ns(4096, 1, 14336)
        padded = soc.gemm_time_ns(4096, 1, 14336, lda=16384)
        assert padded > tight

    def test_stream_time(self):
        soc = _soc()
        assert soc.stream_time_ns(160e9) == pytest.approx(1e9)


class TestIdealNpu:
    def test_fig3_comparator_properties(self):
        """Fig. 3's comparator: infinite FLOPS, 100 % of peak bandwidth."""
        npu = ideal_npu(204.8)
        assert npu.bw_utilization == 1.0
        # any realistic op is purely memory-bound at full peak
        ns = npu.op_time_ns(flops=1e15, bytes_moved=1e9)
        assert ns == pytest.approx(1e9 / 204.8, rel=1e-3)
