"""Shared fixtures: small functional systems used across test modules."""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.dram.config import TINY_ORG, DramConfig, DramOrganization, LPDDR5_6400_TIMINGS
from repro.pim.config import AIM_LPDDR5, aim_config_for


@pytest.fixture
def tiny_system():
    """8-bank, 256 B-row, 8 MiB functional system (fast)."""
    return PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))


@pytest.fixture
def medium_org():
    """128-bank organization with real 2 KB rows (128 MiB)."""
    return DramOrganization(
        n_channels=4,
        ranks_per_channel=2,
        banks_per_rank=16,
        rows_per_bank=512,
        row_bytes=2048,
        transfer_bytes=32,
    )


@pytest.fixture
def medium_system(medium_org):
    return PimSystem.build(medium_org, AIM_LPDDR5)


@pytest.fixture
def medium_config(medium_org):
    return DramConfig(medium_org, LPDDR5_6400_TIMINGS)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
