"""Prefix tree: chain hashing, walk/insert, LRU leaf eviction."""

import pytest

from repro.kvcache.block import BlockRef
from repro.kvcache.prefix import PrefixTree, chain_hash, token_block_key


class TestHashing:
    def test_deterministic_and_bounded(self):
        assert chain_hash(7, 42) == chain_hash(7, 42)
        assert 0 <= chain_hash(2**61, 2**40) < 2**62

    def test_chain_order_matters(self):
        a = chain_hash(chain_hash(0, 1), 2)
        b = chain_hash(chain_hash(0, 2), 1)
        assert a != b

    def test_conversations_do_not_collide(self):
        keys = {token_block_key(conv, i) for conv in range(50) for i in range(8)}
        assert len(keys) == 50 * 8


def make_chain(tree, keys, start_block=0):
    nodes = []
    parent = None
    for i, key in enumerate(keys):
        parent = tree.insert(parent, key, BlockRef(start_block + i, 0), now_ns=float(i))
        nodes.append(parent)
    return nodes


class TestWalkInsert:
    def test_walk_matches_longest_prefix(self):
        tree = PrefixTree()
        nodes = make_chain(tree, [10, 11, 12])
        assert tree.walk([10, 11, 12, 13]) == nodes
        assert tree.walk([10, 11]) == nodes[:2]
        assert tree.walk([99]) == []
        assert len(tree) == 3

    def test_duplicate_insert_rejected(self):
        tree = PrefixTree()
        make_chain(tree, [10])
        with pytest.raises(ValueError, match="already cached"):
            tree.insert(None, 10, BlockRef(5, 0), now_ns=0.0)

    def test_lookup(self):
        tree = PrefixTree()
        (node,) = make_chain(tree, [10])
        assert tree.lookup(None, 10) is node
        assert tree.lookup(node, 10) is None


class TestAttachment:
    def test_release_beyond_acquire_rejected(self):
        tree = PrefixTree()
        (node,) = make_chain(tree, [10])
        tree.acquire(node, 1.0)
        tree.release(node, 2.0)
        with pytest.raises(ValueError, match="released more"):
            tree.release(node, 3.0)

    def test_idle_nodes_excludes_attached(self):
        tree = PrefixTree()
        a, b = make_chain(tree, [10, 11])
        tree.acquire(b, 5.0)
        assert tree.idle_nodes() == [a]


class TestEviction:
    def test_lru_leaf_prefers_oldest(self):
        tree = PrefixTree()
        make_chain(tree, [10, 11])  # chain: only the tail is a leaf
        other = tree.insert(None, 20, BlockRef(9, 0), now_ns=-1.0)
        assert tree.lru_leaf() is other

    def test_attached_leaves_are_not_victims(self):
        tree = PrefixTree()
        a, b = make_chain(tree, [10, 11])
        tree.acquire(b, 0.0)
        assert tree.lru_leaf() is None  # a is interior, b is attached

    def test_evict_detaches_and_returns_hold(self):
        tree = PrefixTree()
        a, b = make_chain(tree, [10, 11])
        assert tree.evict(b) == BlockRef(1, 0)
        assert len(tree) == 1
        # the parent became the new evictable tail
        assert tree.lru_leaf() is a

    def test_evict_refuses_interior_and_attached(self):
        tree = PrefixTree()
        a, b = make_chain(tree, [10, 11])
        with pytest.raises(ValueError, match="children"):
            tree.evict(a)
        tree.acquire(b, 0.0)
        with pytest.raises(ValueError, match="attached"):
            tree.evict(b)
