"""Shared fixtures for the kvcache test suite."""

import pytest

from repro.engine.policies import InferenceEngine
from repro.platforms.specs import IPHONE_15_PRO


@pytest.fixture(scope="session")
def iphone_engine():
    """One engine on the smallest model (cheap to construct, cached)."""
    return InferenceEngine(IPHONE_15_PRO)
