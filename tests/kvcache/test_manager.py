"""KvCacheManager: admission, sharing, CoW, eviction, preemption, audit."""

import pytest

from repro.kvcache import (
    BlockPool,
    KvCacheManager,
    KvPoolExhausted,
    KvSpec,
)
from repro.kvcache.block import KvCacheError

B = 4  # block_tokens used throughout


def make_kv(num_blocks=16, prefix_sharing=True):
    pool = BlockPool(num_blocks, KvSpec(block_tokens=B, kv_dim=64))
    return KvCacheManager(pool, prefix_sharing=prefix_sharing)


class TestAdmission:
    def test_cold_begin_allocates_everything(self):
        kv = make_kv()
        adm = kv.begin(seq_id=1, conv_key=7, total_tokens=10)
        assert adm.cached_tokens == 0
        assert adm.recompute_tokens == 10
        assert adm.new_blocks == 3  # ceil(10 / 4)
        assert kv.audit() == []

    def test_second_turn_hits_published_prefix(self):
        kv = make_kv()
        kv.begin(1, conv_key=7, total_tokens=10)
        kv.commit(1, 10)
        kv.release(1, retain=True)
        # turn 2 re-enters with the grown context
        adm = kv.begin(2, conv_key=7, total_tokens=14)
        assert adm.cached_tokens == 8  # the two full blocks of turn 1
        assert adm.recompute_tokens == 6
        assert kv.prefix_hit_rate > 0
        kv.commit(2, 6)
        kv.release(2)
        assert kv.audit() == []

    def test_sharing_disabled_never_hits(self):
        kv = make_kv(prefix_sharing=False)
        kv.begin(1, conv_key=7, total_tokens=12)
        kv.commit(1, 12)
        kv.release(1, retain=True)
        adm = kv.begin(2, conv_key=7, total_tokens=12)
        assert adm.cached_tokens == 0
        assert kv.prefix_hit_tokens == 0

    def test_different_conversations_do_not_share(self):
        kv = make_kv()
        kv.begin(1, conv_key=7, total_tokens=8)
        kv.commit(1, 8)
        kv.release(1, retain=True)
        adm = kv.begin(2, conv_key=8, total_tokens=8)
        assert adm.cached_tokens == 0

    def test_failed_begin_holds_nothing(self):
        kv = make_kv(num_blocks=2)
        with pytest.raises(KvPoolExhausted):
            kv.begin(1, conv_key=7, total_tokens=100)
        assert kv.pool.used == 0
        assert kv.live_sequences() == 0
        assert kv.audit() == []

    def test_duplicate_seq_id_rejected(self):
        kv = make_kv()
        kv.begin(1, conv_key=None, total_tokens=4)
        with pytest.raises(ValueError, match="already admitted"):
            kv.begin(1, conv_key=None, total_tokens=4)


class TestGrowth:
    def test_commit_needs_capacity(self):
        kv = make_kv()
        kv.begin(1, conv_key=None, total_tokens=4)
        with pytest.raises(KvCacheError, match="capacity"):
            kv.commit(1, 4 + 1)

    def test_decode_growth_allocates_on_block_boundary(self):
        kv = make_kv()
        kv.begin(1, conv_key=None, total_tokens=4)
        kv.commit(1, 4)
        used = kv.pool.used
        kv.ensure_capacity(1, 1)
        assert kv.pool.used == used + 1
        kv.commit(1, 1)
        assert kv.audit() == []

    def test_failed_growth_rolls_back_additions(self):
        kv = make_kv(num_blocks=2)
        kv.begin(1, conv_key=None, total_tokens=4)
        kv.commit(1, 4)
        with pytest.raises(KvPoolExhausted):
            kv.ensure_capacity(1, 3 * B)
        assert kv.pool.used == 1  # only the original block
        assert kv.audit() == []


class TestForksAndCow:
    def test_fork_shares_all_blocks(self):
        kv = make_kv()
        kv.begin(1, conv_key=None, total_tokens=6)
        kv.commit(1, 6)
        used = kv.pool.used
        kv.fork(1, 2)
        assert kv.pool.used == used  # no new blocks yet
        assert kv.forks == 1
        assert kv.audit() == []

    def test_first_divergent_write_copies_tail(self):
        kv = make_kv()
        kv.begin(1, conv_key=None, total_tokens=6)
        kv.commit(1, 6)
        kv.fork(1, 2)
        kv.ensure_capacity(2, 1)  # CoW the shared partial tail
        assert kv.cow_copies == 1
        kv.commit(2, 1)
        # the parent's view is untouched
        assert kv._seqs[1].tokens == 6
        assert kv._seqs[2].tokens == 7
        kv.release(1, retain=False)
        kv.release(2, retain=False)
        assert kv.pool.used == 0
        assert kv.audit() == []


class TestEvictionPreemption:
    def test_idle_leaves_evicted_under_pressure(self):
        kv = make_kv(num_blocks=4)
        # park two conversations' worth of idle cached blocks
        for conv in (1, 2):
            kv.begin(conv, conv_key=conv, total_tokens=2 * B)
            kv.commit(conv, 2 * B)
            kv.release(conv, retain=True)
        assert kv.pool.used == 4
        # a new conversation displaces the LRU leaves instead of failing
        kv.begin(9, conv_key=9, total_tokens=2 * B)
        assert kv.evictions >= 1
        assert kv.pool.used <= 4
        assert kv.audit() == []

    def test_preempt_keeps_published_prefix(self):
        kv = make_kv()
        kv.begin(1, conv_key=7, total_tokens=2 * B + 1)
        kv.commit(1, 2 * B + 1)
        kv.preempt(1)
        assert kv.preemptions == 1
        # recompute re-admits and hits the retained full blocks
        adm = kv.begin(2, conv_key=7, total_tokens=2 * B + 1)
        assert adm.cached_tokens == 2 * B
        assert kv.audit() == []

    def test_nothing_evictable_raises_with_clean_state(self):
        kv = make_kv(num_blocks=2)
        kv.begin(1, conv_key=None, total_tokens=2 * B)  # both blocks pinned
        with pytest.raises(KvPoolExhausted):
            kv.begin(2, conv_key=None, total_tokens=B)
        assert kv.live_sequences() == 1
        assert kv.audit() == []


class TestPressureAndStats:
    def test_pressure_counts_only_unreclaimable(self):
        kv = make_kv(num_blocks=4)
        assert kv.pressure() == 0.0
        kv.begin(1, conv_key=7, total_tokens=2 * B)
        kv.commit(1, 2 * B)
        assert kv.pressure() == pytest.approx(0.5)
        kv.release(1, retain=True)  # now cached but idle: reclaimable
        assert kv.pressure() == 0.0

    def test_stats_shape(self):
        kv = make_kv()
        kv.begin(1, conv_key=7, total_tokens=10)
        kv.commit(1, 10)
        kv.release(1)
        stats = kv.stats()
        for key in (
            "num_blocks", "block_tokens", "prefix_sharing", "occupancy_peak",
            "occupancy_p99", "evictions", "preemptions", "cow_copies",
            "prefix_hit_rate",
        ):
            assert key in stats
        assert stats["occupancy_peak"] <= stats["num_blocks"]
