"""KV-aware continuous batching through the serving runtime.

``ServingConfig.kv_blocks > 0`` routes :meth:`ServingRuntime.run` to
:func:`repro.kvcache.scheduler.run_kv_serving`; these tests exercise the
integration: bounded pools, prefix-sharing savings, determinism, and the
report plumbing.
"""

import pytest

from repro.serving.runtime import ServingConfig, ServingRuntime
from repro.serving.workload import TenantSpec, poisson_workload


def chat_tenant(**kw):
    defaults = dict(
        name="chat",
        policy="facil",
        qps=0.5,
        deadline_ms=60_000.0,
        mean_turns=3.0,
        think_time_ms=200.0,
    )
    defaults.update(kw)
    return TenantSpec(**defaults)


def run_kv(engine, requests, **config):
    defaults = dict(kv_blocks=256, queue_capacity=64)
    defaults.update(config)
    return ServingRuntime(engine, ServingConfig(**defaults)).run(requests)


@pytest.fixture(scope="module")
def multiturn_requests():
    return poisson_workload([chat_tenant()], duration_ms=20_000.0, seed=11)


class TestIntegration:
    def test_report_carries_kv_section(self, iphone_engine, multiturn_requests):
        report = run_kv(iphone_engine, multiturn_requests)
        assert report.kv is not None
        assert report.kv["num_blocks"] == 256
        assert report.kv["audit_failures"] == []
        assert report.to_dict()["kv"]["num_blocks"] == 256
        assert "kv pool" in report.render()

    def test_legacy_loop_when_kv_disabled(self, iphone_engine, multiturn_requests):
        report = run_kv(iphone_engine, multiturn_requests, kv_blocks=0)
        assert report.kv is None

    def test_every_request_gets_an_outcome(self, iphone_engine, multiturn_requests):
        report = run_kv(iphone_engine, multiturn_requests)
        assert report.offered == len(multiturn_requests)
        assert [o.req_id for o in report.outcomes] == [
            r.req_id for r in multiturn_requests
        ]

    def test_same_seed_same_report(self, iphone_engine, multiturn_requests):
        a = run_kv(iphone_engine, multiturn_requests)
        b = run_kv(iphone_engine, multiturn_requests)
        assert a.to_dict() == b.to_dict()


class TestPrefixSharing:
    def test_sharing_saves_prefill_tokens(self, iphone_engine, multiturn_requests):
        shared = run_kv(iphone_engine, multiturn_requests, prefix_sharing=True)
        cold = run_kv(iphone_engine, multiturn_requests, prefix_sharing=False)
        assert shared.kv["prefill_tokens_saved"] > 0
        assert cold.kv["prefill_tokens_saved"] == 0
        assert shared.kv["prefix_hit_rate"] > 0.0

    def test_sharing_reduces_total_ttft(self, iphone_engine, multiturn_requests):
        """The acceptance criterion: shared-prefix turns prefill only the
        new tokens, so cumulative TTFT drops on the same seed."""
        shared = run_kv(iphone_engine, multiturn_requests, prefix_sharing=True)
        cold = run_kv(iphone_engine, multiturn_requests, prefix_sharing=False)
        ttft = lambda rep: sum(
            o.ttft_ns for o in rep.outcomes if o.status.startswith("served")
        )
        assert shared.served >= cold.served
        assert ttft(shared) < ttft(cold)


class TestBoundedPool:
    def test_tiny_pool_bounds_occupancy(self, iphone_engine, multiturn_requests):
        """A pool far under demand preempts and evicts instead of
        overflowing; consistency survives the churn."""
        report = run_kv(iphone_engine, multiturn_requests, kv_blocks=24)
        kv = report.kv
        assert kv["occupancy_peak"] <= 24
        assert kv["evictions"] + kv["preemptions"] + kv["kv_clipped"] > 0
        assert kv["audit_failures"] == []
        assert report.offered == len(multiturn_requests)

    def test_oversized_request_rejected_up_front(self, iphone_engine):
        requests = poisson_workload(
            [chat_tenant(mean_turns=8.0, qps=1.0)], duration_ms=20_000.0, seed=3
        )
        # 8 blocks x 16 tokens = 128-token capacity; deep turns exceed it
        report = run_kv(iphone_engine, requests, kv_blocks=8)
        assert report.kv["kv_rejections"] > 0
        assert report.kv["occupancy_peak"] <= 8
        assert report.kv["audit_failures"] == []
