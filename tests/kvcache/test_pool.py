"""Block pool: refcounts, generations, placement, journaled recovery."""

import pytest

from repro.core.journal import InjectedCrash, MapJournal
from repro.core.pimalloc import PimSystem
from repro.dram.config import lpddr5_organization
from repro.kvcache import (
    KV_CRASH_SITES,
    BlockPool,
    KvPoolExhausted,
    KvSpec,
    SharedBlockWriteError,
    StaleBlockError,
    recover_pool,
)
from repro.llm.model_config import LLAMA3_8B
from repro.pim.config import aim_config_for
from repro.reliability.faults import FaultInjector


class TestKvSpec:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            KvSpec(block_tokens=0)
        with pytest.raises(ValueError):
            KvSpec(kv_dim=-1)

    def test_arena_matrix_one_row_per_token(self):
        spec = KvSpec(block_tokens=16, kv_dim=512, dtype_bytes=2)
        matrix = spec.arena_matrix(num_blocks=8)
        assert matrix.rows == 8 * 16
        assert matrix.cols == 512
        assert matrix.dtype_bytes == 2

    def test_for_model_folds_k_and_v(self):
        spec = KvSpec.for_model(LLAMA3_8B, block_tokens=32)
        assert spec.block_tokens == 32
        assert spec.kv_dim == 2 * LLAMA3_8B.kv_dim
        assert spec.dtype_bytes == LLAMA3_8B.dtype_bytes


class TestAllocFree:
    def test_alloc_free_roundtrip(self):
        pool = BlockPool(4)
        block = pool.alloc()
        assert pool.used == 1
        assert block.ref_count == 1
        assert pool.free(block.ref)
        assert pool.used == 0
        assert pool.audit() == []

    def test_generation_invalidates_stale_refs(self):
        pool = BlockPool(2)
        block = pool.alloc()
        ref = block.ref
        pool.free(ref)
        with pytest.raises(StaleBlockError):
            pool.get(ref)
        # the reclaimed block carries a new generation
        assert pool.blocks[ref.block_id].generation == ref.generation + 1
        with pytest.raises(StaleBlockError):
            pool.free(ref)

    def test_exhaustion(self):
        pool = BlockPool(2)
        pool.alloc()
        pool.alloc()
        with pytest.raises(KvPoolExhausted):
            pool.alloc()

    def test_shared_blocks_refuse_writes(self):
        pool = BlockPool(2)
        block = pool.alloc()
        pool.share(block.ref)
        with pytest.raises(SharedBlockWriteError):
            pool.check_writable(block.ref)
        # first free drops a holder, second reclaims
        assert not pool.free(block.ref)
        assert pool.check_writable(block.ref) is block
        assert pool.free(block.ref)
        assert pool.used == 0

    def test_occupancy_tracking(self):
        pool = BlockPool(4)
        refs = [pool.alloc().ref for _ in range(3)]
        for ref in refs:
            pool.free(ref)
        assert pool.peak_occupancy == 3
        assert max(pool.occupancy_samples) == 3
        assert pool.allocs == 3 and pool.frees == 3

    def test_bookkeeping_mode_has_no_arena(self):
        pool = BlockPool(2)
        block = pool.alloc()
        with pytest.raises(ValueError, match="bookkeeping"):
            pool.block_va(block.ref)


class TestPlacedMode:
    @pytest.fixture(scope="class")
    def system(self):
        org = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
        return PimSystem.build(org, aim_config_for(org), functional=False)

    def test_blocks_are_whole_chunk_rows(self, system):
        pool = BlockPool(8, KvSpec(block_tokens=16, kv_dim=1024), system=system)
        crb = system.pim.chunk_row_bytes
        assert pool.block_bytes % crb == 0
        assert pool.arena is not None

    def test_block_vas_are_disjoint_and_ordered(self, system):
        pool = BlockPool(4, KvSpec(block_tokens=16, kv_dim=1024), system=system)
        refs = [pool.alloc().ref for _ in range(4)]
        vas = [pool.block_va(r) for r in refs]
        assert vas == sorted(vas)
        assert all(b - a == pool.block_bytes for a, b in zip(vas, vas[1:]))

    def test_verify_passes_kv_placement_rules(self, system):
        pool = BlockPool(8, KvSpec(block_tokens=16, kv_dim=1024), system=system)
        assert pool.verify() == []


def crash_at(pool, site, action):
    injector = FaultInjector(seed=0)
    pool.journal.fault_hook = injector
    injector.schedule_crash(site)
    with pytest.raises(InjectedCrash):
        action()
    pool.journal.fault_hook = None


class TestCrashRecovery:
    def make_pool(self, num_blocks=4):
        return BlockPool(num_blocks, journal=MapJournal())

    @pytest.mark.parametrize("site", ["kvalloc:begin", "kvalloc:taken"])
    def test_interrupted_alloc_rolls_back(self, site):
        pool = self.make_pool()
        before = list(pool._free)
        crash_at(pool, site, pool.alloc)
        report = recover_pool(pool)
        assert len(report.actions) == 1
        assert report.rolled_forward == 0
        assert pool.used == 0
        assert list(pool._free) == before
        assert pool.audit() == []
        assert pool.journal.uncommitted() == []

    def test_interrupted_free_rolls_forward(self):
        pool = self.make_pool()
        block = pool.alloc()
        crash_at(pool, "kvfree:begin", lambda: pool.free(block.ref))
        report = recover_pool(pool)
        assert report.rolled_forward == 1
        assert pool.used == 0
        assert pool.audit() == []

    def test_crash_after_deref_still_reclaims(self):
        pool = self.make_pool()
        block = pool.alloc()
        crash_at(pool, "kvfree:deref", lambda: pool.free(block.ref))
        # the deref landed but the reclaim did not
        report = recover_pool(pool)
        assert report.rolled_forward == 1
        assert pool.used == 0
        assert pool.blocks[block.block_id].ref_count == 0
        assert pool.audit() == []

    def test_shared_free_crash_keeps_block_live(self):
        pool = self.make_pool()
        block = pool.alloc()
        pool.share(block.ref)
        crash_at(pool, "kvfree:deref", lambda: pool.free(block.ref))
        recover_pool(pool)
        # one holder remains: the block must survive recovery
        assert pool.get(block.ref).ref_count == 1
        assert pool.used == 1
        assert pool.audit() == []

    def test_recovery_is_idempotent(self):
        pool = self.make_pool()
        crash_at(pool, "kvalloc:taken", pool.alloc)
        recover_pool(pool)
        second = recover_pool(pool)
        assert second.actions == []
        assert pool.audit() == []

    def test_every_site_is_reachable(self):
        # each named crash site fires during normal pool traffic
        for site in KV_CRASH_SITES:
            pool = self.make_pool()
            held = pool.alloc().ref if site.startswith("kvfree") else None
            action = (lambda r=held: pool.free(r)) if held else pool.alloc
            crash_at(pool, site, action)
            recover_pool(pool)
            assert pool.audit() == []

    def test_requires_journal(self):
        with pytest.raises(ValueError, match="journal"):
            recover_pool(BlockPool(2))

    def test_unknown_op_rejected(self):
        pool = self.make_pool()
        pool.journal.begin("alloc", rows=1)  # a MapID op, not a KV op
        with pytest.raises(ValueError, match="unknown op"):
            recover_pool(pool)
