"""Tests for the analytic PIM GEMV timing model, cross-checked against
the functional executor's operation counts."""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig, select_mapping
from repro.dram.config import DramConfig, LPDDR5_6400_TIMINGS, lpddr5_organization
from repro.pim.config import AIM_LPDDR5
from repro.pim.functional import pim_gemv
from repro.pim.gemv import gemv_latency

JETSON = DramConfig(
    lpddr5_organization(bus_width_bits=256, capacity_gb=64), LPDDR5_6400_TIMINGS
)


class TestOperationCounts:
    def test_llama_qproj_counts(self):
        lat = gemv_latency(MatrixConfig(4096, 4096), JETSON, AIM_LPDDR5)
        assert lat.partitions_per_row == 2
        assert lat.rows_per_bank == 16
        assert lat.segments_per_row == 4
        assert lat.chunk_segments_per_bank == 32
        assert lat.activates_per_bank == 32
        assert lat.weight_bytes_streamed == 4096 * 4096 * 2  # padded == exact here

    def test_soc_reduce_bytes_only_when_partitioned(self):
        partitioned = gemv_latency(MatrixConfig(4096, 4096), JETSON, AIM_LPDDR5)
        assert partitioned.soc_reduce_bytes > 0
        small = gemv_latency(MatrixConfig(512, 1024), JETSON, AIM_LPDDR5)
        assert small.partitions_per_row == 1
        assert small.soc_reduce_bytes == 0

    def test_out_reg_pressure_multiplies_gb_loads(self):
        few_regs = gemv_latency(
            MatrixConfig(14336, 4096), JETSON, AIM_LPDDR5, out_regs_per_pu=4
        )
        many_regs = gemv_latency(
            MatrixConfig(14336, 4096), JETSON, AIM_LPDDR5, out_regs_per_pu=64
        )
        assert few_regs.gb_loads_per_rank > many_regs.gb_loads_per_rank


class TestLatencyShape:
    def test_monotone_in_matrix_size(self):
        small = gemv_latency(MatrixConfig(1024, 4096), JETSON, AIM_LPDDR5)
        large = gemv_latency(MatrixConfig(14336, 4096), JETSON, AIM_LPDDR5)
        assert large.total_ns > small.total_ns

    def test_internal_bandwidth_exceeds_external(self):
        """The whole point of near-bank PIM: aggregate internal bandwidth
        well above the external bus."""
        lat = gemv_latency(MatrixConfig(4096, 4096), JETSON, AIM_LPDDR5)
        assert lat.effective_internal_gbps > 2 * JETSON.org.peak_bandwidth_gbps

    def test_overlap_reduces_total(self):
        overlapped = gemv_latency(
            MatrixConfig(4096, 4096), JETSON, AIM_LPDDR5, overlap_gb_loads=True
        )
        serial = gemv_latency(
            MatrixConfig(4096, 4096), JETSON, AIM_LPDDR5, overlap_gb_loads=False
        )
        assert overlapped.total_ns <= serial.total_ns

    def test_breakdown_sums_to_total(self):
        lat = gemv_latency(
            MatrixConfig(4096, 4096), JETSON, AIM_LPDDR5, overlap_gb_loads=False
        )
        assert lat.total_ns == pytest.approx(
            lat.gb_load_ns + lat.mac_ns + lat.output_ns
        )


class TestCrossCheckWithFunctional:
    def test_counts_match_functional_executor(self, rng):
        """The analytic model's per-bank counts must agree with what the
        functional machine actually does."""
        from repro.dram.config import DramOrganization

        org = DramOrganization(
            n_channels=4, ranks_per_channel=2, banks_per_rank=16,
            rows_per_bank=512, row_bytes=2048, transfer_bytes=32,
        )
        config = DramConfig(org, LPDDR5_6400_TIMINGS)
        system = PimSystem.build(org, AIM_LPDDR5)
        matrix = MatrixConfig(rows=256, cols=4096)
        tensor = system.pimalloc(matrix)
        tensor.store(rng.standard_normal((256, 4096)).astype(np.float16))
        _, stats = pim_gemv(tensor, rng.standard_normal(4096).astype(np.float16))

        lat = gemv_latency(matrix, config, AIM_LPDDR5, selection=tensor.selection)
        total_banks = org.total_banks
        assert stats.chunks_processed == lat.chunk_segments_per_bank * total_banks
        assert stats.rows_activated == lat.activates_per_bank * total_banks
        # functional executor has no register pressure: its GB loads are
        # the single-pass lower bound
        n_rank_groups = org.n_channels * org.ranks_per_channel
        assert stats.total_gb_loads == lat.segments_per_row // lat.partitions_per_row * n_rank_groups
