"""Tests for PIM architecture configurations."""

import pytest

from repro.dram.config import TINY_ORG, lpddr5_organization
from repro.pim.config import AIM_LPDDR5, HBM_PIM, PimConfig, aim_config_for


class TestChunkDimensions:
    def test_aim_chunk(self):
        """AiM: (1, 1024) at FP16 — input register holds one 2 KB DRAM
        row of the input vector (§II-C)."""
        assert AIM_LPDDR5.chunk_rows == 1
        assert AIM_LPDDR5.chunk_cols == 1024
        assert AIM_LPDDR5.chunk_row_bytes == 2048
        assert AIM_LPDDR5.chunk_bytes == 2048

    def test_hbm_pim_chunk(self):
        """HBM-PIM: (8, 128) — two sets of 8 registers, no reduction unit
        (footnote 1)."""
        assert HBM_PIM.chunk_rows == 8
        assert HBM_PIM.chunk_cols == 128
        assert HBM_PIM.chunk_row_bytes == 256
        assert HBM_PIM.chunk_bytes == 2048

    def test_lpddr5_mac_rate_calibration(self):
        assert AIM_LPDDR5.mac_ccd_multiplier == 2


class TestValidation:
    def test_rejects_non_pow2_chunk(self):
        with pytest.raises(ValueError):
            PimConfig("bad", chunk_rows=3, chunk_cols=128)

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            PimConfig("bad", chunk_rows=1, chunk_cols=128, dtype_bytes=0)


class TestDerived:
    def test_pus_one_per_bank(self):
        org = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
        assert AIM_LPDDR5.pus(org) == 512

    def test_elems_per_transfer(self):
        assert AIM_LPDDR5.elems_per_transfer(TINY_ORG) == 16


class TestAimConfigFor:
    def test_chunk_spans_one_row(self):
        cfg = aim_config_for(TINY_ORG)
        assert cfg.chunk_row_bytes == TINY_ORG.row_bytes
        assert cfg.global_buffer_bytes == TINY_ORG.row_bytes
        assert cfg.banks_per_global_buffer == TINY_ORG.banks_per_rank
