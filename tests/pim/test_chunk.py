"""Tests for chunk placement enumeration and the §II-C invariants."""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.pim.chunk import enumerate_placements, verify_placement_invariants
from repro.pim.config import aim_config_for


@pytest.fixture
def system():
    return PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))


class TestEnumeration:
    def test_segment_count(self, system):
        # 16 rows x padded 512 cols / 128-elem chunk rows = 64 segments
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=300))
        segments = enumerate_placements(tensor)
        assert len(segments) == 16 * (512 // 128)

    def test_segments_tile_the_matrix(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=8, cols=256))
        segments = enumerate_placements(tensor)
        covered = {(seg.m, seg.k_start) for seg in segments}
        expected = {(m, k) for m in range(8) for k in range(0, 256, 128)}
        assert covered == expected

    def test_each_segment_is_one_chunk_row(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=4, cols=128))
        for seg in enumerate_placements(tensor):
            assert seg.n_transfers == 128 * 2 // TINY_ORG.transfer_bytes

    def test_segment_ids(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=4, cols=256))
        for seg in enumerate_placements(tensor):
            assert seg.segment_id(128) == seg.k_start // 128


class TestInvariants:
    def test_pimalloc_placement_satisfies_invariants(self, system):
        for rows, cols in [(4, 128), (16, 300), (32, 1000), (100, 777)]:
            tensor = system.pimalloc(MatrixConfig(rows=rows, cols=cols))
            verify_placement_invariants(enumerate_placements(tensor), tensor)
            tensor.free()

    def test_matrix_row_stays_in_one_bank(self, system):
        tensor = system.pimalloc(MatrixConfig(rows=8, cols=512))
        by_row = {}
        for seg in enumerate_placements(tensor):
            by_row.setdefault(seg.m, set()).add(seg.pu)
        assert all(len(pus) == 1 for pus in by_row.values())

    def test_conventional_layout_fails_invariants(self, system):
        """A matrix stored with MapID 0 (conventional interleaving) must
        violate the chunk-contiguity constraint — this is exactly why
        PIM needs FACIL's flexible mapping."""
        tensor = system.pimalloc(MatrixConfig(rows=8, cols=512))
        # forge a tensor whose placement is read through the conventional map
        object.__setattr__(tensor.mapping, "name", "forged")
        forged = tensor
        forged_map = forged.allocator.controller.table[0]
        # swap the registered mapping for the conventional one
        forged.allocator.controller.table._entries[forged.map_id] = forged_map
        with pytest.raises(AssertionError, match="contiguity|column-contiguous"):
            enumerate_placements(forged)
