"""Tests for PIM command-stream generation and the replay cross-check."""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import DramConfig, DramOrganization, LPDDR5_6400_TIMINGS
from repro.pim.commands import generate_gemv_commands, replay_latency
from repro.pim.config import AIM_LPDDR5
from repro.pim.functional import pim_gemv
from repro.pim.gemv import gemv_latency

ORG = DramOrganization(
    n_channels=4, ranks_per_channel=2, banks_per_rank=16,
    rows_per_bank=512, row_bytes=2048, transfer_bytes=32,
)
CFG = DramConfig(ORG, LPDDR5_6400_TIMINGS)


@pytest.fixture(scope="module")
def system():
    return PimSystem.build(ORG, AIM_LPDDR5)


def _tensor(system, rows, cols):
    tensor = system.pimalloc(MatrixConfig(rows, cols))
    tensor.store(np.zeros((rows, cols), dtype=np.float16))
    return tensor


class TestGeneration:
    def test_one_gb_load_per_rank_segment(self, system):
        tensor = _tensor(system, 256, 4096)
        stream = generate_gemv_commands(tensor)
        # unpartitioned on this org: every rank streams all 4 segments
        # (4096 cols / 1024-element global buffer)
        assert tensor.selection.partitions_per_row == 1
        assert len(stream.loads) == 4 * ORG.n_channels * ORG.ranks_per_channel
        tensor.free()

    def test_mac_passes_are_all_bank(self, system):
        tensor = _tensor(system, 256, 4096)
        stream = generate_gemv_commands(tensor)
        for sweep in stream.mac_passes:
            assert sweep.n_banks == ORG.banks_per_rank
            assert sweep.n_cols == ORG.cols_per_row
        tensor.free()

    def test_drains_cover_all_outputs(self, system):
        tensor = _tensor(system, 256, 4096)
        stream = generate_gemv_commands(tensor)
        total_outputs = sum(d.n_outputs for d in stream.drains)
        # partitioned rows produce one partial per partition
        selection = tensor.selection
        assert total_outputs == 256 * selection.partitions_per_row
        tensor.free()


class TestCrossValidation:
    @pytest.mark.parametrize("rows,cols", [(256, 4096), (128, 2048), (64, 14336)])
    def test_counts_match_analytic_model(self, system, rows, cols):
        tensor = _tensor(system, rows, cols)
        stream = generate_gemv_commands(tensor)
        analytic = gemv_latency(
            tensor.matrix, CFG, AIM_LPDDR5, selection=tensor.selection
        )
        assert stream.n_activations == analytic.activates_per_bank * ORG.total_banks
        tensor.free()

    @pytest.mark.parametrize("rows,cols", [(256, 4096), (128, 2048), (64, 14336)])
    def test_replay_matches_analytic_latency(self, system, rows, cols):
        """The placement-derived command stream prices within a few
        percent of the closed-form model (serialized variant)."""
        tensor = _tensor(system, rows, cols)
        stream = generate_gemv_commands(tensor)
        replay = replay_latency(stream, CFG, AIM_LPDDR5)
        analytic = gemv_latency(
            tensor.matrix, CFG, AIM_LPDDR5,
            selection=tensor.selection, overlap_gb_loads=False,
        )
        assert replay == pytest.approx(analytic.total_ns, rel=0.05)
        tensor.free()

    def test_mac_columns_match_functional_stats(self, system, rng):
        tensor = _tensor(system, 128, 2048)
        weights = rng.standard_normal((128, 2048)).astype(np.float16)
        tensor.store(weights)
        _, stats = pim_gemv(tensor, rng.standard_normal(2048).astype(np.float16))
        stream = generate_gemv_commands(tensor)
        assert stream.n_mac_columns == stats.mac_transfers
        tensor.free()
