"""Functional PIM GEMV vs numpy, across shapes, styles, and partitioning."""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG, DramOrganization
from repro.pim.config import AIM_LPDDR5, HBM_PIM, aim_config_for
from repro.pim.functional import pim_gemv

MEDIUM_ORG = DramOrganization(
    n_channels=4, ranks_per_channel=2, banks_per_rank=16,
    rows_per_bank=512, row_bytes=2048, transfer_bytes=32,
)


def _check(system, rows, cols, rng, rtol=2e-2):
    tensor = system.pimalloc(MatrixConfig(rows=rows, cols=cols))
    weights = rng.standard_normal((rows, cols)).astype(np.float16)
    x = rng.standard_normal(cols).astype(np.float16)
    tensor.store(weights)
    y, stats = pim_gemv(tensor, x)
    reference = weights.astype(np.float32) @ x.astype(np.float32)
    np.testing.assert_allclose(y, reference, rtol=rtol, atol=1e-2)
    tensor.free()
    return stats


class TestTinyAim:
    @pytest.mark.parametrize(
        "rows,cols",
        [(4, 128), (16, 128), (64, 300), (8, 2048), (100, 1000), (3, 130)],
    )
    def test_matches_numpy(self, rows, cols, rng):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        _check(system, rows, cols, rng)

    def test_stats_chunk_count(self, rng):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        stats = _check(system, 16, 256, rng)
        assert stats.chunks_processed == 16 * 2
        assert stats.mac_transfers == 16 * 2 * 8
        assert stats.soc_reduced_rows == 0


class TestPartitionedAim:
    def test_partitioned_rows_reduced_by_soc(self, rng):
        system = PimSystem.build(MEDIUM_ORG, AIM_LPDDR5)
        stats = _check(system, 8, 16384, rng)
        assert stats.soc_reduced_rows == 8  # every row split across PUs

    def test_llama_shapes(self, rng):
        system = PimSystem.build(MEDIUM_ORG, AIM_LPDDR5)
        _check(system, 64, 4096, rng)
        _check(system, 32, 14336, rng)


class TestHbmPim:
    @pytest.mark.parametrize("rows,cols", [(16, 128), (64, 300), (32, 2048)])
    def test_matches_numpy(self, rows, cols, rng):
        system = PimSystem.build(MEDIUM_ORG, HBM_PIM)
        _check(system, rows, cols, rng)


class TestInputValidation:
    def test_wrong_length(self, rng):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        tensor = system.pimalloc(MatrixConfig(rows=4, cols=128))
        tensor.store(np.zeros((4, 128), dtype=np.float16))
        with pytest.raises(ValueError, match="shape"):
            pim_gemv(tensor, np.zeros(127, dtype=np.float16))

    def test_wrong_dtype(self):
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        tensor = system.pimalloc(MatrixConfig(rows=4, cols=128))
        tensor.store(np.zeros((4, 128), dtype=np.float16))
        with pytest.raises(ValueError, match="width"):
            pim_gemv(tensor, np.zeros(128, dtype=np.float32))

    def test_timing_only_system_rejected(self):
        from repro.dram.config import lpddr5_organization

        org = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
        system = PimSystem.build(org, AIM_LPDDR5, functional=False)
        tensor = system.pimalloc(MatrixConfig(rows=4, cols=4096))
        with pytest.raises(RuntimeError, match="functional"):
            pim_gemv(tensor, np.zeros(4096, dtype=np.float16))


class TestGbLoadAccounting:
    def test_one_load_per_rank_segment(self, rng):
        """Every (channel, rank) loads each needed input segment once —
        the shared-global-buffer reuse the placement enables."""
        system = PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG))
        tensor = system.pimalloc(MatrixConfig(rows=16, cols=512))
        tensor.store(rng.standard_normal((16, 512)).astype(np.float16))
        _, stats = pim_gemv(tensor, rng.standard_normal(512).astype(np.float16))
        # 512 cols / 128-elem segments = 4 segments; 2 rank-groups (2 ch x 1 rk)
        assert stats.total_gb_loads <= 4 * 2
