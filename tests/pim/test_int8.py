"""Tests for the INT8 quantized-weight path (AWQ-style deployments)."""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import DramOrganization
from repro.pim.config import AIM_LPDDR5_INT8
from repro.pim.functional import pim_gemv

ORG = DramOrganization(
    n_channels=4, ranks_per_channel=2, banks_per_rank=16,
    rows_per_bank=512, row_bytes=2048, transfer_bytes=32,
)


@pytest.fixture(scope="module")
def system():
    return PimSystem.build(ORG, AIM_LPDDR5_INT8)


class TestMatrixConfigKind:
    def test_numpy_dtypes(self):
        assert MatrixConfig(4, 4, 2, "float").numpy_dtype == np.float16
        assert MatrixConfig(4, 4, 1, "int").numpy_dtype == np.int8
        assert MatrixConfig(4, 4, 2, "int").numpy_dtype == np.int16

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            MatrixConfig(4, 4, kind="complex")


class TestInt8Gemv:
    @pytest.mark.parametrize("rows,cols", [(64, 4096), (17, 3000), (8, 2048)])
    def test_exact_integer_arithmetic(self, system, rows, cols, rng):
        """Integer GEMV has no rounding: the PIM result must equal the
        int64 reference bit-for-bit."""
        matrix = MatrixConfig(rows=rows, cols=cols, dtype_bytes=1, kind="int")
        tensor = system.pimalloc(matrix)
        weights = rng.integers(-127, 128, (rows, cols)).astype(np.int8)
        x = rng.integers(-127, 128, cols).astype(np.int8)
        tensor.store(weights)
        y, _ = pim_gemv(tensor, x)
        reference = weights.astype(np.int64) @ x.astype(np.int64)
        assert np.array_equal(y, reference)
        tensor.free()

    def test_roundtrip(self, system, rng):
        matrix = MatrixConfig(rows=16, cols=1000, dtype_bytes=1, kind="int")
        tensor = system.pimalloc(matrix)
        weights = rng.integers(-128, 128, (16, 1000)).astype(np.int8)
        tensor.store(weights)
        assert np.array_equal(tensor.load(np.int8), weights)


class TestInt8Placement:
    def test_chunk_holds_2048_elements(self):
        assert AIM_LPDDR5_INT8.chunk_row_bytes == 2048
        assert AIM_LPDDR5_INT8.chunk_cols == 2048

    def test_int8_halves_partition_pressure(self, system):
        """The same logical row needs half the bytes: matrices that
        partition at FP16 fit in one bank at INT8."""
        from repro.core.selector import select_mapping
        from repro.pim.config import AIM_LPDDR5

        fp16 = select_mapping(
            MatrixConfig(4096, 14336, 2), ORG, AIM_LPDDR5
        )
        int8 = select_mapping(
            MatrixConfig(4096, 14336, 1, "int"), ORG, AIM_LPDDR5_INT8
        )
        assert int8.partitions_per_row <= fp16.partitions_per_row

    def test_int8_gemv_timing_halves(self):
        """Half the weight bytes stream through the MACs: the timing
        model sees ~2x faster GEMV."""
        from repro.core.selector import MatrixConfig as MC
        from repro.dram.config import DramConfig, LPDDR5_6400_TIMINGS, lpddr5_organization
        from repro.pim.config import AIM_LPDDR5
        from repro.pim.gemv import gemv_latency

        dram = DramConfig(lpddr5_organization(256, 64), LPDDR5_6400_TIMINGS)
        fp16 = gemv_latency(MC(4096, 4096, 2), dram, AIM_LPDDR5)
        int8 = gemv_latency(MC(4096, 4096, 1, "int"), dram, AIM_LPDDR5_INT8)
        assert int8.total_ns < 0.7 * fp16.total_ns
