"""Smoke tests keeping every example runnable end to end."""

import os
import subprocess
import sys

import pytest

_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(name: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "re-layouts needed: 0" in out
        assert "matches reference: True" in out

    def test_chat_assistant(self):
        out = _run("chat_assistant.py")
        assert "FACIL vs hybrid-static" in out
        assert "feels instantaneous" in out or "OK for voice assistants" in out

    def test_code_autocomplete(self):
        out = _run("code_autocomplete.py")
        assert "profiled prefill crossover" in out
        assert "ideapad-slim-5" in out and "iphone-15-pro" in out

    def test_mapping_explorer(self):
        out = _run("mapping_explorer.py")
        assert "max MapID = 7" in out
        assert "####" in out  # the bank-placement picture

    def test_tiny_llm_generate(self):
        out = _run("tiny_llm_generate.py")
        assert "identical       : True" in out
