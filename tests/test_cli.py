"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mapping_args(self):
        args = build_parser().parse_args(["mapping", "--rows", "8", "--cols", "16"])
        assert args.rows == 8 and args.cols == 16
        assert args.platform == "jetson-agx-orin"


class TestCommands:
    def test_platforms_lists_table2(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("jetson-agx-orin", "macbook-pro-m3-max",
                     "ideapad-slim-5", "iphone-15-pro"):
            assert name in out

    def test_mapping_selector_output(self, capsys):
        main(["mapping", "--rows", "4096", "--cols", "14336"])
        out = capsys.readouterr().out
        assert "selected MapID  : 1" in out
        assert "8 PUs per row" in out
        assert "channel[" in out

    def test_query_all_policies(self, capsys):
        main(["query", "--prefill", "8", "--decode", "4"])
        out = capsys.readouterr().out
        for policy in ("soc-only", "hybrid-static", "hybrid-dynamic", "facil"):
            assert policy in out

    def test_query_single_policy(self, capsys):
        main(["query", "--policy", "facil", "--prefill", "8", "--decode", "4"])
        out = capsys.readouterr().out
        assert "facil" in out
        assert "soc-only" not in out

    def test_sweep(self, capsys):
        main(["sweep", "--prefill-lengths", "8", "16", "--decode", "8"])
        out = capsys.readouterr().out
        assert "geomean" in out

    def test_dataset(self, capsys):
        main(["dataset", "--queries", "10"])
        out = capsys.readouterr().out
        assert "FACIL vs hybrid-static" in out

    def test_unknown_platform_exits(self):
        with pytest.raises(SystemExit, match="unknown platform"):
            main(["query", "--platform", "pixel-9000"])

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["dataset", "--dataset", "imagenet"])


class TestServeCommand:
    def test_serve_writes_report_and_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        assert main([
            "serve", "--seed", "0", "--duration-ms", "5000",
            "--load", "0.3", "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "sustainable" in text
        assert "SLO attainment" in text
        import json

        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert report["unserved"] == 0
        assert report["offered"] == report["served"] + report["rejected"] \
            + report["dropped"] + report["timed_out"] + report["aborted"]

    def test_serve_exits_nonzero_when_queries_go_unserved(self, tmp_path):
        # sub-millisecond TTFT budget: nothing can be served in time
        with pytest.raises(SystemExit, match="unserved"):
            main([
                "serve", "--seed", "0", "--duration-ms", "3000",
                "--qps", "2", "--deadline-ms", "0.001",
                "--out", str(tmp_path / "serve.json"),
            ])

    def test_serve_rejects_unknown_shed_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--shed", "lifo"])

    def test_serve_with_kv_pool_reports_kv_section(self, capsys, tmp_path):
        out = tmp_path / "serve_kv.json"
        assert main([
            "serve", "--seed", "0", "--duration-ms", "20000",
            "--load", "0.3", "--kv-blocks", "256", "--mean-turns", "3",
            "--think-time-ms", "200", "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "kv pool" in text
        assert "prefix sharing" in text
        import json

        report = json.loads(out.read_text())
        assert report["kv"]["num_blocks"] == 256
        assert report["kv"]["audit_failures"] == []

    def test_serve_kv_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--kv-blocks", "128", "--block-tokens", "32",
            "--no-prefix-sharing", "--mean-turns", "2.5",
        ])
        assert args.kv_blocks == 128
        assert args.block_tokens == 32
        assert args.prefix_sharing is False
        assert args.mean_turns == 2.5

    def test_serve_adaptive_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--adaptive", "active", "--adaptive-pin", "0",
        ])
        assert args.adaptive == "active"
        assert args.adaptive_pin == 0
        assert build_parser().parse_args(["serve"]).adaptive == "off"

    def test_serve_adaptive_rejects_kv_scheduler(self, tmp_path):
        with pytest.raises(SystemExit, match="legacy"):
            main([
                "serve", "--adaptive", "active", "--kv-blocks", "64",
                "--duration-ms", "1000",
                "--out", str(tmp_path / "serve.json"),
            ])

    def test_serve_adaptive_reports_adaptive_section(self, capsys, tmp_path):
        out = tmp_path / "serve_adaptive.json"
        assert main([
            "serve", "--seed", "0", "--duration-ms", "5000",
            "--platform", "iphone-15-pro", "--load", "0.3",
            "--adaptive", "static", "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "adaptive" in text
        import json

        report = json.loads(out.read_text())
        assert report["adaptive"]["mode"] == "static"
        assert report["adaptive"]["migrations_started"] == 0

    def test_serve_replay_check_passes_on_deterministic_run(
            self, capsys, tmp_path):
        out = tmp_path / "serve_replay.json"
        assert main([
            "serve", "--seed", "0", "--duration-ms", "5000",
            "--load", "0.3", "--replay-check", "--replay-barrier", "4",
            "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "replay-diff: OK" in text
        assert "barriers identical" in text
        import json

        # the report written is the first run's, and it is still complete
        report = json.loads(out.read_text())
        assert report["ok"] is True

    def test_serve_replay_check_rejects_telemetry_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="replay-check"):
            main([
                "serve", "--duration-ms", "1000", "--replay-check",
                "--trace-out", str(tmp_path / "trace.json"),
            ])

    def test_serve_replay_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--replay-check", "--replay-barrier", "8",
        ])
        assert args.replay_check is True
        assert args.replay_barrier == 8
        assert build_parser().parse_args(["serve"]).replay_check is False


class TestChaosCommand:
    def test_chaos_with_crash_injections_writes_report(self, capsys, tmp_path):
        out = tmp_path / "chaos.json"
        assert main([
            "chaos", "--seed", "0", "--queries", "6",
            "--crash-injections", "20", "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "crash campaign" in text
        import json

        report = json.loads(out.read_text())
        assert report["campaign"]["silent"] == 0
        assert report["crash"]["ok"] is True
        assert report["crash"]["n_injections"] == 20

    def test_chaos_kv_crash_injections(self, capsys, tmp_path):
        out = tmp_path / "chaos_kv.json"
        assert main([
            "chaos", "--seed", "0", "--queries", "4",
            "--crash-injections", "10", "--kv-crash-injections", "12",
            "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "kv injections" in text
        import json

        report = json.loads(out.read_text())
        assert report["crash"]["kv_injections"] == 12
        assert report["crash"]["kv_leaked_refcounts"] == 0
        assert report["crash"]["kv_final_clean"] is True

    def test_chaos_migration_crash_injections(self, capsys, tmp_path):
        out = tmp_path / "chaos_migration.json"
        assert main([
            "chaos", "--seed", "0", "--queries", "4",
            "--migration-crash-injections", "2", "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "mig injections" in text
        import json

        report = json.loads(out.read_text())
        assert report["crash"]["migration_injections"] == 2
        assert report["crash"]["torn_mappings"] == 0
        assert report["crash"]["migration_final_clean"] is True
        assert report["crash"]["ok"] is True

    def test_chaos_migration_flag_parses(self):
        args = build_parser().parse_args([
            "chaos", "--migration-crash-injections", "500",
        ])
        assert args.migration_crash_injections == 500

    def test_chaos_exits_nonzero_on_audit_finding(self, tmp_path, monkeypatch):
        """ANY post-recovery finding must fail the run, even when the
        aggregate counters look clean."""
        import repro.serving.crashes as crashes

        real = crashes.run_crash_campaign

        def rigged(**kwargs):
            report = real(**kwargs)
            report.failures.append("injection 3: armed crash never fired")
            return report

        monkeypatch.setattr(crashes, "run_crash_campaign", rigged)
        with pytest.raises(SystemExit, match="finding"):
            main([
                "chaos", "--seed", "0", "--queries", "4",
                "--migration-crash-injections", "1",
                "--out", str(tmp_path / "chaos.json"),
            ])

    def test_chaos_exits_nonzero_on_torn_mapping(self, tmp_path, monkeypatch):
        import repro.serving.crashes as crashes

        real = crashes.run_crash_campaign

        def rigged(**kwargs):
            report = real(**kwargs)
            report.torn_mappings = 1
            return report

        monkeypatch.setattr(crashes, "run_crash_campaign", rigged)
        with pytest.raises(SystemExit, match="audit"):
            main([
                "chaos", "--seed", "0", "--queries", "4",
                "--migration-crash-injections", "1",
                "--out", str(tmp_path / "chaos.json"),
            ])


class TestTraceCommand:
    def test_trace_writes_both_artifacts(self, capsys, tmp_path):
        trace_out = tmp_path / "trace.json"
        metrics_out = tmp_path / "metrics.json"
        assert main([
            "trace", "--seed", "0", "--duration-ms", "20000",
            "--platform", "iphone-15-pro", "--load", "1.0",
            "--trace-out", str(trace_out),
            "--metrics-out", str(metrics_out),
        ]) == 0
        text = capsys.readouterr().out
        assert "spans by layer" in text
        assert "trace written to" in text
        assert "metrics written to" in text
        import json

        trace = json.loads(trace_out.read_text())
        layers = {
            e["cat"] for e in trace["traceEvents"] if e.get("ph") == "X"
        }
        assert layers == {"serving", "engine", "kvcache", "controller", "dram"}
        snapshot = json.loads(metrics_out.read_text())
        names = {m["name"] for m in snapshot["metrics"]}
        assert "dram_row_hits_total" in names
        assert "controller_mapid_mux_switches_total" in names
        assert "serving_requests_total" in names

    def test_trace_defaults_parse(self):
        args = build_parser().parse_args(["trace"])
        assert args.trace_out == "trace.json"
        assert args.metrics_out == "metrics.json"
        assert args.sample_every == 1
        assert args.kv_blocks == 256
        assert args.advisor_sweep is False

    def test_serve_trace_flags_write_artifacts(self, capsys, tmp_path):
        trace_out = tmp_path / "trace.json"
        metrics_out = tmp_path / "metrics.json"
        assert main([
            "serve", "--seed", "0", "--duration-ms", "3000",
            "--load", "0.3", "--out", str(tmp_path / "serve.json"),
            "--trace-out", str(trace_out),
            "--metrics-out", str(metrics_out),
            "--trace-sample", "2",
        ]) == 0
        import json

        assert json.loads(trace_out.read_text())["traceEvents"]
        assert json.loads(metrics_out.read_text())["schema_version"] == 1

    def test_chaos_metrics_out(self, capsys, tmp_path):
        metrics_out = tmp_path / "chaos_metrics.json"
        assert main([
            "chaos", "--seed", "0", "--queries", "4",
            "--out", str(tmp_path / "chaos.json"),
            "--metrics-out", str(metrics_out),
        ]) == 0
        import json

        names = {
            m["name"]
            for m in json.loads(metrics_out.read_text())["metrics"]
        }
        assert "faults_injected_total" in names
        assert "campaign_availability" in names

    def test_analyze_accepts_span_files(self, tmp_path):
        args = build_parser().parse_args([
            "analyze", "--spans", "a.jsonl", "--spans", "b.json",
        ])
        assert args.spans == ["a.jsonl", "b.json"]


class TestNumericFlagValidation:
    """Bad counts and rates die at the parser with a flag-specific
    argparse error, never deep inside the event loop."""

    @pytest.mark.parametrize("argv", [
        ["serve", "--trace-sample", "0"],
        ["serve", "--trace-sample", "-3"],
        ["serve", "--capacity", "0"],
        ["serve", "--max-retries", "-1"],
        ["serve", "--kv-blocks", "-1"],
        ["serve", "--block-tokens", "0"],
        ["serve", "--duration-ms", "0"],
        ["serve", "--qps", "-2"],
        ["serve", "--deadline-ms", "0"],
        ["serve", "--pim-fault-rate", "-0.1"],
        ["serve", "--replay-barrier", "0"],
        ["trace", "--sample-every", "0"],
        ["trace", "--kv-blocks", "-5"],
        ["chaos", "--queries", "0"],
        ["chaos", "--crash-injections", "-1"],
        ["chaos", "--kv-crash-injections", "-1"],
        ["chaos", "--migration-crash-injections", "-2"],
        ["dataset", "--queries", "-4"],
        ["mapping", "--rows", "0"],
        ["mapping", "--dtype-bytes", "-2"],
        ["fleet", "--devices", "0"],
        ["fleet", "--kills", "-1"],
        ["fleet", "--standby", "-1"],
        ["fleet", "--kv-blocks", "0"],
        ["fleet", "--recovery-ms", "-5"],
        ["fleet", "--qps", "0"],
    ])
    def test_zero_or_negative_counts_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert argv[1] in err  # the offending flag is named
        assert "must be" in err

    @pytest.mark.parametrize("argv", [
        ["serve", "--trace-sample", "four"],
        ["serve", "--qps", "fast"],
        ["fleet", "--devices", "3.5"],
    ])
    def test_non_numeric_text_rejected(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2

    def test_valid_boundaries_still_parse(self):
        args = build_parser().parse_args([
            "serve", "--trace-sample", "1", "--max-retries", "0",
            "--kv-blocks", "0", "--pim-fault-rate", "0.0",
        ])
        assert args.trace_sample == 1 and args.max_retries == 0
        assert args.kv_blocks == 0 and args.pim_fault_rate == 0.0

    def test_fleet_flags_parse(self):
        args = build_parser().parse_args([
            "fleet", "--devices", "6", "--standby", "2", "--kills", "40",
            "--shape", "bursty", "--autoscale", "--shed", "drop-oldest",
        ])
        assert args.devices == 6 and args.standby == 2 and args.kills == 40
        assert args.shape == "bursty" and args.autoscale
        assert args.shed == "drop-oldest"


class TestFleetCommand:
    def test_fleet_writes_report_and_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "fleet.json"
        assert main([
            "fleet", "--devices", "2", "--duration-ms", "300",
            "--qps", "10", "--out", str(out),
        ]) == 0
        import json

        report = json.loads(out.read_text())
        assert report["none_lost"] is True
        assert len(report["devices"]) == 2
        assert "fleet run" in capsys.readouterr().out

    def test_fleet_campaign_exits_zero_and_reports_sites(
        self, capsys, tmp_path
    ):
        out = tmp_path / "campaign.json"
        assert main([
            "fleet", "--campaign", "--kills", "8", "--out", str(out),
        ]) == 0
        import json

        report = json.loads(out.read_text())
        assert report["ok"] is True and report["kills_applied"] == 8
        assert "crashes by site" in capsys.readouterr().out

    def test_fleet_kills_with_metrics_out(self, capsys, tmp_path):
        metrics_out = tmp_path / "fleet_metrics.json"
        assert main([
            "fleet", "--devices", "2", "--duration-ms", "300",
            "--qps", "10", "--kills", "2", "--kill-gap-ms", "50",
            "--out", str(tmp_path / "fleet.json"),
            "--metrics-out", str(metrics_out),
        ]) == 0
        import json

        names = {
            m["name"]
            for m in json.loads(metrics_out.read_text())["metrics"]
        }
        assert "fleet_device_served_total" in names
        assert "fleet_device_state" in names


class TestDseCommand:
    TINY = [
        "dse", "--seed", "0", "--duration-ms", "500",
        "--axes", "mapping=soc-only,facil",
        "--axes", "kv_blocks=0,64",
    ]

    def test_dse_writes_report_and_prints_frontier(self, capsys, tmp_path):
        out = tmp_path / "dse.json"
        assert main(self.TINY + ["--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "sweep           : 4 points over 2 axes" in text
        assert "pareto frontier" in text
        assert "solo repro" in text
        import json

        report = json.loads(out.read_text())
        assert report["n_points"] == 4
        assert report["pareto"]["frontier"], "empty frontier"
        for entry in report["pareto"]["frontier"]:
            assert "--only" in entry["repro"]
            assert "--point-seed" in entry["repro"]

    def test_dse_only_reproduces_sweep_metrics(self, capsys, tmp_path):
        out = tmp_path / "dse.json"
        main(self.TINY + ["--out", str(out)])
        capsys.readouterr()
        import json

        entry = json.loads(out.read_text())["pareto"]["frontier"][0]
        assert main(self.TINY + [
            "--only", entry["config_hash"],
            "--point-seed", str(entry["seed"]),
        ]) == 0
        text = capsys.readouterr().out
        assert f"config_hash     : {entry['config_hash']}" in text
        metrics_line = next(
            line for line in text.splitlines()
            if line.startswith("metrics         : ")
        )
        solo = json.loads(metrics_line.split(": ", 1)[1])
        assert solo == entry["metrics"]

    def test_dse_only_unknown_hash_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no point with config_hash"):
            main(self.TINY + ["--only", "feedfeedfeed"])

    def test_dse_resume_reuses_completed_points(self, capsys, tmp_path):
        out = tmp_path / "dse.json"
        main(self.TINY + ["--out", str(out)])
        first = out.read_text()
        capsys.readouterr()
        assert main(self.TINY + ["--out", str(out), "--resume"]) == 0
        text = capsys.readouterr().out
        assert "evaluated       : 0 fresh, 4 reused" in text
        assert out.read_text() == first

    def test_dse_workers_flag_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--workers", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--duration-ms", "-5"])

    def test_dse_bad_axis_exits(self):
        with pytest.raises(SystemExit, match="not in domain"):
            main(["dse", "--axes", "mapping=warp-drive"])

    def test_dse_defaults_parse(self):
        args = build_parser().parse_args(["dse"])
        assert args.seed == 0 and args.workers == 1
        assert args.axes is None and args.resume is False
