"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mapping_args(self):
        args = build_parser().parse_args(["mapping", "--rows", "8", "--cols", "16"])
        assert args.rows == 8 and args.cols == 16
        assert args.platform == "jetson-agx-orin"


class TestCommands:
    def test_platforms_lists_table2(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("jetson-agx-orin", "macbook-pro-m3-max",
                     "ideapad-slim-5", "iphone-15-pro"):
            assert name in out

    def test_mapping_selector_output(self, capsys):
        main(["mapping", "--rows", "4096", "--cols", "14336"])
        out = capsys.readouterr().out
        assert "selected MapID  : 1" in out
        assert "8 PUs per row" in out
        assert "channel[" in out

    def test_query_all_policies(self, capsys):
        main(["query", "--prefill", "8", "--decode", "4"])
        out = capsys.readouterr().out
        for policy in ("soc-only", "hybrid-static", "hybrid-dynamic", "facil"):
            assert policy in out

    def test_query_single_policy(self, capsys):
        main(["query", "--policy", "facil", "--prefill", "8", "--decode", "4"])
        out = capsys.readouterr().out
        assert "facil" in out
        assert "soc-only" not in out

    def test_sweep(self, capsys):
        main(["sweep", "--prefill-lengths", "8", "16", "--decode", "8"])
        out = capsys.readouterr().out
        assert "geomean" in out

    def test_dataset(self, capsys):
        main(["dataset", "--queries", "10"])
        out = capsys.readouterr().out
        assert "FACIL vs hybrid-static" in out

    def test_unknown_platform_exits(self):
        with pytest.raises(SystemExit, match="unknown platform"):
            main(["query", "--platform", "pixel-9000"])

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["dataset", "--dataset", "imagenet"])
