"""Tests for frontier extraction and ranking (repro.dse.pareto)."""

import pytest

from repro.dse.driver import PointOutcome, SweepResult
from repro.dse.pareto import OBJECTIVES, dominates, pareto_report

TWO_OBJ = (("goodput_qps", "max"), ("ttft_p99_ms", "min"))


def outcome(index, **metrics):
    metrics.setdefault("goodput_qps", 1.0)
    metrics.setdefault("ttft_p99_ms", 100.0)
    metrics.setdefault("kv_mib", 0.0)
    metrics.setdefault("gemm_slowdown_pct", 0.0)
    return PointOutcome(
        index=index,
        coords=(("mapping", "facil"),),
        config={"mapping": "facil"},
        config_hash=f"hash{index:08d}",
        seed=index + 1,
        metrics={k: float(v) for k, v in metrics.items()},
    )


def result(*points):
    return SweepResult(
        seed=0,
        spec_config={"axes": {"mapping": ["facil"]}},
        spec_hash="spec00000000",
        points=tuple(points),
    )


class TestDominates:
    def test_better_on_all_objectives_dominates(self):
        a = outcome(0, goodput_qps=2.0, ttft_p99_ms=50.0)
        b = outcome(1, goodput_qps=1.0, ttft_p99_ms=90.0)
        assert dominates(a, b, TWO_OBJ)
        assert not dominates(b, a, TWO_OBJ)

    def test_tradeoff_points_do_not_dominate(self):
        a = outcome(0, goodput_qps=2.0, ttft_p99_ms=90.0)
        b = outcome(1, goodput_qps=1.0, ttft_p99_ms=50.0)
        assert not dominates(a, b, TWO_OBJ)
        assert not dominates(b, a, TWO_OBJ)

    def test_equal_points_do_not_dominate(self):
        a = outcome(0)
        b = outcome(1)
        assert not dominates(a, b, TWO_OBJ)
        assert not dominates(b, a, TWO_OBJ)

    def test_equal_but_one_strictly_better_dominates(self):
        a = outcome(0, goodput_qps=1.0, ttft_p99_ms=50.0)
        b = outcome(1, goodput_qps=1.0, ttft_p99_ms=90.0)
        assert dominates(a, b, TWO_OBJ)

    def test_direction_respected(self):
        a = outcome(0, kv_mib=10.0)
        b = outcome(1, kv_mib=20.0)
        assert dominates(a, b, (("kv_mib", "min"),))
        assert dominates(b, a, (("kv_mib", "max"),))


class TestFrontier:
    def test_dominated_points_pruned_with_dominator_recorded(self):
        best = outcome(0, goodput_qps=3.0, ttft_p99_ms=40.0)
        tradeoff = outcome(1, goodput_qps=4.0, ttft_p99_ms=80.0)
        dominated = outcome(2, goodput_qps=2.0, ttft_p99_ms=60.0)
        report = pareto_report(result(best, tradeoff, dominated), TWO_OBJ)
        assert {e.point.index for e in report.frontier} == {0, 1}
        assert [(p.index, by) for p, by in report.dominated] == [(2, 0)]

    def test_all_points_on_frontier_when_none_dominated(self):
        # higher goodput costs higher tail latency: a pure tradeoff curve
        points = [
            outcome(i, goodput_qps=float(i), ttft_p99_ms=40.0 + 20.0 * i)
            for i in range(4)
        ]
        report = pareto_report(result(*points), TWO_OBJ)
        assert len(report.frontier) == 4
        assert report.dominated == ()

    def test_ranking_is_deterministic_and_tie_breaks_on_index(self):
        a = outcome(0)
        b = outcome(1)
        report = pareto_report(result(a, b), TWO_OBJ)
        assert [e.point.index for e in report.frontier] == [0, 1]
        assert [e.rank for e in report.frontier] == [1, 2]

    def test_degenerate_objective_scores_one(self):
        a = outcome(0, goodput_qps=1.0)
        b = outcome(1, goodput_qps=1.0)
        report = pareto_report(result(a, b), (("goodput_qps", "max"),))
        assert all(e.score == 1.0 for e in report.frontier)

    def test_repro_command_embeds_hash_and_seed(self):
        point = outcome(5)
        report = pareto_report(
            result(point), TWO_OBJ, repro_prefix="repro-facil dse --seed 0"
        )
        entry = report.frontier[0]
        assert entry.repro == (
            "repro-facil dse --seed 0 --only hash00000005 --point-seed 6"
        )

    def test_missing_metric_rejected(self):
        bare = PointOutcome(
            index=0, coords=(), config={}, config_hash="h", seed=1,
            metrics={"goodput_qps": 1.0},
        )
        with pytest.raises(ValueError, match="ttft_p99_ms"):
            pareto_report(result(bare), TWO_OBJ)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            pareto_report(result(outcome(0)), (("goodput_qps", "sideways"),))

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError, match="at least one objective"):
            pareto_report(result(outcome(0)), ())

    def test_render_lists_every_frontier_repro(self):
        points = [
            outcome(i, goodput_qps=float(i + 1), ttft_p99_ms=40.0 + 20.0 * i)
            for i in range(3)
        ]
        report = pareto_report(result(*points), OBJECTIVES)
        text = report.render()
        for entry in report.frontier:
            assert entry.repro in text

    def test_render_top_truncates_table(self):
        points = [
            outcome(i, goodput_qps=float(i + 1), ttft_p99_ms=40.0 + 20.0 * i)
            for i in range(3)
        ]
        report = pareto_report(result(*points), OBJECTIVES)
        text = report.render(top=1)
        assert report.frontier[0].repro in text
        assert report.frontier[2].repro not in text
