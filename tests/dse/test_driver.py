"""Tests for the parallel sweep driver (repro.dse.driver).

The determinism contract under test: worker count, completion order,
and resume reuse never change the serialized report — ``workers=1``
and ``workers=4`` are byte-identical, and a resumed sweep reproduces a
fresh one exactly.
"""

import json

import pytest

from repro.dse.driver import load_reuse, run_sweep
from repro.dse.pareto import pareto_report
from repro.dse.spec import SweepSpec


def tiny_spec(seed=0):
    # 2x2 grid, short horizon: fast enough for the tier-1 suite
    return SweepSpec(
        seed=seed,
        duration_ms=500.0,
        axes=(
            ("mapping", ("soc-only", "facil")),
            ("kv_blocks", (0, 64)),
        ),
    )


class TestDeterminism:
    def test_workers_do_not_change_the_report(self):
        serial = run_sweep(tiny_spec(), workers=1)
        fanned = run_sweep(tiny_spec(), workers=4)
        assert (
            pareto_report(serial).to_json() == pareto_report(fanned).to_json()
        )

    def test_points_reduced_in_point_order(self):
        result = run_sweep(tiny_spec(), workers=4)
        assert [p.index for p in result.points] == [0, 1, 2, 3]

    def test_same_seed_same_metrics(self):
        a = run_sweep(tiny_spec(seed=3), workers=1)
        b = run_sweep(tiny_spec(seed=3), workers=1)
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())

    def test_different_seed_different_metrics(self):
        a = run_sweep(tiny_spec(seed=0), workers=1)
        b = run_sweep(tiny_spec(seed=1), workers=1)
        assert json.dumps(a.to_dict()) != json.dumps(b.to_dict())

    def test_spec_hash_recorded(self):
        result = run_sweep(tiny_spec(), workers=1)
        assert result.spec_hash
        assert result.spec_config["axes"] == {
            "mapping": ["soc-only", "facil"],
            "kv_blocks": [0, 64],
        }


class TestResume:
    def test_reuse_skips_completed_points(self, tmp_path):
        fresh = run_sweep(tiny_spec(), workers=1)
        path = str(tmp_path / "sweep.json")
        with open(path, "w") as fh:
            json.dump(fresh.to_dict(), fh)
        resumed = run_sweep(tiny_spec(), workers=1, reuse=load_reuse(path))
        assert resumed.evaluated == 0
        assert resumed.reused == len(fresh.points)
        # reused flag must not leak into the serialized report
        assert json.dumps(resumed.to_dict()) == json.dumps(fresh.to_dict())

    def test_partial_reuse_evaluates_the_rest(self, tmp_path):
        fresh = run_sweep(tiny_spec(), workers=1)
        payload = fresh.to_dict()
        payload["points"] = payload["points"][:2]
        path = str(tmp_path / "sweep.json")
        with open(path, "w") as fh:
            json.dump(payload, fh)
        resumed = run_sweep(tiny_spec(), workers=1, reuse=load_reuse(path))
        assert resumed.reused == 2
        assert resumed.evaluated == 2
        assert json.dumps(resumed.to_dict()) == json.dumps(fresh.to_dict())

    def test_reuse_keyed_on_seed_too(self, tmp_path):
        fresh = run_sweep(tiny_spec(seed=0), workers=1)
        path = str(tmp_path / "sweep.json")
        with open(path, "w") as fh:
            json.dump(fresh.to_dict(), fh)
        # a different sweep seed derives different point seeds: no reuse
        resumed = run_sweep(tiny_spec(seed=1), workers=1,
                            reuse=load_reuse(path))
        assert resumed.reused == 0
        assert resumed.evaluated == 4

    def test_load_reuse_tolerates_missing_file(self, tmp_path):
        assert load_reuse(str(tmp_path / "nope.json")) == {}

    def test_load_reuse_rejects_malformed_points(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"points": [{"config_hash": "h"}]}))
        with pytest.raises(ValueError, match="malformed sweep report"):
            load_reuse(str(path))


class TestValidation:
    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(tiny_spec(), workers=0)
