"""Tests for the declarative sweep spec layer (repro.dse.spec)."""

import pytest

from repro.dse.spec import (
    AXIS_ORDER,
    PLATFORM_NAMES,
    SweepSpec,
    default_sweep,
    derive_point_seed,
    parse_axis_overrides,
)
from repro.telemetry.bench import hash_config


def tiny_spec(**knobs):
    knobs.setdefault("duration_ms", 500.0)
    knobs.setdefault(
        "axes",
        (
            ("mapping", ("soc-only", "facil")),
            ("kv_blocks", (0, 64)),
        ),
    )
    return SweepSpec(**knobs)


class TestExpansion:
    def test_product_order_follows_axis_declaration(self):
        points = tiny_spec().points()
        combos = [(p.coord("mapping"), p.coord("kv_blocks")) for p in points]
        assert combos == [
            ("soc-only", 0), ("soc-only", 64),
            ("facil", 0), ("facil", 64),
        ]
        assert [p.index for p in points] == [0, 1, 2, 3]

    def test_expansion_is_deterministic(self):
        a = tiny_spec().points()
        b = tiny_spec().points()
        assert [p.config_hash for p in a] == [p.config_hash for p in b]
        assert [p.seed for p in a] == [p.seed for p in b]

    def test_non_swept_axes_filled_from_defaults(self):
        point = tiny_spec().points()[0]
        for axis in AXIS_ORDER:
            assert axis in point.config
        assert point.config["platform"] == "jetson-agx-orin"
        assert point.config["shed"] == "reject"
        assert point.config["workload"] == "chat"

    def test_config_hash_matches_hash_config(self):
        for point in tiny_spec().points():
            assert point.config_hash == hash_config(point.config)

    def test_default_sweep_has_at_least_48_points_over_3_axes(self):
        spec = default_sweep(seed=0)
        assert spec.n_points >= 48
        assert len(spec.axes) >= 3
        assert len(spec.points()) == spec.n_points

    def test_coord_raises_on_unswept_axis(self):
        point = tiny_spec().points()[0]
        with pytest.raises(KeyError):
            point.coord("platform")


class TestSeeds:
    def test_point_seeds_distinct_within_a_sweep(self):
        seeds = [p.seed for p in default_sweep(seed=3).points()]
        assert len(set(seeds)) == len(seeds)

    def test_derive_point_seed_pure(self):
        assert derive_point_seed(5, 9) == derive_point_seed(5, 9)
        assert derive_point_seed(5, 9) != derive_point_seed(5, 10)
        assert derive_point_seed(5, 9) != derive_point_seed(6, 9)

    def test_derive_point_seed_rejects_negative_index(self):
        with pytest.raises(ValueError):
            derive_point_seed(0, -1)


class TestOverrides:
    def test_override_patches_matching_points_only(self):
        spec = tiny_spec(
            overrides=(
                ((("mapping", "soc-only"),), (("qps", 0.5),)),
            ),
        )
        for point in spec.points():
            expected = 0.5 if point.coord("mapping") == "soc-only" else spec.qps
            assert point.config["qps"] == expected

    def test_override_on_undeclared_axis_rejected(self):
        with pytest.raises(ValueError, match="not a .*declared axis"):
            tiny_spec(
                overrides=(((("platform", "x"),), (("qps", 0.5),)),),
            )

    def test_override_on_non_overridable_knob_rejected(self):
        with pytest.raises(ValueError, match="may be patched"):
            tiny_spec(
                overrides=(((("mapping", "facil"),), (("mapping", "x"),)),),
            )


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            SweepSpec(axes=(("voltage", ("low",)),))

    def test_out_of_domain_value_rejected(self):
        with pytest.raises(ValueError, match="not in domain"):
            SweepSpec(axes=(("mapping", ("warp-drive",)),))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="declared twice"):
            SweepSpec(
                axes=(
                    ("mapping", ("facil",)),
                    ("mapping", ("soc-only",)),
                ),
            )

    def test_repeated_axis_value_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            SweepSpec(axes=(("mapping", ("facil", "facil")),))

    def test_negative_kv_blocks_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SweepSpec(axes=(("kv_blocks", (-1,)),))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            SweepSpec(axes=())

    def test_nonpositive_knobs_rejected(self):
        for knob in ("duration_ms", "qps", "deadline_ms",
                     "queue_capacity", "block_tokens"):
            with pytest.raises(ValueError, match=knob):
                tiny_spec(**{knob: 0})


class TestParseAxisOverrides:
    def test_parses_named_values(self):
        axes = parse_axis_overrides(["mapping=facil,soc-only"])
        assert axes == [("mapping", ("facil", "soc-only"))]

    def test_kv_blocks_converted_to_int(self):
        axes = parse_axis_overrides(["kv_blocks=0,128"])
        assert axes == [("kv_blocks", (0, 128))]

    def test_bad_kv_blocks_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            parse_axis_overrides(["kv_blocks=many"])

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="bad axis spec"):
            parse_axis_overrides(["mapping"])

    def test_empty_value_list_rejected(self):
        with pytest.raises(ValueError, match="bad axis spec"):
            parse_axis_overrides(["mapping="])

    def test_platform_domain_is_validated(self):
        with pytest.raises(ValueError, match="not in domain"):
            parse_axis_overrides(["platform=imaginary-soc"])
        axes = parse_axis_overrides([f"platform={PLATFORM_NAMES[0]}"])
        assert axes[0][1] == (PLATFORM_NAMES[0],)


class TestWorkloadAxis:
    """The workload axis domain extends with the serving workloads but
    stays closed: unknown shapes are still rejected by name."""

    def test_new_workload_shapes_in_domain(self):
        from repro.dse.spec import WORKLOADS

        for name in ("chat", "speculative", "moe", "coresident"):
            assert name in WORKLOADS
        spec = SweepSpec(
            axes=(("workload", ("chat", "speculative", "moe", "coresident")),),
            duration_ms=500.0,
        )
        assert spec.n_points == 4

    def test_unknown_workload_shape_rejected_by_name(self):
        with pytest.raises(ValueError, match="not in domain"):
            SweepSpec(axes=(("workload", ("prefetch-oracle",)),))
        with pytest.raises(ValueError, match="not in domain"):
            parse_axis_overrides(["workload=prefetch-oracle"])

    def test_workload_knobs_are_overridable(self):
        from repro.dse.spec import OVERRIDABLE

        for knob in ("gamma", "acceptance_rate", "n_experts",
                     "experts_per_token", "resident_experts",
                     "secondary_share"):
            assert knob in OVERRIDABLE

    def test_override_patches_speculative_knob(self):
        spec = SweepSpec(
            axes=(("workload", ("chat", "speculative")),),
            duration_ms=500.0,
            overrides=(
                ((("workload", "speculative"),), (("gamma", 8),)),
            ),
        )
        for point in spec.points():
            if point.coord("workload") == "speculative":
                assert point.config["gamma"] == 8
            else:
                assert "gamma" not in point.config
