"""Tests for the shared regression gate (benchmarks/report.py diff_bench)."""

import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "benchmarks",
    ),
)

from report import diff_bench  # noqa: E402

from repro.telemetry.bench import BenchResult  # noqa: E402


def bench(config_hash="aaaabbbbcccc", **metrics):
    return BenchResult(
        name="suite", seed=0, config_hash=config_hash,
        metrics={k: float(v) for k, v in metrics.items()},
    )


class TestAbsoluteBounds:
    def test_min_bound_passes_and_fails(self):
        assert diff_bench(bench(x=2.0), min_bounds={"x": 1.0}).ok
        assert not diff_bench(bench(x=0.5), min_bounds={"x": 1.0}).ok

    def test_max_bound_passes_and_fails(self):
        assert diff_bench(bench(x=0.0), max_bounds={"x": 0.0}).ok
        assert not diff_bench(bench(x=1.0), max_bounds={"x": 0.0}).ok

    def test_ratio_min(self):
        fresh = bench(num=3.0, den=4.0)
        assert diff_bench(fresh, ratio_min={("num", "den"): 0.5}).ok
        assert not diff_bench(fresh, ratio_min={("num", "den"): 0.9}).ok

    def test_ratio_with_zero_denominator_fails(self):
        diff = diff_bench(bench(num=1.0, den=0.0),
                          ratio_min={("num", "den"): 0.5})
        assert not diff.ok
        assert any("denominator is zero" in line for line in diff.lines)

    def test_missing_metric_is_a_failure(self):
        diff = diff_bench(bench(x=1.0), min_bounds={"y": 0.0})
        assert not diff.ok
        assert any("missing from fresh" in line for line in diff.lines)


class TestBaselineRelative:
    def test_no_worse_passes_within_tolerance(self):
        diff = diff_bench(
            bench(goodput=0.97), bench(goodput=1.0),
            no_worse={"goodput": 0.05},
        )
        assert diff.ok
        assert not diff.no_comparison

    def test_no_worse_fails_past_tolerance(self):
        assert not diff_bench(
            bench(goodput=0.90), bench(goodput=1.0),
            no_worse={"goodput": 0.05},
        ).ok

    def test_lower_is_better_flips_direction(self):
        fresh, base = bench(p99=110.0), bench(p99=100.0)
        assert not diff_bench(
            fresh, base, no_worse={"p99": 0.05}, lower_is_better=("p99",)
        ).ok
        assert diff_bench(
            fresh, base, no_worse={"p99": 0.15}, lower_is_better=("p99",)
        ).ok

    def test_config_hash_mismatch_is_no_comparison_not_failure(self):
        diff = diff_bench(
            bench(goodput=0.5, config_hash="111111111111"),
            bench(goodput=1.0, config_hash="222222222222"),
            no_worse={"goodput": 0.05},
        )
        assert diff.no_comparison
        assert diff.ok
        assert any("no comparison" in line for line in diff.lines)

    def test_mismatch_still_gates_absolute_bounds(self):
        diff = diff_bench(
            bench(goodput=0.5, config_hash="111111111111"),
            bench(goodput=1.0, config_hash="222222222222"),
            min_bounds={"goodput": 0.8},
            no_worse={"goodput": 0.05},
        )
        assert diff.no_comparison
        assert not diff.ok

    def test_absent_baseline_is_no_comparison(self):
        diff = diff_bench(bench(goodput=0.5), None,
                          no_worse={"goodput": 0.05})
        assert diff.no_comparison
        assert diff.ok


class TestRender:
    def test_render_reports_every_rule(self):
        diff = diff_bench(
            bench(x=2.0, y=0.0), bench(x=2.0, y=0.0),
            min_bounds={"x": 1.0}, max_bounds={"y": 0.0},
            no_worse={"x": 0.05},
        )
        text = diff.render()
        assert "x" in text and "y" in text
        assert text.count("\n") >= 2


class TestCli:
    def test_diff_main_exit_codes(self, tmp_path):
        from report import _diff_main

        from repro.telemetry.bench import write_bench_result

        path = str(tmp_path / "BENCH_x.json")
        write_bench_result(path, bench(x=2.0))
        assert _diff_main([path, "--min", "x=1"]) == 0
        assert _diff_main([path, "--min", "x=3"]) == 1

    def test_diff_main_rejects_bad_bounds(self, tmp_path):
        from report import _diff_main

        from repro.telemetry.bench import write_bench_result

        path = str(tmp_path / "BENCH_x.json")
        write_bench_result(path, bench(x=2.0))
        with pytest.raises(SystemExit):
            _diff_main([path, "--min", "x"])
        with pytest.raises(SystemExit):
            _diff_main([path, "--ratio-min", "xy=1"])
