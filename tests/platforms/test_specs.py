"""Tests that the platform catalog matches paper Table II."""

import pytest

from repro.platforms.specs import (
    ALL_PLATFORMS,
    IDEAPAD,
    IPHONE_15_PRO,
    JETSON_ORIN,
    MACBOOK_PRO,
)


class TestTable2:
    @pytest.mark.parametrize(
        "platform,tflops,bw,capacity_gb,model",
        [
            (JETSON_ORIN, 42.5, 204.8, 64, "llama3-8b"),
            (MACBOOK_PRO, 28.4, 409.6, 64, "llama3-8b"),
            (IDEAPAD, 5.6, 59.7, 32, "opt-6.7b"),
            (IPHONE_15_PRO, 4.29, 51.2, 8, "phi-1.5"),
        ],
    )
    def test_row(self, platform, tflops, bw, capacity_gb, model):
        assert platform.soc.peak_tflops_fp16 == tflops
        assert platform.peak_bw_gbps == pytest.approx(bw, rel=1e-3)
        assert platform.dram.org.capacity_bytes == capacity_gb << 30
        assert platform.model_name == model

    def test_measured_bandwidth_utilizations(self):
        """§VI-C: 76.3 / 88.3 / 33.3 / 74.6 %."""
        assert JETSON_ORIN.soc.bw_utilization == 0.763
        assert MACBOOK_PRO.soc.bw_utilization == 0.883
        assert IDEAPAD.soc.bw_utilization == 0.333
        assert IPHONE_15_PRO.soc.bw_utilization == 0.746

    def test_table3_conservative_slowdowns(self):
        """Worst-case Table III values: 2.1 / 0.1 / 1.1 / 1.6 %."""
        assert JETSON_ORIN.gemm_layout_slowdown == 0.021
        assert MACBOOK_PRO.gemm_layout_slowdown == 0.001
        assert IDEAPAD.gemm_layout_slowdown == 0.011
        assert IPHONE_15_PRO.gemm_layout_slowdown == 0.016


class TestPimAugmentation:
    def test_aim_style_everywhere(self):
        """§VI-A: AiM-style PIM, 16 banks/rank sharing a 2 KB global
        buffer, two ranks per channel."""
        for platform in ALL_PLATFORMS:
            assert platform.pim.chunk_rows == 1
            assert platform.pim.global_buffer_bytes == 2048
            assert platform.pim.banks_per_global_buffer == 16
            assert platform.dram.org.ranks_per_channel == 2
            assert platform.dram.org.banks_per_rank == 16


class TestRidgePoints:
    def test_paper_ridge_ordering(self):
        """§VI-B: MacBook (69.3) and iPhone (83.8) have lower ridge
        points than IdeaPad (93.8) and Jetson (207.5)."""
        ridges = {p.name: p.soc.ridge_point_flop_per_byte for p in ALL_PLATFORMS}
        assert ridges["jetson-agx-orin"] == pytest.approx(207.5, rel=0.01)
        assert ridges["macbook-pro-m3-max"] == pytest.approx(69.3, rel=0.01)
        assert ridges["ideapad-slim-5"] == pytest.approx(93.8, rel=0.01)
        assert ridges["iphone-15-pro"] == pytest.approx(83.8, rel=0.01)
