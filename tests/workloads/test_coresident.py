"""Two-model co-residency: per-model MapID sets in one system,
interference accounting, and teardown conservation."""

from repro.serving.runtime import ServingRuntime

from tests.workloads.conftest import make_config, make_requests
from repro.workloads import CoResidencySpec


def _run(engine, spec=None, **kwargs):
    kwargs.setdefault("qps", 3.0)
    kwargs.setdefault("secondary_qps", 3.0)
    kwargs.setdefault("duration_ms", 2_000.0)
    reqs = make_requests(**kwargs)
    return ServingRuntime(
        engine, make_config(), workload=spec or CoResidencySpec()
    ).run(reqs)


class TestCoResidency:
    def test_both_models_placed_and_served(self, engine):
        report = _run(engine)
        w = report.workload
        assert w["primary_model"] == "llama3-8b"
        assert w["secondary_model"] == "phi-1.5"
        assert w["primary_map_ids"] and w["secondary_map_ids"]
        # llama3's gated-FFN shapes are not phi's MLP shapes: the two
        # models cannot collapse onto one identical MapID set
        assert set(w["primary_map_ids"]) != set(w["secondary_map_ids"]) or \
            len(w["primary_map_ids"]) > 1
        assert w["served_primary"] > 0
        assert w["served_secondary"] > 0

    def test_interference_counted_and_priced(self, engine):
        report = _run(engine)
        w = report.workload
        assert w["interference_switches"] > 0
        assert w["interference_ns"] == (
            w["interference_switches"] * w["switch_penalty_ns"]
        )

    def test_zero_penalty_means_zero_interference_ns(self, engine):
        report = _run(engine, CoResidencySpec(switch_penalty_ns=0.0))
        w = report.workload
        assert w["interference_ns"] == 0.0
        assert w["interference_switches"] > 0  # still counted

    def test_conservation_after_teardown(self, engine):
        report = _run(engine)
        assert report.workload["conservation_findings"] == 0
        assert report.workload["findings"] == []

    def test_deterministic(self, engine):
        a = _run(engine).to_json()
        b = _run(engine).to_json()
        assert a == b

    def test_single_tenant_traffic_never_switches(self, engine):
        report = _run(engine, secondary_qps=None)
        w = report.workload
        assert w["served_secondary"] == 0
        assert w["interference_switches"] == 0
