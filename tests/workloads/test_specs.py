"""Construction-time validation of the workload specs: every bad value
dies with an error naming the offending field."""

import pytest

from repro.workloads import (
    WORKLOAD_NAMES,
    CoResidencySpec,
    ExpertPlacementSpec,
    SpeculativeSpec,
)


class TestWorkloadNames:
    def test_chat_is_first_and_default(self):
        assert WORKLOAD_NAMES[0] == "chat"
        assert set(WORKLOAD_NAMES) == {
            "chat", "speculative", "moe", "coresident"
        }


class TestSpeculativeSpec:
    def test_defaults_valid(self):
        spec = SpeculativeSpec()
        assert spec.gamma >= 1
        assert 0.0 <= spec.acceptance_rate <= 1.0

    @pytest.mark.parametrize("kwargs,field", [
        ({"gamma": 0}, "SpeculativeSpec.gamma"),
        ({"acceptance_rate": -0.1}, "SpeculativeSpec.acceptance_rate"),
        ({"acceptance_rate": 1.5}, "SpeculativeSpec.acceptance_rate"),
        ({"kv_blocks": 0}, "SpeculativeSpec.kv_blocks"),
        ({"block_tokens": 0}, "SpeculativeSpec.block_tokens"),
        ({"draft_model": "gpt-17"}, "SpeculativeSpec.draft_model"),
    ])
    def test_bad_value_names_field(self, kwargs, field):
        with pytest.raises(ValueError, match=field.replace(".", r"\.")):
            SpeculativeSpec(**kwargs)


class TestExpertPlacementSpec:
    def test_defaults_valid(self):
        spec = ExpertPlacementSpec()
        assert spec.experts_per_token <= spec.resident_experts <= spec.n_experts

    @pytest.mark.parametrize("kwargs,field", [
        ({"n_experts": 0}, "ExpertPlacementSpec.n_experts"),
        ({"experts_per_token": 0}, "ExpertPlacementSpec.experts_per_token"),
        ({"experts_per_token": 9}, "ExpertPlacementSpec.experts_per_token"),
        ({"resident_experts": 0}, "ExpertPlacementSpec.resident_experts"),
        ({"resident_experts": 99}, "ExpertPlacementSpec.resident_experts"),
        (
            {"experts_per_token": 4, "resident_experts": 2},
            "ExpertPlacementSpec.experts_per_token",
        ),
        ({"expert_rows": 0}, "ExpertPlacementSpec.expert_rows"),
        ({"expert_cols": -1}, "ExpertPlacementSpec.expert_cols"),
        ({"router_skew": -0.5}, "ExpertPlacementSpec.router_skew"),
    ])
    def test_bad_value_names_field(self, kwargs, field):
        with pytest.raises(ValueError, match=field.replace(".", r"\.")):
            ExpertPlacementSpec(**kwargs)


class TestCoResidencySpec:
    def test_defaults_valid(self):
        spec = CoResidencySpec()
        assert 0.0 < spec.secondary_share < 1.0

    @pytest.mark.parametrize("kwargs,field", [
        ({"secondary_model": "nope"}, "CoResidencySpec.secondary_model"),
        ({"secondary_tenant": ""}, "CoResidencySpec.secondary_tenant"),
        ({"secondary_share": 0.0}, "CoResidencySpec.secondary_share"),
        ({"secondary_share": 1.0}, "CoResidencySpec.secondary_share"),
        ({"switch_penalty_ns": -1.0}, "CoResidencySpec.switch_penalty_ns"),
    ])
    def test_bad_value_names_field(self, kwargs, field):
        with pytest.raises(ValueError, match=field.replace(".", r"\.")):
            CoResidencySpec(**kwargs)
