"""Speculative decoding: per-round conservation, KV rollback hygiene,
determinism, and the goodput claim on the SoC-bound decode path."""

import random

from repro.serving.runtime import ServingRuntime

from tests.workloads.conftest import make_config, make_requests
from repro.workloads import SpeculativeSpec, draft_round


class TestDraftRound:
    def test_conservation_and_fixed_draw_count(self):
        rng = random.Random(0)
        for _ in range(200):
            before = rng.getstate()
            accepted, rejected = draft_round(rng, 4, 0.7)
            assert accepted + rejected == 4
            assert 0 <= accepted <= 4
            # exactly gamma variates consumed, whatever the outcome
            replay = random.Random()
            replay.setstate(before)
            for _ in range(4):
                replay.random()
            assert replay.getstate() == rng.getstate()

    def test_acceptance_extremes(self):
        rng = random.Random(1)
        assert draft_round(rng, 6, 1.0) == (6, 0)
        assert draft_round(rng, 6, 0.0) == (0, 6)

    def test_truncates_at_first_rejection(self):
        # acceptance below 1 must sometimes truncate mid-round: accepted
        # counts only the prefix before the first rejection
        rng = random.Random(2)
        partials = [draft_round(rng, 8, 0.5)[0] for _ in range(100)]
        assert any(0 < a < 8 for a in partials)


class TestSpeculativeServing:
    def _run(self, engine, spec, **kwargs):
        reqs = make_requests(**kwargs)
        return ServingRuntime(
            engine, make_config(), workload=spec
        ).run(reqs)

    def test_conservation_and_audit_clean(self, engine):
        report = self._run(engine, SpeculativeSpec(kv_blocks=2048))
        w = report.workload
        assert w["accepted_tokens"] + w["rejected_tokens"] == w["drafted_tokens"]
        assert w["audit_findings"] == 0
        assert w["conservation_findings"] == 0
        assert w["rounds"] > 0
        assert w["kv_forks"] == w["rollbacks"] >= w["rounds"]

    def test_deterministic(self, engine):
        a = self._run(engine, SpeculativeSpec())
        b = self._run(engine, SpeculativeSpec())
        assert a.to_json() == b.to_json()

    def test_rollback_under_pressure_stays_clean(self, engine):
        # a pool far too small for the traffic forces the preempt-and-
        # recompute path; the refcount audit must still reconcile
        report = self._run(
            engine, SpeculativeSpec(kv_blocks=12), qps=6.0,
            duration_ms=1_500.0,
        )
        w = report.workload
        assert w["kv_preemptions"] + w["kv_rejections"] > 0
        assert w["audit_findings"] == 0
        assert w["conservation_findings"] == 0

    def test_goodput_beats_soc_baseline_at_08(self, engine):
        # where decode is SoC-bound, a cheap draft plus one batched
        # verify pass beats token-at-a-time decode at acceptance 0.8
        kwargs = dict(policy="soc-only", qps=3.0, duration_ms=2_000.0)
        reqs = make_requests(**kwargs)
        base = ServingRuntime(engine, make_config()).run(reqs)
        spec = ServingRuntime(
            engine, make_config(),
            workload=SpeculativeSpec(acceptance_rate=0.8, kv_blocks=2048),
        ).run(reqs)
        tokens = lambda r: sum(o.decode_tokens_served for o in r.outcomes)
        base_rate = tokens(base) / base.duration_ns
        spec_rate = tokens(spec) / spec.duration_ns
        assert spec_rate >= base_rate

    def test_workload_section_in_report_dict(self, engine):
        report = self._run(engine, SpeculativeSpec())
        d = report.to_dict()
        assert d["workload"]["name"] == "speculative"
        assert "workload" in report.render()
