"""Hypothesis properties for the workload loops.

* speculative conservation: every round satisfies ``accepted + rejected
  == gamma`` and a fork/commit/rollback cycle leaves the pool's
  refcounts exactly reconciled;
* MoE eviction: under any router stream the resident set never exceeds
  the budget, and drain always returns the mapping table to the
  conventional entry alone.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.kvcache.manager import KvCacheManager
from repro.kvcache.pool import BlockPool, KvSpec
from repro.workloads import ExpertPlacementSpec, draft_round, route_experts
from repro.workloads.moe import ExpertPool

_SETTINGS = dict(max_examples=40, deadline=None)


class TestSpeculativeConservation:
    @given(
        seed=st.integers(0, 2**32 - 1),
        gamma=st.integers(1, 16),
        rate=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(**_SETTINGS)
    def test_round_conserves_tokens(self, seed, gamma, rate):
        accepted, rejected = draft_round(random.Random(seed), gamma, rate)
        assert accepted + rejected == gamma
        assert accepted >= 0 and rejected >= 0

    @given(
        seed=st.integers(0, 2**32 - 1),
        prefill=st.integers(1, 120),
        rounds=st.integers(1, 12),
        gamma=st.integers(1, 8),
    )
    @settings(**_SETTINGS)
    def test_fork_rollback_reconciles_refcounts(
        self, seed, prefill, rounds, gamma
    ):
        rng = random.Random(seed)
        pool = BlockPool(256, KvSpec(block_tokens=16, kv_dim=8, dtype_bytes=2))
        kv = KvCacheManager(pool, prefix_sharing=True)
        admission = kv.begin(1, 1, prefill, 0.0)
        kv.commit(1, admission.recompute_tokens, 0.0)
        for r in range(rounds):
            child = -(r + 1)
            kv.fork(1, child, float(r))
            kv.ensure_capacity(child, gamma, float(r))
            kv.commit(child, gamma, float(r))
            accepted, _ = draft_round(rng, gamma, 0.7)
            # rollback: the speculated tokens vanish with the fork
            kv.release(child, float(r), retain=False)
            step = accepted + 1
            kv.ensure_capacity(1, step, float(r))
            kv.commit(1, step, float(r))
            assert kv.audit() == []
        kv.release(1, float(rounds), retain=False)
        assert kv.audit() == []


class TestMoeEviction:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_experts=st.integers(2, 12),
        data=st.data(),
    )
    @settings(**_SETTINGS)
    def test_resident_never_exceeds_budget(self, seed, n_experts, data):
        budget = data.draw(st.integers(1, n_experts))
        per_token = data.draw(st.integers(1, budget))
        skew = data.draw(st.floats(0.0, 3.0, allow_nan=False))
        spec = ExpertPlacementSpec(
            n_experts=n_experts,
            experts_per_token=per_token,
            resident_experts=budget,
            expert_rows=256,
            expert_cols=256,
            router_skew=skew,
        )
        # a dram config for load pricing: any real platform's will do
        from repro.platforms.specs import JETSON_ORIN

        pool = ExpertPool(spec, JETSON_ORIN.dram)
        rng = random.Random(seed)
        for _ in range(60):
            pool.touch(route_experts(rng, n_experts, per_token, skew))
            assert len(pool.resident) <= budget
        assert pool.resident_peak <= budget
        assert pool.budget_violations == 0
        pool.drain()
        assert pool.conservation_findings() == []
        assert len(pool.system.controller.table) == 1
