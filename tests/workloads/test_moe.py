"""MoE expert placement: LRU budget discipline, journal/mapping-table
conservation, and the hit-rate vs pool-size relationship."""

import random

import pytest

from repro.serving.runtime import ServingRuntime

from tests.workloads.conftest import make_config, make_requests
from repro.workloads import ExpertPlacementSpec, route_experts
from repro.workloads.moe import ExpertPool


def _small(**kwargs):
    kwargs.setdefault("expert_rows", 1024)
    kwargs.setdefault("expert_cols", 1024)
    return ExpertPlacementSpec(**kwargs)


class TestRouter:
    def test_distinct_and_fixed_draw_count(self):
        rng = random.Random(0)
        for _ in range(100):
            before = rng.getstate()
            chosen = route_experts(rng, 8, 3, 1.1)
            assert len(chosen) == len(set(chosen)) == 3
            assert all(0 <= e < 8 for e in chosen)
            replay = random.Random()
            replay.setstate(before)
            for _ in range(3):
                replay.random()
            assert replay.getstate() == rng.getstate()

    def test_skew_prefers_low_ids(self):
        rng = random.Random(1)
        counts = [0] * 8
        for _ in range(500):
            for e in route_experts(rng, 8, 2, 2.0):
                counts[e] += 1
        assert counts[0] > counts[7]

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            route_experts(random.Random(0), 4, 5, 1.0)


class TestExpertPool:
    def _drive(self, pool, n_tokens, spec, seed=0):
        rng = random.Random(seed)
        for _ in range(n_tokens):
            pool.touch(route_experts(
                rng, spec.n_experts, spec.experts_per_token, spec.router_skew
            ))

    def test_budget_never_exceeded(self, engine):
        spec = _small(n_experts=8, resident_experts=3, experts_per_token=2)
        pool = ExpertPool(spec, engine.platform.dram)
        self._drive(pool, 200, spec)
        assert pool.resident_peak <= spec.resident_experts
        assert pool.budget_violations == 0
        pool.drain()
        assert pool.conservation_findings() == []

    def test_all_resident_all_hits_after_warmup(self, engine):
        spec = _small(n_experts=4, resident_experts=4, experts_per_token=2)
        pool = ExpertPool(spec, engine.platform.dram)
        self._drive(pool, 100, spec)
        # pool covers every expert: only the 4 cold loads miss
        assert pool.misses == pool.cold_loads <= 4
        assert pool.evictions == 0
        pool.drain()
        assert pool.conservation_findings() == []

    def test_hit_rate_monotone_in_budget(self, engine):
        rates = []
        for budget in (2, 4, 8):
            spec = _small(
                n_experts=8, resident_experts=budget, experts_per_token=2
            )
            pool = ExpertPool(spec, engine.platform.dram)
            self._drive(pool, 300, spec, seed=3)
            rates.append(pool.hits / (pool.hits + pool.misses))
            pool.drain()
        assert rates[0] < rates[1] < rates[2]

    def test_mapping_table_clean_after_drain(self, engine):
        spec = _small()
        pool = ExpertPool(spec, engine.platform.dram)
        self._drive(pool, 50, spec)
        assert len(pool.system.controller.table) > 1  # experts registered
        pool.drain()
        assert len(pool.system.controller.table) == 1
        assert pool.system.journal.uncommitted() == []


class TestMoeServing:
    def test_end_to_end_conserves(self, engine):
        reqs = make_requests(qps=3.0, duration_ms=1_500.0)
        report = ServingRuntime(
            engine, make_config(), workload=_small()
        ).run(reqs)
        w = report.workload
        assert w["name"] == "moe"
        assert w["hits"] + w["misses"] == w["expert_accesses"]
        assert w["resident_peak"] <= w["resident_experts"]
        assert w["conservation_findings"] == 0
        assert w["map_ids"], "experts must register at least one MapID"

    def test_deterministic(self, engine):
        reqs = make_requests(qps=3.0, duration_ms=1_500.0)
        runs = [
            ServingRuntime(
                engine, make_config(), workload=_small()
            ).run(reqs).to_json()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
