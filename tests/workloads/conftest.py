import pytest

from repro.engine.policies import InferenceEngine
from repro.platforms.specs import JETSON_ORIN
from repro.serving.runtime import ServingConfig
from repro.serving.workload import TenantSpec, poisson_workload


@pytest.fixture(scope="session")
def engine():
    return InferenceEngine(JETSON_ORIN)


def make_requests(policy="facil", qps=4.0, duration_ms=2_000.0, seed=7,
                  deadline_ms=120_000.0, secondary_qps=None):
    tenants = [TenantSpec(
        name="chat", policy=policy, qps=qps, deadline_ms=deadline_ms,
    )]
    if secondary_qps is not None:
        tenants.append(TenantSpec(
            name="secondary", policy=policy, qps=secondary_qps,
            deadline_ms=deadline_ms,
        ))
    return poisson_workload(tenants, duration_ms=duration_ms, seed=seed)


def make_config(seed=7, **kwargs):
    kwargs.setdefault("queue_capacity", 64)
    kwargs.setdefault("shed_policy", "drop-oldest")
    return ServingConfig(seed=seed, **kwargs)
