"""Acceptance criterion: importing and even running repro.workloads
leaves the existing chat serving path byte-identical."""

from repro.serving.runtime import ServingRuntime

from tests.workloads.conftest import make_config, make_requests


def _chat_json(engine):
    reqs = make_requests(qps=4.0, duration_ms=2_000.0)
    return ServingRuntime(engine, make_config()).run(reqs).to_json()


class TestChatByteIdentity:
    def test_chat_identical_around_workload_runs(self, engine):
        before = _chat_json(engine)

        import repro.workloads  # noqa: F401  (import must be inert)
        from repro.workloads import (
            CoResidencySpec,
            ExpertPlacementSpec,
            SpeculativeSpec,
        )

        # exercise all three workload loops between the two chat runs
        for spec in (
            SpeculativeSpec(),
            ExpertPlacementSpec(expert_rows=1024, expert_cols=1024),
            CoResidencySpec(),
        ):
            reqs = make_requests(
                qps=2.0,
                duration_ms=1_000.0,
                secondary_qps=2.0 if isinstance(spec, CoResidencySpec) else None,
            )
            ServingRuntime(engine, make_config(), workload=spec).run(reqs)

        after = _chat_json(engine)
        assert before == after

    def test_chat_report_has_no_workload_section(self, engine):
        reqs = make_requests(qps=2.0, duration_ms=1_000.0)
        report = ServingRuntime(engine, make_config()).run(reqs)
        assert report.workload is None
        assert "workload" not in report.to_dict()
        assert '"workload"' not in report.to_json()
