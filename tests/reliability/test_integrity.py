"""Mapping-table parity, refcounted release, and the MapID-leak fix."""

import pytest

from repro.core.controller import MappingTable
from repro.core.mapping import AddressMapping, conventional_mapping
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.reliability.faults import FaultInjector
from repro.reliability.integrity import (
    MappingIntegrityError,
    ParityMappingTable,
    mapping_checksum,
)

N_BITS = 21


def _conventional():
    return conventional_mapping(TINY_ORG, N_BITS)


def _variant(index):
    """Distinct valid mappings: rotate the ROW/COL bit sources.

    Swapping PA sources between two fields keeps the mapping a
    permutation, so each index yields a structurally valid but distinct
    entry — enough to exercise >16 registrations.
    """
    base = _conventional()
    fields = {fname: list(pos) for fname, pos in base.fields.items()}
    rows, cols = fields["row"], fields["col"]
    i = index % len(rows)
    j = index % len(cols)
    rows[i], cols[j] = cols[j], rows[i]
    if index // len(rows) % 2:
        rows.reverse()
    return AddressMapping(
        name=f"variant-{index}",
        n_bits=base.n_bits,
        fields={fname: tuple(pos) for fname, pos in fields.items()},
    )


class TestChecksum:
    def test_checksum_is_stable(self):
        assert mapping_checksum(_conventional()) == mapping_checksum(_conventional())

    def test_checksum_covers_routing_not_name(self):
        a = _variant(0)
        renamed = AddressMapping(name="other", n_bits=a.n_bits, fields=a.fields)
        assert mapping_checksum(a) == mapping_checksum(renamed)
        assert mapping_checksum(a) != mapping_checksum(_conventional())


class TestParityTable:
    def test_lookup_verifies_parity(self):
        table = ParityMappingTable(_conventional())
        map_id = table.register(_variant(0))
        assert table[map_id] == _variant(0)
        FaultInjector(seed=0).corrupt_mapping_entry(table, map_id)
        with pytest.raises(MappingIntegrityError) as excinfo:
            table[map_id]
        assert excinfo.value.map_id == map_id
        assert table.verify_all() == [map_id]

    def test_repair_restores_translation(self):
        table = ParityMappingTable(_conventional())
        good = _variant(1)
        map_id = table.register(good)
        FaultInjector(seed=1).corrupt_mapping_entry(table, map_id)
        table.repair(map_id, good)
        assert table[map_id] == good
        assert table.verify_all() == []
        assert table.refcount(map_id) == 1  # repair keeps the refcount

    def test_repair_rejects_dead_slots(self):
        table = ParityMappingTable(_conventional())
        with pytest.raises(KeyError):
            table.repair(5, _variant(0))


class TestRefcountedRelease:
    def test_release_frees_slot_for_reuse(self):
        table = MappingTable(_conventional())
        first = table.register(_variant(0))
        table.release(first)
        with pytest.raises(KeyError):
            table[first]
        second = table.register(_variant(1))
        assert second == first  # the hole is recycled
        assert len(table) == 2

    def test_duplicate_registration_refcounts(self):
        table = MappingTable(_conventional())
        a = table.register(_variant(0))
        b = table.register(_variant(0))
        assert a == b
        assert table.refcount(a) == 2
        table.release(a)
        assert table[a] == _variant(0)  # still referenced
        table.release(a)
        with pytest.raises(KeyError):
            table[a]

    def test_conventional_entry_is_pinned(self):
        table = MappingTable(_conventional())
        table.release(0)
        assert table[0] == _conventional()

    def test_churn_beyond_table_capacity(self):
        # Regression for the MapID leak: >16 *distinct* mappings pass
        # through a 16-entry table, which only works if every release
        # actually frees its slot.
        table = MappingTable(_conventional(), max_entries=16)
        for index in range(40):
            map_id = table.register(_variant(index))
            assert len(table) == 2
            table.release(map_id)
        assert len(table) == 1


class TestPimallocRelease:
    def test_free_releases_the_mapping(self, protected_system):
        table = protected_system.controller.table
        tensor = protected_system.pimalloc(
            MatrixConfig(rows=16, cols=256, dtype_bytes=2)
        )
        assert table.refcount(tensor.map_id) == 1
        tensor.free()
        with pytest.raises(KeyError):
            table.refcount(tensor.map_id)
        assert len(table) == 1

    def test_shared_mapping_survives_until_last_free(self, protected_system):
        table = protected_system.controller.table
        matrix = MatrixConfig(rows=16, cols=256, dtype_bytes=2)
        a = protected_system.pimalloc(matrix)
        b = protected_system.pimalloc(matrix)
        assert a.map_id == b.map_id
        assert table.refcount(a.map_id) == 2
        a.free()
        assert table.refcount(b.map_id) == 1
        b.free()
        assert len(table) == 1

    def test_alloc_free_churn_never_fills_the_table(self, protected_system):
        # Regression for the MapID leak at the pimalloc level: without
        # PimTensor.free releasing its entry, 40 cycles over distinct
        # shapes overflow the 16-entry hardware table.
        shapes = ((16, 256), (8, 128), (32, 256), (8, 256), (16, 128))
        table = protected_system.controller.table
        for cycle in range(40):
            rows, cols = shapes[cycle % len(shapes)]
            tensor = protected_system.pimalloc(
                MatrixConfig(rows=rows, cols=cols, dtype_bytes=2)
            )
            tensor.free()
            assert len(table) == 1  # only the conventional entry survives

    def test_failed_mmap_rolls_back_the_registration(self, protected_system):
        # Exhaust physical memory, then fail an allocation: the mapping
        # registered before mmap must be released again.
        table = protected_system.controller.table
        live = []
        matrix = MatrixConfig(rows=16, cols=256, dtype_bytes=2)
        with pytest.raises(Exception):
            while True:
                live.append(protected_system.pimalloc(matrix))
        len_after_oom = len(table)
        refcount_after_oom = table.refcount(live[0].map_id)
        assert refcount_after_oom == len(live)  # failed attempt left none
        for tensor in live:
            tensor.free()
        assert len(table) == len_after_oom - 1
