"""Shared fixtures for the reliability test suite."""

import pytest

from repro.core.pimalloc import PimSystem
from repro.dram.config import TINY_ORG
from repro.engine.policies import InferenceEngine
from repro.pim.config import aim_config_for
from repro.platforms.specs import IPHONE_15_PRO


@pytest.fixture
def protected_system():
    """Tiny functional system with ECC and mapping-table parity on."""
    return PimSystem.build(
        TINY_ORG, aim_config_for(TINY_ORG), ecc=True, integrity=True
    )


@pytest.fixture(scope="session")
def iphone_engine():
    """One engine on the smallest model (cheap to construct, cached)."""
    return InferenceEngine(IPHONE_15_PRO)
