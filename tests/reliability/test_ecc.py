"""SECDED(72,64) properties and the controller-level ECC data path."""

import itertools

import numpy as np
import pytest

from repro.core.selector import MatrixConfig
from repro.reliability.ecc import (
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_UNCORRECTABLE,
    UncorrectableEccError,
    secded_decode,
    secded_encode,
)
from repro.reliability.faults import FaultInjector

RNG = np.random.default_rng(42)


def _random_words(n):
    return RNG.integers(0, np.iinfo(np.uint64).max, size=n, dtype=np.uint64)


class TestSecdedCode:
    def test_clean_words_decode_clean(self):
        data = _random_words(64)
        check = secded_encode(data)
        out_data, out_check, status = secded_decode(data, check)
        assert np.all(status == STATUS_CLEAN)
        assert np.array_equal(out_data, data)
        assert np.array_equal(out_check, check)

    def test_zero_word_has_zero_check(self):
        # Lazily-zeroed DRAM must be born ECC-consistent without a
        # shadow entry: the all-zero codeword's check byte is zero.
        check = secded_encode(np.zeros(1, dtype=np.uint64))
        assert int(check[0]) == 0

    def test_every_single_data_bit_flip_is_corrected(self):
        # Property: all 64 data-bit positions, on many random words.
        data = _random_words(64)
        check = secded_encode(data)
        for bit in range(64):
            flipped = data ^ np.uint64(1 << bit)
            out_data, out_check, status = secded_decode(flipped, check)
            assert np.all(status == STATUS_CORRECTED), f"data bit {bit}"
            assert np.array_equal(out_data, data), f"data bit {bit}"
            assert np.array_equal(out_check, check)

    def test_every_single_check_bit_flip_is_corrected(self):
        data = _random_words(64)
        check = secded_encode(data)
        for bit in range(8):
            bad_check = check ^ np.uint8(1 << bit)
            out_data, out_check, status = secded_decode(data, bad_check)
            assert np.all(status == STATUS_CORRECTED), f"check bit {bit}"
            assert np.array_equal(out_data, data), f"check bit {bit}"
            assert np.array_equal(out_check, check), f"check bit {bit}"

    def test_every_double_data_bit_flip_is_detected(self):
        # Exhaustive over all C(64,2) = 2016 data-bit pairs.
        data = _random_words(1)
        check = secded_encode(data)
        for a, b in itertools.combinations(range(64), 2):
            flipped = data ^ np.uint64((1 << a) | (1 << b))
            _, _, status = secded_decode(flipped, check)
            assert status[0] == STATUS_UNCORRECTABLE, f"bits {a},{b}"

    def test_data_plus_check_double_flips_are_detected(self):
        data = _random_words(1)
        check = secded_encode(data)
        for d, c in itertools.product(range(64), range(8)):
            _, _, status = secded_decode(
                data ^ np.uint64(1 << d), check ^ np.uint8(1 << c)
            )
            assert status[0] == STATUS_UNCORRECTABLE, f"data {d} + check {c}"

    def test_check_check_double_flips_are_detected(self):
        data = _random_words(1)
        check = secded_encode(data)
        for a, b in itertools.combinations(range(8), 2):
            _, _, status = secded_decode(
                data, check ^ np.uint8((1 << a) | (1 << b))
            )
            assert status[0] == STATUS_UNCORRECTABLE, f"check {a},{b}"


class TestControllerEcc:
    def _store(self, system, seed=0, rows=16, cols=256):
        tensor = system.pimalloc(MatrixConfig(rows=rows, cols=cols, dtype_bytes=2))
        data = np.random.default_rng(seed).integers(
            0, 1 << 16, size=(rows, cols), dtype=np.uint16
        )
        tensor.store(data)
        return tensor, data

    def test_clean_roundtrip_reports_no_errors(self, protected_system):
        tensor, data = self._store(protected_system)
        assert np.array_equal(tensor.load(np.uint16), data)
        assert protected_system.ecc.total_corrected == 0
        assert protected_system.ecc.total_detected == 0

    def test_single_bit_flips_are_corrected_transparently(self, protected_system):
        tensor, data = self._store(protected_system)
        injector = FaultInjector(seed=3)
        events = injector.flip_bits_in_tensor(protected_system, tensor, 5)
        assert len(events) == 5
        assert np.array_equal(tensor.load(np.uint16), data)
        assert protected_system.ecc.total_corrected == 5
        assert sum(protected_system.ecc.corrected_by_bank.values()) == 5

    def test_scrub_writes_corrections_back(self, protected_system):
        # The first read corrects in place; a second read is clean.
        tensor, data = self._store(protected_system)
        FaultInjector(seed=4).flip_bits_in_tensor(protected_system, tensor, 3)
        tensor.load(np.uint16)
        before = protected_system.ecc.total_corrected
        assert np.array_equal(tensor.load(np.uint16), data)
        assert protected_system.ecc.total_corrected == before

    def test_double_flip_raises_with_bank_location(self, protected_system):
        tensor, _ = self._store(protected_system)
        event = FaultInjector(seed=5).double_flip_in_tensor(
            protected_system, tensor
        )
        with pytest.raises(UncorrectableEccError) as excinfo:
            tensor.load(np.uint16)
        (key, word), = excinfo.value.faults
        assert key == event.detail[0]
        assert protected_system.ecc.total_detected >= 1
        assert protected_system.ecc.detected_by_bank[key] >= 1

    def test_rewrite_recovers_uncorrectable_word(self, protected_system):
        tensor, data = self._store(protected_system)
        FaultInjector(seed=6).double_flip_in_tensor(protected_system, tensor)
        with pytest.raises(UncorrectableEccError):
            tensor.load(np.uint16)
        tensor.store(data)  # recovery: rewrite from source
        assert np.array_equal(tensor.load(np.uint16), data)
