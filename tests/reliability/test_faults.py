"""FaultInjector: determinism and per-layer hook behavior."""

import numpy as np
import pytest

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.os.buddy import OutOfMemoryError
from repro.os.page_table import HUGE_SHIFT
from repro.pim.config import aim_config_for
from repro.reliability.faults import FaultInjector, FaultKind


def _system():
    return PimSystem.build(TINY_ORG, aim_config_for(TINY_ORG), ecc=True)


def _tensor(system, seed=0):
    tensor = system.pimalloc(MatrixConfig(rows=16, cols=256, dtype_bytes=2))
    data = np.random.default_rng(seed).integers(
        0, 1 << 16, size=(16, 256), dtype=np.uint16
    )
    tensor.store(data)
    return tensor, data


def test_same_seed_same_fault_plan():
    logs = []
    for _ in range(2):
        system = _system()
        injector = FaultInjector(seed=99).attach(system)
        tensor, _ = _tensor(system)
        injector.flip_bits_in_tensor(system, tensor, 4)
        injector.double_flip_in_tensor(system, tensor)
        injector.corrupt_pte_map_id(system, tensor.va)
        logs.append(injector.log)
    assert logs[0] == logs[1]


def test_different_seeds_diverge():
    details = []
    for seed in (1, 2):
        system = _system()
        injector = FaultInjector(seed=seed).attach(system)
        tensor, _ = _tensor(system)
        injector.flip_bits_in_tensor(system, tensor, 4)
        details.append(tuple(e.detail for e in injector.log))
    assert details[0] != details[1]


def test_attach_detach_wires_every_hook():
    system = _system()
    injector = FaultInjector().attach(system)
    assert system.memory.fault_hook is injector
    assert system.space.page_table.fault_hook is injector
    assert system.space.mmu.tlb.fault_hook is injector
    assert system.allocator.fault_hook is injector
    injector.detach()
    assert system.memory.fault_hook is None
    assert system.space.page_table.fault_hook is None
    assert system.space.mmu.tlb.fault_hook is None
    assert system.allocator.fault_hook is None


def test_stuck_bit_reasserts_after_correction():
    system = _system()
    injector = FaultInjector(seed=1).attach(system)
    tensor, data = _tensor(system)
    key = (0, 0, 0)
    injector.add_stuck_bit(system, key, byte_offset=8, bit=2, value=1)
    flat = system.memory.bank(*key).reshape(-1)
    assert flat[8] & (1 << 2)
    # Every read scrubs (correcting the word), but the very next bank
    # access re-asserts the stuck cell — reads stay correct while the
    # per-read correction counter keeps climbing.
    first = tensor.load(np.uint16)
    corrected_after_first = system.ecc.total_corrected
    second = tensor.load(np.uint16)
    assert np.array_equal(first, data)
    assert np.array_equal(second, data)
    if corrected_after_first:  # stuck cell landed in the tensor's bytes
        assert system.ecc.total_corrected > corrected_after_first
    injector.clear_stuck_bits()
    assert not injector.stuck


def test_suppressed_invalidation_leaves_stale_tlb_entry():
    system = _system()
    injector = FaultInjector().attach(system)
    tensor, _ = _tensor(system)
    va = tensor.va
    assert system.space.mmu.tlb.lookup(va) is not None  # cached by the store
    injector.suppress_invalidations(1)
    tensor.free()
    assert system.space.mmu.tlb.lookup(va) is not None  # shootdown was lost
    assert any(e.kind == FaultKind.STALE_TLB for e in injector.log)
    system.space.mmu.tlb.flush()
    assert system.space.mmu.tlb.lookup(va) is None


def test_invalidations_pass_through_without_suppression():
    system = _system()
    FaultInjector().attach(system)
    tensor, _ = _tensor(system)
    va = tensor.va
    tensor.free()
    assert system.space.mmu.tlb.lookup(va) is None


def test_scheduled_alloc_failures_raise_then_clear():
    system = _system()
    injector = FaultInjector().attach(system)
    injector.schedule_alloc_failures(2)
    matrix = MatrixConfig(rows=8, cols=128, dtype_bytes=2)
    for _ in range(2):
        with pytest.raises(OutOfMemoryError):
            system.pimalloc(matrix)
    tensor = system.pimalloc(matrix)  # budget consumed; next alloc works
    assert tensor.va > 0
    assert sum(e.kind == FaultKind.ALLOC_OOM for e in injector.log) == 2


def test_corrupt_pte_map_id_round_trips():
    system = _system()
    injector = FaultInjector(seed=0).attach(system)
    tensor, _ = _tensor(system)
    original = system.space.page_table.walk(tensor.va).map_id
    assert original == tensor.map_id
    event = injector.corrupt_pte_map_id(system, tensor.va, bit=1)
    corrupted = system.space.page_table.walk(tensor.va).map_id
    assert corrupted == original ^ 0b10
    # The (correct) TLB copy was dropped so the corruption is consumed.
    translation = system.space.mmu.translate(tensor.va)
    assert translation.map_id == corrupted
    # Flipping the same bit again restores the PTE.
    injector.corrupt_pte_map_id(system, tensor.va, bit=event.detail[1])
    assert system.space.page_table.walk(tensor.va).map_id == original


def test_failed_pu_is_tracked():
    injector = FaultInjector()
    assert not injector.pim_failed
    injector.fail_pu((0, 0, 1))
    assert injector.pim_failed
    assert (0, 0, 1) in injector.failed_pus
