"""Chaos campaigns: zero silent corruption, full availability, replay."""

import pytest

from repro.reliability.campaign import CampaignSpec, run_campaign
from repro.reliability.degrade import ResilientEngine


@pytest.fixture
def resilient(iphone_engine):
    return ResilientEngine(iphone_engine)


def test_transient_flip_campaign_has_zero_silent_corruptions(resilient):
    # The headline acceptance criterion: at a nonzero transient-flip
    # rate, every fault is corrected by ECC — none reach a consumer.
    spec = CampaignSpec(seed=0, n_queries=12, flip_rate=2.0)
    report = run_campaign(spec, engine=resilient)
    assert report.injected["transient-flip"] > 0
    assert report.corrected == report.injected["transient-flip"]
    assert report.silent == 0
    assert report.aborted == 0
    assert report.availability == 1.0


def test_all_fault_classes_resolve_without_silent_corruption(iphone_engine):
    spec = CampaignSpec(
        seed=7,
        n_queries=10,
        flip_rate=1.5,
        double_flip_rate=0.4,
        pte_corrupt_rate=0.4,
        mapping_corrupt_rate=0.4,
        stale_tlb_rate=0.4,
        alloc_fail_rate=0.4,
    )
    report = run_campaign(spec, engine=ResilientEngine(iphone_engine))
    assert len(report.injected) >= 4  # the sweep actually hit several classes
    assert report.silent == 0
    assert report.availability == 1.0
    assert report.detected > 0


def test_campaign_is_exactly_reproducible(iphone_engine):
    spec = CampaignSpec(
        seed=21,
        n_queries=8,
        flip_rate=1.0,
        double_flip_rate=0.3,
        pte_corrupt_rate=0.3,
        stale_tlb_rate=0.3,
    )
    a = run_campaign(spec, engine=ResilientEngine(iphone_engine))
    b = run_campaign(spec, engine=ResilientEngine(iphone_engine))
    assert a.injected == b.injected
    assert (a.corrected, a.detected, a.silent) == (b.corrected, b.detected, b.silent)
    assert a.fault_log_len == b.fault_log_len
    assert [q.ttlt_ns for q in a.queries] == [q.ttlt_ns for q in b.queries]


def test_pu_failure_degrades_but_serves_everything(resilient):
    spec = CampaignSpec(seed=3, n_queries=8, flip_rate=0.0, pu_fail_at=3)
    report = run_campaign(spec, engine=resilient)
    assert report.availability == 1.0
    assert report.silent == 0
    assert report.health["pim"] == "failed"
    before, after = report.queries[:3], report.queries[3:]
    assert all(not q.fallbacks for q in before)
    assert all(any("soc-decode" in f for f in q.fallbacks) for q in after)
    assert all(q.degradation_ns > 0 for q in after)
    assert report.mean_degradation_ns > 0


def test_clean_campaign_reports_nothing(resilient):
    report = run_campaign(
        CampaignSpec(seed=1, n_queries=4, flip_rate=0.0), engine=resilient
    )
    assert report.total_injected == 0
    assert report.corrected == report.detected == report.silent == 0
    assert report.availability == 1.0
    assert report.mean_degradation_ns == 0.0


def test_render_summarizes_the_campaign(resilient):
    spec = CampaignSpec(seed=5, n_queries=4, flip_rate=1.0)
    text = run_campaign(spec, engine=resilient).render()
    for needle in ("silent", "availability", "p99 TTLT", "corrected"):
        assert needle in text


def test_rejects_empty_campaigns(resilient):
    with pytest.raises(ValueError):
        run_campaign(CampaignSpec(n_queries=0), engine=resilient)


@pytest.mark.chaos
def test_chaos_rate_sweep_never_leaks_silent_corruption(iphone_engine):
    # On-demand sweep (deselected from tier-1 by `-m "not chaos"`):
    # every fault class at escalating rates, several seeds, one bar —
    # zero silent corruptions anywhere.  The retry budget is sized to the
    # storm (a single query can accumulate faults from several classes);
    # the default budget of 3 is exercised by test_too_many_faults_abort.
    for seed in range(5):
        for rate in (0.2, 0.5, 1.0):
            spec = CampaignSpec(
                seed=seed,
                n_queries=15,
                flip_rate=2.0 * rate,
                double_flip_rate=rate * 0.6,
                pte_corrupt_rate=rate * 0.6,
                mapping_corrupt_rate=rate * 0.6,
                stale_tlb_rate=rate * 0.6,
                alloc_fail_rate=rate * 0.6,
                pu_fail_at=10,
            )
            report = run_campaign(
                spec, engine=ResilientEngine(iphone_engine, max_retries=8)
            )
            assert report.silent == 0, (seed, rate)
            assert report.availability == 1.0, (seed, rate)
