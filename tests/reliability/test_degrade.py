"""Health state machine and ResilientEngine fallback chains."""

import pytest

from repro.reliability.degrade import (
    Health,
    HealthMonitor,
    ResilientEngine,
)


class TestHealthMonitor:
    def test_one_fault_degrades(self):
        monitor = HealthMonitor()
        assert monitor.health("pim") is Health.HEALTHY
        assert monitor.record_fault("pim") is Health.DEGRADED

    def test_consecutive_faults_fail(self):
        monitor = HealthMonitor(fail_after=3)
        for _ in range(2):
            monitor.record_fault("pim")
        assert monitor.health("pim") is Health.DEGRADED
        assert monitor.record_fault("pim") is Health.FAILED

    def test_successes_recover_a_degraded_component(self):
        monitor = HealthMonitor(recover_after=3)
        monitor.record_fault("mapping")
        for _ in range(2):
            assert monitor.record_success("mapping") is Health.DEGRADED
        assert monitor.record_success("mapping") is Health.HEALTHY

    def test_interleaved_faults_reset_the_recovery_count(self):
        monitor = HealthMonitor(fail_after=3, recover_after=2)
        monitor.record_fault("pim")
        monitor.record_success("pim")
        monitor.record_fault("pim")  # not consecutive with the first
        assert monitor.health("pim") is Health.DEGRADED

    def test_failed_is_sticky_until_reset(self):
        monitor = HealthMonitor()
        monitor.record_fault("pim", permanent=True)
        for _ in range(10):
            monitor.record_success("pim")
        assert monitor.health("pim") is Health.FAILED
        monitor.reset("pim")
        assert monitor.health("pim") is Health.HEALTHY

    def test_transitions_are_recorded(self):
        monitor = HealthMonitor(fail_after=2)
        monitor.record_fault("pim")
        monitor.record_fault("pim")
        assert monitor.transitions("pim") == [
            (Health.HEALTHY, Health.DEGRADED),
            (Health.DEGRADED, Health.FAILED),
        ]

    def test_validates_thresholds(self):
        with pytest.raises(ValueError):
            HealthMonitor(degrade_after=0)
        with pytest.raises(ValueError):
            HealthMonitor(degrade_after=5, fail_after=3)


class TestResilientEngine:
    def test_healthy_query_matches_plain_engine(self, iphone_engine):
        resilient = ResilientEngine(iphone_engine)
        result = resilient.run_query("facil", 32, 8)
        plain = iphone_engine.run_query("facil", 32, 8)
        assert result.served
        assert result.effective_policy == "facil"
        assert result.fallbacks == ()
        assert result.ttlt_ns == plain.ttlt_ns
        assert result.degradation_ns == 0.0

    def test_unknown_policy_rejected(self, iphone_engine):
        with pytest.raises(ValueError, match="unknown policy"):
            ResilientEngine(iphone_engine).run_query("bogus", 32, 8)

    def test_mapping_failure_falls_back_to_hybrid_static(self, iphone_engine):
        resilient = ResilientEngine(iphone_engine)
        resilient.note_fault(ResilientEngine.MAPPING, permanent=True)
        result = resilient.run_query("facil", 32, 8)
        assert result.served
        assert result.effective_policy == "hybrid-static"
        assert any("hybrid-static" in f for f in result.fallbacks)
        # The static baseline pays the re-layout FACIL avoids.
        assert "relayout" in result.latency.breakdown
        assert result.degradation_ns > 0

    def test_pim_failure_routes_decode_to_soc(self, iphone_engine):
        resilient = ResilientEngine(iphone_engine)
        resilient.note_fault(ResilientEngine.PIM, permanent=True)
        result = resilient.run_query("facil", 32, 8)
        assert result.served
        assert "decode_soc" in result.latency.breakdown
        assert "decode_pim" not in result.latency.breakdown
        assert any("soc-decode" in f for f in result.fallbacks)
        assert result.degradation_ns > 0

    def test_soc_only_never_needs_pim(self, iphone_engine):
        resilient = ResilientEngine(iphone_engine)
        resilient.note_fault(ResilientEngine.PIM, permanent=True)
        result = resilient.run_query("soc-only", 32, 8)
        assert result.served
        assert result.fallbacks == ()
        assert result.degradation_ns == 0.0

    def test_full_availability_under_pim_failure(self, iphone_engine):
        # The acceptance bar: 100% of queries served under a
        # single-component (PIM) failure, with degradation reported.
        resilient = ResilientEngine(iphone_engine)
        resilient.note_fault(ResilientEngine.PIM, permanent=True)
        results = [
            resilient.run_query("facil", prefill, 8)
            for prefill in (8, 16, 32, 64, 128)
        ]
        assert all(r.served for r in results)
        assert all(r.degradation_ns > 0 for r in results)

    def test_transient_faults_cost_bounded_retries(self, iphone_engine):
        resilient = ResilientEngine(iphone_engine, max_retries=3)
        clean = resilient.run_query("facil", 32, 8)
        faulty = resilient.run_query("facil", 32, 8, transient_faults=2)
        assert faulty.served
        assert faulty.retries == 2
        # Exponential backoff: base * (1 + 2).
        assert faulty.backoff_ns == resilient.base_backoff_ns * 3
        assert faulty.ttlt_ns > clean.ttlt_ns
        assert "retry" in faulty.latency.breakdown

    def test_too_many_faults_abort(self, iphone_engine):
        resilient = ResilientEngine(iphone_engine, max_retries=3)
        result = resilient.run_query("facil", 32, 8, transient_faults=4)
        assert not result.served

    def test_service_recovers_a_degraded_pim(self, iphone_engine):
        resilient = ResilientEngine(iphone_engine)
        resilient.note_fault(ResilientEngine.PIM)  # transient: degraded
        assert resilient.monitor.health(ResilientEngine.PIM) is Health.DEGRADED
        for _ in range(resilient.monitor.recover_after):
            resilient.run_query("facil", 32, 8)
        assert resilient.monitor.health(ResilientEngine.PIM) is Health.HEALTHY
