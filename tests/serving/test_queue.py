"""Bounded admission queue: shed policies and backpressure accounting."""

import pytest

from repro.serving.queue import AdmissionQueue, SHED_POLICIES

from tests.serving.conftest import make_request


def _fill(queue, n, start_id=0, gap_ns=10.0):
    for i in range(n):
        queue.offer(make_request(req_id=start_id + i, arrival_ns=(start_id + i) * gap_ns))


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionQueue(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="shed policy"):
            AdmissionQueue(4, "lifo")

    def test_rejects_bad_watermark(self):
        with pytest.raises(ValueError, match="degrade_watermark"):
            AdmissionQueue(4, "degrade", degrade_watermark=5)

    def test_watermark_defaults_to_half_capacity(self):
        assert AdmissionQueue(8, "degrade").degrade_watermark == 4


class TestRejectPolicy:
    def test_full_queue_rejects(self):
        queue = AdmissionQueue(2, "reject")
        _fill(queue, 2)
        verdict, evicted = queue.offer(make_request(req_id=9, arrival_ns=100.0))
        assert verdict == "rejected" and evicted is None
        assert len(queue) == 2
        assert queue.stats.rejected == 1

    def test_occupancy_never_exceeds_capacity(self):
        queue = AdmissionQueue(3, "reject")
        _fill(queue, 10)
        assert queue.stats.peak_occupancy == 3
        assert queue.stats.offered == 10
        assert queue.stats.admitted == 3
        assert queue.stats.rejected == 7


class TestDegradePolicy:
    def test_below_watermark_admits_cleanly(self):
        queue = AdmissionQueue(4, "degrade", degrade_watermark=2)
        verdict, _ = queue.offer(make_request(req_id=0))
        assert verdict == "admitted"

    def test_at_watermark_admits_degraded(self):
        queue = AdmissionQueue(4, "degrade", degrade_watermark=2)
        _fill(queue, 2)
        verdict, _ = queue.offer(make_request(req_id=5, arrival_ns=50.0))
        assert verdict == "admitted-degraded"
        assert queue.stats.admitted_degraded == 1

    def test_full_still_rejects(self):
        queue = AdmissionQueue(3, "degrade", degrade_watermark=1)
        _fill(queue, 3)
        verdict, _ = queue.offer(make_request(req_id=9, arrival_ns=90.0))
        assert verdict == "rejected"


class TestDropOldestPolicy:
    def test_full_queue_evicts_head(self):
        queue = AdmissionQueue(2, "drop-oldest")
        _fill(queue, 2)
        newcomer = make_request(req_id=7, arrival_ns=70.0)
        verdict, evicted = queue.offer(newcomer)
        assert verdict == "admitted"
        assert evicted is not None and evicted.req_id == 0
        assert queue.peek().req_id == 1  # FIFO order preserved
        assert queue.stats.dropped == 1
        assert len(queue) == 2


class TestAccounting:
    def test_time_weighted_occupancy_integral(self):
        queue = AdmissionQueue(4)
        queue.offer(make_request(req_id=0, arrival_ns=0.0))
        queue.offer(make_request(req_id=1, arrival_ns=100.0))
        # [0, 100): 1 waiter; [100, 300): 2 waiters
        queue.pop(300.0)
        assert queue.stats.occupancy_ns == pytest.approx(1 * 100.0 + 2 * 200.0)
        assert queue.stats.mean_occupancy(300.0) == pytest.approx(500.0 / 300.0)

    def test_pop_accumulates_wait(self):
        queue = AdmissionQueue(4)
        queue.offer(make_request(req_id=0, arrival_ns=10.0))
        popped = queue.pop(250.0)
        assert popped.req_id == 0
        assert queue.stats.wait_ns == pytest.approx(240.0)

    def test_pop_empty_returns_none(self):
        assert AdmissionQueue(2).pop(5.0) is None

    def test_drain_empties_the_queue(self):
        queue = AdmissionQueue(4)
        _fill(queue, 3)
        remaining = queue.drain(500.0)
        assert [r.req_id for r in remaining] == [0, 1, 2]
        assert len(queue) == 0

    @pytest.mark.parametrize("policy", SHED_POLICIES)
    def test_offered_equals_admitted_plus_rejected(self, policy):
        queue = AdmissionQueue(3, policy)
        _fill(queue, 12)
        stats = queue.stats
        assert stats.offered == stats.admitted + stats.rejected
        assert stats.shed == stats.rejected + stats.dropped
