"""Bounded admission queue: shed policies and backpressure accounting."""

import pytest

from repro.serving.queue import AdmissionQueue, SHED_POLICIES

from tests.serving.conftest import make_request


def _fill(queue, n, start_id=0, gap_ns=10.0):
    for i in range(n):
        queue.offer(make_request(req_id=start_id + i, arrival_ns=(start_id + i) * gap_ns))


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionQueue(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="shed policy"):
            AdmissionQueue(4, "lifo")

    def test_rejects_bad_watermark(self):
        with pytest.raises(ValueError, match="degrade_watermark"):
            AdmissionQueue(4, "degrade", degrade_watermark=5)

    def test_watermark_defaults_to_half_capacity(self):
        assert AdmissionQueue(8, "degrade").degrade_watermark == 4


class TestRejectPolicy:
    def test_full_queue_rejects(self):
        queue = AdmissionQueue(2, "reject")
        _fill(queue, 2)
        verdict, evicted = queue.offer(make_request(req_id=9, arrival_ns=100.0))
        assert verdict == "rejected" and evicted is None
        assert len(queue) == 2
        assert queue.stats.rejected == 1

    def test_occupancy_never_exceeds_capacity(self):
        queue = AdmissionQueue(3, "reject")
        _fill(queue, 10)
        assert queue.stats.peak_occupancy == 3
        assert queue.stats.offered == 10
        assert queue.stats.admitted == 3
        assert queue.stats.rejected == 7


class TestDegradePolicy:
    def test_below_watermark_admits_cleanly(self):
        queue = AdmissionQueue(4, "degrade", degrade_watermark=2)
        verdict, _ = queue.offer(make_request(req_id=0))
        assert verdict == "admitted"

    def test_at_watermark_admits_degraded(self):
        queue = AdmissionQueue(4, "degrade", degrade_watermark=2)
        _fill(queue, 2)
        verdict, _ = queue.offer(make_request(req_id=5, arrival_ns=50.0))
        assert verdict == "admitted-degraded"
        assert queue.stats.admitted_degraded == 1

    def test_full_still_rejects(self):
        queue = AdmissionQueue(3, "degrade", degrade_watermark=1)
        _fill(queue, 3)
        verdict, _ = queue.offer(make_request(req_id=9, arrival_ns=90.0))
        assert verdict == "rejected"


class TestDropOldestPolicy:
    def test_full_queue_evicts_head(self):
        queue = AdmissionQueue(2, "drop-oldest")
        _fill(queue, 2)
        newcomer = make_request(req_id=7, arrival_ns=70.0)
        verdict, evicted = queue.offer(newcomer)
        assert verdict == "admitted"
        assert evicted is not None and evicted.req_id == 0
        assert queue.peek().req_id == 1  # FIFO order preserved
        assert queue.stats.dropped == 1
        assert len(queue) == 2


class TestSheddingOrderTies:
    """Arrivals at the same instant: shedding order must be insertion
    order (FIFO), never arrival-timestamp comparison — a tie must not
    make eviction order ambiguous across runs."""

    def test_drop_oldest_ties_evict_in_insertion_order(self):
        queue = AdmissionQueue(2, "drop-oldest")
        queue.offer(make_request(req_id=10, arrival_ns=5.0))
        queue.offer(make_request(req_id=11, arrival_ns=5.0))
        _, evicted_first = queue.offer(make_request(req_id=12, arrival_ns=5.0))
        _, evicted_second = queue.offer(make_request(req_id=13, arrival_ns=5.0))
        assert evicted_first.req_id == 10
        assert evicted_second.req_id == 11
        assert [r.req_id for r in queue.drain(5.0)] == [12, 13]

    def test_tied_arrivals_pop_in_insertion_order(self):
        queue = AdmissionQueue(4)
        for req_id in (3, 1, 2):  # same instant, ids deliberately unsorted
            queue.offer(make_request(req_id=req_id, arrival_ns=7.0))
        assert [queue.pop(8.0).req_id for _ in range(3)] == [3, 1, 2]

    def test_tied_arrivals_shed_deterministically_across_runs(self):
        def run():
            queue = AdmissionQueue(2, "drop-oldest")
            evictions = []
            for req_id in range(6):
                _, evicted = queue.offer(
                    make_request(req_id=req_id, arrival_ns=42.0)
                )
                if evicted is not None:
                    evictions.append(evicted.req_id)
            return evictions, [r.req_id for r in queue.drain(42.0)]

        assert run() == run() == ([0, 1, 2, 3], [4, 5])

    def test_degrade_tie_at_watermark_boundary(self):
        # occupancy exactly at the watermark degrades; one below admits
        # cleanly — same-instant arrivals must not blur the boundary
        queue = AdmissionQueue(4, "degrade", degrade_watermark=2)
        verdicts = [
            queue.offer(make_request(req_id=i, arrival_ns=9.0))[0]
            for i in range(4)
        ]
        assert verdicts == [
            "admitted", "admitted", "admitted-degraded", "admitted-degraded"
        ]

    def test_tied_eviction_preserves_occupancy_integral(self):
        queue = AdmissionQueue(2, "drop-oldest")
        for req_id in range(4):  # all at t=0: no time passes, no area
            queue.offer(make_request(req_id=req_id, arrival_ns=0.0))
        assert queue.stats.occupancy_ns == 0.0
        queue.pop(100.0)  # [0, 100): 2 waiters
        assert queue.stats.occupancy_ns == pytest.approx(200.0)


class TestAccounting:
    def test_time_weighted_occupancy_integral(self):
        queue = AdmissionQueue(4)
        queue.offer(make_request(req_id=0, arrival_ns=0.0))
        queue.offer(make_request(req_id=1, arrival_ns=100.0))
        # [0, 100): 1 waiter; [100, 300): 2 waiters
        queue.pop(300.0)
        assert queue.stats.occupancy_ns == pytest.approx(1 * 100.0 + 2 * 200.0)
        assert queue.stats.mean_occupancy(300.0) == pytest.approx(500.0 / 300.0)

    def test_pop_accumulates_wait(self):
        queue = AdmissionQueue(4)
        queue.offer(make_request(req_id=0, arrival_ns=10.0))
        popped = queue.pop(250.0)
        assert popped.req_id == 0
        assert queue.stats.wait_ns == pytest.approx(240.0)

    def test_pop_empty_returns_none(self):
        assert AdmissionQueue(2).pop(5.0) is None

    def test_drain_empties_the_queue(self):
        queue = AdmissionQueue(4)
        _fill(queue, 3)
        remaining = queue.drain(500.0)
        assert [r.req_id for r in remaining] == [0, 1, 2]
        assert len(queue) == 0

    @pytest.mark.parametrize("policy", SHED_POLICIES)
    def test_offered_equals_admitted_plus_rejected(self, policy):
        queue = AdmissionQueue(3, policy)
        _fill(queue, 12)
        stats = queue.stats
        assert stats.offered == stats.admitted + stats.rejected
        assert stats.shed == stats.rejected + stats.dropped
