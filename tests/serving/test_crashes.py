"""Seeded crash-injection campaign over the MapID journal.

The tier-1 test runs a small sweep (every site, a few times each); the
acceptance-scale campaign — 500 injections, the ISSUE criterion — is
``chaos``-marked and runs in the nightly job.
"""

import pytest

from repro.core.journal import CRASH_SITES
from repro.serving.crashes import run_crash_campaign


def assert_clean(report):
    assert report.verifier_findings == 0
    assert report.refcount_mismatches == 0
    assert report.area_mismatches == 0
    assert report.crc_mismatches == 0
    assert report.leaked_map_ids == 0
    assert report.final_clean
    assert report.failures == []
    assert report.ok


class TestSmallCampaign:
    def test_thirty_injections_recover_clean(self):
        report = run_crash_campaign(n_injections=30, seed=0)
        assert report.n_injections == 30
        # the sweep cycles sites evenly: 30 = 3 full laps of all 10
        assert report.crashes_by_site == {site: 3 for site in CRASH_SITES}
        assert report.rolled_back + report.rolled_forward + report.no_ops > 0
        assert_clean(report)

    def test_campaign_is_reproducible(self):
        a = run_crash_campaign(n_injections=20, seed=7)
        b = run_crash_campaign(n_injections=20, seed=7)
        assert a.to_dict() == b.to_dict()

    def test_report_dict_shape(self):
        report = run_crash_campaign(n_injections=10, seed=1)
        d = report.to_dict()
        assert d["ok"] is True
        assert d["n_injections"] == 10
        assert sum(d["crashes_by_site"].values()) == 10
        assert "final clean" in report.render()

    def test_rejects_nonpositive_injections(self):
        with pytest.raises(ValueError, match="positive"):
            run_crash_campaign(n_injections=0)


@pytest.mark.chaos
class TestAcceptanceCampaign:
    def test_five_hundred_injections_recover_clean(self):
        # the ISSUE acceptance criterion: >= 500 seeded crash injections
        # across alloc / free / phase-switch, zero verifier errors, zero
        # leaked MapIDs, pristine final state
        report = run_crash_campaign(n_injections=500, seed=0)
        assert report.n_injections == 500
        assert all(report.crashes_by_site[site] == 50 for site in CRASH_SITES)
        assert_clean(report)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_clean_across_seeds(self, seed):
        assert_clean(run_crash_campaign(n_injections=100, seed=seed))
