"""Seeded crash-injection campaign over the MapID journal.

The tier-1 test runs a small sweep (every site, a few times each); the
acceptance-scale campaign — 500 injections, the ISSUE criterion — is
``chaos``-marked and runs in the nightly job.
"""

import pytest

from repro.core.journal import CRASH_SITES, MIGRATE_CRASH_SITES
from repro.kvcache import KV_CRASH_SITES
from repro.serving.crashes import run_crash_campaign


def assert_clean(report):
    assert report.verifier_findings == 0
    assert report.refcount_mismatches == 0
    assert report.area_mismatches == 0
    assert report.crc_mismatches == 0
    assert report.leaked_map_ids == 0
    assert report.final_clean
    assert report.failures == []
    assert report.ok


class TestSmallCampaign:
    def test_thirty_injections_recover_clean(self):
        report = run_crash_campaign(n_injections=30, seed=0)
        assert report.n_injections == 30
        # the sweep cycles sites evenly: 30 = 3 full laps of all 10
        assert report.crashes_by_site == {site: 3 for site in CRASH_SITES}
        assert report.rolled_back + report.rolled_forward + report.no_ops > 0
        assert_clean(report)

    def test_campaign_is_reproducible(self):
        a = run_crash_campaign(n_injections=20, seed=7)
        b = run_crash_campaign(n_injections=20, seed=7)
        assert a.to_dict() == b.to_dict()

    def test_report_dict_shape(self):
        report = run_crash_campaign(n_injections=10, seed=1)
        d = report.to_dict()
        assert d["ok"] is True
        assert d["n_injections"] == 10
        assert sum(d["crashes_by_site"].values()) == 10
        assert "final clean" in report.render()

    def test_rejects_nonpositive_injections(self):
        with pytest.raises(ValueError, match="positive"):
            run_crash_campaign(n_injections=0)


class TestKvCampaign:
    def test_kv_injections_sweep_every_pool_site(self):
        report = run_crash_campaign(n_injections=10, seed=0, kv_injections=8)
        assert report.kv_injections == 8
        assert report.kv_crashes_by_site == {site: 2 for site in KV_CRASH_SITES}
        assert (
            report.kv_rolled_back + report.kv_rolled_forward + report.kv_no_ops == 8
        )
        assert report.kv_leaked_refcounts == 0
        assert report.kv_audit_failures == 0
        assert report.kv_final_clean
        assert_clean(report)

    def test_kv_campaign_does_not_perturb_mapid_campaign(self):
        """The KV sweep uses its own journal, injector, and rng stream:
        the MapID-side counters must be byte-identical with it on/off."""
        plain = run_crash_campaign(n_injections=20, seed=5)
        with_kv = run_crash_campaign(n_injections=20, seed=5, kv_injections=12)
        assert with_kv.crashes_by_site == plain.crashes_by_site
        assert with_kv.rolled_back == plain.rolled_back
        assert with_kv.rolled_forward == plain.rolled_forward
        assert with_kv.no_ops == plain.no_ops

    def test_kv_campaign_reproducible(self):
        a = run_crash_campaign(n_injections=10, seed=2, kv_injections=16)
        b = run_crash_campaign(n_injections=10, seed=2, kv_injections=16)
        assert a.to_dict() == b.to_dict()

    def test_kv_report_shape(self):
        report = run_crash_campaign(n_injections=4, seed=0, kv_injections=4)
        d = report.to_dict()
        assert d["kv_injections"] == 4
        assert sum(d["kv_crashes_by_site"].values()) == 4
        assert "kv final clean" in report.render()

    def test_rejects_negative_kv_injections(self):
        with pytest.raises(ValueError, match="kv_injections"):
            run_crash_campaign(n_injections=4, kv_injections=-1)


class TestMigrationCampaign:
    def test_migration_sweep_every_site_never_torn(self):
        # one full lap of the two-phase MIGRATE checkpoints: recovery
        # lands entirely old or entirely new, audited page by page
        report = run_crash_campaign(migration_injections=7, seed=3)
        assert report.migration_injections == 7
        assert report.migration_crashes_by_site == {
            site: 1 for site in MIGRATE_CRASH_SITES
        }
        assert report.migration_rolled_back + report.migration_rolled_forward == 7
        assert report.torn_mappings == 0
        assert report.migration_audit_failures == 0
        assert report.migration_final_clean
        assert "torn mappings" in report.render()
        assert_clean(report)

    def test_migration_campaign_reproducible(self):
        a = run_crash_campaign(migration_injections=2, seed=9)
        b = run_crash_campaign(migration_injections=2, seed=9)
        assert a.to_dict() == b.to_dict()

    def test_migration_campaign_does_not_perturb_base_or_kv(self):
        """The migration sweep seeds its own arena, injector, and rng
        (seed + 2): the other campaigns stay byte-identical with it on."""
        plain = run_crash_campaign(n_injections=10, seed=5, kv_injections=4)
        mixed = run_crash_campaign(
            n_injections=10, seed=5, kv_injections=4, migration_injections=2
        )
        assert mixed.crashes_by_site == plain.crashes_by_site
        assert mixed.rolled_back == plain.rolled_back
        assert mixed.rolled_forward == plain.rolled_forward
        assert mixed.kv_crashes_by_site == plain.kv_crashes_by_site

    def test_rejects_negative_migration_injections(self):
        with pytest.raises(ValueError, match="migration_injections"):
            run_crash_campaign(n_injections=4, migration_injections=-1)


@pytest.mark.chaos
class TestAcceptanceCampaign:
    def test_five_hundred_injections_recover_clean(self):
        # the ISSUE acceptance criterion: >= 500 seeded crash injections
        # across alloc / free / phase-switch, zero verifier errors, zero
        # leaked MapIDs, pristine final state
        report = run_crash_campaign(n_injections=500, seed=0)
        assert report.n_injections == 500
        assert all(report.crashes_by_site[site] == 50 for site in CRASH_SITES)
        assert_clean(report)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_clean_across_seeds(self, seed):
        assert_clean(run_crash_campaign(n_injections=100, seed=seed))

    def test_five_hundred_migration_injections_never_torn(self):
        # the PR 6 acceptance criterion: >= 500 seeded crash injections
        # across every two-phase MIGRATE site, zero torn mappings, zero
        # audit findings, pristine final arena
        report = run_crash_campaign(migration_injections=500, seed=0)
        assert report.migration_injections == 500
        assert all(
            report.migration_crashes_by_site[site] >= 71
            for site in MIGRATE_CRASH_SITES
        )
        assert (
            report.migration_rolled_back + report.migration_rolled_forward
            == 500
        )
        assert report.torn_mappings == 0
        assert report.migration_audit_failures == 0
        assert report.migration_final_clean
        assert_clean(report)

    def test_five_hundred_kv_injections_zero_leaked_refcounts(self):
        # the PR 4 acceptance criterion: 500 seeded crash injections
        # through the KV block pool's journal, zero leaked refcounts
        report = run_crash_campaign(n_injections=10, seed=0, kv_injections=500)
        assert report.kv_injections == 500
        assert report.kv_crashes_by_site == {
            site: 125 for site in KV_CRASH_SITES
        }
        assert report.kv_leaked_refcounts == 0
        assert report.kv_audit_failures == 0
        assert report.kv_final_clean
        assert_clean(report)
