"""End-to-end adaptive remapping through the serving runtime.

One drifting trace (short prefills becoming long mid-run), four runs
computed once and shared: ``off`` (no controller at all), ``static``
(controller watches, never migrates), ``active`` (canary → promote),
and ``pinned`` (the forced-bad-advisor drill: recommendation pinned to
the pessimal MapID 0 — the canary must catch it and roll back live,
inside the serving loop).
"""

import pytest

from repro.serving.runtime import ServingConfig, ServingRuntime

from tests.serving.conftest import make_request


def drifting_requests(n=160, gap_ns=2000e6):
    """First third short-prefill chat (ideal MapID 3 — the selector's
    static pick), the rest long-context (ideal MapID 5)."""
    return [
        make_request(
            req_id=i,
            arrival_ns=i * gap_ns,
            prefill_tokens=1024 if i < n // 3 else 4096,
            decode_tokens=8,
            deadline_ns=60_000e6,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def reports(iphone_engine):
    requests = drifting_requests()

    def run(mode, **kw):
        config = ServingConfig(
            adaptive=mode, seed=7, adaptive_window=16,
            adaptive_canary_window=8, adaptive_cooldown=16, **kw
        )
        return ServingRuntime(iphone_engine, config).run(requests)

    return {
        "off": ServingRuntime(iphone_engine, ServingConfig(seed=7)).run(requests),
        "static": run("static"),
        "active": run("active"),
        "pinned": run(
            "active", adaptive_pinned_map_id=0, adaptive_slo_margin=0.02
        ),
    }


class TestModes:
    def test_off_mode_has_no_adaptive_section(self, reports):
        assert reports["off"].adaptive is None
        assert '"adaptive": null' in reports["off"].to_json()

    def test_static_mode_watches_but_never_migrates(self, reports):
        adaptive = reports["static"].adaptive
        assert adaptive["mode"] == "static"
        assert adaptive["migrations_started"] == 0
        assert adaptive["page_map_ids"] == [3, 3, 3, 3]
        assert adaptive["last_recommendation"] == 5

    def test_active_mode_promotes_to_the_drifted_map_id(self, reports):
        adaptive = reports["active"].adaptive
        assert adaptive["promotions"] >= 1
        assert adaptive["rollbacks"] == 0
        assert adaptive["page_map_ids"] == [5, 5, 5, 5]
        assert adaptive["audit_findings"] == 0
        kinds = [e["kind"] for e in adaptive["events"]]
        assert kinds[:2] == ["canary", "promote"]

    def test_active_beats_static_on_the_drifting_trace(self, reports):
        active, static = reports["active"], reports["static"]
        assert active.served >= static.served
        assert active.ttft.p99_ns <= static.ttft.p99_ns

    def test_pinned_bad_advisor_rolls_back_live(self, reports):
        adaptive = reports["pinned"].adaptive
        assert adaptive["rollbacks"] >= 1
        assert adaptive["promotions"] == 0
        # rollback restored the arena MapIDs byte for byte — on the
        # real arena, inside a serving run
        assert adaptive["page_map_ids"] == [3, 3, 3, 3]
        assert adaptive["audit_findings"] == 0

    def test_report_renders_adaptive_block(self, reports):
        rendered = reports["active"].render()
        assert "adaptive" in rendered
        assert "promoted" in rendered


class TestNoRegret:
    def test_off_and_static_serve_identically_before_drift(self, iphone_engine):
        """Pre-drift (matched workload, zero penalty) the controller
        must be a pure observer: outcomes identical to adaptive off."""
        requests = drifting_requests(n=60)[:20]  # short-prefill slice
        off = ServingRuntime(iphone_engine, ServingConfig(seed=3)).run(requests)
        active = ServingRuntime(
            iphone_engine, ServingConfig(seed=3, adaptive="active")
        ).run(requests)
        assert active.adaptive["migrations_started"] == 0
        d_off, d_active = off.to_dict(), active.to_dict()
        d_off.pop("adaptive")
        d_active.pop("adaptive")
        assert d_active == d_off


class TestConfigGuards:
    def test_adaptive_requires_legacy_scheduler(self):
        with pytest.raises(ValueError, match="legacy"):
            ServingConfig(adaptive="active", kv_blocks=64)

    def test_unknown_adaptive_mode_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            ServingConfig(adaptive="shadow")
