"""Property-style tests for retry pricing and health recovery.

Two contracts the serving stack documents:

* a phase that suffers exactly N transient faults before succeeding pays
  ``base * (2^N - 1)`` total backoff when jitter is off (the geometric
  series of exponential waits), and with jitter ``j`` each wait stays in
  ``[base * 2^i * (1 - j), base * 2^i * (1 + j)]``;
* a DEGRADED component returns to HEALTHY only after ``recover_after``
  *consecutive* successes — any interleaved fault resets the streak.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.reliability.degrade import Health, HealthMonitor
from repro.serving.runtime import ServingConfig, ServingRuntime

_SETTINGS = dict(max_examples=25, deadline=None)


class _ScriptedRng:
    """Stands in for the run's ``random.Random``: ``random()`` replays a
    scripted fault pattern (values < rate fault), ``uniform`` delegates
    to a real seeded stream for jitter."""

    def __init__(self, outcomes, seed=0):
        self._outcomes = list(outcomes)  # True = fault this attempt
        self._jitter_rng = random.Random(seed)

    def random(self):
        return 0.0 if self._outcomes.pop(0) else 1.0 - 1e-9

    def uniform(self, a, b):
        return self._jitter_rng.uniform(a, b)


def _run_phase(engine, n_faults, jitter=0.0, base=1000.0, seed=0):
    config = ServingConfig(
        max_retries=n_faults, base_backoff_ns=base, jitter=jitter,
        pim_fault_rate=0.5,  # any nonzero rate; the scripted rng decides
    )
    runtime = ServingRuntime(engine, config)
    rng = _ScriptedRng([True] * n_faults + [False], seed=seed)
    return runtime._run_phase(0.0, 100.0, "pim", rng)


class TestBackoffPricing:
    @given(n_faults=st.integers(min_value=0, max_value=8))
    @settings(**_SETTINGS)
    def test_total_backoff_is_exact_geometric_series(self, iphone_engine, n_faults):
        base = 1000.0
        end, ok, retries, backoff = _run_phase(iphone_engine, n_faults, base=base)
        assert ok
        assert retries == n_faults
        assert backoff == base * (2**n_faults - 1)
        # end = (n_faults + 1 attempts) * work + total backoff
        assert end == (n_faults + 1) * 100.0 + backoff

    @given(
        n_faults=st.integers(min_value=1, max_value=6),
        jitter=st.floats(min_value=0.01, max_value=0.99),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(**_SETTINGS)
    def test_jittered_backoff_stays_in_band(self, iphone_engine, n_faults,
                                            jitter, seed):
        base = 1000.0
        _, ok, retries, backoff = _run_phase(
            iphone_engine, n_faults, jitter=jitter, base=base, seed=seed
        )
        assert ok and retries == n_faults
        nominal = base * (2**n_faults - 1)
        assert nominal * (1 - jitter) <= backoff <= nominal * (1 + jitter)

    @given(n_faults=st.integers(min_value=1, max_value=5))
    @settings(**_SETTINGS)
    def test_exhausted_retries_abort_with_full_backoff_paid(
        self, iphone_engine, n_faults
    ):
        config = ServingConfig(
            max_retries=n_faults - 1, base_backoff_ns=1000.0,
            pim_fault_rate=0.5,
        )
        runtime = ServingRuntime(iphone_engine, config)
        rng = _ScriptedRng([True] * n_faults)
        _, ok, retries, backoff = runtime._run_phase(0.0, 100.0, "pim", rng)
        assert not ok
        assert retries == n_faults - 1
        # every granted retry was paid for before the abort
        assert backoff == 1000.0 * (2 ** (n_faults - 1) - 1)


class TestHealthRecoveryStreak:
    @given(recover_after=st.integers(min_value=1, max_value=8))
    @settings(**_SETTINGS)
    def test_exactly_recover_after_successes_heal(self, recover_after):
        monitor = HealthMonitor(recover_after=recover_after)
        monitor.record_fault("pim")
        assert monitor.health("pim") is Health.DEGRADED
        for _ in range(recover_after - 1):
            monitor.record_success("pim")
            assert monitor.health("pim") is Health.DEGRADED
        monitor.record_success("pim")
        assert monitor.health("pim") is Health.HEALTHY

    @given(
        recover_after=st.integers(min_value=2, max_value=6),
        prefix=st.integers(min_value=1, max_value=5),
    )
    @settings(**_SETTINGS)
    def test_interleaved_fault_resets_the_streak(self, recover_after, prefix):
        monitor = HealthMonitor(recover_after=recover_after)
        monitor.record_fault("pim")
        # a partial streak, broken by one more fault...
        for _ in range(min(prefix, recover_after - 1)):
            monitor.record_success("pim")
        monitor.record_fault("pim")
        # ...must pay the full streak again
        for _ in range(recover_after - 1):
            monitor.record_success("pim")
            assert monitor.health("pim") is Health.DEGRADED
        monitor.record_success("pim")
        assert monitor.health("pim") is Health.HEALTHY
