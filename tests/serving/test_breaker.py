"""Circuit breaker state machine and brown-out hysteresis."""

import pytest

from repro.reliability.degrade import HealthMonitor
from repro.serving.breaker import BreakerState, BrownoutController, CircuitBreaker


def make_breaker(**overrides):
    args = dict(
        monitor=HealthMonitor(window=8),
        fault_rate_threshold=0.5,
        min_observations=4,
        cooldown_ns=1000.0,
        probe_quota=2,
    )
    args.update(overrides)
    return CircuitBreaker("pim", **args)


def trip(breaker, now=0.0):
    """Drive enough failures through a CLOSED breaker to open it."""
    for _ in range(breaker.min_observations):
        breaker.record_failure(now)
    assert breaker.state is BreakerState.OPEN
    return breaker


class TestClosedState:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_needs_min_observations_to_trip(self):
        breaker = make_breaker(min_observations=4)
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED  # 100% faults, too few
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN

    def test_low_fault_rate_stays_closed(self):
        breaker = make_breaker(fault_rate_threshold=0.5)
        for _ in range(6):
            breaker.record_success(0.0)
        breaker.record_failure(0.0)  # 1/7 < 0.5
        assert breaker.state is BreakerState.CLOSED


class TestOpenState:
    def test_open_denies_until_cooldown(self):
        breaker = trip(make_breaker(cooldown_ns=1000.0), now=100.0)
        assert not breaker.allow(100.0)
        assert not breaker.allow(1099.0)

    def test_cooldown_moves_to_half_open(self):
        breaker = trip(make_breaker(cooldown_ns=1000.0), now=100.0)
        assert breaker.allow(1100.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_allow_is_idempotent_in_half_open(self):
        breaker = trip(make_breaker(cooldown_ns=1000.0), now=0.0)
        breaker.allow(2000.0)
        transitions_before = len(breaker.transitions)
        breaker.allow(2001.0)
        breaker.allow(2002.0)
        assert len(breaker.transitions) == transitions_before


class TestHalfOpenState:
    def _half_open(self, **overrides):
        breaker = trip(make_breaker(**overrides), now=0.0)
        assert breaker.allow(breaker.cooldown_ns)
        return breaker

    def test_probe_quota_closes(self):
        breaker = self._half_open(probe_quota=2)
        breaker.record_success(2000.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(2100.0)
        assert breaker.state is BreakerState.CLOSED

    def test_one_failed_probe_reopens(self):
        breaker = self._half_open()
        breaker.record_failure(2000.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at_ns == 2000.0  # cooldown re-armed
        assert not breaker.allow(2000.0 + breaker.cooldown_ns / 2)

    def test_transition_log_records_full_cycle(self):
        breaker = self._half_open(probe_quota=1)
        breaker.record_success(5000.0)
        states = [(a.value, b.value) for _, a, b in breaker.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError, match="fault_rate_threshold"):
            make_breaker(fault_rate_threshold=0.0)

    def test_bad_cooldown(self):
        with pytest.raises(ValueError, match="cooldown_ns"):
            make_breaker(cooldown_ns=0.0)


class TestBrownout:
    def test_hysteresis_window(self):
        ctl = BrownoutController(high_watermark_ns=100.0, low_watermark_ns=20.0)
        assert not ctl.observe(50.0, 0.0)  # below high: off
        assert ctl.observe(150.0, 10.0)  # crosses high: on
        assert ctl.observe(50.0, 20.0)  # between watermarks: stays on
        assert not ctl.observe(10.0, 30.0)  # under low: off
        assert ctl.intervals == [(10.0, 30.0)]

    def test_finish_closes_dangling_window(self):
        ctl = BrownoutController(100.0, 20.0)
        ctl.observe(500.0, 5.0)
        ctl.finish(42.0)
        assert ctl.intervals == [(5.0, 42.0)]
        assert ctl.total_ns == pytest.approx(37.0)

    def test_finish_is_a_noop_when_inactive(self):
        ctl = BrownoutController(100.0, 20.0)
        ctl.finish(42.0)
        assert ctl.intervals == []

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError, match="watermark"):
            BrownoutController(10.0, 20.0)
