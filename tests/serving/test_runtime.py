"""Serving runtime: determinism, deadlines, shedding, faults, fallbacks."""

import pytest

from repro.serving.runtime import ServingConfig, ServingRuntime, sustainable_qps
from repro.serving.workload import TenantSpec, poisson_workload

from tests.serving.conftest import make_request


def run(engine, requests, **config):
    return ServingRuntime(engine, ServingConfig(**config)).run(requests)


class TestConfigValidation:
    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            ServingConfig(jitter=1.0)

    def test_rejects_bad_fault_rate(self):
        with pytest.raises(ValueError, match="fault rates"):
            ServingConfig(pim_fault_rate=1.5)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            ServingConfig(max_retries=-1)


class TestHappyPath:
    def test_single_request_is_served(self, iphone_engine):
        report = run(iphone_engine, [make_request()])
        assert report.served == 1
        assert report.unserved == 0
        outcome = report.outcomes[0]
        assert outcome.status == "served"
        assert 0 < outcome.ttft_ns < outcome.ttlt_ns
        assert outcome.ttft_ns <= 10_000e6  # met its TTFT budget
        assert report.ok

    def test_fifo_order_without_contention(self, iphone_engine):
        requests = [
            make_request(req_id=i, arrival_ns=i * 60e9) for i in range(3)
        ]
        report = run(iphone_engine, requests)
        assert report.served == 3
        # spaced a minute apart: nobody waits
        assert all(o.wait_ns == 0.0 for o in report.outcomes)

    def test_report_dict_is_json_ready(self, iphone_engine):
        report = run(iphone_engine, [make_request()])
        d = report.to_dict()
        assert d["offered"] == 1 and d["ok"] is True
        assert "ttft" in d and "queue" in d and "breakers" in d
        report.to_json()  # must not raise
        assert "SLO attainment" in report.render()


class TestDeterminism:
    def test_same_seed_same_report(self, iphone_engine, tenant):
        requests = poisson_workload([tenant], duration_ms=20_000.0, seed=5)
        config = dict(seed=5, pim_fault_rate=0.1, jitter=0.2)
        a = run(iphone_engine, requests, **config)
        b = run(iphone_engine, requests, **config)
        assert a.to_json() == b.to_json()


class TestDeadlines:
    def test_hopeless_wait_times_out_at_admission_boundary(self, iphone_engine):
        # two giant prefills back to back with a tiny TTFT budget: the
        # second can never start in time and must be shed untouched
        requests = [
            make_request(req_id=0, arrival_ns=0.0, prefill_tokens=256,
                         deadline_ns=1e18),
            make_request(req_id=1, arrival_ns=1.0, prefill_tokens=256,
                         deadline_ns=1.0),
        ]
        report = run(iphone_engine, requests)
        statuses = {o.req_id: o.status for o in report.outcomes}
        assert statuses[0] == "served"
        assert statuses[1] == "timed-out"
        late = next(o for o in report.outcomes if o.req_id == 1)
        assert late.ttft_ns == 0.0  # never reached prefill

    def test_prefill_longer_than_budget_stops_before_decode(self, iphone_engine):
        report = run(iphone_engine, [make_request(deadline_ns=1.0)])
        outcome = report.outcomes[0]
        assert outcome.status == "timed-out"
        assert outcome.ttft_ns > 0.0  # prefill ran, first token was late
        assert outcome.ttlt_ns == 0.0  # decode never ran
        assert report.unserved == 1 and not report.ok


class TestShedding:
    def _overload(self, n=40):
        # all arrive at once with generous deadlines: queue pressure only
        return [
            make_request(req_id=i, arrival_ns=float(i), deadline_ns=1e18)
            for i in range(n)
        ]

    def test_reject_bounds_queue(self, iphone_engine):
        report = run(iphone_engine, self._overload(), queue_capacity=4,
                     shed_policy="reject")
        assert report.queue_stats.peak_occupancy <= 4
        assert report.rejected > 0
        assert report.offered == 40

    def test_drop_oldest_evicts(self, iphone_engine):
        report = run(iphone_engine, self._overload(), queue_capacity=4,
                     shed_policy="drop-oldest")
        assert report.dropped > 0
        assert report.queue_stats.peak_occupancy <= 4

    def test_degrade_clips_decode_budget(self, iphone_engine):
        report = run(iphone_engine, self._overload(), queue_capacity=8,
                     shed_policy="degrade", degraded_decode_tokens=2)
        degraded = [o for o in report.outcomes if o.status == "served-degraded"]
        assert degraded
        assert all(o.decode_tokens_served <= 2 for o in degraded)
        full = [o for o in report.outcomes if o.status == "served"]
        assert all(o.decode_tokens_served == 8 for o in full)

    def test_statuses_partition_offered(self, iphone_engine):
        report = run(iphone_engine, self._overload(), queue_capacity=4,
                     shed_policy="drop-oldest")
        total = (report.served + report.rejected + report.dropped
                 + report.timed_out + report.aborted)
        assert total == report.offered


class TestFaultsAndBreakers:
    def test_persistent_faults_abort_after_max_retries(self, iphone_engine):
        report = run(iphone_engine, [make_request()], pim_fault_rate=0.99,
                     max_retries=2, seed=0)
        outcome = report.outcomes[0]
        assert outcome.status == "aborted"
        assert outcome.retries == 2
        # exact deterministic exponential total: base * (2^2 - 1)
        assert outcome.backoff_ns == pytest.approx(
            ServingConfig().base_backoff_ns * 3
        )

    def test_fault_rate_trips_pim_breaker(self, iphone_engine, tenant):
        requests = poisson_workload([tenant], duration_ms=30_000.0, seed=1)
        report = run(iphone_engine, requests, pim_fault_rate=0.4,
                     breaker_threshold=0.3, seed=1)
        transitions = report.breaker_transitions["pim"]
        assert any(a == "closed" and b == "open" for _, a, b in transitions)
        # once open, facil traffic routes around the pim path
        assert any("pim breaker open" in f
                   for o in report.outcomes for f in o.fallbacks)

    def test_mapping_breaker_downgrades_facil(self, iphone_engine):
        runtime = ServingRuntime(iphone_engine, ServingConfig())
        # wound the mapping path directly, then route one facil request
        for _ in range(8):
            runtime.mapping_breaker.record_failure(0.0)
        assert not runtime.mapping_breaker.allow(0.0)
        route = runtime._route(make_request(), now_ns=0.0, pim_backlog_ns=0.0)
        assert route.policy == "hybrid-static"
        assert any("mapping breaker open" in f for f in route.fallbacks)


class TestSustainableQps:
    def test_positive_and_deterministic(self, iphone_engine, tenant):
        a = sustainable_qps(iphone_engine, tenant, n=50, seed=0)
        b = sustainable_qps(iphone_engine, tenant, n=50, seed=0)
        assert a == b > 0.0

    def test_rejects_nonpositive_n(self, iphone_engine, tenant):
        with pytest.raises(ValueError, match="n must be positive"):
            sustainable_qps(iphone_engine, tenant, n=0)

    def test_overload_sheds_but_underload_serves(self, iphone_engine, tenant):
        capacity = sustainable_qps(iphone_engine, tenant, n=50, seed=0)
        calm = TenantSpec(name="chat", policy="facil", qps=capacity * 0.3,
                          deadline_ms=10_000.0)
        requests = poisson_workload([calm], duration_ms=30_000.0, seed=2)
        report = run(iphone_engine, requests, queue_capacity=8, seed=2)
        assert report.unserved == 0
        assert report.slo_attainment > 0.9

        storm = TenantSpec(name="chat", policy="facil", qps=capacity * 2.0,
                           deadline_ms=10_000.0)
        storm_requests = poisson_workload([storm], duration_ms=30_000.0, seed=2)
        storm_report = run(iphone_engine, storm_requests, queue_capacity=8,
                           seed=2)
        assert storm_report.shed_rate > 0.1
        assert storm_report.queue_stats.peak_occupancy <= 8
