"""Crash-site completeness: every declared site in all three registries
fires at least once across the standard chaos seeds.

This is the dynamic counterpart of the sanitizer's JD004 rule — JD004
proves statically that every declared site has a checkpoint in the code;
this campaign proves the checkpoint is *reachable*: arming it actually
crashes the operation, and recovery then audits clean.  A site that
never fires would silently shrink campaign coverage.
"""

import pytest

from repro.core.journal import CRASH_SITES, MIGRATE_CRASH_SITES
from repro.kvcache import KV_CRASH_SITES
from repro.serving.crashes import run_crash_campaign

#: the nightly chaos job's seeds plus tier-1's default
STANDARD_SEEDS = (0, 7)


@pytest.mark.parametrize("seed", STANDARD_SEEDS)
def test_every_declared_site_fires_at_least_once(seed):
    report = run_crash_campaign(
        n_injections=len(CRASH_SITES),
        seed=seed,
        kv_injections=len(KV_CRASH_SITES),
        migration_injections=len(MIGRATE_CRASH_SITES),
    )
    assert report.failures == []
    # one full lap of each registry: every site armed, fired, recovered
    assert report.crashes_by_site == {site: 1 for site in CRASH_SITES}
    assert report.kv_crashes_by_site == {site: 1 for site in KV_CRASH_SITES}
    assert report.migration_crashes_by_site == {
        site: 1 for site in MIGRATE_CRASH_SITES
    }
    assert report.ok


@pytest.mark.parametrize("seed", STANDARD_SEEDS)
def test_fleet_kills_cover_every_kv_site(seed):
    """The fleet-level extension: a device kill drives the dead device's
    journal into an armed KV crash site (cycling the registry by kill
    index), so a campaign of >= ``n_devices * len(KV_CRASH_SITES)``
    kills must fire every declared site — with zero recovery findings,
    exactly like the single-device campaign above."""
    from repro.fleet.chaos import FleetChaosSpec, run_fleet_chaos

    report = run_fleet_chaos(
        FleetChaosSpec(n_devices=4, kills=4 * len(KV_CRASH_SITES), seed=seed)
    )
    assert report.failures == []
    assert set(report.crashes_by_site) == set(KV_CRASH_SITES)
    assert all(n > 0 for n in report.crashes_by_site.values())
    assert report.audit_findings == []


def test_registries_are_disjoint():
    """A site string in two registries would double-count coverage and
    make the sanitizer's JD004 bookkeeping ambiguous."""
    base, kv, mig = set(CRASH_SITES), set(KV_CRASH_SITES), set(MIGRATE_CRASH_SITES)
    assert not (base & kv)
    assert not (base & mig)
    assert not (kv & mig)


def test_registry_sizes_are_frozen():
    """Campaigns index sites by ``index % len(SITES)``; growing or
    shrinking a registry silently reshuffles which injection hits which
    site and breaks byte-identical replays.  Changing these counts is a
    deliberate act — update the expected values *and* the affected
    BENCH baselines together."""
    assert len(CRASH_SITES) == 10
    assert len(KV_CRASH_SITES) == 4
    assert len(MIGRATE_CRASH_SITES) == 7
