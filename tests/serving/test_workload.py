"""Workload generators: determinism, ordering, deadline plumbing."""

import pytest

from repro.llm.datasets import ALPACA_LIKE, QueryTrace
from repro.serving.workload import TenantSpec, poisson_workload, trace_workload


class TestTenantSpec:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            TenantSpec(name="x", policy="greedy")

    def test_rejects_nonpositive_qps(self):
        with pytest.raises(ValueError, match="qps"):
            TenantSpec(name="x", qps=0.0)


class TestPoissonWorkload:
    def test_same_seed_is_identical(self):
        tenants = [TenantSpec(name="chat", qps=20.0)]
        a = poisson_workload(tenants, duration_ms=2000.0, seed=3)
        b = poisson_workload(tenants, duration_ms=2000.0, seed=3)
        assert a == b
        assert len(a) > 0

    def test_different_seeds_differ(self):
        tenants = [TenantSpec(name="chat", qps=20.0)]
        a = poisson_workload(tenants, duration_ms=2000.0, seed=0)
        b = poisson_workload(tenants, duration_ms=2000.0, seed=1)
        assert a != b

    def test_sorted_with_dense_req_ids(self):
        tenants = [
            TenantSpec(name="chat", qps=15.0),
            TenantSpec(name="keyboard", qps=30.0, deadline_ms=50.0),
        ]
        requests = poisson_workload(tenants, duration_ms=2000.0, seed=0)
        arrivals = [r.arrival_ns for r in requests]
        assert arrivals == sorted(arrivals)
        assert [r.req_id for r in requests] == list(range(len(requests)))
        assert {r.tenant for r in requests} == {"chat", "keyboard"}

    def test_rate_roughly_matches_qps(self):
        tenants = [TenantSpec(name="chat", qps=40.0)]
        requests = poisson_workload(tenants, duration_ms=10_000.0, seed=0)
        # 40 qps for 10 s -> ~400 arrivals; Poisson 5 sigma is ~±100
        assert 300 <= len(requests) <= 500

    def test_lengths_respect_dataset_clip(self):
        tenants = [TenantSpec(name="chat", dataset=ALPACA_LIKE, qps=50.0)]
        for request in poisson_workload(tenants, duration_ms=2000.0, seed=2):
            assert ALPACA_LIKE.prefill_min <= request.prefill_tokens <= ALPACA_LIKE.prefill_max
            assert ALPACA_LIKE.decode_min <= request.decode_tokens <= ALPACA_LIKE.decode_max

    def test_deadline_carried_from_tenant(self):
        tenants = [TenantSpec(name="chat", qps=50.0, deadline_ms=123.0)]
        requests = poisson_workload(tenants, duration_ms=1000.0, seed=0)
        assert all(r.deadline_ns == pytest.approx(123.0e6) for r in requests)
        first = requests[0]
        assert first.deadline_abs_ns == pytest.approx(first.arrival_ns + 123.0e6)

    def test_rejects_empty_tenants(self):
        with pytest.raises(ValueError, match="tenant"):
            poisson_workload([], duration_ms=100.0)


class TestTraceWorkload:
    def test_uniform_spacing_at_qps(self):
        traces = [QueryTrace(prefill_tokens=16, decode_tokens=4)] * 5
        tenant = TenantSpec(name="replay", qps=10.0)
        requests = trace_workload(traces, tenant)
        assert [r.arrival_ns for r in requests] == [i * 1e8 for i in range(5)]

    def test_qps_override(self):
        traces = [QueryTrace(prefill_tokens=16, decode_tokens=4)] * 3
        tenant = TenantSpec(name="replay", qps=10.0)
        requests = trace_workload(traces, tenant, qps=1000.0)
        assert requests[1].arrival_ns == pytest.approx(1e6)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="trace"):
            trace_workload([], TenantSpec(name="x"))
