"""Workload generators: determinism, ordering, deadline plumbing."""

import pytest

from repro.llm.datasets import ALPACA_LIKE, CHAT_TO_LONG_CONTEXT_DRIFT, QueryTrace
from repro.serving.workload import TenantSpec, poisson_workload, trace_workload


class TestTenantSpec:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            TenantSpec(name="x", policy="greedy")

    def test_rejects_nonpositive_qps(self):
        with pytest.raises(ValueError, match="qps"):
            TenantSpec(name="x", qps=0.0)

    def test_rejects_sub_single_turn_mean(self):
        with pytest.raises(ValueError, match="mean_turns"):
            TenantSpec(name="x", mean_turns=0.5)

    def test_rejects_nonpositive_think_time(self):
        with pytest.raises(ValueError, match="think_time"):
            TenantSpec(name="x", mean_turns=2.0, think_time_ms=0.0)


class TestPoissonWorkload:
    def test_same_seed_is_identical(self):
        tenants = [TenantSpec(name="chat", qps=20.0)]
        a = poisson_workload(tenants, duration_ms=2000.0, seed=3)
        b = poisson_workload(tenants, duration_ms=2000.0, seed=3)
        assert a == b
        assert len(a) > 0

    def test_different_seeds_differ(self):
        tenants = [TenantSpec(name="chat", qps=20.0)]
        a = poisson_workload(tenants, duration_ms=2000.0, seed=0)
        b = poisson_workload(tenants, duration_ms=2000.0, seed=1)
        assert a != b

    def test_sorted_with_dense_req_ids(self):
        tenants = [
            TenantSpec(name="chat", qps=15.0),
            TenantSpec(name="keyboard", qps=30.0, deadline_ms=50.0),
        ]
        requests = poisson_workload(tenants, duration_ms=2000.0, seed=0)
        arrivals = [r.arrival_ns for r in requests]
        assert arrivals == sorted(arrivals)
        assert [r.req_id for r in requests] == list(range(len(requests)))
        assert {r.tenant for r in requests} == {"chat", "keyboard"}

    def test_rate_roughly_matches_qps(self):
        tenants = [TenantSpec(name="chat", qps=40.0)]
        requests = poisson_workload(tenants, duration_ms=10_000.0, seed=0)
        # 40 qps for 10 s -> ~400 arrivals; Poisson 5 sigma is ~±100
        assert 300 <= len(requests) <= 500

    def test_lengths_respect_dataset_clip(self):
        tenants = [TenantSpec(name="chat", dataset=ALPACA_LIKE, qps=50.0)]
        for request in poisson_workload(tenants, duration_ms=2000.0, seed=2):
            assert ALPACA_LIKE.prefill_min <= request.prefill_tokens <= ALPACA_LIKE.prefill_max
            assert ALPACA_LIKE.decode_min <= request.decode_tokens <= ALPACA_LIKE.decode_max

    def test_deadline_carried_from_tenant(self):
        tenants = [TenantSpec(name="chat", qps=50.0, deadline_ms=123.0)]
        requests = poisson_workload(tenants, duration_ms=1000.0, seed=0)
        assert all(r.deadline_ns == pytest.approx(123.0e6) for r in requests)
        first = requests[0]
        assert first.deadline_abs_ns == pytest.approx(first.arrival_ns + 123.0e6)

    def test_rejects_empty_tenants(self):
        with pytest.raises(ValueError, match="tenant"):
            poisson_workload([], duration_ms=100.0)


class TestMultiTurnWorkload:
    def tenant(self, **kw):
        defaults = dict(name="chat", qps=5.0, mean_turns=3.0, think_time_ms=500.0)
        defaults.update(kw)
        return TenantSpec(**defaults)

    def test_single_query_tenants_stay_byte_identical(self):
        """mean_turns=1.0 (the default) must take the exact same draws
        as before the multi-turn extension: explicit and default specs
        produce identical streams, with no conversation fields set."""
        plain = [TenantSpec(name="chat", qps=20.0)]
        explicit = [TenantSpec(name="chat", qps=20.0, mean_turns=1.0)]
        a = poisson_workload(plain, duration_ms=2000.0, seed=3)
        b = poisson_workload(explicit, duration_ms=2000.0, seed=3)
        assert a == b
        assert all(r.conversation_id is None for r in a)
        assert all(r.turn_index == 0 and r.context_tokens == 0 for r in a)

    def test_conversations_have_dense_ids_and_ordered_turns(self):
        requests = poisson_workload([self.tenant()], duration_ms=5000.0, seed=1)
        assert all(r.conversation_id is not None for r in requests)
        convs = {}
        for r in requests:
            convs.setdefault(r.conversation_id, []).append(r)
        assert set(convs) == set(range(len(convs)))
        for turns in convs.values():
            turns.sort(key=lambda r: r.turn_index)
            assert [r.turn_index for r in turns] == list(range(len(turns)))
            arrivals = [r.arrival_ns for r in turns]
            assert arrivals == sorted(arrivals)

    def test_context_accumulates_inside_prefill(self):
        requests = poisson_workload([self.tenant()], duration_ms=5000.0, seed=2)
        convs = {}
        for r in requests:
            convs.setdefault(r.conversation_id, []).append(r)
        for turns in convs.values():
            turns.sort(key=lambda r: r.turn_index)
            expected = 0
            for r in turns:
                assert r.context_tokens == expected
                new_tokens = r.prefill_tokens - r.context_tokens
                assert new_tokens > 0
                expected += new_tokens + r.decode_tokens

    def test_turn_count_is_capped(self):
        from repro.serving.workload import MAX_TURNS

        requests = poisson_workload(
            [self.tenant(mean_turns=1000.0, qps=2.0)],
            duration_ms=3000.0,
            seed=0,
        )
        assert max(r.turn_index for r in requests) < MAX_TURNS

    def test_mean_turn_count_roughly_matches(self):
        requests = poisson_workload(
            [self.tenant(qps=20.0)], duration_ms=10_000.0, seed=4
        )
        n_convs = len({r.conversation_id for r in requests})
        mean = len(requests) / n_convs
        assert 2.0 <= mean <= 4.5  # geometric with mean 3

    def test_multi_turn_same_seed_identical(self):
        a = poisson_workload([self.tenant()], duration_ms=3000.0, seed=9)
        b = poisson_workload([self.tenant()], duration_ms=3000.0, seed=9)
        assert a == b


class TestDriftingWorkload:
    def tenant(self, dataset, qps=1.0):
        return TenantSpec(name="chat", dataset=dataset, qps=qps,
                          deadline_ms=10_000.0)

    def test_lengths_drift_with_arrival_time(self):
        drift = CHAT_TO_LONG_CONTEXT_DRIFT
        requests = poisson_workload(
            [self.tenant(drift)], duration_ms=300_000.0, seed=3
        )
        early = [r.prefill_tokens for r in requests
                 if r.arrival_ns < drift.drift_start_ms * 1e6]
        late = [r.prefill_tokens for r in requests
                if r.arrival_ns > drift.drift_end_ms * 1e6]
        assert early and late
        assert max(early) <= drift.before.prefill_max
        assert min(late) >= drift.after.prefill_min

    def test_pre_drift_identical_to_static_before_spec(self):
        """Same stream discipline: before the drift window starts, a
        drifting tenant reproduces its static 'before' tenant exactly."""
        drift = CHAT_TO_LONG_CONTEXT_DRIFT
        horizon = drift.drift_start_ms / 2
        a = poisson_workload([self.tenant(drift)], duration_ms=horizon, seed=3)
        b = poisson_workload(
            [self.tenant(drift.before)], duration_ms=horizon, seed=3
        )
        assert a == b

    def test_multi_turn_follow_ups_sample_at_their_turn_time(self):
        """A conversation opened before the drift whose think-time gaps
        reach past it draws its later turns from the drifted phase."""
        drift = CHAT_TO_LONG_CONTEXT_DRIFT
        tenant = TenantSpec(
            name="chat", dataset=drift, qps=2.0, deadline_ms=10_000.0,
            mean_turns=8.0, think_time_ms=60_000.0,
        )
        requests = poisson_workload([tenant], duration_ms=30_000.0, seed=1)
        late_turns = [
            r for r in requests
            if r.turn_index > 0 and r.arrival_ns > drift.drift_end_ms * 1e6
        ]
        assert late_turns
        # fresh tokens this turn = prefill minus accumulated context
        assert any(
            r.prefill_tokens - r.context_tokens >= drift.after.prefill_min
            for r in late_turns
        )


class TestTraceWorkload:
    def test_uniform_spacing_at_qps(self):
        traces = [QueryTrace(prefill_tokens=16, decode_tokens=4)] * 5
        tenant = TenantSpec(name="replay", qps=10.0)
        requests = trace_workload(traces, tenant)
        assert [r.arrival_ns for r in requests] == [i * 1e8 for i in range(5)]

    def test_qps_override(self):
        traces = [QueryTrace(prefill_tokens=16, decode_tokens=4)] * 3
        tenant = TenantSpec(name="replay", qps=10.0)
        requests = trace_workload(traces, tenant, qps=1000.0)
        assert requests[1].arrival_ns == pytest.approx(1e6)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="trace"):
            trace_workload([], TenantSpec(name="x"))
