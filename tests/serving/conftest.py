"""Shared fixtures for the serving test suite."""

import pytest

from repro.engine.policies import InferenceEngine
from repro.platforms.specs import IPHONE_15_PRO
from repro.serving.workload import Request, TenantSpec


@pytest.fixture(scope="session")
def iphone_engine():
    """One engine on the smallest model (cheap to construct, cached)."""
    return InferenceEngine(IPHONE_15_PRO)


@pytest.fixture
def tenant():
    return TenantSpec(name="chat", policy="facil", qps=2.0, deadline_ms=10_000.0)


def make_request(
    req_id=0,
    arrival_ns=0.0,
    prefill_tokens=32,
    decode_tokens=8,
    deadline_ns=10_000e6,
    tenant="chat",
    policy="facil",
):
    return Request(
        req_id=req_id,
        tenant=tenant,
        policy=policy,
        arrival_ns=arrival_ns,
        prefill_tokens=prefill_tokens,
        decode_tokens=decode_tokens,
        deadline_ns=deadline_ns,
    )
