"""Tests for the BENCH_*.json schema layer (repro.telemetry.bench)."""

import json

import pytest

from repro.telemetry.bench import (
    SCHEMA_VERSION,
    BenchFormatError,
    BenchResult,
    hash_config,
    load_bench_result,
    write_bench_result,
)


class TestRoundTrip:
    def test_write_then_load_is_identity(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        result = BenchResult(
            name="suite",
            seed=7,
            config_hash=hash_config({"a": 1}),
            metrics={"zeta": 2.0, "alpha": 1.5},
            notes="n",
        )
        write_bench_result(path, result)
        loaded = load_bench_result(path)
        assert loaded == result

    def test_metrics_serialize_key_sorted(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        write_bench_result(
            path,
            BenchResult(
                name="s", seed=0, config_hash="abc",
                metrics={"z": 1.0, "a": 2.0},
            ),
        )
        raw = json.loads(open(path).read())
        assert list(raw["metrics"]) == ["a", "z"]

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({
            "schema_version": SCHEMA_VERSION + 1,
            "name": "s", "seed": 0, "config_hash": "abc", "metrics": {},
        }))
        with pytest.raises(BenchFormatError, match="schema_version"):
            load_bench_result(str(path))

    def test_missing_keys_named_in_error(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION,
                                    "name": "s"}))
        with pytest.raises(BenchFormatError) as excinfo:
            load_bench_result(str(path))
        message = str(excinfo.value)
        assert message.endswith("seed, config_hash, metrics")

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(BenchFormatError, match="JSON object"):
            load_bench_result(str(path))


class TestHashConfig:
    def test_key_order_invariance(self):
        a = {"x": 1, "nested": {"p": [1, 2], "q": "s"}}
        b = {"nested": {"q": "s", "p": [1, 2]}, "x": 1}
        assert hash_config(a) == hash_config(b)

    def test_tuple_and_list_hash_equal(self):
        assert hash_config({"v": (1, 2, 3)}) == hash_config({"v": [1, 2, 3]})

    def test_value_changes_hash(self):
        assert hash_config({"x": 1}) != hash_config({"x": 2})

    def test_rejects_object_values_with_key_path(self):
        class Opaque:
            pass

        with pytest.raises(BenchFormatError, match=r"config\.deep\.obj"):
            hash_config({"deep": {"obj": Opaque()}})

    def test_rejects_non_finite_floats(self):
        with pytest.raises(BenchFormatError, match="non-finite"):
            hash_config({"x": float("nan")})
        with pytest.raises(BenchFormatError, match="non-finite"):
            hash_config({"x": float("inf")})

    def test_rejects_non_string_keys(self):
        with pytest.raises(BenchFormatError, match="non-string"):
            hash_config({"outer": {1: "v"}})

    def test_sequence_error_names_position(self):
        with pytest.raises(BenchFormatError, match=r"config\.items\[1\]"):
            hash_config({"items": [1, object()]})
