"""Online mapping advisor: shadow counters, recommendations, and the
selector agreement bar (>= 90% on the default platform sweep)."""

import numpy as np
import pytest

from repro.core.selector import MatrixConfig, select_mapping
from repro.platforms.specs import ALL_PLATFORMS, IPHONE_15_PRO
from repro.telemetry.advisor import (
    MappingAdvisor,
    agreement_sweep,
    observe_matrix,
)
from repro.telemetry.metrics import MetricsRegistry


def _advisor(min_samples=16, metrics=None):
    return MappingAdvisor(
        IPHONE_15_PRO.dram.org,
        IPHONE_15_PRO.pim,
        metrics=metrics,
        min_samples=min_samples,
    )


class TestObservation:
    def test_abstains_below_min_samples(self):
        advisor = _advisor(min_samples=10_000)
        matrix = MatrixConfig(rows=64, cols=64)
        observe_matrix(advisor, "w", matrix, max_rows=4)
        rec = advisor.recommend("w")
        assert rec.map_id is None
        assert rec.samples > 0

    def test_unobserved_tensor_abstains(self):
        rec = _advisor().recommend("never-seen")
        assert rec.map_id is None
        assert rec.samples == 0
        assert rec.counters == ()

    def test_shape_mismatch_rejected(self):
        advisor = _advisor()
        with pytest.raises(ValueError, match="matching shapes"):
            advisor.observe("w", np.arange(4), np.arange(3))

    def test_counters_accumulate_across_batches(self):
        advisor = _advisor(min_samples=1)
        matrix = MatrixConfig(rows=32, cols=64)
        n1 = observe_matrix(advisor, "w", matrix, max_rows=8)
        before = {c.map_id: c.pu_crossings for c in advisor.counters("w")}
        n2 = observe_matrix(advisor, "w", matrix, max_rows=8)
        after = {c.map_id: c.pu_crossings for c in advisor.counters("w")}
        assert advisor.recommend("w").samples == n1 + n2
        assert all(after[k] >= before[k] for k in before)

    def test_ideal_mapid_has_zero_crossings(self):
        advisor = _advisor(min_samples=1)
        matrix = MatrixConfig(rows=64, cols=256)
        selection = select_mapping(
            matrix, advisor.org, advisor.pim, advisor.huge_page_bytes
        )
        observe_matrix(advisor, "w", matrix, max_rows=16)
        by_id = {c.map_id: c for c in advisor.counters("w")}
        assert by_id[selection.map_id].pu_crossings == 0
        # crossings fall monotonically toward the selector's MapID
        crossings = [
            by_id[k].pu_crossings
            for k in sorted(by_id)
            if k <= selection.map_id
        ]
        assert crossings == sorted(crossings, reverse=True)

    def test_metrics_registry_sees_shadow_counters(self):
        registry = MetricsRegistry()
        advisor = _advisor(min_samples=1, metrics=registry)
        observe_matrix(advisor, "w", MatrixConfig(rows=32, cols=64), max_rows=4)
        crossings = registry.get("advisor_pu_crossings_total")
        assert crossings is not None
        assert crossings.labelnames == ("tensor", "map_id")
        hits = registry.get("advisor_row_hits_total")
        assert hits.total() > 0


class TestCrossCheck:
    def test_agreement_yields_no_finding(self):
        advisor = _advisor(min_samples=16)
        matrix = MatrixConfig(rows=64, cols=256)
        observe_matrix(advisor, "w", matrix, max_rows=16)
        verdict = advisor.cross_check("w", matrix)
        assert verdict.agrees
        assert verdict.finding is None
        assert verdict.recommended == verdict.selected

    def test_abstention_is_an_ad002_note(self):
        advisor = _advisor(min_samples=10**9)
        matrix = MatrixConfig(rows=64, cols=256)
        observe_matrix(advisor, "w", matrix, max_rows=4)
        verdict = advisor.cross_check("w", matrix)
        assert not verdict.agrees
        assert verdict.finding.rule_id == "AD002"
        assert verdict.to_dict()["finding"]["rule_id"] == "AD002"


class TestAgreementSweep:
    def test_default_sweep_meets_the_bar(self):
        # the acceptance bar: >= 90% agreement across all Table II
        # platforms x the verifier's matrix battery, every disagreement
        # surfaced as a structured finding
        sweep = agreement_sweep(max_rows=32, min_samples=16)
        assert sweep.checks >= 4 * len(ALL_PLATFORMS)
        assert sweep.agreement_rate >= 0.9
        disagreements = sweep.checks - sweep.agreements
        assert len(sweep.findings) == disagreements
        assert all(f.rule_id in ("AD001", "AD002") for f in sweep.findings)

    def test_sweep_publishes_metrics(self):
        registry = MetricsRegistry()
        sweep = agreement_sweep(
            platforms=[IPHONE_15_PRO],
            shapes=[(64, 256), (128, 512)],
            max_rows=16,
            min_samples=16,
            metrics=registry,
        )
        assert registry.get("advisor_checks_total").total() == sweep.checks
        assert (
            registry.get("advisor_agreement_rate").value()
            == sweep.agreement_rate
        )
        d = sweep.to_dict()
        assert d["checks"] == sweep.checks
        assert len(d["verdicts"]) == sweep.checks
