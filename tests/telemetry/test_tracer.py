"""Tracer: nesting, sampling, exporters, and the span-lint round trip."""

import json

import pytest

from repro.analysis.tracelint import lint_spans
from repro.telemetry.tracer import LAYERS, Tracer


def _query_trace(tracer, trace_id, t0=0.0):
    root = tracer.begin(trace_id, "request", "serving", t0, tenant="chat")
    if root is None:
        return None
    root.record("queue.wait", "serving", t0, t0 + 100.0)
    prefill = root.child("prefill", "engine", t0 + 100.0)
    prefill.record("weights.dram", "dram", t0 + 150.0, t0 + 700.0)
    prefill.close(t0 + 800.0)
    root.close(t0 + 1_000.0)
    return root


class TestSpanTree:
    def test_nesting_and_parent_links(self):
        tracer = Tracer(sample_every=1)
        root = _query_trace(tracer, 0)
        spans = {s.name: s for s in tracer.spans}
        assert spans["request"].parent_id is None
        assert spans["queue.wait"].parent_id == spans["request"].span_id
        assert spans["prefill"].parent_id == spans["request"].span_id
        assert spans["weights.dram"].parent_id == spans["prefill"].span_id
        assert root.span.end_ns == 1_000.0
        assert lint_spans([s.to_dict() for s in tracer.spans]) == []

    def test_unknown_layer_rejected(self):
        tracer = Tracer(sample_every=1)
        with pytest.raises(ValueError, match="unknown layer"):
            tracer.begin(0, "x", "plasma", 0.0)

    def test_spans_by_layer_counts(self):
        tracer = Tracer(sample_every=1)
        _query_trace(tracer, 0)
        counts = tracer.spans_by_layer()
        assert set(counts) == set(LAYERS)
        assert counts["serving"] == 2
        assert counts["engine"] == 1
        assert counts["dram"] == 1
        assert counts["kvcache"] == 0

    def test_close_all_marks_force_closed(self):
        tracer = Tracer(sample_every=1)
        root = tracer.begin(0, "request", "serving", 0.0)
        root.child("prefill", "engine", 10.0)  # left open
        assert tracer.close_all(500.0) == 2
        assert all(s.end_ns == 500.0 for s in tracer.spans)
        assert all(s.args.get("force_closed") for s in tracer.spans)
        # idempotent: nothing left open
        assert tracer.close_all(900.0) == 0

    def test_annotate_merges_args(self):
        tracer = Tracer(sample_every=1)
        root = tracer.begin(0, "request", "serving", 0.0, tenant="chat")
        root.annotate(status="served")
        root.close(10.0, decode_tokens=8)
        assert root.span.args == {
            "tenant": "chat", "status": "served", "decode_tokens": 8,
        }


class TestSampling:
    def test_head_sampling_is_deterministic(self):
        tracer = Tracer(sample_every=4)
        handles = [_query_trace(tracer, i) for i in range(16)]
        sampled = [i for i, h in enumerate(handles) if h is not None]
        assert sampled == [0, 4, 8, 12]
        assert tracer.traces_seen == 16
        assert tracer.traces_sampled == 4
        # a sampled trace is complete: 4 spans each, none partial
        assert len(tracer.spans) == 4 * 4

    def test_sample_every_one_keeps_everything(self):
        tracer = Tracer(sample_every=1)
        for i in range(5):
            assert _query_trace(tracer, i) is not None

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError, match="sample_every"):
            Tracer(sample_every=0)
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)

    def test_max_spans_drops_but_keeps_handles_usable(self):
        tracer = Tracer(sample_every=1, max_spans=2)
        _query_trace(tracer, 0)  # wants 4 spans
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans == 2
        assert tracer.stats()["dropped_spans"] == 2


class TestExporters:
    def test_chrome_trace_shape(self):
        tracer = Tracer(sample_every=1)
        _query_trace(tracer, 0)
        doc = tracer.chrome_trace()
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} == {"serving", "engine", "dram"}
        assert len(complete) == 4
        for event in complete:
            assert event["pid"] == 1
            assert event["tid"] == LAYERS.index(event["cat"]) + 1
            assert event["dur"] >= 0.0
            assert "trace_id" in event["args"]
        dram = next(e for e in complete if e["cat"] == "dram")
        assert dram["ts"] == pytest.approx(0.150)  # ns -> us
        assert dram["dur"] == pytest.approx(0.550)

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer(sample_every=1)
        _query_trace(tracer, 0)
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        decoded = [json.loads(line) for line in lines]
        assert decoded == [s.to_dict() for s in tracer.spans]

    def test_chrome_file_is_valid_json(self, tmp_path):
        tracer = Tracer(sample_every=1)
        _query_trace(tracer, 0)
        path = tmp_path / "trace.json"
        tracer.write_chrome(str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 7  # 3 lane names + 4 spans
