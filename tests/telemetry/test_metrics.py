"""Metrics plane: bucket semantics, exporters, registry invariants."""

import json
import math

import pytest

from repro.telemetry.metrics import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_total(self):
        c = Counter("reqs_total", labelnames=("status",))
        c.inc(status="served")
        c.inc(2, status="served")
        c.inc(status="shed")
        assert c.value(status="served") == 3.0
        assert c.total() == 4.0

    def test_cannot_decrease(self):
        c = Counter("reqs_total")
        with pytest.raises(MetricError, match="cannot decrease"):
            c.inc(-1)

    def test_label_mismatch_rejected(self):
        c = Counter("reqs_total", labelnames=("status",))
        with pytest.raises(MetricError, match="expects labels"):
            c.inc(tenant="chat")
        with pytest.raises(MetricError, match="expects labels"):
            c.inc()

    def test_invalid_names_rejected(self):
        with pytest.raises(MetricError, match="invalid metric name"):
            Counter("bad-name")
        with pytest.raises(MetricError, match="invalid label name"):
            Counter("ok_name", labelnames=("bad-label",))


class TestGauge:
    def test_set_add_max(self):
        g = Gauge("depth")
        g.set(4.0)
        g.add(2.0)
        assert g.value() == 6.0
        g.set_max(3.0)
        assert g.value() == 6.0
        g.set_max(9.0)
        assert g.value() == 9.0


class TestHistogramBuckets:
    def test_boundary_is_le_inclusive(self):
        h = Histogram("lat_ns", buckets=(10.0, 100.0))
        h.observe(10.0)  # lands in le=10, not le=100
        cumulative = dict(h.cumulative_buckets())
        assert cumulative[10.0] == 1
        assert cumulative[100.0] == 1
        assert cumulative[math.inf] == 1

    def test_overflow_lands_in_inf(self):
        h = Histogram("lat_ns", buckets=(10.0,))
        h.observe(11.0)
        cumulative = dict(h.cumulative_buckets())
        assert cumulative[10.0] == 0
        assert cumulative[math.inf] == 1

    def test_cumulative_monotone(self):
        h = Histogram("lat_ns", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0, 5.0):
            h.observe(v)
        counts = [n for _, n in h.cumulative_buckets()]
        assert counts == sorted(counts)
        assert counts[-1] == h.count() == 5
        assert h.sum() == pytest.approx(560.5)

    def test_default_buckets_sorted_unique(self):
        assert list(DEFAULT_NS_BUCKETS) == sorted(set(DEFAULT_NS_BUCKETS))

    def test_bad_bucket_specs_rejected(self):
        with pytest.raises(MetricError, match="at least one"):
            Histogram("h", buckets=())
        with pytest.raises(MetricError, match="duplicate"):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(MetricError, match="finite"):
            Histogram("h", buckets=(1.0, math.inf))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labelnames=("k",))
        b = reg.counter("x_total", labelnames=("k",))
        assert a is b
        assert len(reg) == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(MetricError, match="already registered as counter"):
            reg.gauge("x_total")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(MetricError, match="already registered with labels"):
            reg.counter("x_total", labelnames=("b",))


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter(
            "dram_row_hits_total", "row-buffer hits", labelnames=("channel",)
        ).inc(7, channel="0")
        reg.gauge("queue_depth", "admission queue depth").set(3)
        h = reg.histogram("wait_ns", "queue wait", buckets=(10.0, 100.0))
        h.observe(5.0)
        h.observe(50.0)
        return reg

    def test_prometheus_text_shape(self):
        text = self._registry().render_prometheus()
        assert "# TYPE dram_row_hits_total counter" in text
        assert 'dram_row_hits_total{channel="0"} 7' in text
        assert "# TYPE wait_ns histogram" in text
        assert 'wait_ns_bucket{le="10"} 1' in text
        assert 'wait_ns_bucket{le="+Inf"} 2' in text
        assert "wait_ns_sum 55" in text
        assert "wait_ns_count 2" in text

    def test_json_snapshot_roundtrip(self):
        snapshot = json.loads(self._registry().render_json())
        assert snapshot["schema_version"] == 1
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        assert by_name["dram_row_hits_total"]["kind"] == "counter"
        assert by_name["dram_row_hits_total"]["samples"] == [
            {"labels": {"channel": "0"}, "value": 7.0}
        ]
        hist = by_name["wait_ns"]["samples"][0]
        assert hist["count"] == 2
        assert hist["buckets"][-1] == ["+Inf", 2]

    def test_write_files(self, tmp_path):
        reg = self._registry()
        json_path = tmp_path / "metrics.json"
        prom_path = tmp_path / "metrics.prom"
        reg.write_json(str(json_path))
        reg.write_prometheus(str(prom_path))
        assert json.loads(json_path.read_text())["schema_version"] == 1
        assert "# TYPE queue_depth gauge" in prom_path.read_text()

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labelnames=("t",)).inc(t='a"b\\c\nd')
        line = reg.render_prometheus().splitlines()[-1]
        assert line == 'c_total{t="a\\"b\\\\c\\nd"} 1'
