"""Telemetry end to end on the serving stack: byte-identical results
with tracing on, 5-layer span coverage on both serving loops, and the
report-to-registry fold."""

import pytest

from repro.analysis.tracelint import lint_spans
from repro.engine.policies import InferenceEngine
from repro.platforms.specs import IPHONE_15_PRO
from repro.serving.runtime import ServingConfig, ServingRuntime
from repro.serving.workload import TenantSpec, poisson_workload
from repro.telemetry import Telemetry
from repro.telemetry.tracer import LAYERS


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(IPHONE_15_PRO)


@pytest.fixture(scope="module")
def requests():
    tenant = TenantSpec(
        name="chat", policy="facil", qps=8.0, deadline_ms=10_000.0
    )
    return poisson_workload([tenant], duration_ms=3_000.0, seed=0)


def _config(kv_blocks):
    return ServingConfig(
        seed=0,
        queue_capacity=16,
        shed_policy="drop-oldest",
        kv_blocks=kv_blocks,
        block_tokens=16,
    )


@pytest.mark.parametrize("kv_blocks", [0, 256], ids=["legacy", "kv"])
class TestPerturbationFreedom:
    def test_report_identical_with_telemetry_on(
        self, engine, requests, kv_blocks
    ):
        # telemetry consumes no randomness and advances no clocks, so
        # the simulated outcome must be byte-identical either way
        off = ServingRuntime(engine, _config(kv_blocks)).run(requests)
        telemetry = Telemetry(sample_every=1)
        on = ServingRuntime(
            engine, _config(kv_blocks), telemetry=telemetry
        ).run(requests)
        assert on.to_json() == off.to_json()


@pytest.mark.parametrize("kv_blocks", [0, 256], ids=["legacy", "kv"])
class TestSpanCoverage:
    def _run(self, engine, requests, kv_blocks):
        telemetry = Telemetry(sample_every=1)
        report = ServingRuntime(
            engine, _config(kv_blocks), telemetry=telemetry
        ).run(requests)
        return telemetry, report

    def test_all_five_layers_covered(self, engine, requests, kv_blocks):
        telemetry, report = self._run(engine, requests, kv_blocks)
        counts = telemetry.tracer.spans_by_layer()
        for layer in LAYERS:
            if layer == "workload":
                continue
            assert counts[layer] > 0, f"no {layer!r} spans"
        # the workload lane belongs to repro.workloads loops; a chat run
        # must leave it empty
        assert counts["workload"] == 0
        # one root span per offered request plus the probe intervals
        roots = [
            s for s in telemetry.tracer.spans
            if s.parent_id is None and s.name == "request"
        ]
        assert len(roots) == report.offered

    def test_span_tree_lints_clean(self, engine, requests, kv_blocks):
        telemetry, _ = self._run(engine, requests, kv_blocks)
        spans = [s.to_dict() for s in telemetry.tracer.spans]
        findings = lint_spans(spans)
        assert findings == [], [f.render() for f in findings]

    def test_metrics_folded_from_report(self, engine, requests, kv_blocks):
        telemetry, report = self._run(engine, requests, kv_blocks)
        m = telemetry.metrics
        assert m.counter(
            "serving_requests_total", labelnames=("status",)
        ).total() == report.offered
        assert m.get("serving_goodput_qps").value() == report.goodput_qps
        assert m.get("serving_ttlt_ns").count() == report.served
        # the DRAM probe grounds row-hit / conflict counters
        assert m.get("dram_row_hits_total") is not None
        assert m.get("controller_translations_total") is not None
        if kv_blocks:
            assert m.get("kv_manager_stat") is not None


class TestSampling:
    def test_sampling_thins_traces_not_metrics(self, engine, requests):
        dense = Telemetry(sample_every=1)
        ServingRuntime(engine, _config(0), telemetry=dense).run(requests)
        sparse = Telemetry(sample_every=4)
        ServingRuntime(engine, _config(0), telemetry=sparse).run(requests)
        assert (
            sparse.tracer.traces_sampled < dense.tracer.traces_sampled
        )
        # metrics are never sampled: both registries agree on counts
        assert sparse.metrics.counter(
            "serving_requests_total", labelnames=("status",)
        ).total() == dense.metrics.counter(
            "serving_requests_total", labelnames=("status",)
        ).total()


class TestWrite:
    def test_write_both_artifacts(self, engine, requests, tmp_path):
        import json

        telemetry = Telemetry(sample_every=2)
        ServingRuntime(engine, _config(256), telemetry=telemetry).run(requests)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        telemetry.write(str(trace_path), str(metrics_path))
        trace = json.loads(trace_path.read_text())
        assert {e["cat"] for e in trace["traceEvents"] if e.get("ph") == "X"} \
            == set(LAYERS) - {"workload"}
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["schema_version"] == 1
