"""FleetDevice: the health state machine, the kill/revive crash cycle,
and prefix residency — one device as an isolated failure domain."""

import pytest

from repro.fleet.device import (
    DEVICE_STATES,
    ROUTABLE_STATES,
    DeviceSpec,
    DeviceState,
    FleetDevice,
    Preempted,
    ServedPhases,
)
from repro.kvcache.pool import KV_CRASH_SITES
from repro.platforms.specs import IPHONE_15_PRO

from tests.fleet.conftest import make_device, make_request


class TestSpecValidation:
    def test_rejects_negative_device_id(self):
        with pytest.raises(ValueError, match="device_id"):
            DeviceSpec(device_id=-1, platform=IPHONE_15_PRO)

    def test_rejects_inverted_health_watermarks(self):
        with pytest.raises(ValueError, match="degrade_fault_rate"):
            DeviceSpec(
                device_id=0, platform=IPHONE_15_PRO,
                degrade_fault_rate=0.8, quarantine_fault_rate=0.5,
            )

    def test_rejects_nonpositive_kv_blocks(self):
        with pytest.raises(ValueError, match="kv_blocks"):
            DeviceSpec(device_id=0, platform=IPHONE_15_PRO, kv_blocks=0)

    def test_name_embeds_identity(self):
        spec = DeviceSpec(device_id=3, platform=IPHONE_15_PRO)
        assert spec.name == "dev3/iphone-15-pro"


class TestHealthMachine:
    def _observe(self, device, component, faults, total):
        for i in range(total):
            if i < faults:
                device.monitor.record_fault(component)
            else:
                device.monitor.record_success(component)

    def test_states_registry_is_frozen(self):
        assert tuple(s.value for s in DEVICE_STATES) == (
            "active", "degraded", "quarantined", "draining", "standby"
        )
        assert all(s in DEVICE_STATES for s in ROUTABLE_STATES)

    def test_sustained_faults_degrade_then_quarantine(self, iphone_engine):
        device = make_device(iphone_engine)
        self._observe(device, "pim", faults=4, total=10)  # 40% >= 25%
        assert device.update_health(1.0) is DeviceState.DEGRADED
        self._observe(device, "pim", faults=30, total=30)
        assert device.update_health(2.0) is DeviceState.QUARANTINED
        assert not device.routable

    def test_recovery_returns_degraded_to_active(self, iphone_engine):
        device = make_device(iphone_engine)
        self._observe(device, "mapping", faults=4, total=10)
        assert device.update_health(1.0) is DeviceState.DEGRADED
        # window refills with successes, rate decays under the watermark
        self._observe(device, "mapping", faults=0, total=40)
        assert device.update_health(2.0) is DeviceState.ACTIVE

    def test_too_few_observations_never_degrade(self, iphone_engine):
        device = make_device(iphone_engine, health_min_observations=8)
        self._observe(device, "pim", faults=3, total=3)  # 100% but n < 8
        assert device.update_health(1.0) is DeviceState.ACTIVE

    def test_admin_states_not_overridden_by_health(self, iphone_engine):
        device = make_device(iphone_engine)
        device.drain(1.0)
        self._observe(device, "pim", faults=20, total=20)
        assert device.update_health(2.0) is DeviceState.DRAINING

    def test_transitions_are_ledgered(self, iphone_engine):
        device = make_device(iphone_engine)
        self._observe(device, "pim", faults=4, total=10)
        device.update_health(5.0)
        assert device.transitions == [(5.0, "active", "degraded")]


class TestDrainLifecycle:
    def test_drain_stops_routing_but_keeps_serving(self, iphone_engine):
        device = make_device(iphone_engine)
        device.offer(make_request(req_id=0), 0.0)
        device.drain(1.0)
        assert not device.routable and device.serving
        result = device.serve_next()
        assert isinstance(result, ServedPhases) and result.status == "served"

    def test_idle_drained_device_powers_down(self, iphone_engine):
        device = make_device(iphone_engine)
        device.drain(1.0)
        assert device.finish_drain_if_idle(2.0)
        assert device.state is DeviceState.STANDBY
        assert not device.serving

    def test_standby_drops_residency(self, iphone_engine):
        device = make_device(iphone_engine)
        device.offer(make_request(req_id=0, conversation_id=5), 0.0)
        device.serve_next()
        assert device.resident_tokens(5) > 0
        device.drain(1.0)
        device.finish_drain_if_idle(device.clock)
        assert device.resident_tokens(5) == 0
        assert device.pool.used == 0

    def test_activate_reenters_rotation(self, iphone_engine):
        device = make_device(iphone_engine)
        device.drain(1.0)
        device.finish_drain_if_idle(2.0)
        device.activate(3.0)
        assert device.state is DeviceState.ACTIVE and device.routable


class TestKillRevive:
    def test_kill_fires_a_kv_crash_site_and_audits_clean(self, iphone_engine):
        device = make_device(iphone_engine)
        device.offer(make_request(req_id=0, conversation_id=1), 0.0)
        device.serve_next()
        findings = device.kill(device.clock, kill_index=0)
        assert findings == 0
        assert device.kill_sites == [KV_CRASH_SITES[0]]
        assert device.state is DeviceState.QUARANTINED
        assert device.pool.used == 0
        assert device.audit_findings == []

    def test_kill_index_cycles_every_site(self, iphone_engine):
        device = make_device(iphone_engine)
        for index in range(len(KV_CRASH_SITES)):
            device.offer(
                make_request(req_id=index, conversation_id=index), device.clock
            )
            device.serve_next()
            device.kill(device.clock, kill_index=index)
            assert device.revive(device.clock + 1.0)
        assert device.kill_sites == list(KV_CRASH_SITES)
        assert device.audit_findings == []

    def test_revive_requires_quarantine(self, iphone_engine):
        device = make_device(iphone_engine)
        assert not device.revive(1.0)
        device.kill(1.0)
        assert device.revive(2.0)
        assert device.state is DeviceState.ACTIVE
        assert device.kills == 1 and device.revives == 1

    def test_kill_wipes_residency(self, iphone_engine):
        device = make_device(iphone_engine)
        device.offer(make_request(req_id=0, conversation_id=9), 0.0)
        device.serve_next()
        device.kill(device.clock)
        assert device.resident_tokens(9) == 0


class TestBacklogSignal:
    def test_backlog_counts_queued_unstarted_work(self, iphone_engine):
        """An idle timeline with a full queue is real load: backlog must
        weight queued-but-unstarted requests by the service estimate so
        the router and autoscaler do not see the device as empty."""
        device = make_device(iphone_engine)
        assert device.backlog_ns(0.0) == 0.0
        device.offer(make_request(req_id=0), 0.0)
        one = device.backlog_ns(0.0)
        assert one > 0.0
        device.offer(make_request(req_id=1), 0.0)
        assert device.backlog_ns(0.0) > one

    def test_service_estimate_tracks_observations(self, iphone_engine):
        device = make_device(iphone_engine)
        seeded = device._service_est_ns
        device.offer(make_request(req_id=0), 0.0)
        result = device.serve_next()
        observed = result.end_ns - result.start_ns
        # the EWMA moved from the nominal seed toward the observation
        assert device._service_est_ns != seeded
        assert (
            min(seeded, observed)
            <= device._service_est_ns
            <= max(seeded, observed)
        )


class TestServePath:
    def test_prefix_residency_prices_followup_turns(self, iphone_engine):
        device = make_device(iphone_engine)
        device.offer(make_request(req_id=0, conversation_id=2,
                                  prefill_tokens=64), 0.0)
        first = device.serve_next()
        device.offer(
            make_request(req_id=1, conversation_id=2, prefill_tokens=96,
                         turn_index=1, context_tokens=64,
                         arrival_ns=device.clock),
            device.clock,
        )
        second = device.serve_next()
        assert first.prefill_tokens_priced == 64 and not first.prefix_hit
        assert second.prefix_hit
        assert second.prefill_tokens_priced < 96
        assert device.prefix_hits == 1

    def test_interrupt_before_start_preempts(self, iphone_engine):
        device = make_device(iphone_engine)
        request = make_request(req_id=0, arrival_ns=0.0)
        device.offer(request, 0.0)
        result = device.serve_next(interrupt_ns=0.0)
        assert isinstance(result, Preempted)
        assert result.request.req_id == 0
        assert len(device.queue) == 0

    def test_served_outcome_is_conserved(self, iphone_engine):
        device = make_device(iphone_engine)
        device.offer(make_request(req_id=0), 0.0)
        result = device.serve_next()
        assert isinstance(result, ServedPhases)
        assert result.status == "served"
        assert device.served == 1

    def test_summary_includes_breaker_snapshots(self, iphone_engine):
        device = make_device(iphone_engine)
        summary = device.summary()
        assert set(summary["breakers"]) == {"pim", "mapping"}
        for snap in summary["breakers"].values():
            assert snap["state"] == "closed" and snap["trips"] == 0


class TestDeterminism:
    def test_device_substreams_are_disjoint(self, iphone_engine):
        a = FleetDevice(
            DeviceSpec(device_id=0, platform=IPHONE_15_PRO),
            seed=7, engine=iphone_engine,
        )
        b = FleetDevice(
            DeviceSpec(device_id=1, platform=IPHONE_15_PRO),
            seed=7, engine=iphone_engine,
        )
        assert a.device_seed != b.device_seed
        assert a.injector.seed != b.injector.seed

    def test_same_seed_same_service_times(self, iphone_engine):
        def run():
            device = make_device(iphone_engine, seed=3,
                                 pim_fault_rate=0.2)
            results = []
            for i in range(6):
                device.offer(make_request(req_id=i, arrival_ns=device.clock),
                             device.clock)
                results.append(device.serve_next())
            return results

        assert run() == run()
