"""Kill-K chaos campaign: schedule discipline and the oracle battery.

Tier-1 runs a small campaign; the acceptance-scale 300-kill campaign is
``chaos``-marked (the nightly job runs it, and it also backs
BENCH_fleet.json).
"""

import random

import pytest

from repro.fleet.chaos import FleetChaosSpec, _build_schedule, run_fleet_chaos
from repro.kvcache.pool import KV_CRASH_SITES


class TestSpecValidation:
    def test_rejects_single_device(self):
        with pytest.raises(ValueError, match="2 devices"):
            FleetChaosSpec(n_devices=1)

    def test_rejects_cadence_tighter_than_recovery(self):
        with pytest.raises(ValueError, match="cadence"):
            FleetChaosSpec(n_devices=2, kill_gap_ms=10.0, recovery_ms=50.0)

    def test_horizon_spans_the_kill_window(self):
        spec = FleetChaosSpec(kills=50, kill_gap_ms=20.0)
        assert spec.horizon_ms == pytest.approx(1_000.0)


class TestSchedule:
    def test_schedule_is_sorted_and_complete(self):
        spec = FleetChaosSpec(kills=40)
        schedule, _ = _build_schedule(spec, random.Random(1))
        assert len(schedule) == 40
        times = [t for t, _ in schedule]
        assert times == sorted(times)
        assert all(0 <= d < spec.n_devices for _, d in schedule)

    def test_round_robin_covers_every_device(self):
        spec = FleetChaosSpec(kills=40)
        schedule, _ = _build_schedule(spec, random.Random(1))
        assert {d for _, d in schedule} == set(range(spec.n_devices))

    def test_schedule_never_hits_a_recovering_device(self):
        spec = FleetChaosSpec(kills=60)
        schedule, _ = _build_schedule(spec, random.Random(2))
        down_until = [0.0] * spec.n_devices
        for t, device in schedule:
            assert down_until[device] <= t
            down_until[device] = t + spec.recovery_ms * 1e6

    def test_schedule_rides_its_own_stream(self):
        spec = FleetChaosSpec(kills=20, seed=5)
        a, _ = _build_schedule(spec, random.Random(5 * 9973 + 65537))
        b, _ = _build_schedule(spec, random.Random(5 * 9973 + 65537))
        assert a == b

    def test_all_down_retarget_lands_strictly_after_revive(self):
        """The all-devices-down retarget path must schedule the kill
        strictly after the earliest revive: a kill at exactly a revive
        timestamp would depend on the runtime's tie-breaking to apply,
        and (before the fix) was skipped, breaking the all-kills-applied
        oracle.  Forge a recovery dwell longer than the validated cadence
        bound to reach the branch deterministically."""
        spec = FleetChaosSpec.__new__(FleetChaosSpec)
        for name, value in dict(
            n_devices=2, kills=4, seed=0, kill_gap_ms=20.0,
            recovery_ms=50.0, qps=1.0, deadline_ms=400.0, mean_turns=1.0,
            queue_capacity=8, shed_policy="reject",
        ).items():
            object.__setattr__(spec, name, value)

        class _MinJitter:
            """Pins every jitter draw to the [-0.5, 0.5) minimum."""

            def random(self):
                return 0.0

        schedule, retargeted = _build_schedule(spec, _MinJitter())
        assert retargeted > 0  # the all-down branch actually fired
        down = [0.0] * spec.n_devices
        for t, device in schedule:
            assert down[device] < t  # strictly past any prior revive
            down[device] = t + spec.recovery_ms * 1e6


class TestSmallCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fleet_chaos(FleetChaosSpec(kills=24, seed=0))

    def test_every_oracle_passes(self, report):
        assert report.failures == []
        assert report.ok

    def test_all_kills_applied_and_revived(self, report):
        assert report.kills_applied == 24
        assert report.revives_applied == 24

    def test_every_kv_crash_site_fires(self, report):
        assert set(report.crashes_by_site) == set(KV_CRASH_SITES)
        assert all(n > 0 for n in report.crashes_by_site.values())

    def test_zero_audit_findings(self, report):
        assert report.audit_findings == []

    def test_requests_conserved_under_failover(self, report):
        assert report.fleet.none_lost
        assert report.offered == (
            report.served + report.shed + report.unserved
        )
        assert report.failover_requests > 0

    def test_to_dict_is_json_ready(self, report):
        import json

        d = json.loads(json.dumps(report.to_dict()))
        assert d["ok"] is True and d["kills_applied"] == 24


@pytest.mark.chaos
class TestAcceptanceCampaign:
    def test_300_kills_zero_findings(self):
        report = run_fleet_chaos(FleetChaosSpec(kills=300, seed=0))
        assert report.failures == []
        assert report.kills_applied == 300
        assert report.audit_findings == []
        assert report.fleet.none_lost
        # round-robin across 4 devices cycling 4 sites: exact quarters
        assert report.crashes_by_site == {
            site: 75 for site in KV_CRASH_SITES
        }
