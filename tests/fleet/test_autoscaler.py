"""Autoscaler: hysteresis, the standby pool, and the health gate."""

import pytest

from repro.fleet.autoscaler import Autoscaler
from repro.fleet.device import DeviceState

from tests.fleet.conftest import make_device, make_request


def _fleet(engine, n=3, standby=1):
    devices = [make_device(engine, device_id=i) for i in range(n)]
    for dev in devices[n - standby:] if standby else []:
        dev._move(DeviceState.STANDBY, 0.0)
    return devices


def _load(device, backlog_ns):
    device.free = {k: v + backlog_ns for k, v in device.free.items()}


class TestValidation:
    def test_rejects_bad_watermarks(self, iphone_engine):
        with pytest.raises(ValueError, match="low_backlog_ns"):
            Autoscaler(_fleet(iphone_engine), high_backlog_ns=1e6,
                       low_backlog_ns=1e9)

    def test_rejects_nonpositive_patience(self, iphone_engine):
        with pytest.raises(ValueError, match="patience"):
            Autoscaler(_fleet(iphone_engine), patience=0)


class TestScaleUp:
    def test_sustained_high_backlog_recruits_standby(self, iphone_engine):
        devices = _fleet(iphone_engine, 3, standby=1)
        scaler = Autoscaler(devices, high_backlog_ns=1e9, patience=2)
        for dev in devices[:2]:
            _load(dev, 5e9)
        assert scaler.evaluate(1.0) == []  # patience not yet met
        events = scaler.evaluate(2.0)
        assert [e.action for e in events] == ["scale-up"]
        assert devices[2].state is DeviceState.ACTIVE

    def test_one_spike_does_not_scale(self, iphone_engine):
        devices = _fleet(iphone_engine, 3, standby=1)
        scaler = Autoscaler(devices, high_backlog_ns=1e9, patience=2)
        _load(devices[0], 10e9)
        scaler.evaluate(1.0)
        devices[0].free = {"soc": 0.0, "pim": 0.0}  # spike gone
        assert scaler.evaluate(2.0) == []
        assert devices[2].state is DeviceState.STANDBY

    def test_no_standby_means_no_event(self, iphone_engine):
        devices = _fleet(iphone_engine, 2, standby=0)
        scaler = Autoscaler(devices, high_backlog_ns=1e9, patience=1)
        _load(devices[0], 5e9)
        _load(devices[1], 5e9)
        assert scaler.evaluate(1.0) == []


class TestHealthGate:
    def test_quarantine_storm_holds_scale_up(self, iphone_engine):
        devices = _fleet(iphone_engine, 4, standby=1)
        for dev in devices[:2]:
            dev.kill(0.5)  # 2 of 4 quarantined = 50%... gate is > 0.4
        scaler = Autoscaler(
            devices, high_backlog_ns=1e9, patience=1,
            max_quarantined_fraction=0.4,
        )
        _load(devices[2], 5e9)
        events = scaler.evaluate(1.0)
        assert [e.action for e in events] == ["hold-unhealthy"]
        assert events[0].device_id == -1
        assert devices[3].state is DeviceState.STANDBY

    def test_healthy_fleet_passes_the_gate(self, iphone_engine):
        devices = _fleet(iphone_engine, 4, standby=1)
        scaler = Autoscaler(
            devices, high_backlog_ns=1e9, patience=1,
            max_quarantined_fraction=0.4,
        )
        for dev in devices[:3]:
            _load(dev, 5e9)
        events = scaler.evaluate(1.0)
        assert [e.action for e in events] == ["scale-up"]


class TestDrain:
    def test_sustained_low_backlog_drains_one(self, iphone_engine):
        devices = _fleet(iphone_engine, 3, standby=0)
        scaler = Autoscaler(
            devices, high_backlog_ns=1e9, low_backlog_ns=1e6, patience=2,
            min_active=1,
        )
        scaler.evaluate(1.0)
        events = scaler.evaluate(2.0)
        assert [e.action for e in events] == ["drain"]
        drained = [d for d in devices if d.state is DeviceState.DRAINING]
        assert len(drained) == 1

    def test_min_active_floor_holds(self, iphone_engine):
        devices = _fleet(iphone_engine, 2, standby=0)
        scaler = Autoscaler(
            devices, low_backlog_ns=1e6, patience=1, min_active=2,
        )
        assert scaler.evaluate(1.0) == []
        assert all(d.state is DeviceState.ACTIVE for d in devices)

    def test_drained_device_finishes_queue_then_powers_down(
        self, iphone_engine
    ):
        devices = _fleet(iphone_engine, 2, standby=0)
        victim = devices[1]
        victim.offer(make_request(req_id=0), 0.0)
        scaler = Autoscaler(
            devices, high_backlog_ns=1e13, low_backlog_ns=1e12,
            patience=1, min_active=1,
        )
        scaler.evaluate(1.0)
        # one of the two drained; the victim still serves its queue
        draining = [d for d in devices if d.state is DeviceState.DRAINING]
        assert len(draining) == 1
        drained = draining[0]
        while len(drained.queue):
            drained.serve_next()
        assert drained.finish_drain_if_idle(drained.clock)
        assert drained.state is DeviceState.STANDBY


class TestSummary:
    def test_summary_counts_actions(self, iphone_engine):
        devices = _fleet(iphone_engine, 3, standby=1)
        scaler = Autoscaler(devices, high_backlog_ns=1e9, patience=1)
        _load(devices[0], 5e9)
        _load(devices[1], 5e9)
        scaler.evaluate(1.0)
        summary = scaler.summary()
        assert summary["scale_ups"] == 1
        assert summary["drains"] == 0
        assert len(summary["events"]) == 1
