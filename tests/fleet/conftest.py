"""Shared fixtures for the fleet suite.

Fleet devices are built on the smallest platform (iPhone 15 Pro: the
cheapest engine to construct) unless a test's point is heterogeneity.
"""

from typing import Optional

import pytest

from repro.engine.policies import InferenceEngine
from repro.fleet.device import DeviceSpec, FleetDevice
from repro.platforms.specs import IPHONE_15_PRO
from repro.serving.workload import Request


@pytest.fixture(scope="session")
def iphone_engine():
    return InferenceEngine(IPHONE_15_PRO)


def make_device(
    engine, device_id: int = 0, seed: int = 0, adaptive=None, **spec_overrides
) -> FleetDevice:
    spec = DeviceSpec(
        device_id=device_id, platform=IPHONE_15_PRO, **spec_overrides
    )
    return FleetDevice(spec, seed=seed, engine=engine, adaptive=adaptive)


def make_request(
    req_id: int = 0,
    arrival_ns: float = 0.0,
    prefill_tokens: int = 32,
    decode_tokens: int = 8,
    deadline_ns: float = 10_000e6,
    tenant: str = "chat",
    policy: str = "facil",
    conversation_id: Optional[int] = None,
    turn_index: int = 0,
    context_tokens: int = 0,
) -> Request:
    return Request(
        req_id=req_id,
        tenant=tenant,
        policy=policy,
        arrival_ns=arrival_ns,
        prefill_tokens=prefill_tokens,
        decode_tokens=decode_tokens,
        deadline_ns=deadline_ns,
        conversation_id=conversation_id,
        turn_index=turn_index,
        context_tokens=context_tokens,
    )
