"""Shaped (inhomogeneous-Poisson) workloads: thinning determinism and
the canned diurnal / bursty shapes."""

import pytest

from repro.fleet.workloads import (
    BURSTY_OVERLOAD,
    DIURNAL,
    BurstyShape,
    DiurnalShape,
    SteadyShape,
    shaped_workload,
)
from repro.serving.workload import TenantSpec


def _tenant(qps=50.0, mean_turns=1.0):
    return TenantSpec(
        name="chat", policy="facil", qps=qps, deadline_ms=1_000.0,
        mean_turns=mean_turns,
    )


class TestShapes:
    def test_steady_is_flat_at_peak(self):
        shape = SteadyShape()
        assert all(
            shape.rate_multiplier(t) == 1.0 for t in (0.0, 1e6, 5e9)
        )

    def test_diurnal_trough_and_peak(self):
        shape = DiurnalShape(period_ms=2_000.0, floor=0.2)
        assert shape.rate_multiplier(0.0) == pytest.approx(0.2)
        assert shape.rate_multiplier(1_000e6) == pytest.approx(1.0)
        assert shape.rate_multiplier(2_000e6) == pytest.approx(0.2)

    def test_diurnal_phase_shifts_the_cycle(self):
        peaked = DiurnalShape(period_ms=2_000.0, floor=0.2, phase=0.5)
        assert peaked.rate_multiplier(0.0) == pytest.approx(1.0)

    def test_bursty_burst_window_and_baseline(self):
        shape = BurstyShape(
            period_ms=1_000.0, burst_ms=100.0, burst_multiplier=8.0
        )
        assert shape.rate_multiplier(50e6) == 1.0  # inside the burst
        assert shape.rate_multiplier(500e6) == pytest.approx(1.0 / 8.0)
        assert shape.rate_multiplier(1_050e6) == 1.0  # next period's burst

    def test_multipliers_stay_in_thinning_bound(self):
        for shape in (DIURNAL, BURSTY_OVERLOAD, SteadyShape()):
            for t_ms in range(0, 5_000, 37):
                assert 0.0 <= shape.rate_multiplier(t_ms * 1e6) <= 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="floor"):
            DiurnalShape(floor=1.5)
        with pytest.raises(ValueError, match="burst_ms"):
            BurstyShape(period_ms=100.0, burst_ms=100.0)
        with pytest.raises(ValueError, match="burst_multiplier"):
            BurstyShape(burst_multiplier=1.0)


class TestShapedWorkload:
    def test_same_seed_same_stream(self):
        a = shaped_workload([_tenant()], 2_000.0, shape=DIURNAL, seed=3)
        b = shaped_workload([_tenant()], 2_000.0, shape=DIURNAL, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = shaped_workload([_tenant()], 2_000.0, shape=DIURNAL, seed=3)
        b = shaped_workload([_tenant()], 2_000.0, shape=DIURNAL, seed=4)
        assert a != b

    def test_req_ids_dense_and_sorted(self):
        requests = shaped_workload(
            [_tenant(mean_turns=3.0)], 2_000.0, shape=DIURNAL, seed=0
        )
        assert [r.req_id for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_ns for r in requests]
        assert arrivals == sorted(arrivals)

    def test_thinning_removes_traffic(self):
        steady = shaped_workload([_tenant()], 4_000.0, seed=0)
        thinned = shaped_workload(
            [_tenant()], 4_000.0, shape=BURSTY_OVERLOAD, seed=0
        )
        # bursty keeps ~1/8 of baseline traffic outside bursts
        assert 0 < len(thinned) < len(steady)

    def test_none_shape_matches_steady(self):
        default = shaped_workload([_tenant()], 2_000.0, seed=5)
        steady = shaped_workload(
            [_tenant()], 2_000.0, shape=SteadyShape(), seed=5
        )
        assert default == steady

    def test_followup_turns_survive_the_trough(self):
        # phase=0: openings near t=0 are heavily thinned, but admitted
        # conversations keep every follow-up turn
        requests = shaped_workload(
            [_tenant(qps=100.0, mean_turns=4.0)], 3_000.0,
            shape=DIURNAL, seed=1,
        )
        by_conv = {}
        for r in requests:
            by_conv.setdefault(r.conversation_id, []).append(r)
        multi = [turns for turns in by_conv.values() if len(turns) > 1]
        assert multi
        for turns in multi:
            assert [t.turn_index for t in turns] == list(range(len(turns)))

    def test_out_of_bound_multiplier_raises(self):
        class BadShape:
            def rate_multiplier(self, t_ns):
                return 1.5

        with pytest.raises(ValueError, match="outside"):
            shaped_workload([_tenant()], 2_000.0, shape=BadShape(), seed=0)

    def test_rejects_empty_tenants_and_bad_duration(self):
        with pytest.raises(ValueError, match="tenant"):
            shaped_workload([], 1_000.0)
        with pytest.raises(ValueError, match="duration_ms"):
            shaped_workload([_tenant()], 0.0)
