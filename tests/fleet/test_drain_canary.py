"""Drain-while-canary: an adaptive CANARY in flight on a device the
autoscaler decides to DRAIN must roll back cleanly — pages byte-restored
to the pre-canary MapID, AD003 audit clean, cooldown armed, and the
aborted target *not* flap-damped (the canary was innocent).

The property is checked over arbitrary drifting workloads (hypothesis
picks the hot-shape blocks), because the dangerous part is the timing:
the drain can land at any point of the canary window.
"""

from hypothesis import given, settings, strategies as st

from repro.adaptive.controller import (
    CANARY,
    COOLDOWN,
    WATCHING,
    AdaptiveConfig,
    AdaptiveController,
)
from repro.fleet.device import DeviceState

from tests.adaptive.conftest import FakeArena, drive
from tests.fleet.conftest import make_device

_SETTINGS = dict(max_examples=25, deadline=None)

WINDOW = 8
CANARY_WINDOW = 4


def _controller():
    arena = FakeArena()
    config = AdaptiveConfig(
        mode="active", window_requests=WINDOW, canary_window=CANARY_WINDOW,
        cooldown_requests=10, hysteresis=2.0, canary_fraction=0.25,
        max_migrations=8, penalty_coeff=0.05, slo_margin=0.10,
    )
    return AdaptiveController(config, arena=arena), arena


def _drive_into_canary(ctrl, ticks_into_canary):
    """A sustained 3000-token hot shape flips the controller into CANARY
    (the pages start at MapID 3; 3000 wants 5), then *ticks_into_canary*
    more requests advance partway through the canary window."""
    tick = 0
    while ctrl.state != CANARY:
        drive(ctrl, 3000, n=1, start_req=tick)
        tick += 1
        assert tick < 10 * WINDOW, "controller never opened a canary"
    drive(ctrl, 3000, n=ticks_into_canary, start_req=tick)
    return tick + ticks_into_canary


class TestDrainWhileCanary:
    @given(ticks=st.integers(0, CANARY_WINDOW - 1))
    @settings(**_SETTINGS)
    def test_drain_rolls_the_canary_back_cleanly(self, ticks):
        ctrl, arena = _controller()
        before_pages = list(arena.page_k)
        tick = _drive_into_canary(ctrl, ticks)
        assert ctrl.state == CANARY

        rollbacks_before = ctrl.rollbacks
        cost = ctrl.abort_canary(-1, float(tick), reason="device draining")

        assert cost > 0.0
        assert ctrl.state == COOLDOWN
        assert ctrl.rollbacks == rollbacks_before + 1
        # pages byte-restored to the pre-canary MapID mirror
        assert arena.page_k == before_pages
        # AD003 ran over the aborted pages and found nothing
        assert arena.verify_calls
        assert ctrl.findings == []
        # innocent canary: the target MapID is not flap-damped
        assert ctrl._rejected_map_id is None

    @given(ticks=st.integers(0, CANARY_WINDOW - 1))
    @settings(**_SETTINGS)
    def test_abort_is_idempotent(self, ticks):
        ctrl, arena = _controller()
        tick = _drive_into_canary(ctrl, ticks)
        assert ctrl.abort_canary(-1, float(tick)) > 0.0
        pages_after = list(arena.page_k)
        # a second abort (double drain, drain-then-kill) is a no-op
        assert ctrl.abort_canary(-1, float(tick + 1)) == 0.0
        assert arena.page_k == pages_after
        assert ctrl.rollbacks == 1

    def test_abort_without_canary_is_free(self):
        ctrl, arena = _controller()
        assert ctrl.state == WATCHING
        assert ctrl.abort_canary(-1, 0.0) == 0.0
        assert ctrl.rollbacks == 0
        assert arena.migrations == []


class TestDeviceDrainHook:
    @given(ticks=st.integers(0, CANARY_WINDOW - 1))
    @settings(**_SETTINGS)
    def test_draining_device_aborts_its_canary(self, iphone_engine, ticks):
        ctrl, arena = _controller()
        before_pages = list(arena.page_k)
        _drive_into_canary(ctrl, ticks)
        device = make_device(iphone_engine, adaptive=ctrl)

        device.drain(123.0)

        assert device.state is DeviceState.DRAINING
        assert ctrl.state == COOLDOWN
        assert arena.page_k == before_pages
        assert ctrl.findings == []
        # the rollback event carries the administrative reason
        assert ctrl.events[-1].kind == "rollback"
        assert "draining" in ctrl.events[-1].reason

    def test_drain_without_adaptive_is_fine(self, iphone_engine):
        device = make_device(iphone_engine)
        device.drain(1.0)
        assert device.state is DeviceState.DRAINING
