"""FleetRuntime: the conservation law, failover, determinism, and
byte-identity of the single-device path with fleet code in the process."""

import random

import pytest

from repro.fleet.runtime import (
    TERMINAL_STATUSES,
    FleetConfig,
    FleetRuntime,
    build_fleet,
    fleet_workload,
)
from repro.fleet.workloads import DIURNAL
from repro.serving.workload import TenantSpec
from repro.telemetry import Telemetry


def _tenant(qps=20.0, mean_turns=2.0):
    return TenantSpec(
        name="chat", policy="facil", qps=qps, deadline_ms=2_000.0,
        mean_turns=mean_turns,
    )


def _run(n_devices=3, seed=0, kills=(), duration_ms=1_000.0, **cfg):
    config = FleetConfig(n_devices=n_devices, seed=seed, **cfg)
    requests = fleet_workload([_tenant()], duration_ms, shape=DIURNAL,
                              seed=seed)
    return FleetRuntime(config).run(requests, kills=kills), requests


def _kill_schedule(n, devices, gap_ms=100.0, seed=0):
    rng = random.Random(seed * 9973 + 65537)
    gap_ns = gap_ms * 1e6
    schedule, t = [], gap_ns
    for index in range(n):
        t += gap_ns * (rng.random() - 0.5)
        schedule.append((t, index % devices))
        t += gap_ns
    return sorted(schedule)


class TestConfigValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="n_devices"):
            FleetConfig(n_devices=0)
        with pytest.raises(ValueError, match="standby_devices"):
            FleetConfig(n_devices=2, standby_devices=2)

    def test_build_fleet_is_heterogeneous(self):
        devices = build_fleet(FleetConfig(n_devices=4))
        platforms = {d.spec.platform.name for d in devices}
        assert len(platforms) == 4


class TestConservation:
    def test_every_request_reaches_one_terminal_outcome(self):
        report, requests = _run()
        assert report.none_lost
        assert report.offered == len(requests)
        assert {o.req_id for o in report.outcomes} == {
            r.req_id for r in requests
        }
        assert all(o.status in TERMINAL_STATUSES for o in report.outcomes)

    def test_conservation_holds_under_kills(self):
        kills = _kill_schedule(6, devices=3)
        report, requests = _run(kills=kills)
        assert report.kills == 6
        assert report.revives == 6
        assert report.none_lost
        assert report.offered == len(requests)
        assert report.audit_findings == []

    def test_accounting_identity(self):
        kills = _kill_schedule(4, devices=3)
        report, _ = _run(kills=kills)
        assert (
            report.served + report.shed + report.unserved == report.offered
        )

    def test_none_lost_detects_a_missing_outcome(self):
        """none_lost must compare against the offered ids — dropping an
        outcome (a stranded request) fails the law even though the
        remaining outcomes are unique and terminal."""
        report, requests = _run()
        assert requests and report.none_lost
        assert report.offered_req_ids == sorted(r.req_id for r in requests)
        report.outcomes.pop()
        assert not report.none_lost


class TestHealthQuarantine:
    def _faulty_fleet(self, n=2, seed=0, pim_fault_rate=0.75):
        """Devices whose PIM fault pressure crosses the quarantine
        watermark, with breakers held open-proof (huge min_observations)
        so the health window keeps filling."""
        from repro.fleet.device import DeviceSpec, FleetDevice
        from repro.platforms.specs import ALL_PLATFORMS

        return [
            FleetDevice(
                DeviceSpec(
                    device_id=i,
                    platform=ALL_PLATFORMS[i % len(ALL_PLATFORMS)],
                    pim_fault_rate=pim_fault_rate,
                    breaker_min_observations=10_000,
                ),
                seed=seed,
            )
            for i in range(n)
        ]

    def test_health_quarantine_fails_over_queue_and_revives(self):
        """A device quarantined by sustained fault pressure (no kill
        event) must not strand its admitted queue: refugees fail over,
        every offered request still gets a terminal outcome, and the
        timed revive returns the device to rotation."""
        config = FleetConfig(n_devices=2, seed=0, recovery_ms=20.0,
                             pim_fault_rate=0.75)
        requests = fleet_workload([_tenant(qps=40.0)], 1_000.0,
                                  shape=DIURNAL, seed=0)
        runtime = FleetRuntime(config, devices=self._faulty_fleet())
        report = runtime.run(requests)
        assert report.health_quarantines > 0
        assert report.kills == 0
        assert report.revives > 0  # health quarantines revive on a timer
        assert report.none_lost
        assert {o.req_id for o in report.outcomes} == {
            r.req_id for r in requests
        }
        quarantined = [
            d for d in runtime.devices
            if any(b == "quarantined" for _, _, b in d.transitions)
        ]
        assert quarantined
        # the revive edge fired: quarantined devices re-entered ACTIVE
        for device in quarantined:
            assert ("quarantined", "active") in [
                (a, b) for _, a, b in device.transitions
            ]


class TestFailover:
    def test_kills_force_failover_placements(self):
        kills = _kill_schedule(6, devices=2, gap_ms=80.0)
        report, _ = _run(n_devices=2, kills=kills,
                         shed_policy="drop-oldest")
        assert report.failovers > 0
        failed_over = [o for o in report.outcomes if o.failovers]
        assert failed_over
        # a failed-over request that was served landed on a live device
        for outcome in failed_over:
            if outcome.served:
                assert outcome.device_id >= 0

    def test_dead_device_requests_not_lost(self):
        kills = [(5e6, 0)]  # kill device 0 early, mid-backlog
        report, requests = _run(n_devices=2, kills=kills,
                                duration_ms=500.0)
        assert report.none_lost
        assert report.offered == len(requests)

    def test_kills_skip_standby_spares(self):
        """A kill landing on a STANDBY spare is skipped — applying it
        would revive the spare into ACTIVE, recruiting standby capacity
        behind the autoscaler's back."""
        config = FleetConfig(n_devices=3, standby_devices=1, seed=0)
        requests = fleet_workload([_tenant()], 500.0, shape=DIURNAL,
                                  seed=0)
        # device 2 is the parked spare; schedule its loss mid-run
        report = FleetRuntime(config).run(requests, kills=[(5e6, 2)])
        assert report.kills == 0
        assert report.revives == 0
        spare = [d for d in report.devices if d["device_id"] == 2][0]
        assert spare["state"] == "standby"
        assert report.none_lost


class TestDeterminism:
    def test_same_seed_byte_identical_reports(self):
        kills = _kill_schedule(4, devices=3)
        a, _ = _run(kills=kills)
        b, _ = _run(kills=kills)
        assert a.to_json() == b.to_json()

    def test_different_seed_differs(self):
        a, _ = _run(seed=0)
        b, _ = _run(seed=1)
        assert a.to_json() != b.to_json()

    def test_telemetry_is_passive(self):
        kills = _kill_schedule(3, devices=3)
        plain, _ = _run(kills=kills)
        config = FleetConfig(n_devices=3, seed=0)
        requests = fleet_workload([_tenant()], 1_000.0, shape=DIURNAL,
                                  seed=0)
        telemetry = Telemetry()
        traced = FleetRuntime(config, telemetry=telemetry).run(
            requests, kills=kills
        )
        assert traced.to_json() == plain.to_json()

    def test_single_device_serving_unperturbed_by_fleet_run(self):
        """The fleet rides disjoint RNG streams: running a whole fleet
        (kills included) between two identical serving runs must leave
        the serving report byte-identical."""
        from repro.engine.policies import InferenceEngine
        from repro.platforms.specs import IPHONE_15_PRO
        from repro.serving import (
            ServingConfig,
            ServingRuntime,
            poisson_workload,
        )

        engine = InferenceEngine(IPHONE_15_PRO)
        tenant = TenantSpec(name="chat", policy="facil", qps=2.0,
                            deadline_ms=10_000.0)
        requests = poisson_workload([tenant], duration_ms=5_000.0, seed=0)

        def serve():
            return ServingRuntime(engine, ServingConfig(seed=0)).run(
                list(requests)
            )

        before = serve().to_json()
        _run(kills=_kill_schedule(4, devices=3))
        after = serve().to_json()
        assert before == after


class TestAutoscale:
    def test_autoscaler_recruits_standby_under_load(self):
        config = FleetConfig(
            n_devices=3, standby_devices=1, seed=0, autoscale=True,
            autoscale_high_backlog_ns=5e7, autoscale_low_backlog_ns=1e6,
            autoscale_interval_ms=20.0, autoscale_patience=2,
        )
        requests = fleet_workload(
            [_tenant(qps=80.0)], 2_000.0, seed=0
        )
        report = FleetRuntime(config).run(requests)
        assert report.autoscaler is not None
        assert report.none_lost
        # under sustained pressure the spare eventually joins
        assert report.autoscaler["scale_ups"] >= 1

    def test_autoscale_off_reports_none(self):
        report, _ = _run()
        assert report.autoscaler is None


class TestReportSurface:
    def test_render_mentions_every_device_lane(self):
        report, _ = _run()
        text = report.render()
        for lane in report.devices:
            assert f"dev{lane['device_id']}" in text

    def test_device_lanes_carry_breaker_snapshots(self):
        report, _ = _run()
        for lane in report.devices:
            assert set(lane["breakers"]) == {"pim", "mapping"}

    def test_to_dict_round_trips_through_json(self):
        import json

        report, _ = _run(kills=_kill_schedule(2, devices=3))
        assert json.loads(report.to_json())["none_lost"] is True
