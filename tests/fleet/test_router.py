"""FleetRouter: locality, load-aware spill, and failover re-placement."""

import pytest

from repro.fleet.router import FleetRouter

from tests.fleet.conftest import make_device, make_request


def _fleet(engine, n=3, **spec_overrides):
    return [
        make_device(engine, device_id=i, **spec_overrides) for i in range(n)
    ]


class TestValidation:
    def test_rejects_empty_fleet(self, iphone_engine):
        with pytest.raises(ValueError, match="at least one device"):
            FleetRouter([])

    def test_rejects_nonpositive_spill_threshold(self, iphone_engine):
        with pytest.raises(ValueError, match="spill_backlog_ns"):
            FleetRouter(_fleet(iphone_engine, 1), spill_backlog_ns=0.0)


class TestPlacement:
    def test_fresh_placement_prefers_lowest_id_on_ties(self, iphone_engine):
        router = FleetRouter(_fleet(iphone_engine))
        chosen = router.route(make_request(req_id=0), 0.0)
        assert chosen.spec.device_id == 0

    def test_conversation_sticks_to_its_device(self, iphone_engine):
        router = FleetRouter(_fleet(iphone_engine))
        first = router.route(make_request(req_id=0, conversation_id=1), 0.0)
        again = router.route(
            make_request(req_id=1, conversation_id=1, turn_index=1), 10.0
        )
        assert again is first
        assert router.locality_hits == 1
        assert router.affinity == {1: first.spec.device_id}

    def test_load_spreads_across_devices(self, iphone_engine):
        devices = _fleet(iphone_engine)
        router = FleetRouter(devices)
        placed = set()
        for i in range(3):
            dev = router.route(make_request(req_id=i), 0.0)
            dev.offer(make_request(req_id=i), 0.0)
            placed.add(dev.spec.device_id)
        assert placed == {0, 1, 2}

    def test_degraded_ranks_below_active(self, iphone_engine):
        devices = _fleet(iphone_engine, 2)
        from repro.fleet.device import DeviceState

        devices[0]._move(DeviceState.DEGRADED, 0.0)
        router = FleetRouter(devices)
        chosen = router.route(make_request(req_id=0), 0.0)
        assert chosen.spec.device_id == 1

    def test_unroutable_fleet_sheds(self, iphone_engine):
        devices = _fleet(iphone_engine, 2)
        for dev in devices:
            dev.kill(0.0)
        router = FleetRouter(devices)
        assert router.route(make_request(req_id=0), 1.0) is None
        assert router.shed_unroutable == 1


class TestSpill:
    def test_drowning_home_spills_and_moves_affinity(self, iphone_engine):
        devices = _fleet(iphone_engine, 2)
        router = FleetRouter(devices, spill_backlog_ns=1e6)
        home = router.route(make_request(req_id=0, conversation_id=4), 0.0)
        home.offer(make_request(req_id=0, conversation_id=4), 0.0)
        home.serve_next()
        # park an hour of synthetic backlog on the home device
        home.free = {k: v + 3600e9 for k, v in home.free.items()}
        spilled = router.route(
            make_request(req_id=1, conversation_id=4, turn_index=1),
            home.clock,
        )
        assert spilled is not home
        assert router.spills == 1
        assert router.affinity[4] == spilled.spec.device_id
        # the old residency was evicted with the move
        assert home.resident_tokens(4) == 0

    def test_spill_does_not_fire_under_threshold(self, iphone_engine):
        devices = _fleet(iphone_engine, 2)
        router = FleetRouter(devices, spill_backlog_ns=1e12)
        home = router.route(make_request(req_id=0, conversation_id=4), 0.0)
        again = router.route(
            make_request(req_id=1, conversation_id=4, turn_index=1), 1.0
        )
        assert again is home and router.spills == 0


class TestFailover:
    def test_device_loss_orphans_its_conversations(self, iphone_engine):
        devices = _fleet(iphone_engine, 2)
        router = FleetRouter(devices)
        router.affinity.update({1: 0, 2: 0, 3: 1})
        orphans = router.on_device_lost(0, 5.0)
        assert orphans == [1, 2]
        assert router.affinity == {3: 1}

    def test_failover_reroutes_to_survivor(self, iphone_engine):
        devices = _fleet(iphone_engine, 2)
        router = FleetRouter(devices)
        home = router.route(make_request(req_id=0, conversation_id=7), 0.0)
        home.kill(1.0)
        router.on_device_lost(home.spec.device_id, 1.0)
        survivor = router.route(
            make_request(req_id=1, conversation_id=7, turn_index=1),
            2.0, failover=True,
        )
        assert survivor is not None and survivor is not home
        assert router.failovers == 1
        assert router.affinity[7] == survivor.spec.device_id

    def test_summary_counts(self, iphone_engine):
        router = FleetRouter(_fleet(iphone_engine, 2))
        router.route(make_request(req_id=0, conversation_id=1), 0.0)
        router.route(
            make_request(req_id=1, conversation_id=1, turn_index=1), 1.0
        )
        summary = router.summary()
        assert summary["placements"] == 2
        assert summary["locality_hits"] == 1
        assert summary["shed_unroutable"] == 0
