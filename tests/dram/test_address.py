"""Tests for DRAM coordinates."""

import pytest

from repro.dram.address import DramCoord, Field, FIELDS
from repro.dram.config import TINY_ORG


class TestValidate:
    def test_valid_coord(self):
        coord = DramCoord(channel=1, rank=0, bank=3, row=15, col=7, offset=31)
        assert coord.validate(TINY_ORG) is coord

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(channel=2, rank=0, bank=0, row=0, col=0),
            dict(channel=0, rank=1, bank=0, row=0, col=0),
            dict(channel=0, rank=0, bank=4, row=0, col=0),
            dict(channel=0, rank=0, bank=0, row=4096, col=0),
            dict(channel=0, rank=0, bank=0, row=0, col=8),
            dict(channel=0, rank=0, bank=0, row=0, col=0, offset=32),
            dict(channel=-1, rank=0, bank=0, row=0, col=0),
        ],
    )
    def test_out_of_range(self, kwargs):
        with pytest.raises(ValueError, match="out of range"):
            DramCoord(**kwargs).validate(TINY_ORG)


class TestPuIndex:
    def test_bank_varies_fastest(self):
        a = DramCoord(channel=0, rank=0, bank=0, row=0, col=0)
        b = DramCoord(channel=0, rank=0, bank=1, row=0, col=0)
        c = DramCoord(channel=1, rank=0, bank=0, row=0, col=0)
        assert b.pu_index(TINY_ORG) == a.pu_index(TINY_ORG) + 1
        assert c.pu_index(TINY_ORG) == TINY_ORG.banks_per_rank

    def test_covers_all_banks(self):
        indices = {
            DramCoord(channel=ch, rank=0, bank=bk, row=0, col=0).pu_index(TINY_ORG)
            for ch in range(TINY_ORG.n_channels)
            for bk in range(TINY_ORG.banks_per_rank)
        }
        assert indices == set(range(TINY_ORG.total_banks))


class TestByteIndex:
    def test_linear_layout(self):
        coord = DramCoord(channel=0, rank=0, bank=0, row=2, col=3, offset=5)
        assert coord.byte_index(TINY_ORG) == 2 * 256 + 3 * 32 + 5


class TestFieldConstants:
    def test_fields_tuple_complete(self):
        assert set(FIELDS) == {
            Field.CHANNEL, Field.RANK, Field.BANK, Field.ROW, Field.COL, Field.OFFSET
        }

    def test_ordering_of_coords(self):
        a = DramCoord(channel=0, rank=0, bank=0, row=0, col=0)
        b = DramCoord(channel=0, rank=0, bank=0, row=0, col=1)
        assert a < b  # dataclass ordering: useful for deterministic sorts
