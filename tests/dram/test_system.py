"""Tests for the top-level DRAM timing simulator (incl. the paper's
§VI-A bandwidth verification)."""

import numpy as np
import pytest

from repro.core.controller import MemoryController
from repro.core.mapping import pim_optimized_mapping
from repro.dram.config import DramConfig, LPDDR5_6400_TIMINGS, lpddr5_organization
from repro.dram.system import DramTimingSimulator, requests_from_fields

ORG = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
CFG = DramConfig(ORG, LPDDR5_6400_TIMINGS)


@pytest.fixture(scope="module")
def controller():
    ctl = MemoryController(ORG)
    ctl.table.register(pim_optimized_mapping(ORG, 1, 1024, 2, 1, 21))
    return ctl


@pytest.fixture(scope="module")
def simulator():
    return DramTimingSimulator(CFG)


def _seq(nbytes):
    return np.arange(0, nbytes, ORG.transfer_bytes, dtype=np.int64)


class TestSequentialBandwidth:
    def test_conventional_reaches_near_peak(self, controller, simulator):
        """The paper verifies its assumed SoC mapping achieves near-peak
        sequential read bandwidth (§VI-A)."""
        bw = simulator.measure_bandwidth(
            controller.translate_array(_seq(4 << 20), 0), sample_transfers=16384
        )
        assert bw > 0.95 * ORG.peak_bandwidth_gbps

    def test_pim_layout_sequential_is_slow(self, controller, simulator):
        """Reading a PIM-optimized layout with sequential addresses is
        bank-serial — the cost the hybrid baseline's re-layout pays."""
        bw = simulator.measure_bandwidth(
            controller.translate_array(_seq(4 << 20), 1), sample_transfers=16384
        )
        assert bw < 0.6 * ORG.peak_bandwidth_gbps

    def test_write_stream(self, controller, simulator):
        bw = simulator.measure_bandwidth(
            controller.translate_array(_seq(1 << 20), 0),
            is_write=True,
            sample_transfers=8192,
        )
        assert bw > 0.8 * ORG.peak_bandwidth_gbps


class TestRunAccounting:
    def test_counts(self, controller, simulator):
        fields = controller.translate_array(_seq(64 * 1024), 0)
        result = simulator.run(requests_from_fields(fields))
        assert result.n_requests == 2048
        assert result.bytes_moved == 64 * 1024
        assert result.row_hits + result.row_misses + result.row_conflicts == 2048

    def test_empty_stream(self, simulator):
        result = simulator.run([])
        assert result.total_ns == 0
        assert result.bandwidth_gbps == 0.0

    def test_channels_parallel(self, controller, simulator):
        """A stream over all 16 channels finishes ~16x faster than the
        same transfers confined to one channel."""
        fields_all = controller.translate_array(_seq(128 * 1024), 0)
        one_channel = {k: v.copy() for k, v in fields_all.items()}
        one_channel["channel"][:] = 0
        t_all = simulator.run(requests_from_fields(fields_all)).total_ns
        t_one = simulator.run(requests_from_fields(one_channel)).total_ns
        assert t_one > 8 * t_all


class TestSampling:
    def test_sampling_truncates(self, controller, simulator):
        fields = controller.translate_array(_seq(8 << 20), 0)
        bw_sampled = simulator.measure_bandwidth(fields, sample_transfers=4096)
        assert bw_sampled > 0


class TestRefreshModeling:
    def test_refresh_costs_duty_cycle(self, controller):
        """With all-bank refresh on, bandwidth drops by the tRFC/tREFI
        duty cycle *plus* the cost of re-opening the rows the refresh
        precharged.  An exaggerated duty cycle (10 %) makes the effect
        visible on a short sample — and amplifies the re-open cost, so
        the lower bound is loose."""
        from dataclasses import replace as dc_replace

        timings = dc_replace(LPDDR5_6400_TIMINGS, tREFI=500.0, tRFC=50.0)
        config = DramConfig(ORG, timings)
        fields = controller.translate_array(_seq(1 << 20), 0)
        base = DramTimingSimulator(config).measure_bandwidth(
            fields, sample_transfers=16384
        )
        refreshed = DramTimingSimulator(
            config, model_refresh=True
        ).measure_bandwidth(fields, sample_transfers=16384)
        assert refreshed < 0.95 * base
        assert refreshed > 0.55 * base
