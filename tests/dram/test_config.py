"""Tests for DRAM organization/timing configuration."""

import pytest

from repro.dram.config import (
    DramConfig,
    DramOrganization,
    DramTimings,
    LPDDR5_6400_TIMINGS,
    TINY_ORG,
    lpddr5_organization,
)


class TestOrganizationValidation:
    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError, match="power of two"):
            DramOrganization(3, 1, 4, 16)

    def test_rejects_transfer_bigger_than_row(self):
        with pytest.raises(ValueError, match="row_bytes"):
            DramOrganization(1, 1, 4, 16, row_bytes=32, transfer_bytes=64)


class TestDerivedGeometry:
    def test_tiny_org(self):
        assert TINY_ORG.total_banks == 8
        assert TINY_ORG.capacity_bytes == 8 << 20
        assert TINY_ORG.cols_per_row == 8
        assert TINY_ORG.offset_bits == 5
        assert TINY_ORG.col_bits == 3
        assert TINY_ORG.bank_bits == 2
        assert TINY_ORG.rank_bits == 0
        assert TINY_ORG.channel_bits == 1
        assert TINY_ORG.interleave_bits() == 3

    def test_rows_per_span(self):
        org = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
        # 2 MB page / (512 banks * 2 KB row) = 2 rows per bank
        assert org.rows_per_span(2 << 20) == 2

    def test_rows_per_span_too_small(self):
        org = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
        with pytest.raises(ValueError, match="too small"):
            org.rows_per_span(1024)


class TestBandwidth:
    @pytest.mark.parametrize(
        "bus,rate,expected",
        [
            (256, 6400, 204.8),  # Jetson AGX Orin
            (512, 6400, 409.6),  # MacBook Pro M3 Max
            (64, 7467, 59.736),  # IdeaPad Slim 5
            (64, 6400, 51.2),  # iPhone 15 Pro
        ],
    )
    def test_table2_peak_bandwidths(self, bus, rate, expected):
        org = lpddr5_organization(bus_width_bits=bus, capacity_gb=8, data_rate_mbps=rate)
        assert org.peak_bandwidth_gbps == pytest.approx(expected, rel=1e-3)

    def test_channel_bandwidth(self):
        org = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
        assert org.channel_bandwidth_gbps == pytest.approx(12.8)


class TestLpddr5Organization:
    def test_channel_count_from_bus_width(self):
        assert lpddr5_organization(256, 64).n_channels == 16
        assert lpddr5_organization(64, 8).n_channels == 4

    def test_capacity_preserved(self):
        org = lpddr5_organization(256, 64)
        assert org.capacity_bytes == 64 << 30

    def test_rejects_odd_bus(self):
        with pytest.raises(ValueError, match="multiple of 16"):
            lpddr5_organization(100, 8)


class TestTimings:
    def test_burst_time(self):
        org = lpddr5_organization(256, 64, data_rate_mbps=6400)
        # 32 B on a 16-bit bus at 6400 MT/s: 16 transfers / 6.4 GT/s = 2.5 ns
        assert LPDDR5_6400_TIMINGS.burst_time_ns(org) == pytest.approx(2.5)

    def test_lpddr5x_burst_faster(self):
        org = lpddr5_organization(64, 32, data_rate_mbps=7467)
        assert LPDDR5_6400_TIMINGS.burst_time_ns(org) < 2.5

    def test_timing_relations_sane(self):
        t = LPDDR5_6400_TIMINGS
        assert t.tRC >= t.tRAS
        assert t.tRAS > t.tRCD
        assert t.tCCD > 0


class TestDramConfig:
    def test_with_data_rate(self):
        cfg = DramConfig(TINY_ORG, LPDDR5_6400_TIMINGS)
        faster = cfg.with_data_rate(8533)
        assert faster.org.data_rate_mbps == 8533
        assert cfg.org.data_rate_mbps == 6400  # original untouched

    def test_org_alias(self):
        cfg = DramConfig(TINY_ORG, LPDDR5_6400_TIMINGS)
        assert cfg.org is cfg.organization
