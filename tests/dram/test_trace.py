"""Tests for trace save/load/replay."""

import io

import numpy as np
import pytest

from repro.core.controller import MemoryController
from repro.dram.config import TINY_ORG, DramConfig, LPDDR5_6400_TIMINGS
from repro.dram.system import DramTimingSimulator
from repro.dram.trace import load_trace, save_trace, trace_from_fields


def _sample_requests(n=64, tag=""):
    controller = MemoryController(TINY_ORG)
    pas = np.arange(0, n * 32, 32, dtype=np.int64)
    return trace_from_fields(controller.translate_array(pas, 0), tag=tag)


class TestRoundtrip:
    def test_save_load_identity(self, tmp_path):
        requests = _sample_requests(tag="soc")
        path = str(tmp_path / "trace.txt")
        assert save_trace(requests, path) == len(requests)
        loaded = load_trace(path)
        assert loaded == [
            r.__class__(coord=r.coord, is_write=r.is_write, tag=r.tag)
            for r in requests
        ]

    def test_file_object_io(self):
        requests = _sample_requests(8)
        buffer = io.StringIO()
        save_trace(requests, buffer)
        buffer.seek(0)
        assert len(load_trace(buffer)) == 8

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n0 0 1 2 3 R\n0 0 1 2 4 W  # inline comment\n"
        loaded = load_trace(io.StringIO(text))
        assert len(loaded) == 2
        assert loaded[1].is_write


class TestValidation:
    def test_malformed_line(self):
        with pytest.raises(ValueError, match="line 1"):
            load_trace(io.StringIO("0 0 1 R\n"))

    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            load_trace(io.StringIO("0 0 1 2 3 X\n"))

    def test_non_integer(self):
        with pytest.raises(ValueError, match="non-integer"):
            load_trace(io.StringIO("0 0 a 2 3 R\n"))


class TestReplay:
    def test_replayed_trace_matches_original(self, tmp_path):
        requests = _sample_requests(256)
        sim = DramTimingSimulator(DramConfig(TINY_ORG, LPDDR5_6400_TIMINGS))
        original = sim.run(requests)

        path = str(tmp_path / "t.txt")
        save_trace(requests, path)
        replayed = sim.run(load_trace(path))
        assert replayed.total_ns == pytest.approx(original.total_ns)
        assert replayed.row_hits == original.row_hits
