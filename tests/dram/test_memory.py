"""Tests for the functional per-bank byte store."""

import numpy as np
import pytest

from repro.dram.address import DramCoord
from repro.dram.config import TINY_ORG, DramOrganization, lpddr5_organization
from repro.dram.memory import PhysicalMemory


class TestGuard:
    def test_rejects_huge_organizations(self):
        org = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
        with pytest.raises(ValueError, match="guard"):
            PhysicalMemory(org)


class TestBankAccess:
    def test_lazy_allocation(self):
        memory = PhysicalMemory(TINY_ORG)
        assert list(memory.touched_banks()) == []
        memory.bank(0, 0, 1)
        assert list(memory.touched_banks()) == [(0, 0, 1)]

    def test_bank_shape(self):
        memory = PhysicalMemory(TINY_ORG)
        assert memory.bank(1, 0, 3).shape == (4096, 256)

    def test_out_of_range_bank(self):
        memory = PhysicalMemory(TINY_ORG)
        with pytest.raises(ValueError):
            memory.bank(2, 0, 0)

    def test_row_view_is_writable(self):
        memory = PhysicalMemory(TINY_ORG)
        row = memory.row(0, 0, 0, 5)
        row[:] = 7
        assert memory.read_byte(DramCoord(0, 0, 0, 5, 0, 0)) == 7


class TestScalarAccess:
    def test_write_read_byte(self):
        memory = PhysicalMemory(TINY_ORG)
        coord = DramCoord(channel=1, rank=0, bank=2, row=9, col=3, offset=17)
        memory.write_byte(coord, 0xAB)
        assert memory.read_byte(coord) == 0xAB

    def test_validates_coord(self):
        memory = PhysicalMemory(TINY_ORG)
        with pytest.raises(ValueError):
            memory.write_byte(DramCoord(9, 0, 0, 0, 0, 0), 1)


class TestVectorAccess:
    def test_scatter_gather_roundtrip(self, rng):
        memory = PhysicalMemory(TINY_ORG)
        n = 1000
        channel = rng.integers(0, 2, n)
        rank = np.zeros(n, dtype=np.int64)
        bank = rng.integers(0, 4, n)
        # unique byte indices per bank to avoid overwrite ambiguity
        byte_index = rng.permutation(TINY_ORG.bank_bytes)[:n]
        values = rng.integers(0, 256, n).astype(np.uint8)
        memory.scatter(channel, rank, bank, byte_index, values)
        out = memory.gather(channel, rank, bank, byte_index)
        assert np.array_equal(out, values)

    def test_gather_defaults_to_zero(self):
        memory = PhysicalMemory(TINY_ORG)
        out = memory.gather(
            np.array([0]), np.array([0]), np.array([0]), np.array([123])
        )
        assert out[0] == 0
