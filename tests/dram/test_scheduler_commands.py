"""Command-log timing invariants: the scheduler's own command stream
must respect the first-order JEDEC timings it models.

The trace linter (TL001-TL008) already checks protocol *structure*
(ACT/PRE pairing, open-row consistency); these tests check *timing* —
tRP, tRCD, tRC, and tCCD gaps measured directly on the logged command
times of a seeded mixed workload.
"""

import random

import pytest

from repro.dram.address import DramCoord
from repro.dram.command import Request
from repro.dram.config import (
    TINY_ORG,
    DramConfig,
    LPDDR5_6400_TIMINGS,
)
from repro.dram.scheduler import ChannelScheduler


def _run_workload(n_row_buffers=1, model_refresh=False, n=400, seed=7):
    config = DramConfig(TINY_ORG, LPDDR5_6400_TIMINGS)
    scheduler = ChannelScheduler(
        config,
        channel=0,
        n_row_buffers=n_row_buffers,
        model_refresh=model_refresh,
        log_commands=True,
    )
    rng = random.Random(seed)
    for index in range(n):
        coord = DramCoord(
            channel=0,
            rank=0,
            bank=rng.randrange(TINY_ORG.banks_per_rank),
            row=rng.randrange(64),
            col=rng.randrange(TINY_ORG.cols_per_row),
        )
        scheduler.enqueue(
            Request(coord=coord, is_write=index % 3 == 0, tag="soc")
        )
    scheduler.drain()
    return scheduler.command_log or []


def _per_bank(log):
    banks = {}
    for cmd in log:
        if cmd.op == "REF":
            continue  # all-bank, checked via tRFC elsewhere
        banks.setdefault((cmd.rank, cmd.bank), []).append(cmd)
    # banks interleave in the log (and a PRE is stamped retroactively at
    # act - tRP), so order each bank's stream by issue time
    for commands in banks.values():
        commands.sort(key=lambda c: c.time_ns)
    return banks


@pytest.fixture(scope="module")
def command_log():
    return _run_workload()


class TestTimingInvariants:
    TIMINGS = LPDDR5_6400_TIMINGS
    SLACK = 1e-9  # float-add rounding on accumulated times

    def test_workload_actually_exercises_the_banks(self, command_log):
        assert len(command_log) > 400  # columns plus ACT/PRE traffic
        ops = {cmd.op for cmd in command_log}
        assert {"ACT", "PRE", "RD", "WR"} <= ops

    def test_column_commands_are_time_ordered(self, command_log):
        # the data bus serializes columns, so their log order is issue order
        times = [c.time_ns for c in command_log if c.op in ("RD", "WR")]
        assert times == sorted(times)

    def _gaps(self, command_log, first_ops, second_ops):
        """Minimum observed gap between consecutive same-bank commands
        matching (first_ops -> next command in second_ops)."""
        observed = []
        for commands in _per_bank(command_log).values():
            for prev, cur in zip(commands, commands[1:]):
                if prev.op in first_ops and cur.op in second_ops:
                    observed.append(cur.time_ns - prev.time_ns)
        return observed

    def test_pre_to_act_respects_trp(self, command_log):
        gaps = self._gaps(command_log, ("PRE",), ("ACT",))
        assert gaps, "workload never closed a row"
        assert min(gaps) >= self.TIMINGS.tRP - self.SLACK

    def test_act_to_column_respects_trcd(self, command_log):
        gaps = self._gaps(command_log, ("ACT",), ("RD", "WR"))
        assert gaps, "workload never opened a row for a column command"
        assert min(gaps) >= self.TIMINGS.tRCD - self.SLACK

    def test_column_to_column_respects_tccd(self, command_log):
        # consecutive same-bank column commands (row-buffer hits)
        observed = []
        for commands in _per_bank(command_log).values():
            columns = [c for c in commands if c.op in ("RD", "WR")]
            observed.extend(
                cur.time_ns - prev.time_ns
                for prev, cur in zip(columns, columns[1:])
            )
        assert observed, "workload produced no back-to-back columns"
        assert min(observed) >= self.TIMINGS.tCCD - self.SLACK

    def test_act_to_act_respects_trc(self, command_log):
        observed = []
        for commands in _per_bank(command_log).values():
            acts = [c for c in commands if c.op == "ACT"]
            observed.extend(
                cur.time_ns - prev.time_ns
                for prev, cur in zip(acts, acts[1:])
            )
        assert observed, "workload never re-activated a bank"
        assert min(observed) >= self.TIMINGS.tRC - self.SLACK


class TestVariants:
    @pytest.mark.parametrize(
        "n_row_buffers,model_refresh",
        [(2, False), (1, True)],
        ids=["two-row-buffers", "with-refresh"],
    )
    def test_invariants_hold_across_modes(self, n_row_buffers, model_refresh):
        log = _run_workload(
            n_row_buffers=n_row_buffers, model_refresh=model_refresh, n=200
        )
        timings = LPDDR5_6400_TIMINGS
        for commands in _per_bank(log).values():
            for prev, cur in zip(commands, commands[1:]):
                gap = cur.time_ns - prev.time_ns
                if prev.op == "PRE" and cur.op == "ACT":
                    assert gap >= timings.tRP - 1e-9
                if prev.op == "ACT" and cur.op in ("RD", "WR"):
                    assert gap >= timings.tRCD - 1e-9
