"""Property-based tests for the FR-FCFS scheduler: conservation and
timing-sanity invariants over random request streams."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dram.address import DramCoord
from repro.dram.command import Request
from repro.dram.config import TINY_ORG, DramConfig, LPDDR5_6400_TIMINGS
from repro.dram.scheduler import ChannelScheduler

CFG = DramConfig(TINY_ORG, LPDDR5_6400_TIMINGS)

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def _stream(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    reqs = []
    for _ in range(n):
        reqs.append(
            Request(
                coord=DramCoord(
                    channel=0,
                    rank=0,
                    bank=draw(st.integers(0, 3)),
                    row=draw(st.integers(0, 15)),
                    col=draw(st.integers(0, 7)),
                ),
                is_write=draw(st.booleans()),
            )
        )
    return reqs


class TestConservation:
    @given(_stream(), st.integers(min_value=1, max_value=128))
    @settings(**_SETTINGS)
    def test_every_request_served_exactly_once(self, stream, window):
        sched = ChannelScheduler(CFG, channel=0, window=window)
        for request in stream:
            sched.enqueue(request)
        sched.drain()
        sched.collect_bank_stats()
        stats = sched.stats
        assert stats.reads + stats.writes == len(stream)
        assert (
            stats.row_hits + stats.row_misses + stats.row_conflicts
            == len(stream)
        )

    @given(_stream())
    @settings(**_SETTINGS)
    def test_finish_time_bounded(self, stream):
        """The drain can never beat the data-bus floor, nor exceed a
        worst-case serial row cycle per request."""
        sched = ChannelScheduler(CFG, channel=0)
        for request in stream:
            sched.enqueue(request)
        end = sched.drain()
        burst = CFG.timings.burst_time_ns(CFG.org)
        assert end >= len(stream) * burst * 0.99
        worst = CFG.timings.tRC + CFG.timings.tRCD + CFG.timings.tRP + 50
        assert end <= len(stream) * worst

    @given(_stream(), st.integers(min_value=1, max_value=2))
    @settings(**_SETTINGS)
    def test_dual_buffers_never_hurt(self, stream, _):
        single = ChannelScheduler(CFG, channel=0, n_row_buffers=1)
        dual = ChannelScheduler(CFG, channel=0, n_row_buffers=2)
        for request in stream:
            single.enqueue(request)
            dual.enqueue(request)
        single.drain()
        dual.drain()
        single.collect_bank_stats()
        dual.collect_bank_stats()
        assert dual.stats.row_conflicts <= single.stats.row_conflicts

    @given(_stream())
    @settings(**_SETTINGS)
    def test_reordering_preserves_totals(self, stream):
        """Whatever order FR-FCFS picks, the per-kind counts match the
        input stream."""
        sched = ChannelScheduler(CFG, channel=0)
        for request in stream:
            sched.enqueue(request)
        sched.drain()
        expected_writes = sum(1 for r in stream if r.is_write)
        assert sched.stats.writes == expected_writes
        assert sched.stats.reads == len(stream) - expected_writes
