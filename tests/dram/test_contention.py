"""Tests for dual row buffers and the co-scheduling experiment."""

import pytest

from repro.core.controller import MemoryController
from repro.core.mapping import pim_optimized_mapping
from repro.dram.address import DramCoord
from repro.dram.bank import BankState
from repro.dram.command import Request
from repro.dram.config import DramConfig, LPDDR5_6400_TIMINGS, TINY_ORG, lpddr5_organization
from repro.dram.contention import cosched_experiment
from repro.dram.scheduler import ChannelScheduler

T = LPDDR5_6400_TIMINGS


class TestDualRowBuffer:
    def test_two_rows_coexist(self):
        bank = BankState(n_row_buffers=2)
        bank.prepare_column(1, 0.0, T, False)
        bank.prepare_column(2, 100.0, T, False)
        assert bank.is_open(1) and bank.is_open(2)
        assert bank.row_misses == 2
        assert bank.row_conflicts == 0

    def test_alternating_rows_no_conflicts_with_two_buffers(self):
        single = BankState(n_row_buffers=1)
        dual = BankState(n_row_buffers=2)
        for i in range(8):
            single.prepare_column(i % 2, i * 100.0, T, False)
            dual.prepare_column(i % 2, i * 100.0, T, False)
        # single buffer: 1 miss, then every switch is a conflict
        assert single.row_conflicts == 7
        assert dual.row_conflicts == 0
        assert dual.row_hits == 6

    def test_lru_eviction_with_third_row(self):
        bank = BankState(n_row_buffers=2)
        bank.prepare_column(1, 0.0, T, False)
        bank.prepare_column(2, 100.0, T, False)
        bank.prepare_column(1, 200.0, T, False)  # touch row 1 -> 2 is LRU
        bank.prepare_column(3, 300.0, T, False)  # evicts row 2
        assert bank.is_open(1) and bank.is_open(3)
        assert not bank.is_open(2)
        assert bank.row_conflicts == 1

    def test_open_row_property_is_mru(self):
        bank = BankState(n_row_buffers=2)
        assert bank.open_row is None
        bank.prepare_column(5, 0.0, T, False)
        bank.prepare_column(9, 100.0, T, False)
        assert bank.open_row == 9


class TestBusFreeRequests:
    def test_pim_requests_do_not_occupy_bus(self):
        """Bus-free MAC columns and bus reads proceed concurrently: the
        mix finishes faster than if both streams used the bus."""
        cfg = DramConfig(TINY_ORG, T)

        def run(pim_uses_bus):
            sched = ChannelScheduler(cfg, channel=0, n_row_buffers=2)
            for i in range(64):
                # SoC hits spread over 2 banks: bus-limited when alone
                sched.enqueue(Request(
                    DramCoord(0, 0, i % 2, 0, (i // 2) % 8), tag="soc"))
                sched.enqueue(Request(
                    DramCoord(0, 0, 2 + i % 2, 1, (i // 2) % 8), tag="pim",
                    uses_bus=pim_uses_bus))
            return sched.drain()

        assert run(pim_uses_bus=False) < run(pim_uses_bus=True)


class TestCoschedExperiment:
    @pytest.fixture(scope="class")
    def setup(self):
        org = lpddr5_organization(bus_width_bits=256, capacity_gb=64)
        controller = MemoryController(org)
        map_id = controller.table.register(
            pim_optimized_mapping(org, 1, 1024, 2, 1, 21)
        )
        dram = DramConfig(org, T)
        return dram, controller, map_id

    def test_sharing_costs_both_streams(self, setup):
        dram, controller, map_id = setup
        result = cosched_experiment(
            dram, map_id, controller, n_transfers=2048, n_row_buffers=1
        )
        assert result.soc_shared_gbps < result.soc_alone_gbps
        assert result.row_conflicts_shared > 0
        assert result.soc_mean_latency_ns > 0
        assert result.pim_mean_latency_ns > 0

    def test_dual_buffers_reduce_conflicts_and_latency(self, setup):
        # long enough streams for steady-state queueing to develop
        dram, controller, map_id = setup
        single = cosched_experiment(
            dram, map_id, controller, n_transfers=8192, n_row_buffers=1
        )
        dual = cosched_experiment(
            dram, map_id, controller, n_transfers=8192, n_row_buffers=2
        )
        assert dual.row_conflicts_shared < single.row_conflicts_shared
        assert dual.pim_mean_latency_ns < single.pim_mean_latency_ns

    def test_priority_tag_mechanism(self, setup):
        """The priority policy runs and keeps per-stream accounting; in
        this regime its effect is neutral (the bench documents that)."""
        dram, controller, map_id = setup
        result = cosched_experiment(
            dram, map_id, controller, n_transfers=2048,
            n_row_buffers=2, priority_tag="soc",
        )
        assert result.priority_tag == "soc"
        assert result.soc_mean_latency_ns > 0
