"""Tests for the FR-FCFS channel scheduler."""

import pytest

from repro.dram.address import DramCoord
from repro.dram.command import Request
from repro.dram.config import TINY_ORG, DramConfig, LPDDR5_6400_TIMINGS
from repro.dram.scheduler import ChannelScheduler

CFG = DramConfig(TINY_ORG, LPDDR5_6400_TIMINGS)


def _req(bank=0, row=0, col=0, write=False, channel=0):
    return Request(
        coord=DramCoord(channel=channel, rank=0, bank=bank, row=row, col=col),
        is_write=write,
    )


class TestBasics:
    def test_rejects_wrong_channel(self):
        sched = ChannelScheduler(CFG, channel=0)
        with pytest.raises(ValueError, match="channel"):
            sched.enqueue(_req(channel=1))

    def test_drain_serves_everything(self):
        sched = ChannelScheduler(CFG, channel=0)
        for col in range(8):
            sched.enqueue(_req(col=col))
        sched.drain()
        assert sched.stats.reads == 8

    def test_stats_partition_exactly(self):
        sched = ChannelScheduler(CFG, channel=0)
        for row in (0, 0, 1, 1, 0):
            sched.enqueue(_req(row=row))
        sched.drain()
        sched.collect_bank_stats()
        s = sched.stats
        assert s.row_hits + s.row_misses + s.row_conflicts == 5


class TestRowPolicy:
    def test_sequential_same_row_is_fast(self):
        sched = ChannelScheduler(CFG, channel=0)
        for col in range(8):
            sched.enqueue(_req(col=col))
        end = sched.drain()
        sched.collect_bank_stats()
        assert sched.stats.row_hits == 7
        # one activation + 8 bus slots, far below 8 row cycles
        assert end < CFG.timings.tRC * 4

    def test_row_conflicts_are_slow(self):
        # window=1 forbids reordering, so the alternating-row pattern
        # conflicts on every request.
        sched = ChannelScheduler(CFG, channel=0, window=1)
        for i in range(8):
            sched.enqueue(_req(row=i % 2))
        end = sched.drain()
        sched.collect_bank_stats()
        assert sched.stats.row_conflicts >= 6
        assert end > CFG.timings.tRC * 6

    def test_bank_interleave_hides_conflicts(self):
        """The same conflict-prone pattern spread over 4 banks overlaps
        row cycles and finishes much earlier."""
        serial = ChannelScheduler(CFG, channel=0)
        for i in range(16):
            serial.enqueue(_req(bank=0, row=i))
        serial_end = serial.drain()

        spread = ChannelScheduler(CFG, channel=0)
        for i in range(16):
            spread.enqueue(_req(bank=i % 4, row=i // 4))
        spread_end = spread.drain()
        assert spread_end < serial_end * 0.6


class TestReordering:
    def test_row_hits_served_before_older_miss(self):
        sched = ChannelScheduler(CFG, channel=0, window=8)
        sched.enqueue(_req(bank=0, row=0, col=0))
        sched.enqueue(_req(bank=0, row=1, col=0))  # conflict
        sched.enqueue(_req(bank=0, row=0, col=1))  # hit for open row
        sched.drain()
        sched.collect_bank_stats()
        # the hit must have been folded in before row 1's conflict
        assert sched.stats.row_hits == 1
        assert sched.stats.row_conflicts == 1

    def test_window_one_is_strict_fifo(self):
        sched = ChannelScheduler(CFG, channel=0, window=1)
        sched.enqueue(_req(row=0))
        sched.enqueue(_req(row=1))
        sched.enqueue(_req(row=0, col=1))
        sched.drain()
        sched.collect_bank_stats()
        assert sched.stats.row_conflicts == 2  # no reordering allowed


class TestWriteTurnaround:
    def test_write_to_read_pays_twtr(self):
        mixed = ChannelScheduler(CFG, channel=0)
        mixed.enqueue(_req(col=0, write=True))
        mixed.enqueue(_req(col=1, write=False))
        mixed_end = mixed.drain()

        reads = ChannelScheduler(CFG, channel=0)
        reads.enqueue(_req(col=0, write=False))
        reads.enqueue(_req(col=1, write=False))
        reads_end = reads.drain()
        assert mixed_end > reads_end
