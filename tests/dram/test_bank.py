"""Tests for the per-bank timing state machine."""

import pytest

from repro.dram.bank import BankState
from repro.dram.config import LPDDR5_6400_TIMINGS as T


class TestFirstAccess:
    def test_miss_pays_trcd(self):
        bank = BankState()
        ready = bank.prepare_column(5, 100.0, T, is_write=False)
        assert ready == pytest.approx(100.0 + T.tRCD)
        assert bank.open_row == 5
        assert bank.row_misses == 1


class TestRowHit:
    def test_hit_is_cheap(self):
        bank = BankState()
        bank.prepare_column(5, 0.0, T, False)
        bank.note_column(T.tRCD, T, False, 2.5)
        ready = bank.prepare_column(5, T.tRCD, T, False)
        assert ready == pytest.approx(T.tRCD + T.tCCD)
        assert bank.row_hits == 1


class TestConflict:
    def test_conflict_pays_full_cycle(self):
        bank = BankState()
        first = bank.prepare_column(5, 0.0, T, False)
        second = bank.prepare_column(9, first, T, False)
        # must wait tRAS after ACT, then tRP, then tRCD
        assert second >= T.tRAS + T.tRP + T.tRCD
        assert bank.row_conflicts == 1
        assert bank.open_row == 9

    def test_back_to_back_rows_respect_trc(self):
        bank = BankState()
        bank.prepare_column(1, 0.0, T, False)
        bank.prepare_column(2, 0.0, T, False)
        assert bank.last_act_ns >= T.tRC  # second ACT at least tRC after first


class TestWriteRecovery:
    def test_write_pushes_precharge(self):
        bank = BankState()
        bank.prepare_column(5, 0.0, T, True)
        bank.note_column(T.tRCD, T, is_write=True, burst_ns=2.5)
        write_recovery = T.tRCD + T.tCWL + 2.5 + T.tWR
        assert bank.next_pre_ns >= write_recovery

    def test_read_uses_rtp(self):
        bank = BankState()
        bank.prepare_column(5, 0.0, T, False)
        pre_before = bank.next_pre_ns
        bank.note_column(T.tRCD, T, is_write=False, burst_ns=2.5)
        assert bank.next_pre_ns >= max(pre_before, T.tRCD + T.tRTP)


class TestStatsAccounting:
    def test_counts_partition_requests(self):
        bank = BankState()
        bank.prepare_column(1, 0.0, T, False)  # miss
        bank.prepare_column(1, 100.0, T, False)  # hit
        bank.prepare_column(2, 200.0, T, False)  # conflict
        assert (bank.row_misses, bank.row_hits, bank.row_conflicts) == (1, 1, 1)
