"""Extension — responsiveness SLOs: TTFT percentiles and budget hit rates.

§III anchors FACIL's motivation in human-perception budgets: responses
under ~100 ms feel instantaneous; voice assistants need TTFT under
~250 ms.  Mean speedups hide the tail, so this bench reports TTFT
percentiles and the fraction of conversation queries meeting each budget
under every policy.
"""

import numpy as np

from repro.engine.runner import dataset_eval
from repro.llm.datasets import ALPACA_LIKE

from report import emit, format_table

INSTANT_MS = 100.0
VOICE_MS = 250.0
N_QUERIES = 150


def test_ext_ttft_slo(benchmark, engines):
    engine = engines["jetson-agx-orin"]

    def run():
        return dataset_eval(engine, ALPACA_LIKE, n_queries=N_QUERIES)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for policy in ("soc-only", "hybrid-static", "hybrid-dynamic", "facil"):
        ttfts_ms = np.asarray(result.ttft_ns[policy]) / 1e6
        rows.append(
            (
                policy,
                f"{np.percentile(ttfts_ms, 50):.0f}",
                f"{np.percentile(ttfts_ms, 95):.0f}",
                f"{np.percentile(ttfts_ms, 99):.0f}",
                f"{np.mean(ttfts_ms < INSTANT_MS) * 100:.0f}%",
                f"{np.mean(ttfts_ms < VOICE_MS) * 100:.0f}%",
            )
        )
    text = format_table(
        ["policy", "p50 ms", "p95 ms", "p99 ms", "<100ms", "<250ms"], rows
    )
    text += (
        "\nbudgets from §III: ~100 ms feels instantaneous; voice assistants "
        "need TTFT <= ~250 ms.  FACIL holds ~105 ms with wide margin; the "
        "static baseline hugs the 250 ms ceiling with no headroom."
    )
    emit("ext_ttft_slo", text)

    facil_ms = np.asarray(result.ttft_ns["facil"]) / 1e6
    static_ms = np.asarray(result.ttft_ns["hybrid-static"]) / 1e6
    # FACIL sits right at the instantaneous threshold with headroom to
    # the voice budget; the static baseline hugs the 250 ms ceiling with
    # no margin at all (one longer prompt or any background load blows it).
    assert np.percentile(facil_ms, 95) < 130
    assert np.percentile(static_ms, 50) > 200
    assert np.mean(facil_ms < VOICE_MS) > 0.95
