"""Shared fixtures for the benchmark harness."""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

import pytest

from repro.engine.policies import InferenceEngine
from repro.platforms.specs import ALL_PLATFORMS


@pytest.fixture(scope="session")
def engines():
    """One calibrated inference engine per evaluated platform."""
    return {platform.name: InferenceEngine(platform) for platform in ALL_PLATFORMS}


@pytest.fixture(scope="session")
def platforms():
    return {platform.name: platform for platform in ALL_PLATFORMS}
