"""Table I — weight load time with huge pages under memory utilization
and fragmentation (Llama3-8B, 16.2 GB).

Rows: FMFI bands {0.0-0.1, 0.4-0.5, 0.7-0.8}; columns: free memory
relative to model size {2.5x, 2.0x, 1.5x, 1.1x}.  Cells report load time
and (normalized-to-baseline) factor; paper baselines: 1.16x-1.20x flat at
low FMFI up to 1.90x in the worst corner.
"""

import pytest

from repro.os.loadsim import simulate_weight_load

from report import emit, format_table

MODEL_BYTES = int(16.2e9)
FMFI_BANDS = ((0.05, "0.0-0.1"), (0.45, "0.4-0.5"), (0.75, "0.7-0.8"))
FREE_RATIOS = (2.5, 2.0, 1.5, 1.1)
PAPER = {
    "0.0-0.1": (1.17, 1.16, 1.16, 1.20),
    "0.4-0.5": (1.16, 1.16, 1.29, 1.41),
    "0.7-0.8": (1.65, 1.72, 1.79, 1.90),
}
SIM_MODEL = 32 << 20


def _sweep():
    table = {}
    for fmfi, label in FMFI_BANDS:
        table[label] = [
            simulate_weight_load(
                MODEL_BYTES, ratio, fmfi, sim_model_bytes=SIM_MODEL
            )
            for ratio in FREE_RATIOS
        ]
    return table


def test_table1_hugepage_load(benchmark):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for fmfi, label in FMFI_BANDS:
        cells = [
            f"{o.seconds:.2f}s ({o.normalized:.2f}x)" for o in table[label]
        ]
        rows.append([f"FMFI {label}"] + cells)
        rows.append(
            ["  paper"]
            + [f"         ({p:.2f}x)" for p in PAPER[label]]
        )
    text = format_table(
        ["", *(f"free {r}x" for r in FREE_RATIOS)], rows
    )
    baseline = simulate_weight_load(MODEL_BYTES, 2.5, 0.05, use_huge_pages=False)
    text += f"\n4KB-page baseline: {baseline.seconds:.2f}s (paper ~8.8s implied)"
    emit("table1_hugepage_load", text)

    # shape assertions
    low = table["0.0-0.1"]
    worst = table["0.7-0.8"][-1]
    assert all(1.05 < o.normalized < 1.35 for o in low)
    assert 1.5 < worst.normalized < 2.4
    # monotone along both axes
    for label in ("0.4-0.5", "0.7-0.8"):
        norms = [o.normalized for o in table[label]]
        assert norms == sorted(norms)
