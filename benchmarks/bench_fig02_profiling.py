"""Fig. 2 — decode-phase profiling on the SoC (Jetson, Llama3-8B).

(a) execution-time breakdown of one decode step: linear (GEMV) vs rest;
(b) compute and memory-bandwidth utilization of the model's GEMV shapes.

Paper reference: >90 % of decode time in linear ops; GEMV compute
utilization below 1 % with memory bandwidth heavily utilized.
"""

from repro.engine.profiling import decode_time_breakdown, gemv_utilization
from repro.platforms.specs import JETSON_ORIN

from report import emit, format_table


def test_fig02a_decode_breakdown(benchmark, engines):
    engine = engines["jetson-agx-orin"]
    breakdown = benchmark(decode_time_breakdown, engine, 64)
    text = format_table(
        ["component", "time (ms)", "share"],
        [
            ("linear (GEMV)", f"{breakdown.linear_ns/1e6:.2f}",
             f"{breakdown.linear_fraction*100:.1f}%"),
            ("attention + other", f"{breakdown.other_ns/1e6:.2f}",
             f"{(1-breakdown.linear_fraction)*100:.1f}%"),
        ],
    )
    text += "\npaper: linear ops >90% of decode time"
    emit("fig02a_decode_breakdown", text)
    assert breakdown.linear_fraction > 0.9


def test_fig02b_gemv_utilization(benchmark, engines):
    engine = engines["jetson-agx-orin"]
    points = benchmark(gemv_utilization, JETSON_ORIN.soc, engine.model)
    rows = [
        (p.name, f"{p.m}x{p.k}", f"{p.compute_utilization*100:.2f}%",
         f"{p.memory_utilization*100:.1f}%")
        for p in points
    ]
    text = format_table(["op", "dims (MxK)", "compute util", "memory BW util"], rows)
    text += "\npaper: compute <1%, memory bandwidth heavily utilized"
    emit("fig02b_gemv_utilization", text)
    assert all(p.compute_utilization < 0.01 for p in points)
