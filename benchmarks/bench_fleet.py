"""Fleet serving: bursty overload across heterogeneous devices, plus the
kill-K chaos campaign.

Two promises are on the line.  Under bursty overload with device losses,
the fleet must keep its conservation law — every offered request reaches
exactly one terminal outcome (served on some device, failed over, or
accounted as shed); none silently lost — while the router's prefix
locality keeps goodput above what shed-everything would deliver.  And
the chaos campaign's audit battery (journal recovery + refcount
reconciliation after every one of 300 seeded device losses, cycling all
KV crash sites) must come back with zero findings.

The kill schedule rides its own RNG stream, so this bench perturbs no
other baseline.
"""

import os
import random

from repro.fleet import (
    BURSTY_OVERLOAD,
    FleetChaosSpec,
    FleetConfig,
    FleetRuntime,
    run_fleet_chaos,
    shaped_workload,
)
from repro.kvcache.pool import KV_CRASH_SITES
from repro.llm.datasets import ALPACA_LIKE
from repro.serving.workload import TenantSpec
from repro.telemetry.bench import BenchResult, hash_config, write_bench_result

from report import emit, format_table

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SEED = 0
DEVICES = 4
DURATION_MS = 4_000.0
QPS = 40.0
DEADLINE_MS = 1_000.0
KILLS = 12
KILL_GAP_MS = 250.0
RECOVERY_MS = 40.0
CAMPAIGN_KILLS = 300


def _overload_run(kills):
    config = FleetConfig(
        n_devices=DEVICES, seed=SEED, shed_policy="drop-oldest",
        recovery_ms=RECOVERY_MS,
    )
    tenant = TenantSpec(
        name="chat", dataset=ALPACA_LIKE, policy="facil", qps=QPS,
        deadline_ms=DEADLINE_MS, mean_turns=3.0,
    )
    requests = shaped_workload(
        [tenant], DURATION_MS, shape=BURSTY_OVERLOAD, seed=SEED
    )
    schedule = []
    if kills:
        rng = random.Random(SEED * 9973 + 65537)
        gap_ns = KILL_GAP_MS * 1e6
        t = gap_ns
        for index in range(kills):
            t += gap_ns * (rng.random() - 0.5)
            schedule.append((t, index % DEVICES))
            t += gap_ns
        schedule.sort()
    return FleetRuntime(config).run(requests, kills=schedule)


def test_fleet_overload_and_chaos(benchmark):
    def run():
        return (
            _overload_run(kills=0),
            _overload_run(kills=KILLS),
            run_fleet_chaos(
                FleetChaosSpec(
                    n_devices=DEVICES, kills=CAMPAIGN_KILLS, seed=SEED
                )
            ),
        )

    healthy, chaotic, campaign = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, report in (("healthy", healthy), ("kill-K", chaotic)):
        d = report.to_dict()
        rows.append(
            (
                label, d["offered"], d["served"], d["shed"], d["unserved"],
                d["failovers"], d["kills"],
                f"{d['goodput_qps']:.2f}",
                f"{d['ttft']['p99_ms']:.0f}",
                str(d["none_lost"]),
            )
        )
    text = format_table(
        ["run", "offered", "served", "shed", "unserved", "failovers",
         "kills", "goodput qps", "TTFT p99", "none lost"],
        rows,
    )
    site_line = ", ".join(
        f"{site}={campaign.crashes_by_site.get(site, 0)}"
        for site in KV_CRASH_SITES
    )
    emit(
        "fleet",
        text + f"\ncampaign: {campaign.kills_applied} kills, "
        f"{len(campaign.audit_findings)} audit findings ({site_line})",
    )

    # conservation law holds with and without device losses
    assert healthy.none_lost and chaotic.none_lost
    assert not healthy.audit_findings and not chaotic.audit_findings
    assert chaotic.kills == KILLS
    # device losses under overload may *raise* served counts (a revived
    # device re-enters idle, and failover re-admission gives shed-bound
    # requests another chance), so gate on liveness, not ordering
    assert healthy.served > 0 and chaotic.served > 0
    assert chaotic.failovers > 0

    # the campaign's own oracles are the verdict
    assert campaign.ok, campaign.failures
    assert campaign.kills_applied == CAMPAIGN_KILLS
    assert not campaign.audit_findings
    for site in KV_CRASH_SITES:
        assert campaign.crashes_by_site.get(site, 0) > 0, site

    config = {
        "seed": SEED, "devices": DEVICES, "duration_ms": DURATION_MS,
        "qps": QPS, "deadline_ms": DEADLINE_MS, "kills": KILLS,
        "kill_gap_ms": KILL_GAP_MS, "recovery_ms": RECOVERY_MS,
        "campaign_kills": CAMPAIGN_KILLS, "shape": "bursty-overload",
    }
    write_bench_result(
        os.path.join(_REPO_ROOT, "BENCH_fleet.json"),
        BenchResult(
            name="fleet",
            seed=SEED,
            config_hash=hash_config(config),
            metrics={
                "healthy_goodput_qps": healthy.goodput_qps,
                "healthy_ttft_p99_ms": healthy.ttft.p99_ns / 1e6,
                "chaotic_goodput_qps": chaotic.goodput_qps,
                "chaotic_ttft_p99_ms": chaotic.ttft.p99_ns / 1e6,
                "chaotic_failovers": float(chaotic.failovers),
                "campaign_kills_applied": float(campaign.kills_applied),
                "campaign_audit_findings": float(
                    len(campaign.audit_findings)
                ),
                "campaign_lost": float(
                    0 if campaign.fleet.none_lost else 1
                ),
            },
            notes="goodput in simulated qps; campaign_* must stay at "
                  "kills=300 applied, 0 findings, 0 lost",
        ),
    )
