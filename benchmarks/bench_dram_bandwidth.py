"""§VI-A verification — sequential read bandwidth under each mapping.

The paper assumes the SoC mapping ``row:rank:column:bank:channel`` and
"verifies it achieves near-peak sequential read bandwidth"; this bench
regenerates that check on our DRAM timing simulator and adds the
counterpart the baseline suffers: a PIM-optimized layout read with
sequential addresses is bank-serial and loses most of the bandwidth.
"""

import numpy as np

from repro.core.controller import MemoryController
from repro.core.mapping import pim_optimized_mapping
from repro.dram.system import DramTimingSimulator
from repro.platforms.specs import JETSON_ORIN

from report import emit, format_table

SAMPLE = 16384


def test_sequential_bandwidth_by_mapping(benchmark):
    org = JETSON_ORIN.dram.org
    controller = MemoryController(org)
    pim_ids = {
        f"aim-map{mid}": controller.table.register(
            pim_optimized_mapping(org, 1, 1024, 2, mid, 21)
        )
        for mid in (0, 1)
    }
    simulator = DramTimingSimulator(JETSON_ORIN.dram)
    pas = np.arange(0, 8 << 20, org.transfer_bytes, dtype=np.int64)

    def run():
        out = {"conventional": simulator.measure_bandwidth(
            controller.translate_array(pas, 0), sample_transfers=SAMPLE)}
        for name, map_id in pim_ids.items():
            out[name] = simulator.measure_bandwidth(
                controller.translate_array(pas, map_id), sample_transfers=SAMPLE
            )
        return out

    bandwidths = benchmark(run)
    peak = org.peak_bandwidth_gbps
    rows = [
        (name, f"{bw:.1f}", f"{bw/peak*100:.0f}%")
        for name, bw in bandwidths.items()
    ]
    text = format_table(["mapping", "seq read GB/s", "% of peak"], rows)
    text += f"\npeak: {peak:.1f} GB/s; paper: conventional mapping reaches near-peak"
    emit("dram_sequential_bandwidth", text)

    assert bandwidths["conventional"] > 0.95 * peak
    for name, map_id in pim_ids.items():
        assert bandwidths[name] < 0.6 * peak
