"""Ablation — is the Fig. 9 selector formula actually optimal?

Brute-force the entire mapping space (every MapID, both PU-bit orders)
for every distinct layer shape of every evaluated platform, price each
candidate with the GEMV timing model plus SoC reduction cost, and compare
the search optimum against the paper's closed-form rule.
"""

from repro.core.optimizer import enumerate_candidates, optimize_mapping
from repro.core.selector import select_mapping
from repro.llm.layers import linear_specs
from repro.llm.model_config import model_by_name

from report import emit, format_table


def test_ablation_selector_optimality(benchmark, platforms):
    def run():
        rows = []
        agree = 0
        total = 0
        for platform in platforms.values():
            model = model_by_name(platform.model_name)
            shapes = {
                (s.out_features, s.in_features): s for s in linear_specs(model)
            }
            for spec in shapes.values():
                matrix = spec.matrix_config()
                selection = select_mapping(
                    matrix, platform.dram.org, platform.pim
                )
                best = optimize_mapping(
                    matrix, platform.dram, platform.pim, platform.soc
                )
                n_candidates = len(
                    enumerate_candidates(
                        matrix, platform.dram, platform.pim, platform.soc
                    )
                )
                total += 1
                match = best.map_id == selection.map_id
                agree += match
                rows.append(
                    (
                        platform.name.split("-")[0],
                        spec.name,
                        f"{matrix.rows}x{matrix.cols}",
                        selection.map_id,
                        best.map_id,
                        n_candidates,
                        "=" if match else "near-tie",
                    )
                )
        return rows, agree, total

    rows, agree, total = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["platform", "layer", "shape", "selector MapID", "search MapID",
         "candidates", ""],
        rows,
    )
    text += (
        f"\nformula == exhaustive search on {agree}/{total} layer shapes; "
        "the exceptions are small matrices where one extra partition level "
        "trades SoC-reduction bytes for fewer global-buffer reloads "
        "(within 5% of each other)"
    )
    emit("ablation_selector_optimality", text)
    assert agree >= total - 2
