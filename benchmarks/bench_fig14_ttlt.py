"""Fig. 14 — TTLT speedup of FACIL over the hybrid-static baseline across
prefill:decode combinations.

Paper: the gain amortizes with decode length but remains ~10 % at decode
lengths up to 64.
"""

from repro.engine.runner import ttlt_speedup_grid

from report import ascii_chart, emit, format_table

PREFILLS = (16, 32, 64, 128)
DECODES = (16, 32, 64, 128, 256)


def test_fig14_ttlt_speedup(benchmark, engines):
    def run():
        return {
            name: ttlt_speedup_grid(engine, PREFILLS, DECODES)
            for name, engine in engines.items()
        }

    results = benchmark(run)
    sections = []
    for name, grid in results.items():
        by_prefill = {}
        for point in grid:
            by_prefill.setdefault(point.prefill, []).append(point)
        rows = [
            [f"P{prefill}"] + [f"{p.ttlt_speedup:.3f}x" for p in points]
            for prefill, points in sorted(by_prefill.items())
        ]
        sections.append(
            f"[{name}]\n"
            + format_table(["", *(f"D{d}" for d in DECODES)], rows)
        )
    text = "\n\n".join(sections)
    text += "\n\n" + ascii_chart(
        {
            name.split("-")[0]: [
                p.ttlt_speedup for p in grid if p.prefill == 64
            ]
            for name, grid in results.items()
        },
        [f"D{d}" for d in DECODES],
        y_label="TTLT speedup at prefill 64 (x)",
    )
    text += "\npaper: ~10% improvement still present at decode length 64"
    emit("fig14_ttlt_speedup", text)

    for name, grid in results.items():
        at_64_64 = next(p for p in grid if p.prefill == 64 and p.decode == 64)
        assert 1.03 < at_64_64.ttlt_speedup < 1.35
        # amortization: fixing prefill, the speedup decays with decode
        series = [p.ttlt_speedup for p in grid if p.prefill == 64]
        assert series[0] > series[-1] > 1.0
