"""Extension — serving workloads: speculative decoding, MoE expert
placement, and two-model co-residency as benched serving runs.

The headline claim is the speculative goodput gate: on the SoC-bound
decode path (``soc-only`` policy) a cheap draft model plus one batched
verify pass must serve tokens at least as fast as token-at-a-time
decode at acceptance 0.8.  On the ``facil`` path PIM decode is already
bandwidth-optimal, so speculation *loses* there — that ratio is
reported as an observation, not gated.

Every workload's conservation counters (KV refcount audit, expert
budget/journal discipline, co-resident mapping-table teardown) must be
zero; the nightly ``workloads`` job holds ``BENCH_workloads.json`` to
those floors through ``report.py diff``.
"""

import os

from repro.engine.policies import InferenceEngine
from repro.platforms.specs import JETSON_ORIN
from repro.serving.runtime import ServingConfig, ServingRuntime
from repro.serving.workload import TenantSpec, poisson_workload
from repro.telemetry.bench import BenchResult, hash_config, write_bench_result
from repro.workloads import (
    CoResidencySpec,
    ExpertPlacementSpec,
    SpeculativeSpec,
)

from report import emit

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SEED = 7
DURATION_MS = 2_000.0


def _requests(policy, qps, secondary_qps=None):
    tenants = [TenantSpec(
        name="chat", policy=policy, qps=qps, deadline_ms=120_000.0,
    )]
    if secondary_qps is not None:
        tenants.append(TenantSpec(
            name="secondary", policy=policy, qps=secondary_qps,
            deadline_ms=120_000.0,
        ))
    return poisson_workload(tenants, duration_ms=DURATION_MS, seed=SEED)


def _config():
    return ServingConfig(
        seed=SEED, queue_capacity=64, shed_policy="drop-oldest"
    )


def _served_tokens(report):
    return sum(o.decode_tokens_served for o in report.outcomes)


def _goodput(report):
    return _served_tokens(report) / (report.duration_ns / 1e9)


def test_workloads(benchmark):
    engine = InferenceEngine(JETSON_ORIN)

    def run():
        out = {}
        # -- speculative: gated pair on the SoC-bound decode path ------
        soc_reqs = _requests("soc-only", qps=3.0)
        out["base_soc"] = ServingRuntime(engine, _config()).run(soc_reqs)
        out["spec_soc"] = ServingRuntime(
            engine, _config(),
            workload=SpeculativeSpec(acceptance_rate=0.8, kv_blocks=2048),
        ).run(soc_reqs)
        # -- speculative on facil: reported observation only -----------
        facil_reqs = _requests("facil", qps=3.0)
        out["base_facil"] = ServingRuntime(engine, _config()).run(facil_reqs)
        out["spec_facil"] = ServingRuntime(
            engine, _config(),
            workload=SpeculativeSpec(acceptance_rate=0.8, kv_blocks=2048),
        ).run(facil_reqs)
        # -- MoE: hit rate must grow with the resident budget ----------
        moe_reqs = _requests("facil", qps=3.0)
        for tag, budget in (("small", 2), ("large", 6)):
            out[f"moe_{tag}"] = ServingRuntime(
                engine, _config(),
                workload=ExpertPlacementSpec(
                    n_experts=8, experts_per_token=2,
                    resident_experts=budget,
                ),
            ).run(moe_reqs)
        # -- co-residency ----------------------------------------------
        out["coresident"] = ServingRuntime(
            engine, _config(), workload=CoResidencySpec(),
        ).run(_requests("facil", qps=2.0, secondary_qps=2.0))
        return out

    runs = benchmark.pedantic(run, rounds=1, iterations=1)

    spec_soc = runs["spec_soc"].workload
    spec_facil = runs["spec_facil"].workload
    moe_small = runs["moe_small"].workload
    moe_large = runs["moe_large"].workload
    cores = runs["coresident"].workload

    goodput_ratio_soc = _goodput(runs["spec_soc"]) / _goodput(runs["base_soc"])
    goodput_ratio_facil = (
        _goodput(runs["spec_facil"]) / _goodput(runs["base_facil"])
    )
    assert goodput_ratio_soc >= 1.0, (
        f"speculative goodput {goodput_ratio_soc:.2f}x must beat the "
        "soc-only baseline at acceptance 0.8"
    )

    conservation = (
        spec_soc["conservation_findings"]
        + spec_facil["conservation_findings"]
        + moe_small["conservation_findings"]
        + moe_large["conservation_findings"]
        + cores["conservation_findings"]
    )
    assert conservation == 0
    assert moe_small["hit_rate"] < moe_large["hit_rate"]

    lines = [
        "workloads bench (jetson-agx-orin, llama3-8b target)",
        f"  speculative goodput ratio  soc-only {goodput_ratio_soc:.3f}x"
        f"  facil {goodput_ratio_facil:.3f}x (observation: PIM decode is"
        " already bandwidth-optimal)",
        f"  speculative acceptance     {spec_soc['mean_acceptance']:.3f}"
        f" over {spec_soc['rounds']} rounds",
        f"  moe hit rate               budget 2: {moe_small['hit_rate']:.3f}"
        f"  budget 6: {moe_large['hit_rate']:.3f}",
        f"  coresident switches        {cores['interference_switches']}"
        f" ({cores['interference_ns'] / 1e6:.1f} ms)",
        f"  conservation findings      {conservation}",
    ]
    emit("workloads", "\n".join(lines))

    config = {
        "platform": "jetson-agx-orin",
        "seed": SEED,
        "duration_ms": DURATION_MS,
        "speculative": {"gamma": 4, "acceptance_rate": 0.8},
        "moe": {"n_experts": 8, "experts_per_token": 2, "budgets": [2, 6]},
        "coresident": {"secondary_model": "phi-1.5", "secondary_share": 0.5},
    }
    write_bench_result(
        os.path.join(_REPO_ROOT, "BENCH_workloads.json"),
        BenchResult(
            name="workloads",
            seed=SEED,
            config_hash=hash_config(config),
            metrics={
                "speculative_goodput_ratio": goodput_ratio_soc,
                "speculative_goodput_ratio_facil": goodput_ratio_facil,
                "speculative_mean_acceptance": spec_soc["mean_acceptance"],
                "speculative_rounds": float(spec_soc["rounds"]),
                "speculative_audit_findings": float(
                    spec_soc["audit_findings"] + spec_facil["audit_findings"]
                ),
                "moe_hit_rate_small": moe_small["hit_rate"],
                "moe_hit_rate_large": moe_large["hit_rate"],
                "moe_evictions_small": float(moe_small["evictions"]),
                "coresident_switches": float(cores["interference_switches"]),
                "coresident_interference_ms": cores["interference_ns"] / 1e6,
                "conservation_findings": float(conservation),
            },
            notes="speculative_goodput_ratio is the gated soc-only pair "
                  "(draft phi-1.5, gamma 4, acceptance 0.8); the facil "
                  "ratio is an ungated observation — PIM GEMV decode is "
                  "already bandwidth-optimal, so speculation pays only "
                  "where decode is SoC-bound",
        ),
    )
