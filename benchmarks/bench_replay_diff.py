"""Extension — the replay-diff oracle over the flagship serving benches.

The repo's determinism contract — same seed, same report, byte for byte
— is what makes every BENCH baseline a regression gate instead of a
snapshot.  The static rules (RL005-RL010) guard it by construction; this
bench checks it *by execution* on the two serving benches whose
baselines the nightly job gates on: the overload bench (Jetson, seed 0,
2x load under the ``reject`` policy) and the adaptive-drift bench
(iPhone, seed 11, active controller migrating mid-trace).  Each runs
twice with periodic state-hash barriers (RNG stream, free timelines,
outcome counts, arena PTEs/journal cursor, metrics); the oracle must
report zero diverging barriers, and the final report hashes must match.
"""

import os

from repro.analysis.replay import replay_diff, state_hash
from repro.llm.datasets import CHAT_TO_LONG_CONTEXT_DRIFT
from repro.serving import (
    ServingConfig,
    ServingRuntime,
    TenantSpec,
    poisson_workload,
    sustainable_qps,
)
from repro.telemetry.bench import BenchResult, hash_config, write_bench_result

from report import emit, format_table

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: one barrier every 16 completed requests — tight enough to localize a
#: divergence to a small window of work, cheap enough to be free
BARRIER_EVERY = 16

OVERLOAD_SEED = 0
OVERLOAD_DURATION_MS = 120_000.0
OVERLOAD_DEADLINE_MS = 30_000.0

DRIFT_SEED = 11
DRIFT_DURATION_MS = 420_000.0
DRIFT_DEADLINE_MS = 15_000.0
DRIFT_QPS = 0.28
ADAPTIVE_KNOBS = dict(
    adaptive_window=16, adaptive_canary_window=8, adaptive_cooldown=32
)


def _overload_case(engines):
    """The overload bench's hottest config: 2x sustainable, reject."""
    engine = engines["jetson-agx-orin"]
    probe = TenantSpec(
        name="probe", policy="facil", deadline_ms=OVERLOAD_DEADLINE_MS
    )
    capacity_qps = sustainable_qps(engine, probe, seed=OVERLOAD_SEED)
    tenant = TenantSpec(
        name="alpaca-like", policy="facil", qps=2.0 * capacity_qps,
        deadline_ms=OVERLOAD_DEADLINE_MS,
    )
    config = ServingConfig(
        seed=OVERLOAD_SEED, queue_capacity=8, shed_policy="reject"
    )

    def run(recorder):
        requests = poisson_workload(
            [tenant], duration_ms=OVERLOAD_DURATION_MS, seed=OVERLOAD_SEED
        )
        return ServingRuntime(engine, config, barriers=recorder).run(requests)

    return run


def _drift_case(engines):
    """The adaptive-drift bench's active run: canary + promotion."""
    from dataclasses import replace

    engine = engines["iphone-15-pro"]
    dataset = replace(
        CHAT_TO_LONG_CONTEXT_DRIFT,
        drift_start_ms=90_000.0, drift_end_ms=150_000.0,
    )
    tenant = TenantSpec(
        name="chat", policy="facil", dataset=dataset,
        qps=DRIFT_QPS, deadline_ms=DRIFT_DEADLINE_MS,
    )
    config = ServingConfig(
        adaptive="active", seed=DRIFT_SEED, **ADAPTIVE_KNOBS
    )

    def run(recorder):
        requests = poisson_workload(
            [tenant], duration_ms=DRIFT_DURATION_MS, seed=DRIFT_SEED
        )
        report = ServingRuntime(engine, config, barriers=recorder).run(requests)
        # the oracle only proves both runs migrate *identically*; make
        # sure they migrate at all, or the arena barriers prove nothing
        assert report.adaptive["promotions"] >= 1
        return report

    return run


def test_replay_diff_flagship_benches(benchmark, engines):
    cases = {
        "overload@2x reject": _overload_case(engines),
        "adaptive-drift active": _drift_case(engines),
    }

    def run():
        return {
            name: replay_diff(
                case, every=BARRIER_EVERY,
                final_hash=lambda r: state_hash(r.to_json()),
            )
            for name, case in cases.items()
        }

    replays = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            name,
            replay.barriers,
            len(replay.findings),
            "OK" if replay.ok else replay.findings[0].rule_id,
            replay.result.served,
            f"{replay.result.goodput_qps:.3f}",
        )
        for name, replay in replays.items()
    ]
    emit(
        "replay_diff",
        format_table(
            ["bench", "barriers", "findings", "verdict", "served",
             "goodput qps"],
            rows,
        ),
    )

    for name, replay in replays.items():
        assert replay.ok, f"{name}: {replay.render()}"
        assert replay.barriers >= 3, f"{name}: too few barriers to mean much"

    config = {
        "barrier_every": BARRIER_EVERY,
        "overload": {
            "seed": OVERLOAD_SEED, "duration_ms": OVERLOAD_DURATION_MS,
            "platform": "jetson-agx-orin", "shed_policy": "reject",
        },
        "drift": {
            "seed": DRIFT_SEED, "duration_ms": DRIFT_DURATION_MS,
            "platform": "iphone-15-pro", "qps": DRIFT_QPS,
            "dataset": CHAT_TO_LONG_CONTEXT_DRIFT.name, **ADAPTIVE_KNOBS,
        },
    }
    write_bench_result(
        os.path.join(_REPO_ROOT, "BENCH_replay.json"),
        BenchResult(
            name="replay_diff",
            seed=OVERLOAD_SEED,
            config_hash=hash_config(config),
            metrics={
                "overload_barriers": float(
                    replays["overload@2x reject"].barriers
                ),
                "drift_barriers": float(
                    replays["adaptive-drift active"].barriers
                ),
                "diverging_barriers": float(
                    sum(len(r.findings) for r in replays.values())
                ),
            },
            notes="nightly gate: diverging_barriers must be exactly 0",
        ),
    )
