"""Extension — adaptive remapping under workload drift: active vs static.

The adaptive controller's promise (see docs/ADAPTIVE.md) is two-sided:
on a *drifting* workload it must recover the goodput a statically
selected mapping leaves on the table, and on a *stationary* workload it
must cost nothing — byte-identical serving outcomes with the controller
watching but never moving.  This bench drives both halves.

The drifting trace is the canonical ``CHAT_TO_LONG_CONTEXT_DRIFT``
tenant: chat prompts (~800 tokens, ideal FACIL MapID 3 — the static
selector's pick) crossfade into long-context document turns (~3000
tokens, ideal MapID 5) with long, decode-heavy answers, so the stale
mapping's PU-crossing penalty lands on the PIM bottleneck.  The static
run carries that penalty for the rest of the trace; the active run
canaries a migration to MapID 5, promotes it, and serves the tail
unpenalized.  The nightly job gates on ``goodput_gain`` from this
suite's BENCH_adaptive.json.
"""

import os
from dataclasses import replace

from repro.engine.policies import InferenceEngine  # noqa: F401 (fixture type)
from repro.llm.datasets import CHAT_TO_LONG_CONTEXT_DRIFT
from repro.serving import ServingConfig, ServingRuntime, TenantSpec, poisson_workload
from repro.telemetry.bench import BenchResult, hash_config, write_bench_result

from report import emit, format_table

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SEED = 11
DURATION_MS = 420_000.0
DRIFT_START_MS = 90_000.0
DRIFT_END_MS = 150_000.0
QPS = 0.28
#: TTFT budget: queue wait + ~3 s long-context SoC prefill fits while the
#: pipeline keeps up; a penalized PIM bottleneck overruns it via backlog
DEADLINE_MS = 15_000.0
ADAPTIVE_KNOBS = dict(
    adaptive_window=16, adaptive_canary_window=8, adaptive_cooldown=32
)


def _workload(duration_ms=DURATION_MS):
    dataset = replace(
        CHAT_TO_LONG_CONTEXT_DRIFT,
        drift_start_ms=DRIFT_START_MS,
        drift_end_ms=DRIFT_END_MS,
    )
    tenant = TenantSpec(
        name="chat", policy="facil", dataset=dataset,
        qps=QPS, deadline_ms=DEADLINE_MS,
    )
    return poisson_workload([tenant], duration_ms=duration_ms, seed=SEED)


def _run(engine, mode, requests):
    config = ServingConfig(adaptive=mode, seed=SEED, **ADAPTIVE_KNOBS)
    return ServingRuntime(engine, config).run(requests)


def test_adaptive_drift(benchmark, engines):
    engine = engines["iphone-15-pro"]
    requests = _workload()
    # stationary slice: pre-drift traffic only, for the no-regret gate
    stationary = [r for r in requests if r.arrival_ns < DRIFT_START_MS * 1e6]

    def run():
        return {
            "static": _run(engine, "static", requests),
            "active": _run(engine, "active", requests),
            "off@stationary": ServingRuntime(
                engine, ServingConfig(seed=SEED)
            ).run(stationary),
            "active@stationary": _run(engine, "active", stationary),
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, report in reports.items():
        d = report.to_dict()
        a = d["adaptive"]
        rows.append(
            (
                name,
                d["offered"],
                d["served"],
                f"{d['goodput_qps']:.4f}",
                f"{d['slo_attainment']:.3f}",
                f"{d['ttft']['p99_ms']:.0f}",
                f"{d['ttlt']['p99_ms']:.0f}",
                "-" if a is None else f"{a['promotions']}/{a['rollbacks']}",
                "-" if a is None else " ".join(str(k) for k in a["page_map_ids"]),
            )
        )
    text = format_table(
        ["run", "offered", "served", "goodput qps", "SLO",
         "TTFT p99", "TTLT p99", "promo/rollback", "final MapIDs"],
        rows,
    )
    emit("adaptive_drift", text)

    static, active = reports["static"], reports["active"]

    # the static selector's mapping goes stale mid-trace but never moves
    assert static.adaptive["migrations_started"] == 0
    assert static.adaptive["page_map_ids"] == [3, 3, 3, 3]
    # the active controller canaries, promotes, and lands on the ideal
    # post-drift mapping with a clean audit trail
    assert active.adaptive["promotions"] >= 1
    assert active.adaptive["rollbacks"] == 0
    assert active.adaptive["page_map_ids"] == [5, 5, 5, 5]
    assert active.adaptive["audit_findings"] == 0
    # ... and it pays off on every serving axis
    assert active.goodput_qps > static.goodput_qps
    assert active.slo_attainment >= static.slo_attainment
    assert active.served >= static.served
    assert active.ttlt.p99_ns <= static.ttlt.p99_ns

    # no-regret gate: on the stationary pre-drift slice the active
    # controller never migrates and the serving outcomes are identical
    # to adaptive="off", byte for byte
    off_s, act_s = reports["off@stationary"], reports["active@stationary"]
    assert act_s.adaptive["migrations_started"] == 0
    d_off, d_act = off_s.to_dict(), act_s.to_dict()
    d_off.pop("adaptive")
    d_act.pop("adaptive")
    assert d_act == d_off

    goodput_gain = active.goodput_qps / static.goodput_qps
    config = {
        "seed": SEED, "duration_ms": DURATION_MS, "qps": QPS,
        "deadline_ms": DEADLINE_MS, "platform": "iphone-15-pro",
        "drift_window_ms": [DRIFT_START_MS, DRIFT_END_MS],
        "dataset": CHAT_TO_LONG_CONTEXT_DRIFT.name,
        **ADAPTIVE_KNOBS,
    }
    write_bench_result(
        os.path.join(_REPO_ROOT, "BENCH_adaptive.json"),
        BenchResult(
            name="adaptive_drift",
            seed=SEED,
            config_hash=hash_config(config),
            metrics={
                "static_goodput_qps": static.goodput_qps,
                "active_goodput_qps": active.goodput_qps,
                "goodput_gain": goodput_gain,
                "static_slo": static.slo_attainment,
                "active_slo": active.slo_attainment,
                "static_ttlt_p99_ms": static.ttlt.p99_ns / 1e6,
                "active_ttlt_p99_ms": active.ttlt.p99_ns / 1e6,
                "active_promotions": float(active.adaptive["promotions"]),
                "active_rollbacks": float(active.adaptive["rollbacks"]),
                "active_audit_findings": float(
                    active.adaptive["audit_findings"]
                ),
            },
            notes="goodput in simulated qps on the drifting trace; the "
                  "nightly regression gate requires goodput_gain >= 1.02 "
                  "and zero rollbacks/audit findings",
        ),
    )
