"""Ablation — PIM device classes on the same memory geometry.

Compares the GEMV latency and effective internal bandwidth of three
near-bank PIM designs for the Llama3 q_proj matrix:

* LPDDR5 AiM-style, the paper's configuration (MAC at half the column
  cadence, rank-serialized passes);
* GDDR6 AiM-style, the taped-out prototype's regime (full column
  cadence, much faster interface clock);
* HBM-PIM-style chunk (8, 128) on the LPDDR5 timings.

This isolates how much of PIM's advantage is architecture (near-bank
parallelism) vs technology (interface speed).
"""

from repro.core.selector import MatrixConfig
from repro.dram.config import DramConfig, GDDR6_16000_TIMINGS, lpddr5_organization
from repro.pim.config import AIM_GDDR6, AIM_LPDDR5, HBM_PIM
from repro.pim.gemv import gemv_latency
from repro.platforms.specs import JETSON_ORIN

from report import emit, format_table

MATRIX = MatrixConfig(4096, 4096)


def test_ablation_pim_device_class(benchmark):
    org = JETSON_ORIN.dram.org
    gddr6 = DramConfig(org, GDDR6_16000_TIMINGS).with_data_rate(16000)

    def run():
        return {
            "AiM / LPDDR5 (paper)": gemv_latency(
                MATRIX, JETSON_ORIN.dram, AIM_LPDDR5
            ),
            "AiM / GDDR6 (prototype)": gemv_latency(MATRIX, gddr6, AIM_GDDR6),
            "HBM-PIM chunk / LPDDR5": gemv_latency(
                MATRIX, JETSON_ORIN.dram, HBM_PIM
            ),
        }

    results = benchmark(run)
    rows = [
        (
            name,
            f"{lat.total_ns / 1e3:.1f}",
            f"{lat.effective_internal_gbps:.0f}",
            f"{lat.effective_internal_gbps / org.peak_bandwidth_gbps:.1f}x",
        )
        for name, lat in results.items()
    ]
    text = format_table(
        ["device", "q_proj GEMV us", "internal GB/s", "vs external peak"], rows
    )
    emit("ablation_pim_device", text)

    lpddr5 = results["AiM / LPDDR5 (paper)"]
    gddr6_lat = results["AiM / GDDR6 (prototype)"]
    # technology: the GDDR6 prototype regime is several times faster
    assert gddr6_lat.total_ns < lpddr5.total_ns / 2
    # architecture: even the slow LPDDR5 device beats the external bus
    assert lpddr5.effective_internal_gbps > 2 * org.peak_bandwidth_gbps
