"""Ablation — huge-page size vs mapping quality.

FACIL assumes 2 MB huge pages.  The page size bounds the per-bank share
(``page / total banks``) and therefore how large a matrix row can stay in
one bank: smaller pages force column-wise partitioning (more SoC
reductions), bigger pages buy headroom.  This sweep shows the mechanism
on the Jetson configuration and why 2 MB is a sensible floor for a
512-bank system.
"""

import pytest

from repro.core.mapping import max_map_id
from repro.core.selector import MatrixConfig, select_mapping
from repro.pim.gemv import gemv_latency
from repro.platforms.specs import JETSON_ORIN

from report import emit, format_table

PAGE_SIZES = (256 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20)
MATRIX = MatrixConfig(4096, 4096)  # Llama3 q_proj


def test_ablation_page_size(benchmark):
    org = JETSON_ORIN.dram.org

    def run():
        rows = []
        for page in PAGE_SIZES:
            label = f"{page >> 10} KB" if page < (1 << 20) else f"{page >> 20} MB"
            try:
                selection = select_mapping(MATRIX, org, JETSON_ORIN.pim, page)
            except ValueError:
                rows.append((label, "-", "infeasible: page smaller than one "
                             "chunk row per bank", "-", "-"))
                continue
            latency = gemv_latency(
                MATRIX, JETSON_ORIN.dram, JETSON_ORIN.pim, page,
                selection=selection,
            )
            rows.append(
                (
                    label,
                    max_map_id(org, page),
                    selection.partitions_per_row,
                    f"{latency.total_ns / 1e3:.1f}",
                    latency.soc_reduce_bytes,
                )
            )
        return rows

    rows = benchmark(run)
    text = format_table(
        ["huge page", "max MapID", "partitions/row (q_proj)",
         "GEMV us", "SoC reduce bytes"],
        rows,
    )
    text += (
        "\nsmaller pages shrink the per-bank share and force partitioning; "
        "512-bank systems need >= 1 MB pages, and 4 MB would keep q_proj "
        "rows whole"
    )
    emit("ablation_page_size", text)

    feasible = [r for r in rows if r[1] != "-"]
    partitions = [r[2] for r in feasible]
    assert partitions == sorted(partitions, reverse=True)  # monotone relief
    assert feasible[-1][2] == 1  # big pages keep rows whole
