"""Extension — INT8 (AWQ-style) quantized deployment.

The paper evaluates FP16, but its Jetson framework (TinyChatEngine) is
built around AWQ quantization.  Quantizing weights to INT8 halves every
byte count in the system: re-layout cost, SoC GEMM memory time, and PIM
MAC streaming all scale down, while the FACIL-vs-baseline structure is
unchanged.
"""

from dataclasses import replace

from repro.engine.policies import InferenceEngine
from repro.engine.runner import ttft_speedup_sweep
from repro.engine.metrics import geomean
from repro.llm.model_config import LLAMA3_8B
from repro.pim.config import AIM_LPDDR5_INT8
from repro.platforms.specs import JETSON_ORIN

from report import emit, format_table


def test_ext_int8_quantization(benchmark):
    int8_model = replace(LLAMA3_8B, name="llama3-8b-int8", dtype_bytes=1)
    int8_platform = replace(JETSON_ORIN, pim=AIM_LPDDR5_INT8)

    def run():
        fp16 = InferenceEngine(JETSON_ORIN)
        int8 = InferenceEngine(int8_platform, model=int8_model)
        out = {}
        for label, engine in (("fp16", fp16), ("int8", int8)):
            q = engine.run_query("facil", 24, 64, dynamic_offload=False)
            static = engine.run_query("hybrid-static", 24, 64)
            out[label] = {
                "weights_gb": engine.model.weight_bytes() / 1e9,
                "ttft_ms": q.ttft_ms,
                "ttlt_ms": q.ttlt_ms,
                "decode_step_ms": engine.pim_decode_step_ns(88) / 1e6,
                "speedup": static.ttft_ns / q.ttft_ns,
                "geomean": geomean(
                    [p.ttft_speedup for p in ttft_speedup_sweep(engine)]
                ),
            }
        return out

    results = benchmark(run)
    rows = [
        (
            label,
            f"{r['weights_gb']:.1f}",
            f"{r['ttft_ms']:.0f}",
            f"{r['ttlt_ms']:.0f}",
            f"{r['decode_step_ms']:.1f}",
            f"{r['speedup']:.2f}x",
            f"{r['geomean']:.2f}x",
        )
        for label, r in results.items()
    ]
    text = format_table(
        ["precision", "weights GB", "FACIL TTFT ms", "FACIL TTLT ms",
         "decode step ms", "TTFT speedup", "Fig13 geomean"],
        rows,
    )
    text += "\nquantization halves every byte count; the FACIL advantage persists"
    emit("ext_quantization", text)

    fp16, int8 = results["fp16"], results["int8"]
    assert int8["ttft_ms"] < 0.7 * fp16["ttft_ms"]
    assert int8["decode_step_ms"] < 0.7 * fp16["decode_step_ms"]
    assert int8["speedup"] > 1.5  # FACIL still wins at INT8
