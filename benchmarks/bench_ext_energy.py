"""Extension — DRAM-side energy per query across policies.

The paper evaluates latency; on battery-powered devices the same
eliminations matter for energy: FACIL removes the re-layout's full
read+write of every matrix each query, and PIM decode keeps weight
traffic inside the die (array + MAC energy, no external I/O).
"""

from repro.engine.energy import query_energy
from repro.engine.policies import POLICIES

from report import emit, format_table

PREFILL, DECODE = 24, 64


def test_ext_energy_per_query(benchmark, engines):
    engine = engines["jetson-agx-orin"]

    def run():
        return {p: query_energy(engine, p, PREFILL, DECODE) for p in POLICIES}

    results = benchmark(run)
    rows = [
        (
            p,
            f"{e.prefill_mj:.0f}",
            f"{e.relayout_mj:.0f}",
            f"{e.decode_mj:.0f}",
            f"{e.total_mj:.0f}",
        )
        for p, e in results.items()
    ]
    text = format_table(
        ["policy", "prefill mJ", "re-layout mJ", "decode mJ", "total mJ"], rows
    )
    facil = results["facil"]
    static = results["hybrid-static"]
    soc = results["soc-only"]
    text += (
        f"\nFACIL saves {static.total_mj - facil.total_mj:.0f} mJ/query vs the "
        f"static baseline (the re-layout) and "
        f"{soc.total_mj - facil.total_mj:.0f} mJ vs SoC-only "
        "(weights never cross the bus during decode)"
    )
    emit("ext_energy_per_query", text)

    assert facil.total_mj < static.total_mj < soc.total_mj
    assert facil.relayout_mj == 0.0
    assert static.relayout_mj > 0.0
