"""Fig. 3 — potential speedup of offloading decode GEMV to AiM-style PIM
(Jetson, Llama3-8B, input = output = 64).

Comparators: the SoC GPU, SoC+PIM, and the hypothetical ideal NPU
(infinite FLOPS, 100 % of peak memory bandwidth).  Paper: PIM achieves
3.32x over the ideal NPU.
"""

from repro.engine.profiling import pim_offload_speedup
from repro.platforms.specs import JETSON_ORIN

from report import emit, format_table


def test_fig03_pim_offload_speedup(benchmark):
    result = benchmark(pim_offload_speedup, JETSON_ORIN, None, 64)
    rows = [
        ("SoC GPU", f"{result.soc_step_ns/1e6:.2f}", "1.00x"),
        ("ideal NPU", f"{result.ideal_npu_step_ns/1e6:.2f}",
         f"{result.npu_vs_soc:.2f}x"),
        ("SoC + PIM", f"{result.pim_step_ns/1e6:.2f}",
         f"{result.pim_vs_soc:.2f}x"),
    ]
    text = format_table(["decode executor", "step latency (ms)", "speedup vs SoC"], rows)
    text += (
        f"\nPIM over ideal NPU: {result.pim_vs_ideal_npu:.2f}x"
        "   (paper: 3.32x)"
    )
    emit("fig03_pim_potential", text)
    assert result.pim_vs_ideal_npu > 2.0
