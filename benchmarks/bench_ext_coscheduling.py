"""Extension (§V-C "Remaining Challenges") — SoC/PIM memory co-scheduling.

The paper leaves open how PIM and non-PIM requests should share the
memory system and points at two mitigations from prior work: PIM-aware
request scheduling and NeuPIMs-style dual row buffers.  This bench runs
both: an SoC read stream (bus traffic, conventional mapping) and a PIM
MAC column stream (bus-free, PIM mapping) arrive open-loop at fixed
offered load; per-request mean latency measures the interference.

Finding: dual row buffers are the effective mitigation (each stream keeps
its own rows open; conflicts drop ~70%, PIM latency ~3x better, SoC
latency improves too), while tag-priority scheduling is neutral in this
regime — consistent with NeuPIMs proposing the buffer, not a scheduler.
"""

from repro.core.controller import MemoryController
from repro.core.mapping import pim_optimized_mapping
from repro.dram.contention import cosched_experiment
from repro.platforms.specs import JETSON_ORIN

from report import emit, format_table


def test_ext_cosched_mitigations(benchmark):
    org = JETSON_ORIN.dram.org
    controller = MemoryController(org)
    map_id = controller.table.register(
        pim_optimized_mapping(org, 1, 1024, 2, 1, 21)
    )

    def run():
        out = {}
        for bufs in (1, 2):
            for priority in ("", "soc"):
                out[(bufs, priority or "fair")] = cosched_experiment(
                    JETSON_ORIN.dram, map_id, controller,
                    n_transfers=8192, n_row_buffers=bufs,
                    priority_tag=priority,
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            bufs,
            priority,
            f"{r.soc_mean_latency_ns:.0f}",
            f"{r.pim_mean_latency_ns:.0f}",
            r.row_conflicts_shared,
        )
        for (bufs, priority), r in results.items()
    ]
    text = format_table(
        ["row buffers", "policy", "SoC mean latency ns",
         "PIM mean latency ns", "row conflicts"],
        rows,
    )
    single = results[(1, "fair")]
    dual = results[(2, "fair")]
    text += (
        f"\ndual row buffers: conflicts {single.row_conflicts_shared} -> "
        f"{dual.row_conflicts_shared}, PIM latency "
        f"{single.pim_mean_latency_ns / dual.pim_mean_latency_ns:.1f}x better; "
        "priority scheduling is neutral here"
    )
    emit("ext_coscheduling", text)

    assert dual.row_conflicts_shared < single.row_conflicts_shared
    assert dual.pim_mean_latency_ns < 0.6 * single.pim_mean_latency_ns
    assert dual.soc_mean_latency_ns <= single.soc_mean_latency_ns * 1.05
