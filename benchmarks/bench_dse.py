"""Extension — design-space exploration: the default sweep as a bench.

Runs the stock 128-point grid (4 platforms x 4 mapping families x
2 shed policies x 2 KV pool sizes x 2 workload shapes) twice — once on
a single worker, once on four — and holds the DSE subsystem to its two
contracts:

* **order independence** — the two reports serialize byte-identically:
  worker count and completion order never leak into the output;
* **standalone reproducibility** — every frontier point, re-evaluated
  solo from just its config + derived seed (what the printed
  ``repro-facil dse --only`` command does), returns the same
  ``config_hash`` and bit-equal metrics.

``BENCH_dse.json`` summarizes the frontier so the nightly ``dse`` job
can gate regressions through ``report.py diff`` against the committed
baseline.
"""

import json
import os

from repro.dse import default_sweep, pareto_report, run_sweep
from repro.dse.evaluate import evaluate_point
from repro.telemetry.bench import BenchResult, hash_config, write_bench_result

from report import emit

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SEED = 0


def test_dse_default_sweep(benchmark):
    spec = default_sweep(seed=SEED)
    assert spec.n_points >= 48

    def run():
        return run_sweep(spec, workers=1), run_sweep(spec, workers=4)

    serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)

    report_serial = pareto_report(serial)
    report_parallel = pareto_report(parallel)
    workers_identical = report_serial.to_json() == report_parallel.to_json()
    assert workers_identical, "worker count leaked into the sweep report"

    # every frontier point must reproduce standalone from config + seed
    repro_identical = True
    for entry in report_serial.frontier:
        point = entry.point
        solo = evaluate_point(point.config, point.seed)
        if hash_config(point.config) != point.config_hash:
            repro_identical = False
        if json.dumps(solo, sort_keys=True) != json.dumps(
            point.metrics, sort_keys=True
        ):
            repro_identical = False
    assert repro_identical, "a frontier point failed its solo repro"

    frontier = report_serial.frontier
    assert frontier, "default sweep produced an empty frontier"
    best_goodput = max(e.point.metrics["goodput_qps"] for e in frontier)
    min_p99 = min(e.point.metrics["ttft_p99_ms"] for e in frontier)

    emit("dse", report_serial.render())

    config = spec.spec_config()
    write_bench_result(
        os.path.join(_REPO_ROOT, "BENCH_dse.json"),
        BenchResult(
            name="dse_default_sweep",
            seed=SEED,
            config_hash=hash_config(config),
            metrics={
                "n_points": float(len(serial.points)),
                "frontier_size": float(len(frontier)),
                "frontier_best_goodput_qps": best_goodput,
                "frontier_min_ttft_p99_ms": min_p99,
                "workers_identical": 1.0 if workers_identical else 0.0,
                "repro_identical": 1.0 if repro_identical else 0.0,
            },
            notes="default 128-point sweep; workers_identical asserts the "
                  "workers=1 and workers=4 reports are byte-identical, "
                  "repro_identical that every frontier point reproduces "
                  "standalone from config_hash + seed",
        ),
    )
