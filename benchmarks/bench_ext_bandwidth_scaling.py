"""Extension — does FACIL still matter on future memory generations?

Scales the Jetson configuration's data rate from LPDDR5-6400 through
hypothetical LPDDR6-class speeds.  Two opposing forces: faster memory
shrinks both the re-layout cost and the memory-bound GEMM floor (ratio
roughly constant), but it also lowers the roofline ridge point, pushing
prefill compute-bound sooner — which *shrinks* the baseline's re-layout
share at long prefills.  The sweep quantifies the net effect.
"""

from dataclasses import replace

from repro.engine.metrics import geomean
from repro.engine.policies import InferenceEngine
from repro.engine.runner import ttft_speedup_sweep
from repro.platforms.specs import JETSON_ORIN

from report import emit, format_table

DATA_RATES = (6400, 8533, 10700, 14400)


def test_ext_bandwidth_scaling(benchmark):
    def run():
        out = {}
        for rate in DATA_RATES:
            dram = JETSON_ORIN.dram.with_data_rate(rate)
            soc = replace(
                JETSON_ORIN.soc, peak_bw_gbps=dram.org.peak_bandwidth_gbps
            )
            platform = replace(JETSON_ORIN, dram=dram, soc=soc)
            engine = InferenceEngine(platform)
            points = ttft_speedup_sweep(engine)
            query = engine.run_query("facil", 24, 64, dynamic_offload=False)
            out[rate] = {
                "peak_gbps": dram.org.peak_bandwidth_gbps,
                "ridge": soc.ridge_point_flop_per_byte,
                "geomean": geomean([p.ttft_speedup for p in points]),
                "p128": points[-1].ttft_speedup,
                "facil_ttft_ms": query.ttft_ms,
                "decode_step_ms": engine.pim_decode_step_ns(88) / 1e6,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            f"LPDDR-{rate}",
            f"{r['peak_gbps']:.0f}",
            f"{r['ridge']:.0f}",
            f"{r['geomean']:.2f}x",
            f"{r['p128']:.2f}x",
            f"{r['facil_ttft_ms']:.0f}",
            f"{r['decode_step_ms']:.1f}",
        )
        for rate, r in results.items()
    ]
    text = format_table(
        ["memory", "peak GB/s", "ridge pt", "Fig13 geomean", "@P128",
         "FACIL TTFT ms", "PIM decode ms"],
        rows,
    )
    text += (
        "\nthe re-layout tax and the memory-bound GEMM floor scale together: "
        "FACIL's short-prefill advantage persists across memory generations, "
        "while the long-prefill tail decays as the ridge point drops"
    )
    emit("ext_bandwidth_scaling", text)

    base = results[6400]
    fastest = results[14400]
    # short-prefill advantage persists (geomean stays > 2x)
    assert fastest["geomean"] > 2.0
    # absolute latencies improve with bandwidth, for FACIL too
    assert fastest["facil_ttft_ms"] < base["facil_ttft_ms"]
    # long-prefill advantage decays as prefill turns compute-bound sooner
    assert fastest["p128"] <= base["p128"] + 1e-9
