"""Extension — paged KV cache under memory pressure.

The KV scheduler's promise mirrors the overload bench's: a pool sized
well under the workload's KV demand saturates *gracefully* — occupancy
stays bounded at the pool size, sequences are preempted or their cached
prefixes evicted (never corrupted), and prefix sharing keeps multi-turn
prefills cheap.  This bench probes the workload's unconstrained KV
footprint first, then replays the same seeded multi-turn stream against
a pool sized at half that demand, with prefix sharing on and off.
"""

import os

from repro.serving import (
    ServingConfig,
    ServingRuntime,
    TenantSpec,
    poisson_workload,
)
from repro.telemetry.bench import BenchResult, hash_config, write_bench_result

from report import emit, format_table

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SEED = 0
DURATION_MS = 60_000.0
DEADLINE_MS = 60_000.0
BLOCK_TOKENS = 16


def _requests():
    tenant = TenantSpec(
        name="assistant", policy="facil", qps=0.6, deadline_ms=DEADLINE_MS,
        mean_turns=3.0, think_time_ms=500.0,
    )
    return poisson_workload([tenant], duration_ms=DURATION_MS, seed=SEED)


def _run(engine, requests, kv_blocks, prefix_sharing=True):
    config = ServingConfig(
        seed=SEED, queue_capacity=32, kv_blocks=kv_blocks,
        block_tokens=BLOCK_TOKENS, prefix_sharing=prefix_sharing,
    )
    return ServingRuntime(engine, config).run(requests)


def test_kvcache_pressure(benchmark, engines):
    engine = engines["jetson-agx-orin"]
    requests = _requests()

    def run():
        # probe: a pool large enough to never evict measures true demand
        probe = _run(engine, requests, kv_blocks=4096)
        peak = probe.kv["occupancy_peak"]
        bounded = max(8, peak // 2)  # the pool at ~2x demand-to-capacity
        return {
            "unconstrained": probe,
            "bounded": _run(engine, requests, kv_blocks=bounded),
            "bounded, no sharing": _run(
                engine, requests, kv_blocks=bounded, prefix_sharing=False
            ),
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, report in reports.items():
        kv = report.kv
        rows.append(
            (
                label,
                kv["num_blocks"],
                kv["occupancy_peak"],
                kv["evictions"],
                kv["preemptions"],
                kv["kv_rejections"],
                f"{kv['prefix_hit_rate']:.3f}",
                kv["prefill_tokens_saved"],
                report.served,
                report.unserved,
            )
        )
    text = format_table(
        ["pool", "blocks", "peak", "evicted", "preempted", "rejected",
         "hit rate", "tokens saved", "served", "unserved"],
        rows,
    )
    emit("kvcache_pressure", text)

    probe = reports["unconstrained"]
    bounded = reports["bounded"]
    cold = reports["bounded, no sharing"]

    # the probe pool never ran out: its peak is the workload's demand
    assert probe.kv["evictions"] == 0 and probe.kv["preemptions"] == 0
    demand = probe.kv["occupancy_peak"]
    assert demand > 16

    # graceful pressure: occupancy bounded at the pool size, the excess
    # absorbed by eviction/preemption/clipping — and zero corruption
    assert bounded.kv["num_blocks"] <= demand // 2 + 8
    assert bounded.kv["occupancy_peak"] <= bounded.kv["num_blocks"]
    assert (
        bounded.kv["evictions"] + bounded.kv["preemptions"]
        + bounded.kv["kv_clipped"] + bounded.kv["kv_rejections"] > 0
    )
    for report in reports.values():
        assert report.kv["audit_failures"] == []
        assert report.offered == len(requests)

    # prefix sharing pays even under pressure: hits > 0, and the shared
    # run never serves fewer requests than the cold one
    assert bounded.kv["prefix_hit_rate"] > 0.0
    assert bounded.kv["prefill_tokens_saved"] > 0
    assert cold.kv["prefill_tokens_saved"] == 0
    assert bounded.served >= cold.served

    config = {
        "seed": SEED, "duration_ms": DURATION_MS,
        "deadline_ms": DEADLINE_MS, "block_tokens": BLOCK_TOKENS,
        "platform": "jetson-agx-orin", "probe_blocks": 4096,
    }
    write_bench_result(
        os.path.join(_REPO_ROOT, "BENCH_kvcache.json"),
        BenchResult(
            name="kvcache_pressure",
            seed=SEED,
            config_hash=hash_config(config),
            metrics={
                "kv_demand_blocks": float(demand),
                "bounded_pool_blocks": float(bounded.kv["num_blocks"]),
                "bounded_served": float(bounded.served),
                "bounded_prefix_hit_rate": bounded.kv["prefix_hit_rate"],
                "bounded_prefill_tokens_saved": float(
                    bounded.kv["prefill_tokens_saved"]
                ),
                "cold_served": float(cold.served),
            },
            notes="pool bounded at half the probed KV demand; sharing on "
                  "vs off on the same seeded multi-turn stream",
        ),
    )
