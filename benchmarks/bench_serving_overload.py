"""Extension — serving under overload: shed policies at 2x sustainable load.

The serving runtime's promise is *graceful* saturation: queue occupancy
stays bounded at capacity, every admitted request is either served
within its TTFT budget or shed by an explicit decision, and the SLO
report is machine-readable.  This bench drives a Poisson stream at 2x
the measured sustainable rate through each shed policy and tabulates
goodput, shed rate, SLO attainment, and served-tail latency; a 0.5x
baseline run anchors what "healthy" looks like.
"""

import os

from repro.serving import (
    ServingConfig,
    ServingRuntime,
    TenantSpec,
    poisson_workload,
    sustainable_qps,
)
from repro.serving.queue import SHED_POLICIES
from repro.telemetry import Telemetry
from repro.telemetry.bench import BenchResult, hash_config, write_bench_result

from report import emit, format_table

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SEED = 0
DURATION_MS = 120_000.0
#: TTFT budget sized to the queue bound: ~2 s mean bottleneck service
#: per request (sustainable_qps ~0.49 on Jetson) times a full queue of
#: 8 fits inside 30 s, so an admitted request can always be served in
#: budget — overload shows up as shedding, never as broken promises
DEADLINE_MS = 30_000.0
QUEUE_CAPACITY = 8


def _run(engine, load, shed_policy, capacity_qps, telemetry=None):
    tenant = TenantSpec(
        name="alpaca-like", policy="facil", qps=load * capacity_qps,
        deadline_ms=DEADLINE_MS,
    )
    requests = poisson_workload([tenant], duration_ms=DURATION_MS, seed=SEED)
    config = ServingConfig(
        seed=SEED, queue_capacity=QUEUE_CAPACITY, shed_policy=shed_policy
    )
    return ServingRuntime(engine, config, telemetry=telemetry).run(requests)


def test_overload_shed_policies(benchmark, engines):
    engine = engines["jetson-agx-orin"]
    probe = TenantSpec(name="probe", policy="facil", deadline_ms=DEADLINE_MS)
    capacity_qps = sustainable_qps(engine, probe, seed=SEED)

    def run():
        reports = {("baseline", "reject"): _run(engine, 0.5, "reject", capacity_qps)}
        for policy in SHED_POLICIES:
            reports[("2x overload", policy)] = _run(
                engine, 2.0, policy, capacity_qps
            )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (load, policy), report in reports.items():
        d = report.to_dict()
        rows.append(
            (
                load,
                policy,
                d["offered"],
                d["served"],
                d["served_degraded"],
                f"{d['shed_rate']:.2f}",
                f"{d['slo_attainment']:.2f}",
                f"{d['goodput_qps']:.2f}",
                f"{d['ttft']['p50_ms']:.0f}",
                f"{d['ttft']['p99_ms']:.0f}",
                f"{d['ttlt']['p99_ms']:.0f}",
                d["queue"]["peak_occupancy"],
            )
        )
    text = format_table(
        ["load", "shed policy", "offered", "served", "degraded", "shed",
         "SLO", "goodput qps", "TTFT p50", "TTFT p99", "TTLT p99", "peak Q"],
        rows,
    )
    emit("serving_overload", text)

    baseline = reports[("baseline", "reject")]
    assert baseline.unserved == 0
    assert baseline.slo_attainment > 0.9

    for policy in SHED_POLICIES:
        report = reports[("2x overload", policy)]
        # graceful saturation: backpressure bounded, no broken promises,
        # and every *served* request met its TTFT budget (the runtime
        # sheds instead of serving late)
        assert report.queue_stats.peak_occupancy <= QUEUE_CAPACITY
        assert report.unserved == 0
        assert report.shed_rate > 0.1
        served = [o for o in report.outcomes if o.served]
        assert served
        assert max(o.ttft_ns for o in served) <= DEADLINE_MS * 1e6

    # degrade keeps more requests flowing than plain rejection
    degrade = reports[("2x overload", "degrade")]
    assert degrade.served_degraded > 0

    # telemetry overhead gate: spans + metrics on a full-rate traced
    # rerun of the hottest config must leave simulated throughput
    # within 5% — telemetry consumes no randomness and advances no
    # clocks, so the reports should in fact be byte-identical
    baseline = reports[("2x overload", "reject")]
    telemetry = Telemetry(sample_every=1)
    traced = _run(engine, 2.0, "reject", capacity_qps, telemetry)
    assert traced.to_json() == baseline.to_json()
    overhead = abs(traced.goodput_qps - baseline.goodput_qps) / max(
        baseline.goodput_qps, 1e-9
    )
    assert overhead <= 0.05
    assert telemetry.tracer.spans_by_layer()["dram"] > 0

    config = {
        "seed": SEED, "duration_ms": DURATION_MS,
        "deadline_ms": DEADLINE_MS, "queue_capacity": QUEUE_CAPACITY,
        "platform": "jetson-agx-orin", "loads": ["0.5", "2.0"],
        "shed_policies": list(SHED_POLICIES),
    }
    write_bench_result(
        os.path.join(_REPO_ROOT, "BENCH_serving.json"),
        BenchResult(
            name="serving_overload",
            seed=SEED,
            config_hash=hash_config(config),
            metrics={
                "baseline_goodput_qps": reports[
                    ("baseline", "reject")
                ].goodput_qps,
                "overload_reject_goodput_qps": baseline.goodput_qps,
                "overload_degrade_goodput_qps": degrade.goodput_qps,
                "overload_degrade_slo": degrade.slo_attainment,
                "overload_reject_shed_rate": baseline.shed_rate,
                "telemetry_goodput_delta": overhead,
            },
            notes="goodput in simulated qps; telemetry_goodput_delta is "
                  "the traced-rerun overhead gate (<= 0.05)",
        ),
    )
