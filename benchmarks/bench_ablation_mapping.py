"""Ablations on the design choices DESIGN.md calls out.

1. **MapID choice** — GEMV latency with the selector's MapID vs forcing
   other MapIDs for the same matrix (wrong MapIDs split rows across more
   PUs, adding SoC reduction traffic, or waste the global buffer).
2. **PU-bit order under partitioning** — channel-first (FACIL) keeps one
   input segment per rank-group; bank-first violates lock-step sharing.
3. **Output-register pressure** — GB reload count vs accumulator count.
4. **Rank-serialized vs idealized rank-parallel MAC execution** — the
   LPDDR5 calibration's impact on GEMV latency.
"""

import numpy as np
import pytest

from repro.core.mapping import Field, pim_optimized_mapping
from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig, select_mapping
from repro.dram.config import DramConfig, DramOrganization, LPDDR5_6400_TIMINGS
from repro.pim.chunk import enumerate_placements, verify_placement_invariants
from repro.pim.config import AIM_LPDDR5
from repro.pim.gemv import gemv_latency
from repro.platforms.specs import JETSON_ORIN

from report import emit, format_table

MEDIUM_ORG = DramOrganization(
    n_channels=4, ranks_per_channel=2, banks_per_rank=16,
    rows_per_bank=512, row_bytes=2048, transfer_bytes=32,
)


def test_ablation_map_id_choice(benchmark):
    """Selector MapID vs alternatives for Llama3 q_proj on Jetson."""
    matrix = MatrixConfig(4096, 4096)
    org = JETSON_ORIN.dram.org
    selection = select_mapping(matrix, org, AIM_LPDDR5)

    def run():
        rows = []
        for map_id in range(0, 2):
            from dataclasses import replace

            forced = replace(
                selection,
                map_id=map_id,
                partitions_per_row=max(
                    1, selection.padded_row_bytes // (2048 << map_id)
                ),
            )
            lat = gemv_latency(
                matrix, JETSON_ORIN.dram, AIM_LPDDR5, selection=forced
            )
            marker = " <- selector" if map_id == selection.map_id else ""
            rows.append(
                (map_id, forced.partitions_per_row,
                 f"{lat.total_ns/1e3:.1f}",
                 lat.soc_reduce_bytes, marker)
            )
        return rows

    rows = benchmark(run)
    text = format_table(
        ["MapID", "partitions/row", "GEMV us", "SoC reduce bytes", ""], rows
    )
    emit("ablation_map_id", text)
    selector_row = next(r for r in rows if r[4])
    # the selector's choice minimizes SoC reduction traffic
    assert selector_row[3] == min(r[3] for r in rows)


def test_ablation_pu_order_partitioned(benchmark):
    """Bank-first PU bits under partitioning break the lock-step
    invariant; FACIL's channel-first order preserves it."""
    system = PimSystem.build(MEDIUM_ORG, AIM_LPDDR5)
    matrix = MatrixConfig(rows=16, cols=16384)  # partitioned on this org

    tensor = system.pimalloc(matrix)
    tensor.store(np.zeros((16, 16384), dtype=np.float16))

    def check_good():
        segments = enumerate_placements(tensor)
        verify_placement_invariants(segments, tensor)
        return len(segments)

    n_segments = benchmark(check_good)
    assert n_segments == 16 * (16384 // 1024)

    # Forge the bank-first variant and show the invariant fails.
    bad_mapping = pim_optimized_mapping(
        MEDIUM_ORG, 1, 1024, 2, tensor.selection.map_id, 21,
        pu_order=(Field.BANK, Field.RANK, Field.CHANNEL),
    )
    system.controller.table._entries[tensor.map_id] = bad_mapping
    with pytest.raises(AssertionError, match="lock-step"):
        verify_placement_invariants(enumerate_placements(tensor), tensor)
    emit(
        "ablation_pu_order",
        "channel-first PU bits under partitioning: lock-step invariant holds\n"
        "bank-first PU bits under partitioning: lock-step VIOLATION "
        "(banks of one rank would need different global-buffer segments)",
    )


def test_ablation_out_registers(benchmark):
    """Fewer MAC accumulators force more global-buffer reload passes."""
    matrix = MatrixConfig(14336, 4096)

    def run():
        return [
            (regs, gemv_latency(
                matrix, JETSON_ORIN.dram, AIM_LPDDR5, out_regs_per_pu=regs
            ))
            for regs in (1, 4, 16, 64)
        ]

    results = benchmark(run)
    rows = [
        (regs, lat.gb_loads_per_rank, f"{lat.gb_load_ns/1e3:.2f}",
         f"{lat.total_ns/1e3:.1f}")
        for regs, lat in results
    ]
    text = format_table(
        ["out regs/PU", "GB loads/rank", "GB time us", "GEMV us"], rows
    )
    emit("ablation_out_registers", text)
    loads = [lat.gb_loads_per_rank for _, lat in results]
    assert loads == sorted(loads, reverse=True)


def test_ablation_rank_serialization(benchmark):
    """The LPDDR5 calibration: rank-serialized all-bank MACs roughly
    double GEMV latency vs an idealized rank-parallel device."""
    matrix = MatrixConfig(4096, 4096)
    serialized = gemv_latency(matrix, JETSON_ORIN.dram, AIM_LPDDR5)

    single_rank_org = DramOrganization(
        n_channels=JETSON_ORIN.dram.org.n_channels,
        ranks_per_channel=1,
        banks_per_rank=32,  # same PU count, no rank sharing
        rows_per_bank=JETSON_ORIN.dram.org.rows_per_bank,
    )
    ideal = benchmark(
        gemv_latency, matrix,
        DramConfig(single_rank_org, LPDDR5_6400_TIMINGS), AIM_LPDDR5,
    )
    rows = [
        ("2 ranks/channel (serialized)", f"{serialized.mac_ns/1e3:.1f}"),
        ("1 rank/channel (same PU count)", f"{ideal.mac_ns/1e3:.1f}"),
    ]
    text = format_table(["configuration", "MAC time us"], rows)
    emit("ablation_rank_serialization", text)
    assert serialized.mac_ns > 1.5 * ideal.mac_ns
