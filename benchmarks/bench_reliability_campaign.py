"""Extension — reliability: chaos campaigns across fault rates.

Sweeps the transient-flip rate (plus uncorrectable doubles and a
permanent PIM-unit failure at the highest point) through seeded chaos
campaigns on the functional FACIL stack, and reports how each fault
budget lands: ECC corrections, detected-and-recovered faults, silent
corruptions (the bar: zero, always), availability, and the latency cost
of degraded service.
"""

from repro.engine.policies import InferenceEngine
from repro.platforms.specs import IPHONE_15_PRO
from repro.reliability.campaign import CampaignSpec, run_campaign
from repro.reliability.degrade import ResilientEngine

from report import emit, format_table

N_QUERIES = 15
SEED = 0

#: (label, flip rate, double-flip probability, PU-failure query index)
POINTS = (
    ("clean", 0.0, 0.0, None),
    ("flips 0.5/q", 0.5, 0.0, None),
    ("flips 2/q", 2.0, 0.0, None),
    ("+doubles", 2.0, 0.4, None),
    ("+PU failure", 2.0, 0.4, 8),
)


def test_reliability_campaign_sweep(benchmark):
    engine = InferenceEngine(IPHONE_15_PRO)

    def run():
        reports = []
        for label, flip, double, pu_at in POINTS:
            spec = CampaignSpec(
                seed=SEED,
                n_queries=N_QUERIES,
                flip_rate=flip,
                double_flip_rate=double,
                pu_fail_at=pu_at,
            )
            reports.append((label, run_campaign(spec, ResilientEngine(engine))))
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, r in reports:
        rows.append(
            (
                label,
                str(r.total_injected),
                str(r.corrected),
                str(r.detected),
                str(r.silent),
                f"{r.availability * 100:.0f}%",
                f"{r.p99_ttlt_ns / 1e6:.0f}",
                f"{r.mean_degradation_ns / 1e6:.1f}",
            )
        )
    text = format_table(
        [
            "campaign", "injected", "corrected", "detected", "silent",
            "avail", "p99 ms", "degr ms",
        ],
        rows,
    )
    text += (
        "\nevery fault is corrected (SECDED ECC), detected-and-recovered "
        "(retry / repair / flush), or served degraded (SoC fallback) — "
        "silent corruptions stay at zero and availability at 100% even "
        "with a dead PIM unit, which costs the 'degr' column's latency."
    )
    emit("reliability_campaign", text)

    for label, r in reports:
        assert r.silent == 0, label
        assert r.availability == 1.0, label
    # The PU-failure point actually pays for its resilience.
    assert reports[-1][1].mean_degradation_ns > 0
