"""Fig. 16 — normalized TTLT speedup on the dataset traces.

Paper: ~1.20x TTLT over the static baseline on both datasets, and
3.55x / 3.58x over SoC-only inference (which collapses during the
memory-bound decode phase).
"""

import pytest

from repro.engine.metrics import geomean
from repro.engine.runner import dataset_eval
from repro.llm.datasets import ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE

from report import emit, format_table

PAPER_VS_SOC = {"alpaca-like": 3.55, "humaneval-autocomplete-like": 3.58}
N_QUERIES = 100


@pytest.mark.parametrize("dataset", [ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE],
                         ids=lambda d: d.name)
def test_fig16_dataset_ttlt(benchmark, engines, dataset):
    def run():
        return {
            name: dataset_eval(engine, dataset, n_queries=N_QUERIES)
            for name, engine in engines.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        rows.append(
            (
                name,
                f"{result.ttlt_speedup_over('soc-only'):.2f}x",
                f"{result.ttlt_speedup_over('hybrid-static'):.2f}x",
                f"{result.ttlt_speedup_over('hybrid-dynamic'):.2f}x",
            )
        )
    gm_static = geomean(
        [r.ttlt_speedup_over("hybrid-static") for r in results.values()]
    )
    gm_soc = geomean([r.ttlt_speedup_over("soc-only") for r in results.values()])
    text = format_table(
        ["platform", "vs soc-only", "vs hybrid-static", "vs hybrid-dynamic"], rows
    )
    text += (
        f"\ngeomean vs static: {gm_static:.2f}x (paper ~1.20x)"
        f"\ngeomean vs soc-only: {gm_soc:.2f}x"
        f" (paper {PAPER_VS_SOC[dataset.name]:.2f}x)"
    )
    emit(f"fig16_dataset_ttlt_{dataset.name}", text)

    assert 1.02 < gm_static < 1.8
    assert gm_soc > 2.0
