"""Extension — multi-turn conversations with a persistent KV cache.

The paper prices single queries; over a conversation the hybrid-static
baseline re-layouts every weight matrix on *every turn*, so FACIL's
advantage accumulates linearly while its own TTFT stays flat.
"""

from repro.engine.session import ChatSession

from report import emit, format_table

TURNS = 6
USER, RESPONSE = 24, 48


def test_ext_multiturn_conversation(benchmark, engines):
    engine = engines["jetson-agx-orin"]

    def run():
        sessions = {
            policy: ChatSession(engine, policy)
            for policy in ("soc-only", "hybrid-static", "facil")
        }
        for _ in range(TURNS):
            for session in sessions.values():
                session.turn(USER, RESPONSE)
        return sessions

    sessions = benchmark(run)
    rows = []
    for turn in range(TURNS):
        rows.append(
            [f"turn {turn + 1}"]
            + [
                f"{sessions[p].turns[turn].ttft_ms:.0f} / "
                f"{sessions[p].turns[turn].ttlt_ms:.0f}"
                for p in sessions
            ]
        )
    rows.append(
        ["TOTAL (s)"]
        + [f"{sessions[p].total_ns / 1e9:.2f}" for p in sessions]
    )
    text = format_table(
        ["", *(f"{p} TTFT/TTLT ms" for p in sessions)], rows
    )
    static, facil = sessions["hybrid-static"], sessions["facil"]
    text += (
        f"\ncumulative re-layout paid by the static baseline: "
        f"{static.total_relayout_ns / 1e9:.2f}s over {TURNS} turns "
        f"(FACIL: 0s); session speedup {static.total_ns / facil.total_ns:.2f}x"
    )
    emit("ext_multiturn", text)

    assert facil.total_ns < static.total_ns
    # FACIL TTFT stays under the paper's 250 ms voice budget every turn
    assert all(t.ttft_ms < 250 for t in facil.turns)
    # static baseline blows the budget from turn 1
    assert all(t.ttft_ms > 200 for t in static.turns)
