"""§IV-B / §V-B — the mapping design space and its hardware cost.

* max(MapID) per platform and the paper's worst case (13, for a single
  channel/rank 8-bank LPDDR5 system with 2 MB pages);
* the mux-array realization: fan-in per DRAM address bit when every
  usable AiM MapID is registered (the "simple combinational logic"
  claim of Fig. 12);
* translation throughput of the software model (microbenchmark).
"""

import numpy as np

from repro.core.controller import MemoryController
from repro.core.hardware import mux_gate_estimate
from repro.core.mapping import max_map_id, pim_optimized_mapping
from repro.dram.config import DramOrganization
from repro.platforms.specs import ALL_PLATFORMS

from report import emit, format_table


def test_map_id_space(benchmark):
    worst = DramOrganization(
        n_channels=1, ranks_per_channel=1, banks_per_rank=8,
        rows_per_bank=1 << 16, row_bytes=2048, transfer_bytes=32,
    )

    def run():
        rows = [
            (p.name, p.dram.org.total_banks, max_map_id(p.dram.org, 2 << 20))
            for p in ALL_PLATFORMS
        ]
        rows.append(("worst-case 1ch/1rk/8bk", 8, max_map_id(worst, 2 << 20)))
        return rows

    rows = benchmark(run)
    text = format_table(["system", "total banks", "max MapID"], rows)
    text += "\npaper: worst-case max MapID is 13 -> 4 PTE bits always suffice"
    emit("mapping_space", text)
    assert rows[-1][2] == 13
    assert all(r[2] <= 13 for r in rows)


def test_mux_array_cost(benchmark):
    platform = ALL_PLATFORMS[0]
    org = platform.dram.org

    def build():
        controller = MemoryController(org)
        ceiling = 21 - org.offset_bits - org.interleave_bits() - org.col_bits
        for map_id in range(ceiling + 1):
            controller.table.register(
                pim_optimized_mapping(org, 1, 1024, 2, map_id, 21)
            )
        return controller

    controller = benchmark(build)
    muxes = controller.mux_array()
    fan_ins = [m.fan_in for m in muxes]
    rows = [
        ("DRAM address bits (muxes)", len(muxes)),
        ("registered mappings", len(controller.table)),
        ("max mux fan-in", max(fan_ins)),
        ("pass-through bits (fan-in 1)", sum(1 for f in fan_ins if f == 1)),
        ("estimated gate count", mux_gate_estimate(controller)),
    ]
    text = format_table(["metric", "value"], rows)
    text += "\npaper: an array of N-to-1 muxes, no memory elements (Fig. 12)"
    emit("mux_array_cost", text)
    assert max(fan_ins) <= len(controller.table)


def test_translation_throughput(benchmark):
    """Software-model microbenchmark: vectorised PA-to-DA translation."""
    platform = ALL_PLATFORMS[0]
    controller = MemoryController(platform.dram.org)
    map_id = controller.table.register(
        pim_optimized_mapping(platform.dram.org, 1, 1024, 2, 1, 21)
    )
    pas = np.arange(0, 1 << 20, 32, dtype=np.int64)
    result = benchmark(controller.translate_array, pas, map_id)
    assert len(result["channel"]) == len(pas)
