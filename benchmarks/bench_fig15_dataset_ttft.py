"""Fig. 15 — normalized TTFT speedup on real-world-like datasets
(conversation / code autocompletion traces), per platform, with all four
policies: SoC-only, hybrid-static, hybrid-dynamic, FACIL (with dynamic
offload).

Paper: geomean TTFT speedup over the static baseline of 2.37x (Alpaca)
and 2.63x (code autocompletion); FACIL also beats the optimized dynamic
baseline by a large margin and slightly beats SoC-only TTFT.
"""

import pytest

from repro.engine.metrics import geomean
from repro.engine.runner import dataset_eval
from repro.llm.datasets import ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE

from report import emit, format_table

PAPER_GEOMEAN = {"alpaca-like": 2.37, "humaneval-autocomplete-like": 2.63}
N_QUERIES = 100


@pytest.mark.parametrize("dataset", [ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE],
                         ids=lambda d: d.name)
def test_fig15_dataset_ttft(benchmark, engines, dataset):
    def run():
        return {
            name: dataset_eval(engine, dataset, n_queries=N_QUERIES)
            for name, engine in engines.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        rows.append(
            (
                name,
                f"{result.ttft_speedup_over('soc-only'):.2f}x",
                f"{result.ttft_speedup_over('hybrid-static'):.2f}x",
                f"{result.ttft_speedup_over('hybrid-dynamic'):.2f}x",
            )
        )
    gm = geomean(
        [r.ttft_speedup_over("hybrid-static") for r in results.values()]
    )
    text = format_table(
        ["platform", "vs soc-only", "vs hybrid-static", "vs hybrid-dynamic"], rows
    )
    text += (
        f"\ngeomean vs hybrid-static: {gm:.2f}x"
        f"   (paper: {PAPER_GEOMEAN[dataset.name]:.2f}x)"
    )
    emit(f"fig15_dataset_ttft_{dataset.name}", text)

    assert PAPER_GEOMEAN[dataset.name] * 0.6 < gm < PAPER_GEOMEAN[dataset.name] * 1.4
    for result in results.values():
        assert result.ttft_speedup_over("hybrid-dynamic") > 1.1
        assert result.ttft_speedup_over("soc-only") > 0.85
