"""Reporting helper for the benchmark harness.

Every bench regenerates one of the paper's tables/figures and emits the
rows through :func:`emit`: the text is printed (visible with ``pytest -s``
or in captured output on failure) and written to
``benchmarks/results/<name>.txt`` so the regenerated experiment artifacts
persist across runs.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["emit", "format_table", "ascii_chart"]


def emit(name: str, text: str) -> str:
    """Print *text* and persist it under ``benchmarks/results``."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print(f"\n=== {name} ===\n{text}")
    return path


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_chart(
    series: dict,
    x_labels: Sequence[object],
    height: int = 12,
    y_label: str = "",
) -> str:
    """Plot one or more named series as an ASCII line chart.

    ``series`` maps a name to a list of y values (same length as
    *x_labels*).  Each series draws with its own marker character.
    """
    markers = "ox*+#@%&"
    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    n_cols = len(x_labels)
    col_width = max(6, max(len(str(x)) for x in x_labels) + 2)
    grid = [[" "] * (n_cols * col_width) for _ in range(height)]
    for (name, values), marker in zip(series.items(), markers):
        for i, value in enumerate(values):
            row = height - 1 - int((value - lo) / (hi - lo) * (height - 1))
            col = i * col_width + col_width // 2
            grid[row][col] = marker
    lines = []
    for r, row in enumerate(grid):
        y_value = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{y_value:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * (n_cols * col_width))
    lines.append(
        " " * 10
        + "".join(str(x).center(col_width) for x in x_labels)
    )
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.insert(0, f"          [{y_label}]")
    return "\n".join(lines)
