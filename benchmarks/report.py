"""Reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures and emits the
rows through :func:`emit`: the text is printed (visible with ``pytest -s``
or in captured output on failure) and written to
``benchmarks/results/<name>.txt`` so the regenerated experiment artifacts
persist across runs.

:func:`diff_bench` is the shared regression gate every nightly job uses:
it checks a fresh ``BenchResult`` against absolute bounds and (when a
committed baseline is given) against the baseline's metrics.  A
``config_hash`` mismatch between fresh and baseline means the workloads
differ, so baseline-relative rules are skipped as "no comparison" — only
the absolute bounds still gate.  The module doubles as a CLI::

    python benchmarks/report.py diff BENCH_x.json \
        [--baseline PATH] [--min M=V] [--max M=V] \
        [--no-worse M[:TOL]] [--lower-is-better M] [--ratio-min A/B=V]

exiting nonzero on any regression, which is what the workflow steps run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["emit", "format_table", "ascii_chart", "BenchDiff", "diff_bench"]


def emit(name: str, text: str) -> str:
    """Print *text* and persist it under ``benchmarks/results``."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print(f"\n=== {name} ===\n{text}")
    return path


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_chart(
    series: dict,
    x_labels: Sequence[object],
    height: int = 12,
    y_label: str = "",
) -> str:
    """Plot one or more named series as an ASCII line chart.

    ``series`` maps a name to a list of y values (same length as
    *x_labels*).  Each series draws with its own marker character.
    """
    markers = "ox*+#@%&"
    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    n_cols = len(x_labels)
    col_width = max(6, max(len(str(x)) for x in x_labels) + 2)
    grid = [[" "] * (n_cols * col_width) for _ in range(height)]
    for (name, values), marker in zip(series.items(), markers):
        for i, value in enumerate(values):
            row = height - 1 - int((value - lo) / (hi - lo) * (height - 1))
            col = i * col_width + col_width // 2
            grid[row][col] = marker
    lines = []
    for r, row in enumerate(grid):
        y_value = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{y_value:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * (n_cols * col_width))
    lines.append(
        " " * 10
        + "".join(str(x).center(col_width) for x in x_labels)
    )
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.insert(0, f"          [{y_label}]")
    return "\n".join(lines)


# -- shared regression gate -------------------------------------------------


@dataclass
class BenchDiff:
    """Outcome of gating one fresh BenchResult."""

    ok: bool
    #: True when a baseline was given but its config_hash differed, so
    #: the baseline-relative rules were skipped entirely
    no_comparison: bool
    lines: List[str] = field(default_factory=list)

    def render(self) -> str:
        return "\n".join(self.lines)


def _metric(result, name: str) -> Optional[float]:
    value = result.metrics.get(name)
    return None if value is None else float(value)


def diff_bench(
    fresh,
    baseline=None,
    *,
    min_bounds: Optional[Mapping[str, float]] = None,
    max_bounds: Optional[Mapping[str, float]] = None,
    no_worse: Optional[Mapping[str, float]] = None,
    lower_is_better: Sequence[str] = (),
    ratio_min: Optional[Mapping[Tuple[str, str], float]] = None,
) -> BenchDiff:
    """Gate *fresh* (a ``BenchResult``) and return the verdict.

    * ``min_bounds`` / ``max_bounds`` — absolute floors/ceilings on
      fresh metrics;
    * ``ratio_min`` — ``(num, den) -> floor`` bounds on the ratio of two
      fresh metrics;
    * ``no_worse`` — metric -> relative tolerance checked against
      *baseline*: fresh must not regress past ``tolerance`` (direction
      per ``lower_is_better``).  Skipped, with a "no comparison" note,
      when the baseline is absent or its ``config_hash`` differs.

    A metric a rule names but the fresh result lacks is a failure — a
    silently vanished metric must not pass the gate it used to feed.
    """
    lines: List[str] = []
    failures = 0
    lower = set(lower_is_better)

    def check(name: str) -> Optional[float]:
        value = _metric(fresh, name)
        if value is None:
            lines.append(f"FAIL {name}: metric missing from fresh result")
        return value

    for name in sorted(min_bounds or {}):
        bound = float((min_bounds or {})[name])
        value = check(name)
        if value is None or value < bound:
            failures += 1
            if value is not None:
                lines.append(f"FAIL {name} = {value:g} < floor {bound:g}")
        else:
            lines.append(f"ok   {name} = {value:g} >= {bound:g}")
    for name in sorted(max_bounds or {}):
        bound = float((max_bounds or {})[name])
        value = check(name)
        if value is None or value > bound:
            failures += 1
            if value is not None:
                lines.append(f"FAIL {name} = {value:g} > ceiling {bound:g}")
        else:
            lines.append(f"ok   {name} = {value:g} <= {bound:g}")
    for num, den in sorted(ratio_min or {}):
        bound = float((ratio_min or {})[(num, den)])
        v_num, v_den = check(num), check(den)
        if v_num is None or v_den is None:
            failures += 1
            continue
        if v_den == 0.0:
            failures += 1
            lines.append(f"FAIL {num}/{den}: denominator is zero")
            continue
        ratio = v_num / v_den
        if ratio < bound:
            failures += 1
            lines.append(
                f"FAIL {num}/{den} = {ratio:g} < floor {bound:g}"
            )
        else:
            lines.append(f"ok   {num}/{den} = {ratio:g} >= {bound:g}")

    no_comparison = False
    if no_worse:
        if baseline is None:
            no_comparison = True
            lines.append(
                "no comparison: no baseline; skipping "
                + ", ".join(sorted(no_worse))
            )
        elif baseline.config_hash != fresh.config_hash:
            no_comparison = True
            lines.append(
                f"no comparison: config_hash changed "
                f"({baseline.config_hash} -> {fresh.config_hash}); "
                f"skipping " + ", ".join(sorted(no_worse))
            )
        else:
            for name in sorted(no_worse):
                tolerance = float(no_worse[name])
                value = check(name)
                if value is None:
                    failures += 1
                    continue
                base = _metric(baseline, name)
                if base is None:
                    lines.append(
                        f"no comparison: {name} missing from baseline"
                    )
                    continue
                if name in lower:
                    limit = base * (1.0 + tolerance)
                    regressed = value > limit
                else:
                    limit = base * (1.0 - tolerance)
                    regressed = value < limit
                verdict = "FAIL" if regressed else "ok  "
                if regressed:
                    failures += 1
                lines.append(
                    f"{verdict} {name} = {value:g} vs baseline {base:g} "
                    f"(tolerance {tolerance:g}, limit {limit:g})"
                )

    return BenchDiff(ok=failures == 0, no_comparison=no_comparison, lines=lines)


def _parse_bound(text: str, flag: str) -> Tuple[str, float]:
    name, sep, raw = text.partition("=")
    if not sep:
        raise SystemExit(f"{flag} takes METRIC=VALUE (got {text!r})")
    try:
        return name.strip(), float(raw)
    except ValueError:
        raise SystemExit(f"{flag}: {raw!r} is not a number")


def _diff_main(argv: Sequence[str]) -> int:
    import argparse

    from repro.telemetry.bench import load_bench_result

    parser = argparse.ArgumentParser(
        prog="report.py diff", description="BenchResult regression gate"
    )
    parser.add_argument("fresh", help="fresh BENCH_*.json to gate")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed baseline BenchResult")
    parser.add_argument("--min", action="append", default=[],
                        metavar="METRIC=V", help="absolute floor")
    parser.add_argument("--max", action="append", default=[],
                        metavar="METRIC=V", help="absolute ceiling")
    parser.add_argument("--no-worse", action="append", default=[],
                        metavar="METRIC[:TOL]",
                        help="fresh must be within TOL (default 0.05) of "
                        "the baseline, direction per --lower-is-better")
    parser.add_argument("--lower-is-better", action="append", default=[],
                        metavar="METRIC",
                        help="mark a --no-worse metric as cost-like")
    parser.add_argument("--ratio-min", action="append", default=[],
                        metavar="NUM/DEN=V",
                        help="floor on the ratio of two fresh metrics")
    args = parser.parse_args(argv)

    fresh = load_bench_result(args.fresh)
    baseline = None
    if args.baseline is not None and os.path.exists(args.baseline):
        baseline = load_bench_result(args.baseline)

    no_worse: Dict[str, float] = {}
    for item in args.no_worse:
        name, sep, raw = item.partition(":")
        try:
            no_worse[name.strip()] = float(raw) if sep else 0.05
        except ValueError:
            raise SystemExit(f"--no-worse: {raw!r} is not a number")
    ratio_min: Dict[Tuple[str, str], float] = {}
    for item in args.ratio_min:
        pair, value = _parse_bound(item, "--ratio-min")
        num, sep, den = pair.partition("/")
        if not sep:
            raise SystemExit(f"--ratio-min takes NUM/DEN=VALUE (got {item!r})")
        ratio_min[(num.strip(), den.strip())] = value

    diff = diff_bench(
        fresh,
        baseline,
        min_bounds=dict(_parse_bound(b, "--min") for b in args.min),
        max_bounds=dict(_parse_bound(b, "--max") for b in args.max),
        no_worse=no_worse,
        lower_is_better=tuple(args.lower_is_better),
        ratio_min=ratio_min,
    )
    print(f"gate {fresh.name} (seed {fresh.seed}, "
          f"config {fresh.config_hash}):")
    print(diff.render())
    print("gate " + ("PASSED" if diff.ok else "FAILED"))
    return 0 if diff.ok else 1


if __name__ == "__main__":
    import sys

    if len(sys.argv) >= 2 and sys.argv[1] == "diff":
        sys.exit(_diff_main(sys.argv[2:]))
    raise SystemExit(f"usage: {sys.argv[0]} diff FRESH.json [options]")
