"""Table III — GEMM slowdown when weights sit in the PIM-optimized layout,
per platform, per layer shape, per prefill length.

The paper measures 0-2.1 % with GPGPU-Sim/ONNXim (cache hierarchies in
front of DRAM).  Our cache-less DRAM-level replay reproduces the
*mechanism* and the ordering (partitioned FFN layouts are the worst case)
but overestimates the magnitude; see EXPERIMENTS.md.  The inference
engine therefore uses the paper's conservative constants, exactly as the
paper does.
"""

import pytest

from repro.core.selector import MatrixConfig
from repro.llm.layers import linear_specs
from repro.llm.model_config import model_by_name
from repro.soc.layout_effects import gemm_layout_slowdown

from report import emit, format_table

PREFILL_LENGTHS = (4, 16, 64)
SAMPLE = 16384


def _distinct_shapes(model):
    seen = {}
    for spec in linear_specs(model, include_head=False):
        seen.setdefault((spec.out_features, spec.in_features), spec.name)
    return [(name, m, k) for (m, k), name in seen.items()]


def _slowdown_at(soc, matrix, prefill, read_slowdown):
    """Roofline re-weighting: the read-bandwidth delta is prefill-
    independent; the end-to-end slowdown follows memory-boundedness."""
    flops = 2.0 * matrix.rows * prefill * matrix.cols
    bytes_moved = matrix.dtype_bytes * (
        matrix.rows * matrix.cols + matrix.cols * prefill + matrix.rows * prefill
    )
    compute_ns = flops / (soc.peak_tflops_fp16 * 1e3 * soc.compute_efficiency)
    memory_ns = bytes_moved / (soc.peak_bw_gbps * soc.bw_utilization)
    base = max(compute_ns, memory_ns)
    slow = max(compute_ns, memory_ns * (1.0 + read_slowdown))
    return (slow - base) / base


@pytest.mark.parametrize("platform_name", ["jetson-agx-orin", "ideapad-slim-5"])
def test_table3_gemm_layout_slowdown(benchmark, platforms, platform_name):
    platform = platforms[platform_name]
    model = model_by_name(platform.model_name)
    shapes = _distinct_shapes(model)

    def run():
        rows = []
        for name, m, k in shapes:
            matrix = MatrixConfig(m, k)
            effect = gemm_layout_slowdown(
                matrix, platform.dram, platform.pim, platform.soc,
                PREFILL_LENGTHS[0], sample_transfers=SAMPLE,
            )
            for prefill in PREFILL_LENGTHS:
                slow = _slowdown_at(
                    platform.soc, matrix, prefill, effect.read_slowdown
                )
                rows.append(
                    (name, f"{m}x{k}", prefill,
                     f"{effect.conv_read_gbps:.0f}",
                     f"{effect.pim_read_gbps:.0f}",
                     f"{slow*100:.2f}%")
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["op", "dims", "prefill", "conv read GB/s", "pim read GB/s", "slowdown"],
        rows,
    )
    text += (
        f"\npaper Table III worst case on {platform_name}: "
        f"{platform.gemm_layout_slowdown*100:.1f}% (engine uses that constant; "
        "our cache-less replay overestimates, see EXPERIMENTS.md)"
    )
    emit(f"table3_gemm_layout_{platform_name}", text)

    slowdowns = [float(r[5][:-1]) for r in rows]
    assert all(s >= 0 for s in slowdowns)
    # the PIM layout must remain *usable* by GEMM — nothing like the
    # multi-x cost that motivates re-layout in the baseline
    assert min(slowdowns) < 150.0
