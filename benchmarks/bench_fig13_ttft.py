"""Fig. 13 — TTFT speedup of FACIL over the SoC-PIM hybrid (static)
baseline, per platform, across prefill lengths {8, 16, 32, 64, 128}.

Paper geomeans: Jetson 2.89x, MacBook 2.19x, IdeaPad 1.55x, iPhone 2.36x;
the speedup shrinks with prefill length, faster on platforms with a low
roofline ridge point (MacBook, iPhone).
"""

import pytest

from repro.engine.metrics import geomean
from repro.engine.runner import ttft_speedup_sweep

from report import ascii_chart, emit, format_table

PAPER_GEOMEANS = {
    "jetson-agx-orin": 2.89,
    "macbook-pro-m3-max": 2.19,
    "ideapad-slim-5": 1.55,
    "iphone-15-pro": 2.36,
}
PREFILL_LENGTHS = (8, 16, 32, 64, 128)


def test_fig13_ttft_speedup(benchmark, engines):
    def run():
        return {
            name: ttft_speedup_sweep(engine, PREFILL_LENGTHS)
            for name, engine in engines.items()
        }

    results = benchmark(run)
    rows = []
    for name, points in results.items():
        gm = geomean([p.ttft_speedup for p in points])
        rows.append(
            [name]
            + [f"{p.ttft_speedup:.2f}x" for p in points]
            + [f"{gm:.2f}x", f"{PAPER_GEOMEANS[name]:.2f}x"]
        )
    text = format_table(
        ["platform", *(f"P{p}" for p in PREFILL_LENGTHS), "geomean", "paper"],
        rows,
    )
    text += "\n\n" + ascii_chart(
        {
            name.split("-")[0]: [p.ttft_speedup for p in points]
            for name, points in results.items()
        },
        [f"P{p}" for p in PREFILL_LENGTHS],
        y_label="TTFT speedup over hybrid-static (x)",
    )
    emit("fig13_ttft_speedup", text)

    for name, points in results.items():
        gm = geomean([p.ttft_speedup for p in points])
        assert PAPER_GEOMEANS[name] * 0.65 < gm < PAPER_GEOMEANS[name] * 1.35
        speedups = [p.ttft_speedup for p in points]
        assert speedups[0] >= speedups[-1]  # diminishing with prefill
