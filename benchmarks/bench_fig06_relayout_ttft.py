"""Fig. 6 — TTFT inflation caused by on-demand re-layout (Jetson,
Llama3-8B, varying input sequence length).

Paper: TTFT rises from ~100 ms to ~300 ms (~3x) once the hybrid baseline
must re-layout every weight matrix before its prefill GEMMs.  Our
conservative full-peak-bandwidth re-layout gives ~2.4x (EXPERIMENTS.md).
"""

from report import emit, format_table

PREFILL_LENGTHS = (4, 8, 16, 32, 64)


def _sweep(engine):
    rows = []
    for prefill in PREFILL_LENGTHS:
        facil = engine.run_query("facil", prefill, 8, dynamic_offload=False)
        static = engine.run_query("hybrid-static", prefill, 8)
        rows.append(
            (
                prefill,
                f"{facil.ttft_ns/1e6:.1f}",
                f"{static.ttft_ns/1e6:.1f}",
                f"{static.ttft_ns/facil.ttft_ns:.2f}x",
            )
        )
    return rows


def test_fig06_relayout_ttft_inflation(benchmark, engines):
    engine = engines["jetson-agx-orin"]
    rows = benchmark(_sweep, engine)
    text = format_table(
        ["prefill len", "TTFT no re-layout (ms)", "TTFT with re-layout (ms)", "inflation"],
        rows,
    )
    text += "\npaper: ~100 ms -> ~300 ms (~3x) across these lengths"
    emit("fig06_relayout_ttft", text)
    for row in rows:
        assert float(row[3][:-1]) > 2.0
