"""DRAM request and command types for the timing simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.address import DramCoord

__all__ = ["Request", "DramCommand", "READ", "WRITE", "CMD_OPS"]

READ = "read"
WRITE = "write"

#: Device-level command opcodes emitted by the scheduler's command log.
CMD_OPS = ("ACT", "PRE", "RD", "WR", "REF")


@dataclass(frozen=True)
class Request:
    """One transfer-sized memory request presented to a channel.

    ``tag`` labels the originating stream (e.g. ``"soc"`` / ``"pim"``)
    for per-stream accounting in co-scheduling experiments.

    ``uses_bus`` is False for PIM MAC column commands: they occupy the
    bank (tCCD, row buffer) but move data bank-internally, leaving the
    external data bus to the SoC.
    """

    coord: DramCoord
    is_write: bool = False
    arrival_ns: float = 0.0
    tag: str = ""
    uses_bus: bool = True

    @property
    def kind(self) -> str:
        return WRITE if self.is_write else READ


@dataclass(frozen=True)
class DramCommand:
    """One device-level command as issued on a channel's command bus.

    The scheduler appends these to its optional ``command_log``; the
    :mod:`repro.analysis.tracelint` pass replays the log and checks the
    protocol invariants (ACT/PRE pairing, open-row consistency).  ``row``
    is the target row for ACT/RD/WR, the precharged row for PRE, and -1
    for REF (all-bank).  ``col`` is meaningful only for RD/WR.
    """

    op: str  # one of CMD_OPS
    channel: int
    rank: int
    bank: int
    row: int = -1
    col: int = -1
    time_ns: float = 0.0
    tag: str = ""
