"""DRAM request and command types for the timing simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.address import DramCoord

__all__ = ["Request", "READ", "WRITE"]

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Request:
    """One transfer-sized memory request presented to a channel.

    ``tag`` labels the originating stream (e.g. ``"soc"`` / ``"pim"``)
    for per-stream accounting in co-scheduling experiments.

    ``uses_bus`` is False for PIM MAC column commands: they occupy the
    bank (tCCD, row buffer) but move data bank-internally, leaving the
    external data bus to the SoC.
    """

    coord: DramCoord
    is_write: bool = False
    arrival_ns: float = 0.0
    tag: str = ""
    uses_bus: bool = True

    @property
    def kind(self) -> str:
        return WRITE if self.is_write else READ
