"""DRAM and PIM energy model (extension; the paper evaluates latency
only, but FACIL's eliminations — re-layout traffic and weight movement
over the external bus — are first-order *energy* wins on battery-powered
devices, so the reproduction prices them).

Constants are LPDDR5-class ballparks expressed per the usual breakdown:

* row activation+precharge energy per ACT;
* array access energy per byte (column read/write inside the die);
* I/O energy per byte crossing the external bus (the term PIM avoids
  for weight traffic);
* PIM MAC energy per byte of weights processed (near-bank FP16 MAC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.system import SimResult
from repro.pim.gemv import GemvLatency

__all__ = ["DramEnergyModel", "LPDDR5_ENERGY", "sim_energy_pj", "gemv_energy_pj"]


@dataclass(frozen=True)
class DramEnergyModel:
    """Per-operation energy constants (picojoules)."""

    act_pj: float = 2_000.0  # one ACT+PRE pair (whole-row charge)
    array_rd_pj_per_byte: float = 1.5  # column read, inside the die
    array_wr_pj_per_byte: float = 1.7
    io_pj_per_byte: float = 4.0  # external bus transfer (LPDDR5 ~0.5 pJ/bit x8)
    mac_pj_per_byte: float = 1.0  # near-bank FP16 MAC per weight byte

    def read_pj(self, nbytes: float, external: bool = True) -> float:
        energy = self.array_rd_pj_per_byte * nbytes
        if external:
            energy += self.io_pj_per_byte * nbytes
        return energy

    def write_pj(self, nbytes: float, external: bool = True) -> float:
        energy = self.array_wr_pj_per_byte * nbytes
        if external:
            energy += self.io_pj_per_byte * nbytes
        return energy


LPDDR5_ENERGY = DramEnergyModel()


def sim_energy_pj(
    result: SimResult, transfer_bytes: int, model: DramEnergyModel = LPDDR5_ENERGY
) -> float:
    """Energy of a simulated request stream: activations (misses and
    conflicts each cost one ACT+PRE) plus array and I/O per transfer."""
    activations = result.row_misses + result.row_conflicts
    reads = sum(s.reads for s in result.per_channel.values())
    writes = sum(s.writes for s in result.per_channel.values())
    return (
        activations * model.act_pj
        + model.read_pj(reads * transfer_bytes)
        + model.write_pj(writes * transfer_bytes)
    )


def gemv_energy_pj(
    latency: GemvLatency,
    total_banks: int,
    input_bytes: int,
    output_bytes: int,
    model: DramEnergyModel = LPDDR5_ENERGY,
) -> float:
    """Energy of one PIM GEMV.

    Weight bytes stream from the arrays into the near-bank MACs — array
    read plus MAC energy, *no* external I/O.  Only the input vector
    (global-buffer loads) and the outputs cross the bus.
    """
    weight_bytes = latency.weight_bytes_streamed
    activations = latency.activates_per_bank * total_banks
    return (
        activations * model.act_pj
        + weight_bytes * (model.array_rd_pj_per_byte + model.mac_pj_per_byte)
        + model.write_pj(input_bytes)  # GB loads over the bus
        + model.read_pj(output_bytes)  # MAC-register drains
    )
