"""Top-level DRAM timing simulator.

Feeds request streams (coordinate arrays) through per-channel FR-FCFS
schedulers and reports aggregate service time, bandwidth, and row-buffer
statistics.  Channels run independently, as in hardware, so total time is
the max over channels.

For very long streams, :meth:`DramTimingSimulator.measure_bandwidth`
simulates a representative sample and extrapolates — the workloads in the
paper's evaluation touch tens of GB, which would be needlessly slow to
replay transfer-by-transfer in Python when the stream is statistically
uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.address import DramCoord, Field
from repro.dram.command import DramCommand, Request
from repro.dram.config import DramConfig
from repro.dram.scheduler import ChannelScheduler, ChannelStats

__all__ = ["DramTimingSimulator", "SimResult", "requests_from_fields"]


@dataclass
class SimResult:
    """Aggregate outcome of one simulated request stream."""

    total_ns: float
    n_requests: int
    bytes_moved: int
    row_hits: int
    row_misses: int
    row_conflicts: int
    per_channel: Dict[int, ChannelStats]
    #: per tag: (requests, last data-end ns, summed arrival->end latency)
    per_tag: Dict[str, Tuple[int, float, float]] = None

    def mean_latency_ns(self, tag: str) -> float:
        count, _, latency = self.per_tag[tag]
        return latency / count if count else 0.0

    @property
    def bandwidth_gbps(self) -> float:
        if self.total_ns <= 0:
            return 0.0
        return self.bytes_moved / self.total_ns  # bytes/ns == GB/s

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0


def requests_from_fields(
    fields: Dict[str, np.ndarray],
    is_write: bool = False,
) -> List[Request]:
    """Build transfer requests from decoded field arrays (one per
    transfer; the ``offset`` field is ignored)."""
    n = len(fields[Field.CHANNEL])
    return [
        Request(
            coord=DramCoord(
                channel=int(fields[Field.CHANNEL][i]),
                rank=int(fields[Field.RANK][i]),
                bank=int(fields[Field.BANK][i]),
                row=int(fields[Field.ROW][i]),
                col=int(fields[Field.COL][i]),
            ),
            is_write=is_write,
        )
        for i in range(n)
    ]


class DramTimingSimulator:
    """Replay request streams against a :class:`DramConfig`."""

    def __init__(
        self,
        config: DramConfig,
        window: int = 64,
        n_row_buffers: int = 1,
        priority_tag: Optional[str] = None,
        model_refresh: bool = False,
        log_commands: bool = False,
    ):
        self.config = config
        self.window = window
        self.n_row_buffers = n_row_buffers
        self.priority_tag = priority_tag
        self.model_refresh = model_refresh
        self.log_commands = log_commands
        #: per-channel device-command logs of the most recent :meth:`run`
        #: (populated only when ``log_commands`` is True)
        self.command_logs: Dict[int, List[DramCommand]] = {}

    def run(self, requests: Iterable[Request]) -> SimResult:
        """Serve *requests* (arrival order = stream order) to completion."""
        org = self.config.org
        schedulers: Dict[int, ChannelScheduler] = {}
        n_requests = 0
        for request in requests:
            channel = request.coord.channel
            sched = schedulers.get(channel)
            if sched is None:
                sched = ChannelScheduler(
                    self.config,
                    channel,
                    self.window,
                    self.n_row_buffers,
                    self.priority_tag,
                    self.model_refresh,
                    self.log_commands,
                )
                schedulers[channel] = sched
            sched.enqueue(request)
            n_requests += 1
        total = 0.0
        self.command_logs = {}
        for sched in schedulers.values():
            total = max(total, sched.drain())
            sched.collect_bank_stats()
            if sched.command_log is not None:
                self.command_logs[sched.channel] = sched.command_log
        per_channel = {ch: s.stats for ch, s in schedulers.items()}
        per_tag: Dict[str, Tuple[int, float, float]] = {}
        for sched in schedulers.values():
            for tag, (count, last, latency) in sched.completions.items():
                prev = per_tag.get(tag, (0, 0.0, 0.0))
                per_tag[tag] = (
                    prev[0] + count,
                    max(prev[1], last),
                    prev[2] + latency,
                )
        return SimResult(
            per_tag=per_tag,
            total_ns=total,
            n_requests=n_requests,
            bytes_moved=n_requests * org.transfer_bytes,
            row_hits=sum(s.row_hits for s in per_channel.values()),
            row_misses=sum(s.row_misses for s in per_channel.values()),
            row_conflicts=sum(s.row_conflicts for s in per_channel.values()),
            per_channel=per_channel,
        )

    def measure_bandwidth(
        self,
        fields: Dict[str, np.ndarray],
        is_write: bool = False,
        sample_transfers: Optional[int] = 65536,
    ) -> float:
        """Effective bandwidth (GB/s) of a stream, optionally sampled.

        The first *sample_transfers* transfers are simulated exactly; the
        result is the steady-state bandwidth, valid for streams whose
        access pattern is homogeneous (sequential copies, tiled GEMM
        sweeps).
        """
        n = len(fields[Field.CHANNEL])
        if sample_transfers is not None and n > sample_transfers:
            fields = {k: v[:sample_transfers] for k, v in fields.items()}
        result = self.run(requests_from_fields(fields, is_write))
        return result.bandwidth_gbps
