"""DRAM substrate: geometry, functional storage, and timing simulation."""

from repro.dram.address import DramCoord, Field, FIELDS
from repro.dram.config import (
    DramConfig,
    GDDR6_16000_TIMINGS,
    DramOrganization,
    DramTimings,
    LPDDR5_6400_TIMINGS,
    LPDDR5X_7467_TIMINGS,
    TINY_ORG,
    lpddr5_organization,
)
from repro.dram.command import Request
from repro.dram.memory import PhysicalMemory
from repro.dram.scheduler import ChannelScheduler, ChannelStats
from repro.dram.system import DramTimingSimulator, SimResult, requests_from_fields

__all__ = [
    "ChannelScheduler",
    "ChannelStats",
    "DramConfig",
    "DramCoord",
    "DramOrganization",
    "DramTimingSimulator",
    "DramTimings",
    "LPDDR5_6400_TIMINGS",
    "LPDDR5X_7467_TIMINGS",
    "PhysicalMemory",
    "ContentionResult",
    "Request",
    "SimResult",
    "TINY_ORG",
    "cosched_experiment",
    "lpddr5_organization",
    "requests_from_fields",
]


# Lazy (PEP 562): the contention experiment depends on repro.core, which
# itself imports this package's modules.
_LAZY = {
    "ContentionResult": "repro.dram.contention",
    "cosched_experiment": "repro.dram.contention",
    "DramEnergyModel": "repro.dram.energy",
    "LPDDR5_ENERGY": "repro.dram.energy",
    "gemv_energy_pj": "repro.dram.energy",
    "sim_energy_pj": "repro.dram.energy",
    "load_trace": "repro.dram.trace",
    "save_trace": "repro.dram.trace",
    "trace_from_fields": "repro.dram.trace",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
