"""SoC-PIM memory co-scheduling experiment (paper §V-C extension).

FACIL's "Remaining Challenges" notes that once PIM lives in the main
memory system, PIM and non-PIM requests contend: a PIM MAC pass keeps
rows open in every bank while normal SoC traffic wants its own rows —
single row buffers ping-pong with conflicts.  The paper points to two
mitigations from prior work: PIM-aware scheduling and NeuPIMs-style
**dual row buffers**.

This module builds the experiment: interleave an SoC read stream
(conventional mapping) with a PIM column stream (PIM-optimized mapping)
through the timing simulator, account each stream separately, and
measure how much of each stream's solo bandwidth survives — with one and
with two row buffers per bank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.controller import CONVENTIONAL_MAP_ID, MemoryController
from repro.dram.address import Field
from repro.dram.command import Request
from repro.dram.config import DramConfig
from repro.dram.system import DramTimingSimulator, SimResult, requests_from_fields

__all__ = ["ContentionResult", "cosched_experiment"]


@dataclass(frozen=True)
class ContentionResult:
    """Per-stream bandwidths, solo vs co-scheduled."""

    soc_alone_gbps: float
    pim_alone_gbps: float
    soc_shared_gbps: float
    pim_shared_gbps: float
    row_conflicts_shared: int
    n_row_buffers: int
    priority_tag: str = ""
    soc_mean_latency_ns: float = 0.0
    pim_mean_latency_ns: float = 0.0

    @property
    def soc_retained(self) -> float:
        """Fraction of the SoC's solo bandwidth that survives sharing."""
        return self.soc_shared_gbps / self.soc_alone_gbps

    @property
    def pim_retained(self) -> float:
        return self.pim_shared_gbps / self.pim_alone_gbps


def _tagged(
    fields: Dict[str, np.ndarray], tag: str, uses_bus: bool = True
) -> List[Request]:
    requests = requests_from_fields(fields)
    return [
        Request(coord=r.coord, is_write=r.is_write, tag=tag, uses_bus=uses_bus)
        for r in requests
    ]


def _merge(a: List[Request], b: List[Request], seed: int = 7) -> List[Request]:
    """Random-rate merge preserving each stream's internal order."""
    rng = np.random.default_rng(seed)
    keys_a = np.cumsum(rng.exponential(1.0, len(a)))
    keys_b = np.cumsum(rng.exponential(1.0, len(b)))
    merged = [(k, 0, i) for i, k in enumerate(keys_a)] + [
        (k, 1, i) for i, k in enumerate(keys_b)
    ]
    merged.sort()
    streams = (a, b)
    return [streams[which][idx] for _, which, idx in merged]


def _stream_bandwidth(result: SimResult, tag: str, transfer_bytes: int) -> float:
    count, last_ns, _ = result.per_tag[tag]
    if last_ns <= 0:
        return 0.0
    return count * transfer_bytes / last_ns


def cosched_experiment(
    dram: DramConfig,
    pim_map_id: int,
    controller: MemoryController,
    n_transfers: int = 8192,
    n_row_buffers: int = 1,
    window: int = 64,
    seed: int = 7,
    priority_tag: str = "",
) -> ContentionResult:
    """Run the co-scheduling experiment on one configuration.

    The SoC stream is a sequential read under the conventional mapping
    (a concurrent process streaming through memory); the PIM stream is a
    sequential sweep under the PIM-optimized mapping — the column-read
    pattern of an all-bank MAC pass, which parks one open row per bank.
    """
    org = dram.org
    span = n_transfers * org.transfer_bytes
    pas = np.arange(0, span, org.transfer_bytes, dtype=np.int64)
    # Offset the PIM weights into a different huge page so the streams
    # touch disjoint rows (as weight vs activation data would).
    pim_pas = pas + controller.page_bytes

    soc_requests = _tagged(
        controller.translate_array(pas, CONVENTIONAL_MAP_ID), "soc"
    )
    # PIM MAC column reads: bank-internal, bus-free.
    pim_requests = _tagged(
        controller.translate_array(pim_pas, pim_map_id), "pim", uses_bus=False
    )

    simulator = DramTimingSimulator(
        dram,
        window=window,
        n_row_buffers=n_row_buffers,
        priority_tag=priority_tag or None,
    )
    solo_soc = simulator.run(soc_requests)
    solo_pim = simulator.run(pim_requests)

    # Open-loop arrivals for the shared run, paced from *reference*
    # single-buffer solo rates so every (buffers, priority) configuration
    # faces the identical offered load: the SoC stream arrives at 60% of
    # its solo service rate (a process streaming, not saturating), the
    # PIM stream at 60% of its single-buffer rate (a decode GEMV's
    # column cadence).  Per-request latency then measures the queueing
    # each stream suffers from the other.
    reference = DramTimingSimulator(dram, window=window, n_row_buffers=1)
    ref_soc = reference.run(soc_requests)
    ref_pim = reference.run(pim_requests)
    soc_rate_ns = org.transfer_bytes / _stream_bandwidth(
        ref_soc, "soc", org.transfer_bytes
    )
    pim_rate_ns = org.transfer_bytes / _stream_bandwidth(
        ref_pim, "pim", org.transfer_bytes
    ) / 0.6
    soc_paced = [
        Request(
            coord=r.coord, is_write=r.is_write, tag=r.tag,
            uses_bus=r.uses_bus, arrival_ns=i * soc_rate_ns / 0.6,
        )
        for i, r in enumerate(soc_requests)
    ]
    pim_paced = [
        Request(
            coord=r.coord, is_write=r.is_write, tag=r.tag,
            uses_bus=r.uses_bus, arrival_ns=i * pim_rate_ns,
        )
        for i, r in enumerate(pim_requests)
    ]
    # queue order = arrival order, so the scheduler's lookahead window
    # sees what has actually arrived
    merged = sorted(soc_paced + pim_paced, key=lambda r: r.arrival_ns)
    shared = simulator.run(merged)

    transfer = org.transfer_bytes
    return ContentionResult(
        soc_alone_gbps=_stream_bandwidth(solo_soc, "soc", transfer),
        pim_alone_gbps=_stream_bandwidth(solo_pim, "pim", transfer),
        soc_shared_gbps=_stream_bandwidth(shared, "soc", transfer),
        pim_shared_gbps=_stream_bandwidth(shared, "pim", transfer),
        row_conflicts_shared=shared.row_conflicts,
        n_row_buffers=n_row_buffers,
        priority_tag=priority_tag,
        soc_mean_latency_ns=shared.mean_latency_ns("soc"),
        pim_mean_latency_ns=shared.mean_latency_ns("pim"),
    )
