"""FR-FCFS channel scheduler with background row activation.

Per channel: a lookahead window over the pending request queue.  Row-buffer
hits are served before older misses (First-Ready, First-Come-First-Served),
and — as in real controllers, where ACT/PRE travel on the command bus while
another bank's data streams — rows for pending misses are opened *in the
background* so bank preparation overlaps column traffic.  Without that
overlap a mapping that interleaves banks coarsely (like the PIM-optimized
layouts) would appear pathologically serial, which hardware is not.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.dram.address import DramCoord
from repro.dram.bank import BankState
from repro.dram.command import DramCommand, Request
from repro.dram.config import DramConfig

__all__ = ["ChannelScheduler", "ChannelStats"]


@dataclass
class ChannelStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    busy_until_ns: float = 0.0
    bus_busy_ns: float = 0.0


class _Entry:
    """Queue slot: the request plus its hit/miss classification, decided
    when its row is (pre-)activated so stats count each request once."""

    __slots__ = ("request", "prepared")

    def __init__(self, request: Request):
        self.request = request
        self.prepared = False


class ChannelScheduler:
    """Schedules one channel's requests against its banks and data bus."""

    def __init__(
        self,
        config: DramConfig,
        channel: int,
        window: int = 64,
        n_row_buffers: int = 1,
        priority_tag: Optional[str] = None,
        model_refresh: bool = False,
        log_commands: bool = False,
    ):
        self.config = config
        self.channel = channel
        self.window = window
        #: requests with this tag win ties against other row hits —
        #: "SoC-priority" scheduling that shields normal processes from
        #: PIM interference (paper §V-C remaining challenges)
        self.priority_tag = priority_tag
        org = config.org
        self.banks: Dict[Tuple[int, int], BankState] = {
            (rank, bank): BankState(n_row_buffers=n_row_buffers)
            for rank in range(org.ranks_per_channel)
            for bank in range(org.banks_per_rank)
        }
        self._queue: Deque[_Entry] = deque()
        self._bus_free_ns = 0.0
        self._last_kind_is_write: Optional[bool] = None
        self._act_history: Deque[float] = deque(maxlen=4)  # for tFAW
        self._last_act_ns = -1e18  # for tRRD
        self.stats = ChannelStats()
        #: per-tag (requests served, last data-end time, summed
        #: arrival->completion latency) for co-scheduling experiments
        self.completions: Dict[str, Tuple[int, float, float]] = {}
        self._burst_ns = config.timings.burst_time_ns(org)
        #: refresh modeling (all-bank refresh every tREFI costing tRFC);
        #: off by default so calibrated results stay put — enabling it
        #: shaves the ~tRFC/tREFI duty cycle (~4-5 %) off bandwidth
        self.model_refresh = model_refresh
        self._next_refresh_ns = config.timings.tREFI
        #: device-command log for the trace linter (None = not recorded);
        #: every ACT/PRE/RD/WR/REF this scheduler issues, in issue order
        self.command_log: Optional[List[DramCommand]] = (
            [] if log_commands else None
        )

    # -- public API ---------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        if request.coord.channel != self.channel:
            raise ValueError(
                f"request for channel {request.coord.channel} sent to "
                f"scheduler of channel {self.channel}"
            )
        self._queue.append(_Entry(request))

    def drain(self) -> float:
        """Serve every queued request; returns the channel-busy end time."""
        while self._queue:
            self._prepare_window()
            index = self._pick()
            entry = self._queue[index]
            del self._queue[index]
            self._issue(entry)
        return self.stats.busy_until_ns

    # -- internals -------------------------------------------------------------

    def _bank_of(self, request: Request) -> BankState:
        return self.banks[(request.coord.rank, request.coord.bank)]

    def _apply_act_constraints(self, bank: BankState) -> None:
        """Shift a just-recorded ACT to respect tRRD/tFAW across banks."""
        timings = self.config.timings
        act = bank.last_act_ns
        shift = 0.0
        if act - self._last_act_ns < timings.tRRD:
            shift = max(shift, self._last_act_ns + timings.tRRD - act)
        if len(self._act_history) == 4:
            oldest = self._act_history[0]
            if act - oldest < timings.tFAW:
                shift = max(shift, oldest + timings.tFAW - act)
        if shift > 0.0:
            bank.last_act_ns += shift
            bank.next_act_ns += shift
            bank.next_col_ns += shift
            bank.next_pre_ns += shift
        self._last_act_ns = bank.last_act_ns
        self._act_history.append(bank.last_act_ns)

    def _prepare(self, bank: BankState, coord: DramCoord, is_write: bool) -> None:
        """Bring *coord*'s row to openable state in *bank*: precharge a
        victim if all row buffers are busy, activate if the row is closed,
        and record the resulting ACT/PRE on the command log."""
        timings = self.config.timings
        opening = not bank.is_open(coord.row)
        victim: Optional[int] = None
        if opening and len(bank.open_rows()) >= bank.n_row_buffers:
            victim = bank.open_rows()[0]
        bank.prepare_column(coord.row, self._bus_free_ns, timings, is_write)
        if opening:
            self._apply_act_constraints(bank)
            if self.command_log is not None:
                act_ns = bank.last_act_ns
                if victim is not None:
                    self.command_log.append(
                        DramCommand(
                            op="PRE",
                            channel=self.channel,
                            rank=coord.rank,
                            bank=coord.bank,
                            row=victim,
                            time_ns=act_ns - timings.tRP,
                        )
                    )
                self.command_log.append(
                    DramCommand(
                        op="ACT",
                        channel=self.channel,
                        rank=coord.rank,
                        bank=coord.bank,
                        row=coord.row,
                        time_ns=act_ns,
                    )
                )

    def _prepare_window(self) -> None:
        """Open rows for the first pending request of each bank in the
        window (background ACT/PRE on the command bus).

        A bank's open row is *not* precharged while the window still holds
        a request hitting it — closing under pending hits would waste the
        row buffer, and real FR-FCFS drains hits first.
        """
        limit = min(self.window, len(self._queue))
        pending_rows: Set[Tuple[int, int, int]] = set()
        for index in range(limit):
            coord = self._queue[index].request.coord
            pending_rows.add((coord.rank, coord.bank, coord.row))
        touched: Set[Tuple[int, int]] = set()
        for index in range(limit):
            entry = self._queue[index]
            coord = entry.request.coord
            key = (coord.rank, coord.bank)
            if key in touched:
                continue
            touched.add(key)
            if entry.prepared:
                continue
            bank = self.banks[key]
            if not bank.is_open(coord.row) and len(bank.open_rows()) >= bank.n_row_buffers:
                victim = bank.open_rows()[0]  # LRU row the ACT would evict
                if (coord.rank, coord.bank, victim) in pending_rows:
                    continue  # drain the victim row's hits first
            self._prepare(bank, coord, entry.request.is_write)
            entry.prepared = True

    def _pick(self) -> int:
        """Among prepared requests in the window, serve the one whose bank
        accepts a column command soonest (interleaves banks instead of
        serializing on tCCD); with a priority tag set, that tag's row
        hits are considered first.  Falls back to the oldest request."""
        limit = min(self.window, len(self._queue))
        best_index = -1
        best_key = (2, float("inf"))
        for index in range(limit):
            entry = self._queue[index]
            coord = entry.request.coord
            bank = self.banks[(coord.rank, coord.bank)]
            if not bank.is_open(coord.row):
                continue
            tier = 0 if (
                self.priority_tag is not None
                and entry.request.tag == self.priority_tag
            ) else 1
            key = (tier if self.priority_tag is not None else 1, bank.next_col_ns)
            if key < best_key:
                best_index = index
                best_key = key
        return best_index if best_index >= 0 else 0

    def _issue(self, entry: _Entry) -> None:
        timings = self.config.timings
        request = entry.request
        coord = request.coord
        bank = self._bank_of(request)

        if self.model_refresh and self._bus_free_ns >= self._next_refresh_ns:
            # all-bank refresh: every bank is precharged (open rows are
            # lost — re-accessing them costs a fresh ACT) and stalls tRFC
            stall_end = self._next_refresh_ns + timings.tRFC
            for state in self.banks.values():
                state.close_all()
                state.next_act_ns = max(state.next_act_ns, stall_end)
                state.next_col_ns = max(state.next_col_ns, stall_end)
            if self.command_log is not None:
                self.command_log.append(
                    DramCommand(
                        op="REF",
                        channel=self.channel,
                        rank=-1,
                        bank=-1,
                        time_ns=self._next_refresh_ns,
                    )
                )
            self._bus_free_ns = max(self._bus_free_ns, stall_end)
            self._next_refresh_ns += timings.tREFI

        if not entry.prepared or not bank.is_open(coord.row):
            # Unprepared entries reach here either as row hits (counted by
            # prepare_column) or after a background prepare closed their
            # row (counted as the conflict they now are); a *prepared*
            # entry whose row was closed anyway is re-prepared defensively.
            self._prepare(bank, coord, request.is_write)

        ready = max(bank.next_col_ns, request.arrival_ns)
        if request.uses_bus:
            issue = max(ready, self._bus_free_ns)
            # Read/write turnaround on the shared data bus.
            if self._last_kind_is_write is not None:
                if self._last_kind_is_write and not request.is_write:
                    issue = max(issue, self._bus_free_ns + timings.tWTR)
        else:
            # PIM MAC: bank-internal data movement, no bus arbitration.
            issue = ready
        bank.note_column(issue, timings, request.is_write, self._burst_ns)
        if self.command_log is not None:
            self.command_log.append(
                DramCommand(
                    op="WR" if request.is_write else "RD",
                    channel=self.channel,
                    rank=coord.rank,
                    bank=coord.bank,
                    row=coord.row,
                    col=coord.col,
                    time_ns=issue,
                    tag=request.tag,
                )
            )

        latency = timings.tCWL if request.is_write else timings.tCL
        data_end = issue + latency + self._burst_ns
        if request.uses_bus:
            self._bus_free_ns = issue + self._burst_ns
            self._last_kind_is_write = request.is_write

        stats = self.stats
        if request.uses_bus:
            stats.bus_busy_ns += self._burst_ns
        stats.busy_until_ns = max(stats.busy_until_ns, data_end)
        if request.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        tag = request.tag
        count, last, latency = self.completions.get(tag, (0, 0.0, 0.0))
        self.completions[tag] = (
            count + 1,
            max(last, data_end),
            latency + (data_end - request.arrival_ns),
        )

    def collect_bank_stats(self) -> None:
        """Fold per-bank hit/miss counters into the channel stats."""
        stats = self.stats
        stats.row_hits = sum(b.row_hits for b in self.banks.values())
        stats.row_misses = sum(b.row_misses for b in self.banks.values())
        stats.row_conflicts = sum(b.row_conflicts for b in self.banks.values())

    def publish_metrics(self, registry: object) -> None:
        """Publish this channel's counters into a telemetry registry
        (duck-typed ``repro.telemetry.MetricsRegistry`` — the DRAM layer
        never imports the telemetry package)."""
        self.collect_bank_stats()
        stats = self.stats
        labels = {"channel": str(self.channel)}
        for name, help_text, value in (
            ("dram_reads_total", "column reads issued", stats.reads),
            ("dram_writes_total", "column writes issued", stats.writes),
            ("dram_row_hits_total", "row-buffer hits", stats.row_hits),
            ("dram_row_misses_total", "row-buffer misses (bank idle)",
             stats.row_misses),
            ("dram_row_conflicts_total",
             "bank conflicts (wrong row open)", stats.row_conflicts),
        ):
            registry.counter(  # type: ignore[attr-defined]
                name, help_text, labelnames=("channel",)
            ).inc(value, **labels)
        registry.gauge(  # type: ignore[attr-defined]
            "dram_bus_busy_ns", "data-bus busy time per channel",
            labelnames=("channel",),
        ).set(stats.bus_busy_ns, **labels)
