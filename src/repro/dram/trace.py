"""Request-trace I/O for the DRAM timing simulator.

A trace is a plain-text file, one request per line::

    <channel> <rank> <bank> <row> <col> <R|W> [tag]

Lines starting with ``#`` are comments.  Traces make the simulator usable
standalone: capture a stream once (e.g. from the mapping translator),
replay it under different timings/policies, diff the results.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, TextIO, Union

import numpy as np

from repro.dram.address import DramCoord, Field
from repro.dram.command import Request

__all__ = ["save_trace", "load_trace", "trace_from_fields"]


def trace_from_fields(
    fields: dict,
    is_write: bool = False,
    tag: str = "",
) -> List[Request]:
    """Build a request list from decoded field arrays (the output of
    :meth:`MemoryController.translate_array`)."""
    n = len(fields[Field.CHANNEL])
    return [
        Request(
            coord=DramCoord(
                channel=int(fields[Field.CHANNEL][i]),
                rank=int(fields[Field.RANK][i]),
                bank=int(fields[Field.BANK][i]),
                row=int(fields[Field.ROW][i]),
                col=int(fields[Field.COL][i]),
            ),
            is_write=is_write,
            tag=tag,
        )
        for i in range(n)
    ]


def save_trace(requests: Iterable[Request], target: Union[str, TextIO]) -> int:
    """Write *requests* to *target* (path or file object); returns the
    number of lines written."""
    own = isinstance(target, str)
    handle: TextIO = open(target, "w") if own else target
    count = 0
    try:
        handle.write("# channel rank bank row col R/W [tag]\n")
        for request in requests:
            c = request.coord
            kind = "W" if request.is_write else "R"
            suffix = f" {request.tag}" if request.tag else ""
            handle.write(
                f"{c.channel} {c.rank} {c.bank} {c.row} {c.col} {kind}{suffix}\n"
            )
            count += 1
    finally:
        if own:
            handle.close()
    return count


def load_trace(source: Union[str, TextIO]) -> List[Request]:
    """Parse a trace file back into requests.

    Raises:
        ValueError: on malformed lines (with the line number).
    """
    own = isinstance(source, str)
    handle: TextIO = open(source, "r") if own else source
    requests: List[Request] = []
    try:
        for line_no, line in enumerate(handle, start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) not in (6, 7):
                raise ValueError(
                    f"line {line_no}: expected 6 or 7 fields, got {len(parts)}"
                )
            try:
                channel, rank, bank, row, col = (int(p) for p in parts[:5])
            except ValueError:
                raise ValueError(f"line {line_no}: non-integer coordinate") from None
            kind = parts[5].upper()
            if kind not in ("R", "W"):
                raise ValueError(f"line {line_no}: kind must be R or W, got {kind!r}")
            requests.append(
                Request(
                    coord=DramCoord(channel, rank, bank, row, col),
                    is_write=kind == "W",
                    tag=parts[6] if len(parts) == 7 else "",
                )
            )
    finally:
        if own:
            handle.close()
    return requests
