"""Functional DRAM contents: per-bank byte arrays.

This is the *data* half of the DRAM simulator (the timing half lives in
:mod:`repro.dram.system`).  Each bank is a ``rows x row_bytes`` byte array,
allocated lazily, so end-to-end tests can store a matrix through one
address mapping and read it back through another — the core correctness
claim of FACIL.

Intended for the small/medium test geometries; a guard refuses to
instantiate functional storage for multi-GB organizations, where only the
timing models are meaningful.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.dram.address import DramCoord
from repro.dram.config import DramOrganization

__all__ = ["PhysicalMemory"]

_BankKey = Tuple[int, int, int]

#: Functional storage guard: organizations larger than this are timing-only.
_MAX_FUNCTIONAL_BYTES = 1 << 32  # 4 GiB


class PhysicalMemory:
    """Byte-accurate storage for every bank of an organization."""

    def __init__(self, org: DramOrganization):
        if org.capacity_bytes > _MAX_FUNCTIONAL_BYTES:
            raise ValueError(
                f"organization capacity {org.capacity_bytes} B exceeds the "
                f"functional-memory guard ({_MAX_FUNCTIONAL_BYTES} B); use a "
                "smaller geometry for functional simulation"
            )
        self.org = org
        self._banks: Dict[_BankKey, np.ndarray] = {}
        #: reliability hook (see :mod:`repro.reliability.faults`): when
        #: set, ``fault_hook.on_bank_access(key, array)`` runs on every
        #: bank access, letting a fault injector re-assert stuck-at bits
        #: before any reader (SoC, ECC scrubber, or PIM) sees the array.
        self.fault_hook = None

    # -- bank access -----------------------------------------------------

    def bank(self, channel: int, rank: int, bank: int) -> np.ndarray:
        """The ``(rows, row_bytes)`` byte array of one bank (lazily zeroed)."""
        key = (channel, rank, bank)
        array = self._banks.get(key)
        if array is None:
            if not (
                0 <= channel < self.org.n_channels
                and 0 <= rank < self.org.ranks_per_channel
                and 0 <= bank < self.org.banks_per_rank
            ):
                raise ValueError(f"bank key {key} out of range for {self.org}")
            array = np.zeros(
                (self.org.rows_per_bank, self.org.row_bytes), dtype=np.uint8
            )
            self._banks[key] = array
        if self.fault_hook is not None:
            self.fault_hook.on_bank_access(key, array)
        return array

    def row(self, channel: int, rank: int, bank: int, row: int) -> np.ndarray:
        """One DRAM row (what an activate brings into the row buffer)."""
        return self.bank(channel, rank, bank)[row]

    def touched_banks(self) -> Iterator[_BankKey]:
        """Keys of banks that have been materialized."""
        return iter(sorted(self._banks))

    # -- scalar access ------------------------------------------------------

    def read_byte(self, coord: DramCoord) -> int:
        coord.validate(self.org)
        row = self.row(coord.channel, coord.rank, coord.bank, coord.row)
        return int(row[coord.col * self.org.transfer_bytes + coord.offset])

    def write_byte(self, coord: DramCoord, value: int) -> None:
        coord.validate(self.org)
        row = self.row(coord.channel, coord.rank, coord.bank, coord.row)
        row[coord.col * self.org.transfer_bytes + coord.offset] = value

    # -- vectorised access ----------------------------------------------------

    def gather(
        self,
        channel: np.ndarray,
        rank: np.ndarray,
        bank: np.ndarray,
        byte_index: np.ndarray,
    ) -> np.ndarray:
        """Read one byte per element of the coordinate arrays."""
        out = np.empty(len(byte_index), dtype=np.uint8)
        bank_id = self._bank_ids(channel, rank, bank)
        for key_id in self._present_bank_ids(bank_id):
            mask = bank_id == key_id
            key = self._key_from_id(int(key_id))
            flat = self.bank(*key).reshape(-1)
            out[mask] = flat[byte_index[mask]]
        return out

    def scatter(
        self,
        channel: np.ndarray,
        rank: np.ndarray,
        bank: np.ndarray,
        byte_index: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Write one byte per element of the coordinate arrays."""
        bank_id = self._bank_ids(channel, rank, bank)
        values = np.asarray(values, dtype=np.uint8)
        for key_id in self._present_bank_ids(bank_id):
            mask = bank_id == key_id
            key = self._key_from_id(int(key_id))
            flat = self.bank(*key).reshape(-1)
            flat[byte_index[mask]] = values[mask]

    def _bank_ids(
        self, channel: np.ndarray, rank: np.ndarray, bank: np.ndarray
    ) -> np.ndarray:
        org = self.org
        return (
            channel * (org.ranks_per_channel * org.banks_per_rank)
            + rank * org.banks_per_rank
            + bank
        )

    def _present_bank_ids(self, bank_id: np.ndarray) -> np.ndarray:
        """Distinct bank ids present in *bank_id* — the domain is tiny
        (total_banks), so one bincount pass beats a sort/hash unique."""
        counts = np.bincount(bank_id, minlength=self.org.total_banks)
        return np.nonzero(counts)[0]

    def _key_from_id(self, key_id: int) -> _BankKey:
        org = self.org
        channel, rem = divmod(key_id, org.ranks_per_channel * org.banks_per_rank)
        rank, bank = divmod(rem, org.banks_per_rank)
        return (channel, rank, bank)
