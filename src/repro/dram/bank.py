"""Per-bank timing state machine for the DRAM simulator.

Tracks open rows and the earliest times each command class may issue,
enforcing the intra-bank JEDEC constraints (tRCD, tRP, tRAS, tRC, tWR,
tRTP).  Inter-bank constraints (tRRD, tFAW) and bus occupancy live in the
channel scheduler.

Supports **dual (N-way) row buffers** — the NeuPIMs-style mitigation the
paper's §V-C "Remaining Challenges" points to for SoC-PIM co-scheduling:
with two row buffers per bank, a PIM MAC stream and a concurrent SoC
stream each keep their own row open instead of ping-ponging the single
buffer with conflicts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.config import DramTimings

__all__ = ["BankState"]


@dataclass
class BankState:
    """Timing state of one DRAM bank.

    Attributes:
        n_row_buffers: rows that can be held open simultaneously (1 for
            commodity DRAM; 2 models the dual-row-buffer proposal).
    """

    n_row_buffers: int = 1
    next_act_ns: float = 0.0  # earliest ACT issue
    next_pre_ns: float = 0.0  # earliest PRE issue
    next_col_ns: float = 0.0  # earliest RD/WR issue
    last_act_ns: float = -1e18
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    #: open rows, LRU-ordered (last = most recently used)
    _open: "OrderedDict[int, None]" = field(default_factory=OrderedDict)

    # -- open-row queries ---------------------------------------------------

    @property
    def open_row(self) -> Optional[int]:
        """Most-recently-used open row (None when all buffers are idle)."""
        if not self._open:
            return None
        return next(reversed(self._open))

    def is_open(self, row: int) -> bool:
        return row in self._open

    def open_rows(self):
        return tuple(self._open)

    # -- state transitions -------------------------------------------------------

    def prepare_column(
        self, row: int, now_ns: float, timings: DramTimings, is_write: bool
    ) -> float:
        """Advance the bank state so *row* is open; returns the earliest
        time a column command for it may issue (bank-local constraints
        only — the caller still applies bus and rank constraints).
        """
        if row in self._open:
            self._open.move_to_end(row)
            self.row_hits += 1
            return max(now_ns, self.next_col_ns)

        if len(self._open) < self.n_row_buffers:
            # a free row buffer: plain activation
            self.row_misses += 1
            act = max(now_ns, self.next_act_ns)
        else:
            # evict the LRU open row: precharge, then activate
            self.row_conflicts += 1
            victim = next(iter(self._open))
            del self._open[victim]
            pre = max(now_ns, self.next_pre_ns, self.last_act_ns + timings.tRAS)
            act = max(pre + timings.tRP, self.next_act_ns)
        self._open[row] = None
        self.last_act_ns = act
        self.next_act_ns = act + timings.tRC
        self.next_col_ns = act + timings.tRCD
        # PRE may not issue until tRAS after ACT; column commands push it
        # further (applied in note_column).
        self.next_pre_ns = act + timings.tRAS
        return self.next_col_ns

    def close_all(self) -> None:
        """Precharge every row buffer (all-bank refresh requires it)."""
        self._open.clear()

    def note_column(
        self, issue_ns: float, timings: DramTimings, is_write: bool, burst_ns: float
    ) -> None:
        """Record a column command issued at *issue_ns*."""
        self.next_col_ns = issue_ns + timings.tCCD
        if is_write:
            recovery = issue_ns + timings.tCWL + burst_ns + timings.tWR
        else:
            recovery = issue_ns + timings.tRTP
        self.next_pre_ns = max(self.next_pre_ns, recovery)
