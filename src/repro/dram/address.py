"""DRAM coordinates: the target of PA-to-DA translation.

A :class:`DramCoord` identifies one transfer-sized slot in the memory
system: which channel, rank, bank, row, column, and byte offset within the
transfer.  Address mappings translate physical addresses into these
coordinates and back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DramOrganization

__all__ = ["DramCoord", "Field", "FIELDS"]


class Field:
    """DRAM coordinate field names (string constants, not an enum, so
    they read cleanly in mapping specs and reprs)."""

    CHANNEL = "channel"
    RANK = "rank"
    BANK = "bank"
    ROW = "row"
    COL = "col"
    OFFSET = "offset"


FIELDS = (
    Field.CHANNEL,
    Field.RANK,
    Field.BANK,
    Field.ROW,
    Field.COL,
    Field.OFFSET,
)


@dataclass(frozen=True, order=True)
class DramCoord:
    """One position in the DRAM system, down to a byte within a transfer."""

    channel: int
    rank: int
    bank: int
    row: int
    col: int
    offset: int = 0

    def validate(self, org: DramOrganization) -> "DramCoord":
        """Raise ValueError if the coordinate lies outside *org*."""
        limits = (
            ("channel", self.channel, org.n_channels),
            ("rank", self.rank, org.ranks_per_channel),
            ("bank", self.bank, org.banks_per_rank),
            ("row", self.row, org.rows_per_bank),
            ("col", self.col, org.cols_per_row),
            ("offset", self.offset, org.transfer_bytes),
        )
        for name, value, limit in limits:
            if not 0 <= value < limit:
                raise ValueError(f"{name}={value} out of range [0, {limit})")
        return self

    def pu_index(self, org: DramOrganization) -> int:
        """Global processing-unit index of the bank holding this coordinate.

        FACIL's formulation treats (bank, rank, channel) as the
        "PU-changing" bits, with bank varying fastest, matching the bit
        order used by the PIM mapping builders.
        """
        return (
            self.bank
            + self.rank * org.banks_per_rank
            + self.channel * org.banks_per_rank * org.ranks_per_channel
        )

    def byte_index(self, org: DramOrganization) -> int:
        """Linear byte index inside the bank's (rows x row_bytes) array."""
        return self.row * org.row_bytes + self.col * org.transfer_bytes + self.offset
