"""DRAM organization and timing configurations.

The organization describes the *geometry* of the memory system (channels,
ranks, banks, rows, transfer size); the timings describe the JEDEC-style
command-to-command constraints used by the timing simulator.  Presets cover
the LPDDR5/LPDDR5X parts of the four platforms evaluated in the FACIL paper
(Table II) plus small test geometries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.bitfield import ilog2

__all__ = [
    "DramOrganization",
    "GDDR6_16000_TIMINGS",
    "DramTimings",
    "DramConfig",
    "LPDDR5_6400_TIMINGS",
    "LPDDR5X_7467_TIMINGS",
    "lpddr5_organization",
    "TINY_ORG",
]


@dataclass(frozen=True)
class DramOrganization:
    """Geometry of a DRAM memory system.

    Attributes:
        n_channels: independent channels, each with its own data bus.
        ranks_per_channel: ranks sharing a channel bus.
        banks_per_rank: banks per rank (16 for LPDDR5 in BG-off notation).
        rows_per_bank: DRAM rows per bank.
        row_bytes: size of one DRAM row (row-buffer) in bytes.
        transfer_bytes: bytes moved per column access (paper assumes 32 B).
        channel_width_bits: data-bus width of one channel.
        data_rate_mbps: transfer rate in MT/s (mega-transfers per second).
    """

    n_channels: int
    ranks_per_channel: int
    banks_per_rank: int
    rows_per_bank: int
    row_bytes: int = 2048
    transfer_bytes: int = 32
    channel_width_bits: int = 16
    data_rate_mbps: int = 6400

    def __post_init__(self) -> None:
        for name in (
            "n_channels",
            "ranks_per_channel",
            "banks_per_rank",
            "rows_per_bank",
            "row_bytes",
            "transfer_bytes",
        ):
            value = getattr(self, name)
            if value <= 0 or (value & (value - 1)):
                raise ValueError(f"{name} must be a positive power of two, got {value}")
        if self.transfer_bytes > self.row_bytes:
            raise ValueError("transfer_bytes cannot exceed row_bytes")

    # -- derived geometry -------------------------------------------------

    @property
    def total_banks(self) -> int:
        """Total bank count across the whole system (= PIM PU count)."""
        return self.n_channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def bank_bytes(self) -> int:
        return self.rows_per_bank * self.row_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.total_banks * self.bank_bytes

    @property
    def cols_per_row(self) -> int:
        """Column accesses (transfers) per DRAM row."""
        return self.row_bytes // self.transfer_bytes

    # -- derived bit widths ------------------------------------------------

    @property
    def offset_bits(self) -> int:
        return ilog2(self.transfer_bytes)

    @property
    def col_bits(self) -> int:
        return ilog2(self.cols_per_row)

    @property
    def bank_bits(self) -> int:
        return ilog2(self.banks_per_rank)

    @property
    def rank_bits(self) -> int:
        return ilog2(self.ranks_per_channel)

    @property
    def channel_bits(self) -> int:
        return ilog2(self.n_channels)

    @property
    def row_bits(self) -> int:
        return ilog2(self.rows_per_bank)

    def interleave_bits(self) -> int:
        """Bits that affect bank/rank/channel interleaving (PU-changing)."""
        return self.bank_bits + self.rank_bits + self.channel_bits

    # -- bandwidth ----------------------------------------------------------

    @property
    def channel_bandwidth_gbps(self) -> float:
        """Peak bandwidth of one channel in GB/s."""
        return self.data_rate_mbps * self.channel_width_bits / 8.0 / 1000.0

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak aggregate bandwidth in GB/s."""
        return self.channel_bandwidth_gbps * self.n_channels

    def rows_per_span(self, span_bytes: int) -> int:
        """DRAM rows per bank covered by *span_bytes* spread over all banks.

        A 2 MB huge page on a 512-bank system with 2 KB rows covers
        ``2 MB / (512 * 2 KB) = 2`` rows in each bank.
        """
        per_bank = span_bytes // self.total_banks
        if per_bank < self.transfer_bytes:
            raise ValueError(
                f"span {span_bytes} too small to cover all {self.total_banks} banks"
            )
        if per_bank % self.row_bytes:
            # span smaller than one full row per bank: partial-row spans are
            # legal for mapping purposes but cover "one" (partial) row.
            return 1
        return per_bank // self.row_bytes


@dataclass(frozen=True)
class DramTimings:
    """First-order JEDEC timing parameters, all in nanoseconds.

    These are device timings used by the bank state machine; command/data
    bus occupancy is derived from the organization's data rate.
    """

    tRCD: float = 18.0  # ACT -> column command
    tRP: float = 18.0  # PRE -> ACT
    tRAS: float = 42.0  # ACT -> PRE
    tRC: float = 60.0  # ACT -> ACT (same bank)
    tCCD: float = 5.0  # column -> column, same bank (tCCD_L; 4 CK at 800 MHz)
    tRRD: float = 5.0  # ACT -> ACT (different bank)
    tFAW: float = 20.0  # rolling four-activate window
    tWR: float = 18.0  # write recovery
    tWTR: float = 10.0  # write -> read turnaround
    tRTP: float = 7.5  # read -> precharge
    tCL: float = 17.0  # read latency
    tCWL: float = 14.0  # write latency
    tRFC: float = 180.0  # refresh cycle
    tREFI: float = 3900.0  # refresh interval

    def burst_time_ns(self, org: DramOrganization) -> float:
        """Time one transfer occupies the data bus of its channel."""
        transfers = org.transfer_bytes * 8 / org.channel_width_bits
        return transfers / (org.data_rate_mbps / 1000.0)


@dataclass(frozen=True)
class DramConfig:
    """An organization plus the timings that drive its simulation."""

    organization: DramOrganization
    timings: DramTimings

    @property
    def org(self) -> DramOrganization:
        return self.organization

    def with_data_rate(self, data_rate_mbps: int) -> "DramConfig":
        return DramConfig(
            organization=replace(self.organization, data_rate_mbps=data_rate_mbps),
            timings=self.timings,
        )


LPDDR5_6400_TIMINGS = DramTimings(
    tRCD=18.0,
    tRP=18.0,
    tRAS=42.0,
    tRC=60.0,
    tCCD=5.0,
    tRRD=5.0,
    tFAW=20.0,
    tWR=18.0,
    tWTR=10.0,
    tRTP=7.5,
    tCL=17.0,
    tCWL=14.0,
)

# LPDDR5X-7467 has the same ns-domain core timings; the faster bus shrinks
# the per-transfer burst time (derived from data_rate_mbps).
LPDDR5X_7467_TIMINGS = LPDDR5_6400_TIMINGS

#: GDDR6-class timings (the DRAM the taped-out AiM prototype uses): the
#: much faster interface clock tightens the column cadence.
GDDR6_16000_TIMINGS = DramTimings(
    tRCD=14.0,
    tRP=14.0,
    tRAS=28.0,
    tRC=42.0,
    tCCD=2.0,
    tRRD=4.0,
    tFAW=16.0,
    tWR=14.0,
    tWTR=8.0,
    tRTP=6.0,
    tCL=14.0,
    tCWL=10.0,
)


def lpddr5_organization(
    bus_width_bits: int,
    capacity_gb: int,
    data_rate_mbps: int = 6400,
    ranks_per_channel: int = 2,
    banks_per_rank: int = 16,
    row_bytes: int = 2048,
    transfer_bytes: int = 32,
) -> DramOrganization:
    """Build an LPDDR5 organization from a platform's bus width and capacity.

    One LPDDR5 channel is 16 bits wide, so a 256-bit bus is 16 channels.
    Rows per bank are derived from capacity.
    """
    if bus_width_bits % 16:
        raise ValueError("LPDDR5 bus width must be a multiple of 16 bits")
    n_channels = bus_width_bits // 16
    total_banks = n_channels * ranks_per_channel * banks_per_rank
    bank_bytes = capacity_gb * (1 << 30) // total_banks
    rows_per_bank = bank_bytes // row_bytes
    return DramOrganization(
        n_channels=n_channels,
        ranks_per_channel=ranks_per_channel,
        banks_per_rank=banks_per_rank,
        rows_per_bank=rows_per_bank,
        row_bytes=row_bytes,
        transfer_bytes=transfer_bytes,
        channel_width_bits=16,
        data_rate_mbps=data_rate_mbps,
    )


#: Small geometry for fast functional tests: 8 banks, 256 B rows, 8 MiB
#: total — large enough for a few 2 MB huge pages, small enough to store
#: functionally.
TINY_ORG = DramOrganization(
    n_channels=2,
    ranks_per_channel=1,
    banks_per_rank=4,
    rows_per_bank=4096,
    row_bytes=256,
    transfer_bytes=32,
)
