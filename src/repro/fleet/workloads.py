"""Fleet-scale traffic shapes: diurnal Poisson mixtures and bursty overload.

Per-tenant arrivals stay Poisson (:mod:`repro.serving.workload`), but a
fleet serves *populations*, and population traffic is not stationary: it
breathes on a daily cycle and it spikes.  This module makes the shape a
first-class spec — an :class:`ArrivalShape` maps virtual time to a rate
multiplier, and :func:`shaped_workload` samples the resulting
**inhomogeneous** Poisson process by thinning [Lewis & Shedler 1979]:
draw candidate arrivals at the tenant's peak rate, keep each with
probability ``multiplier(t) / peak``.  Thinning draws exactly one
uniform per candidate on the same single seeded stream as everything
else, so one seed still reproduces a whole fleet run byte-for-byte, and
a ``SteadyShape`` (multiplier 1 everywhere) thins nothing away in
expectation.

Two canned shapes cover the autoscaler's design load:

* :data:`DIURNAL` — a raised-cosine day: traffic swings between
  ``floor`` (pre-dawn trough) and 1.0 (evening peak) over ``period_ms``.
  The autoscaler should track the swell — scale up into the peak, drain
  down the trough.
* :data:`BURSTY_OVERLOAD` — quiet baseline traffic with periodic
  ``burst_multiplier``× windows (a push notification landing on every
  device at once).  The admission queues shed, the autoscaler recruits
  standby devices, and goodput must degrade *gracefully*, not cliff.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from repro.llm.datasets import QueryTrace
from repro.serving.workload import MAX_TURNS, Request, TenantSpec

__all__ = [
    "ArrivalShape",
    "BURSTY_OVERLOAD",
    "BurstyShape",
    "DIURNAL",
    "DiurnalShape",
    "SteadyShape",
    "shaped_workload",
]


class ArrivalShape(Protocol):
    """Time-varying arrival-rate modulation, normalized to peak 1.0."""

    def rate_multiplier(self, t_ns: float) -> float:
        """Fraction of the tenant's peak rate arriving around *t_ns*
        (must stay within [0, 1] — the thinning bound)."""
        ...


@dataclass(frozen=True)
class SteadyShape:
    """Constant traffic: the homogeneous-Poisson baseline."""

    def rate_multiplier(self, t_ns: float) -> float:
        return 1.0


@dataclass(frozen=True)
class DiurnalShape:
    """Raised-cosine daily cycle between ``floor`` and 1.0.

    ``phase`` picks where in the cycle t=0 falls: 0.0 starts at the
    trough, 0.5 at the peak.
    """

    period_ms: float = 2_000.0
    floor: float = 0.2
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if not 0.0 <= self.floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        if not 0.0 <= self.phase < 1.0:
            raise ValueError("phase must be in [0, 1)")

    def rate_multiplier(self, t_ns: float) -> float:
        cycles = t_ns / (self.period_ms * 1e6) + self.phase
        # raised cosine: trough at cycle 0, peak at cycle 0.5
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * cycles))
        return self.floor + (1.0 - self.floor) * swing


@dataclass(frozen=True)
class BurstyShape:
    """Quiet baseline with periodic overload windows.

    The *peak* (multiplier 1.0) is the burst; baseline traffic runs at
    ``baseline = 1 / burst_multiplier`` so that tenant ``qps`` prices
    the burst itself — overload benches declare the worst case up front.
    """

    period_ms: float = 1_000.0
    burst_ms: float = 100.0
    burst_multiplier: float = 8.0

    def __post_init__(self) -> None:
        if self.period_ms <= 0 or self.burst_ms <= 0:
            raise ValueError("period_ms and burst_ms must be positive")
        if self.burst_ms >= self.period_ms:
            raise ValueError("burst_ms must be shorter than period_ms")
        if self.burst_multiplier <= 1.0:
            raise ValueError("burst_multiplier must exceed 1")

    def rate_multiplier(self, t_ns: float) -> float:
        into_period_ns = math.fmod(t_ns, self.period_ms * 1e6)
        if into_period_ns < self.burst_ms * 1e6:
            return 1.0
        return 1.0 / self.burst_multiplier


#: a "day" compressed to 2 virtual seconds: several full swells inside
#: one bench horizon without inflating runtime
DIURNAL = DiurnalShape(period_ms=2_000.0, floor=0.2)

#: 8x overload for 100 ms out of every second
BURSTY_OVERLOAD = BurstyShape(period_ms=1_000.0, burst_ms=100.0, burst_multiplier=8.0)


def shaped_workload(
    tenants: Sequence[TenantSpec],
    duration_ms: float,
    shape: Optional[ArrivalShape] = None,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Request]:
    """Sample a merged multi-tenant stream under *shape* by thinning.

    Mirrors :func:`repro.serving.workload.poisson_workload` (same
    multi-turn conversation semantics, same single-stream determinism
    discipline, same final merge-sort and dense req_id assignment); a
    ``None`` or :class:`SteadyShape` shape degenerates to a homogeneous
    process at the tenant's full ``qps``.  Conversation follow-up turns
    are *not* thinned — the user already engaged; the shape modulates
    session openings, which is how real diurnal traffic behaves.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    if shape is None:
        shape = SteadyShape()
    stream = rng if rng is not None else random.Random(seed)
    horizon_ns = duration_ms * 1e6
    requests: List[Request] = []
    conversation_id = 0
    for tenant in tenants:
        rate_per_ns = tenant.qps / 1e9  # the peak (thinning bound)
        multi_turn = tenant.mean_turns > 1.0
        p_more = 1.0 - 1.0 / tenant.mean_turns if multi_turn else 0.0
        think_rate_per_ns = 1.0 / (tenant.think_time_ms * 1e6)
        sample_at = getattr(tenant.dataset, "sample_at", None)

        def draw(at_ns: float) -> QueryTrace:
            if sample_at is not None:
                return sample_at(stream, at_ns)
            return tenant.dataset.sample_one(stream)

        t = stream.expovariate(rate_per_ns)
        while t < horizon_ns:
            keep = shape.rate_multiplier(t)
            if not 0.0 <= keep <= 1.0:
                raise ValueError(
                    f"shape multiplier {keep} at t={t:.0f} ns outside [0, 1]"
                )
            if stream.random() >= keep:  # thinned away
                t += stream.expovariate(rate_per_ns)
                continue
            trace = draw(t)
            if not multi_turn:
                requests.append(
                    Request(
                        req_id=-1,  # assigned after the merge sort below
                        tenant=tenant.name,
                        policy=tenant.policy,
                        arrival_ns=t,
                        prefill_tokens=trace.prefill_tokens,
                        decode_tokens=trace.decode_tokens,
                        deadline_ns=tenant.deadline_ms * 1e6,
                    )
                )
            else:
                conv = conversation_id
                conversation_id += 1
                turn_t = t
                context = 0
                turn = 0
                while True:
                    requests.append(
                        Request(
                            req_id=-1,
                            tenant=tenant.name,
                            policy=tenant.policy,
                            arrival_ns=turn_t,
                            prefill_tokens=context + trace.prefill_tokens,
                            decode_tokens=trace.decode_tokens,
                            deadline_ns=tenant.deadline_ms * 1e6,
                            conversation_id=conv,
                            turn_index=turn,
                            context_tokens=context,
                        )
                    )
                    context += trace.prefill_tokens + trace.decode_tokens
                    turn += 1
                    if turn >= MAX_TURNS or stream.random() >= p_more:
                        break
                    turn_t += stream.expovariate(think_rate_per_ns)
                    trace = draw(turn_t)
            t += stream.expovariate(rate_per_ns)
    requests.sort(key=lambda r: (r.arrival_ns, r.tenant))
    return [
        Request(
            req_id=i,
            tenant=r.tenant,
            policy=r.policy,
            arrival_ns=r.arrival_ns,
            prefill_tokens=r.prefill_tokens,
            decode_tokens=r.decode_tokens,
            deadline_ns=r.deadline_ns,
            conversation_id=r.conversation_id,
            turn_index=r.turn_index,
            context_tokens=r.context_tokens,
        )
        for i, r in enumerate(requests)
    ]
