"""One fleet member: an isolated failure domain with a health machine.

A :class:`FleetDevice` bundles everything one device owns — inference
engine, admission queue, circuit breakers, brown-out controller, health
monitor, a journaled KV block pool with its own fault injector, and two
resource timelines (SoC / PIM) — so that losing the device loses exactly
this state and nothing else.  All per-device randomness (phase faults)
flows through one ``random.Random`` derived from ``(fleet seed,
device_id)``, so a fleet run reproduces byte-identically whatever the
device count.

The **health state machine** rides the reliability subsystem's sliding
fault-rate windows (:class:`~repro.reliability.degrade.HealthMonitor`):

    ACTIVE --rate >= degrade--> DEGRADED --rate >= quarantine--> QUARANTINED
       ^          |                                                  |
       +----------+ (window clears)            revive (recovery_ms) -+

plus two administrative states: DRAINING (autoscaler: finish queued
work, accept nothing new; an in-flight adaptive canary is rolled back
on entry) and STANDBY (powered down — the autoscaler's spare pool).
QUARANTINED is also entered by an injected **kill**: the device's
fault injector arms a KV-journal crash site, the in-flight pool
operation dies mid-transaction, :func:`~repro.kvcache.pool.recover_pool`
replays the journal, and the recovered pool is audited with the same
refcount-reconciliation oracle the chaos campaigns use — device loss is
crash-equivalent by construction, not by analogy.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.journal import InjectedCrash, MapJournal
from repro.engine.policies import InferenceEngine, decode_on_pim
from repro.kvcache.block import BlockRef
from repro.kvcache.pool import KV_CRASH_SITES, BlockPool, KvSpec, recover_pool
from repro.platforms.specs import PlatformSpec
from repro.reliability.degrade import RETRY_BASE_BACKOFF_NS, HealthMonitor
from repro.reliability.faults import FaultInjector
from repro.serving.breaker import BrownoutController, CircuitBreaker
from repro.serving.queue import AdmissionQueue
from repro.serving.workload import Request

__all__ = ["DEVICE_STATES", "DeviceSpec", "DeviceState", "FleetDevice"]


class DeviceState(enum.Enum):
    ACTIVE = "active"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"
    DRAINING = "draining"
    STANDBY = "standby"


DEVICE_STATES = tuple(DeviceState)

#: states the router may place new work on
ROUTABLE_STATES = (DeviceState.ACTIVE, DeviceState.DEGRADED)


@dataclass(frozen=True)
class DeviceSpec:
    """Static identity and tuning of one fleet member."""

    device_id: int
    platform: PlatformSpec
    queue_capacity: int = 8
    shed_policy: str = "reject"
    degrade_watermark: Optional[int] = None
    degraded_decode_tokens: int = 8
    max_retries: int = 3
    base_backoff_ns: float = RETRY_BASE_BACKOFF_NS
    jitter: float = 0.0
    #: transient fault probability per phase attempt, by component
    pim_fault_rate: float = 0.0
    mapping_fault_rate: float = 0.0
    soc_fault_rate: float = 0.0
    #: health machine: windowed fault-rate watermarks (any component)
    degrade_fault_rate: float = 0.25
    quarantine_fault_rate: float = 0.625
    health_min_observations: int = 8
    #: breaker tuning (mirrors ServingConfig)
    breaker_threshold: float = 0.5
    breaker_min_observations: int = 4
    breaker_cooldown_ns: float = 5e6
    breaker_probe_quota: int = 2
    brownout_high_ns: float = 5e9
    brownout_low_ns: float = 1e9
    #: per-device KV bookkeeping pool (prefix residency + kill journal)
    kv_blocks: int = 64
    block_tokens: int = 16
    max_blocks_per_conversation: int = 16
    prefix_sharing: bool = True

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError("device_id must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for rate in (self.pim_fault_rate, self.mapping_fault_rate, self.soc_fault_rate):
            if not 0.0 <= rate < 1.0:
                raise ValueError("fault rates must be in [0, 1)")
        if not 0.0 < self.degrade_fault_rate <= self.quarantine_fault_rate <= 1.0:
            raise ValueError(
                "need 0 < degrade_fault_rate <= quarantine_fault_rate <= 1"
            )
        if self.health_min_observations <= 0:
            raise ValueError("health_min_observations must be positive")
        if self.kv_blocks <= 0 or self.block_tokens <= 0:
            raise ValueError("kv_blocks and block_tokens must be positive")
        if self.max_blocks_per_conversation <= 0:
            raise ValueError("max_blocks_per_conversation must be positive")

    @property
    def name(self) -> str:
        return f"dev{self.device_id}/{self.platform.name}"


@dataclass
class _Residency:
    """A conversation's KV footprint on this device."""

    refs: List[BlockRef] = field(default_factory=list)
    tokens: int = 0
    last_use_ns: float = 0.0


@dataclass(frozen=True)
class _Route:
    """Resource plan for one request (mirrors the serving runtime)."""

    policy: str
    prefill_ns: float
    prefill_resource: str
    prefill_component: str
    pim_allowed: bool
    brownout_active: bool
    fallbacks: Tuple[str, ...]


@dataclass(frozen=True)
class ServedPhases:
    """What one completed service consumed (for outcome assembly)."""

    start_ns: float
    prefill_end_ns: float
    end_ns: float
    status: str
    policy_served: str
    decode_tokens_served: int
    retries: int
    backoff_ns: float
    fallbacks: Tuple[str, ...]
    prefill_tokens_priced: int
    prefix_hit: bool


@dataclass(frozen=True)
class Preempted:
    """Service interrupted by a device loss at *at_ns* (no outcome)."""

    request: Request
    at_ns: float


class FleetDevice:
    """One simulated device inside a fleet (see the module docstring)."""

    def __init__(
        self,
        spec: DeviceSpec,
        seed: int = 0,
        engine: Optional[InferenceEngine] = None,
        adaptive: Optional[object] = None,
    ) -> None:
        self.spec = spec
        self.seed = seed
        #: per-device substream: derived from (fleet seed, device_id) so
        #: adding a device never perturbs the others' draws
        self.device_seed = seed * 1_000_003 + 7919 * (spec.device_id + 1)
        self.engine = engine if engine is not None else InferenceEngine(spec.platform)
        self.rng = random.Random(self.device_seed)
        self.monitor = HealthMonitor()
        breaker_args = dict(
            monitor=self.monitor,
            fault_rate_threshold=spec.breaker_threshold,
            min_observations=spec.breaker_min_observations,
            cooldown_ns=spec.breaker_cooldown_ns,
            probe_quota=spec.breaker_probe_quota,
        )
        self.pim_breaker = CircuitBreaker("pim", **breaker_args)
        self.mapping_breaker = CircuitBreaker("mapping", **breaker_args)
        self.brownout = BrownoutController(spec.brownout_high_ns, spec.brownout_low_ns)
        self._breakers = {"pim": self.pim_breaker, "mapping": self.mapping_breaker}
        self.queue = AdmissionQueue(
            spec.queue_capacity, spec.shed_policy, spec.degrade_watermark
        )
        self.degraded: Dict[int, bool] = {}
        self.free = {"soc": 0.0, "pim": 0.0}
        self.clock = 0.0
        #: journaled KV bookkeeping pool — the device's failure domain
        self.journal = MapJournal()
        self.injector = FaultInjector(self.device_seed + 1)
        self.journal.fault_hook = self.injector
        self.pool = BlockPool(
            spec.kv_blocks,
            KvSpec(block_tokens=spec.block_tokens, kv_dim=8),
            journal=self.journal,
        )
        self.resident: Dict[int, _Residency] = {}
        #: optional per-device adaptive remapping controller
        self.adaptive = adaptive
        self.state = DeviceState.ACTIVE
        #: (virtual ns, from, to) — every health/admin transition
        self.transitions: List[Tuple[float, str, str]] = []
        # cumulative counters (survive kills and revives)
        self.served = 0
        self.kills = 0
        self.revives = 0
        #: KV crash site each kill fired on (campaign coverage evidence)
        self.kill_sites: List[str] = []
        self.audit_findings: List[str] = []
        self.prefix_hits = 0
        self.prefill_tokens_saved = 0
        self.kv_evicted_conversations = 0
        #: EWMA of observed service durations, seeded with a nominal
        #: SoC-path estimate so queued work on a never-served device is
        #: already visible to the router and autoscaler (backlog_ns)
        self._service_est_ns = self.engine.soc_prefill_ns(
            256
        ) + self.engine.decode_total_ns(256, 64, False)

    # -- state machine ---------------------------------------------------------

    def _move(self, new: DeviceState, now_ns: float) -> None:
        if new is not self.state:
            self.transitions.append((now_ns, self.state.value, new.value))
            self.state = new

    @property
    def routable(self) -> bool:
        return self.state in ROUTABLE_STATES

    @property
    def serving(self) -> bool:
        """May this device work through its queue? (DRAINING still serves.)"""
        return self.state in ROUTABLE_STATES or self.state is DeviceState.DRAINING

    def _windowed_fault_rate(self) -> float:
        """Worst per-component sliding-window fault rate with enough
        observations to mean anything — the health machine's input."""
        worst = 0.0
        for component in ("pim", "mapping", "soc"):
            if self.monitor.observations(component) >= self.spec.health_min_observations:
                worst = max(worst, self.monitor.fault_rate(component))
        return worst

    def update_health(self, now_ns: float) -> DeviceState:
        """Re-derive ACTIVE/DEGRADED/QUARANTINED from the fault windows.

        Administrative states (DRAINING, STANDBY) are never overridden;
        QUARANTINED is entered here only by sustained fault pressure —
        an injected kill goes through :meth:`kill` instead.
        """
        if self.state not in (
            DeviceState.ACTIVE,
            DeviceState.DEGRADED,
            DeviceState.QUARANTINED,
        ):
            return self.state
        rate = self._windowed_fault_rate()
        if self.state is not DeviceState.QUARANTINED:
            if rate >= self.spec.quarantine_fault_rate:
                self._move(DeviceState.QUARANTINED, now_ns)
            elif rate >= self.spec.degrade_fault_rate:
                self._move(DeviceState.DEGRADED, now_ns)
            elif self.state is DeviceState.DEGRADED:
                self._move(DeviceState.ACTIVE, now_ns)
        return self.state

    def drain(self, now_ns: float) -> None:
        """Stop accepting new work; roll back any in-flight canary."""
        if self.state in (DeviceState.QUARANTINED, DeviceState.STANDBY):
            return
        if self.adaptive is not None:
            self.adaptive.abort_canary(
                -1, now_ns, reason="device draining"
            )
        self._move(DeviceState.DRAINING, now_ns)

    def finish_drain_if_idle(self, now_ns: float) -> bool:
        """DRAINING with an empty queue powers down to STANDBY."""
        if self.state is DeviceState.DRAINING and not len(self.queue):
            self._drop_all_residency(now_ns)
            self._move(DeviceState.STANDBY, now_ns)
            return True
        return False

    def activate(self, now_ns: float) -> None:
        """STANDBY/DRAINING back into rotation (autoscaler scale-up)."""
        if self.state in (DeviceState.STANDBY, DeviceState.DRAINING):
            self.free = {"soc": now_ns, "pim": now_ns}
            self.clock = max(self.clock, now_ns)
            self._move(DeviceState.ACTIVE, now_ns)

    # -- kill / revive ---------------------------------------------------------

    def kill(self, now_ns: float, kill_index: int = 0) -> int:
        """Abrupt device loss, crash-equivalent by construction.

        Arms this device's own fault injector at a KV-journal crash
        site (cycled by *kill_index*), drives a pool operation into the
        armed crash, recovers the journal, audits the recovered pool
        against the device's residency table, and drops all KV (the
        conversations will be recomputed elsewhere).  Returns the number
        of audit findings added (0 on a clean recovery).
        """
        before = len(self.audit_findings)
        site = KV_CRASH_SITES[kill_index % len(KV_CRASH_SITES)]
        op = site.split(":", 1)[0]
        label = f"{self.spec.name} kill {self.kills} site {site}"

        # stage the pool so the op is legal, then arm and crash
        holders = self._holder_refs()
        popped: Optional[BlockRef] = None
        if op == "kvalloc" and self.pool.free_blocks == 0 and holders:
            victim = holders[0]
            self._forget_ref(victim)
            self.pool.free(victim, now_ns)
            holders = self._holder_refs()
        if op == "kvfree":
            if holders:
                popped = holders[0]
                self._forget_ref(popped)
            else:
                popped = self.pool.alloc(now_ns).ref
        self.injector.schedule_crash(site)
        crashed = False
        try:
            if op == "kvalloc":
                if self.pool.free_blocks:
                    block = self.pool.alloc(now_ns)
                    # an alloc that survives the armed site cannot happen
                    self.pool.free(block.ref, now_ns)
            else:
                if popped is None:
                    raise RuntimeError("kvfree crash site armed with no live block")
                self.pool.free(popped, now_ns)
        except InjectedCrash:
            crashed = True
        self.injector._pending_crash = None  # disarm whatever did not fire
        if not crashed:
            self.audit_findings.append(f"{label}: armed crash never fired")

        recover_pool(self.pool)
        self._audit_pool(label)
        self._drop_all_residency(now_ns)
        if self.pool.used != 0:
            self.audit_findings.append(
                f"{label}: {self.pool.used} block(s) still live after loss"
            )
        self.journal.truncate_committed()

        self.kills += 1
        self.kill_sites.append(site)
        self._move(DeviceState.QUARANTINED, now_ns)
        return len(self.audit_findings) - before

    def revive(self, now_ns: float) -> bool:
        """QUARANTINED back to ACTIVE with cold state (maintenance)."""
        if self.state is not DeviceState.QUARANTINED:
            return False
        for component in ("pim", "mapping", "soc"):
            self.monitor.reset(component)
        self.free = {"soc": now_ns, "pim": now_ns}
        self.clock = max(self.clock, now_ns)
        self.revives += 1
        self._move(DeviceState.ACTIVE, now_ns)
        return True

    # -- KV residency ----------------------------------------------------------

    def _holder_refs(self) -> List[BlockRef]:
        refs: List[BlockRef] = []
        for conv_id in sorted(self.resident):
            refs.extend(self.resident[conv_id].refs)
        return refs

    def _forget_ref(self, ref: BlockRef) -> None:
        for conv_id in sorted(self.resident):
            res = self.resident[conv_id]
            if ref in res.refs:
                res.refs.remove(ref)
                return

    def _audit_pool(self, label: str) -> None:
        """The chaos campaigns' oracle: structural audit plus refcount
        reconciliation against this device's residency table."""
        violations = self.pool.audit()
        if violations:
            self.audit_findings.append(f"{label}: pool audit: {violations[0]}")
        expected = {ref.block_id: 1 for ref in self._holder_refs()}
        actual = self.pool.refcounts()
        if expected != actual:
            self.audit_findings.append(
                f"{label}: live refcounts {actual} != held {expected}"
            )

    def _drop_all_residency(self, now_ns: float) -> None:
        for conv_id in sorted(self.resident):
            for ref in self.resident[conv_id].refs:
                self.pool.free(ref, now_ns)
        self.resident.clear()

    def evict_conversation(self, conv_id: int, now_ns: float) -> bool:
        res = self.resident.pop(conv_id, None)
        if res is None:
            return False
        for ref in res.refs:
            self.pool.free(ref, now_ns)
        self.kv_evicted_conversations += 1
        return True

    def resident_tokens(self, conv_id: Optional[int]) -> int:
        if conv_id is None:
            return 0
        res = self.resident.get(conv_id)
        return res.tokens if res is not None else 0

    def _grow_residency(self, request: Request, tokens_total: int, now_ns: float) -> None:
        """Grow the conversation's KV footprint to cover *tokens_total*
        (evicting idle conversations LRU-first when the pool is full)."""
        conv_id = request.conversation_id
        if conv_id is None or not self.spec.prefix_sharing:
            return
        res = self.resident.get(conv_id)
        if res is None:
            res = _Residency()
            self.resident[conv_id] = res
        res.last_use_ns = now_ns
        want_blocks = min(
            -(-tokens_total // self.spec.block_tokens),
            self.spec.max_blocks_per_conversation,
        )
        while len(res.refs) < want_blocks:
            if self.pool.free_blocks == 0 and not self._evict_lru(conv_id, now_ns):
                break  # pool full of this conversation's own blocks
            res.refs.append(self.pool.alloc(now_ns).ref)
        res.tokens = min(tokens_total, len(res.refs) * self.spec.block_tokens)

    def _evict_lru(self, keep_conv_id: int, now_ns: float) -> bool:
        victim_id: Optional[int] = None
        victim_t = float("inf")
        for conv_id in sorted(self.resident):
            if conv_id == keep_conv_id:
                continue
            res = self.resident[conv_id]
            if res.refs and res.last_use_ns < victim_t:
                victim_t = res.last_use_ns
                victim_id = conv_id
        if victim_id is None:
            return False
        return self.evict_conversation(victim_id, now_ns)

    # -- load signals ----------------------------------------------------------

    def _observe_service(self, duration_ns: float) -> None:
        if duration_ns > 0.0:
            self._service_est_ns += 0.25 * (duration_ns - self._service_est_ns)

    def backlog_ns(self, now_ns: float) -> float:
        """Queued-but-unexecuted work: resource-timeline overhang plus
        the waiting queue scaled by the bottleneck service estimate (an
        EWMA of this device's observed service durations)."""
        overhang = max(
            0.0, max(self.free["soc"], self.free["pim"]) - max(now_ns, self.clock)
        )
        return overhang + len(self.queue) * self._service_est_ns

    def est_start(self) -> float:
        head = self.queue.peek()
        if head is None:
            return float("inf")
        return max(head.arrival_ns, self.clock)

    # -- admission -------------------------------------------------------------

    def offer(self, request: Request, now_ns: float) -> Tuple[str, Optional[Request]]:
        verdict, evicted = self.queue.offer(request, now_ns)
        if evicted is not None:
            self.degraded.pop(evicted.req_id, None)
        if verdict != "rejected":
            self.degraded[request.req_id] = verdict == "admitted-degraded"
        return verdict, evicted

    # -- routing and phase execution (mirrors the single-device loop) ---------

    def _price_prefill(
        self, policy: str, prefill_len: int, allow_pim: bool
    ) -> Tuple[float, str]:
        if allow_pim:
            return self.engine.prefill_ns(policy, prefill_len)
        if policy == "facil":
            return self.engine.prefill_ns(policy, prefill_len, dynamic_offload=False)
        if policy == "hybrid-dynamic":
            ns = self.engine.relayout_total_ns() + self.engine.soc_prefill_ns(
                prefill_len
            )
            return ns, "soc"
        return self.engine.prefill_ns(policy, prefill_len)

    def _route(self, request: Request, now_ns: float, priced_tokens: int) -> _Route:
        policy = request.policy
        fallbacks: List[str] = []
        if policy == "facil" and not self.mapping_breaker.allow(now_ns):
            policy = "hybrid-static"
            fallbacks.append("facil->hybrid-static (mapping breaker open)")
        pim_allowed = True
        brownout_active = False
        if policy != "soc-only":
            pim_allowed = self.pim_breaker.allow(now_ns)
            if not pim_allowed:
                fallbacks.append("pim->soc (pim breaker open)")
            brownout_active = self.brownout.observe(
                max(0.0, self.free["pim"] - now_ns), now_ns
            )
        prefill_pim_ok = pim_allowed and not brownout_active
        prefill_ns, prefill_resource = self._price_prefill(
            policy, priced_tokens, allow_pim=prefill_pim_ok
        )
        if prefill_resource == "pim":
            prefill_component = "pim"
        elif policy == "facil":
            prefill_component = "mapping"
        else:
            prefill_component = "soc"
        return _Route(
            policy=policy,
            prefill_ns=prefill_ns,
            prefill_resource=prefill_resource,
            prefill_component=prefill_component,
            pim_allowed=pim_allowed,
            brownout_active=brownout_active,
            fallbacks=tuple(fallbacks),
        )

    def _fault_rate(self, component: str) -> float:
        return {
            "pim": self.spec.pim_fault_rate,
            "mapping": self.spec.mapping_fault_rate,
            "soc": self.spec.soc_fault_rate,
        }[component]

    def _run_phase(
        self, start_ns: float, work_ns: float, component: str
    ) -> Tuple[float, bool, int, float]:
        """Retry-on-transient-fault phase pricing (see serving.runtime)."""
        spec = self.spec
        rate = self._fault_rate(component)
        breaker = self._breakers.get(component)
        t = start_ns
        retries = 0
        backoff_total = 0.0
        while True:
            t += work_ns
            if rate <= 0.0 or self.rng.random() >= rate:
                if breaker is not None:
                    breaker.record_success(t)
                else:
                    self.monitor.record_success(component)
                return t, True, retries, backoff_total
            if breaker is not None:
                breaker.record_failure(t)
            else:
                self.monitor.record_fault(component)
            if retries >= spec.max_retries:
                return t, False, retries, backoff_total
            wait = spec.base_backoff_ns * (2**retries)
            if spec.jitter:
                wait *= 1.0 + spec.jitter * self.rng.uniform(-1.0, 1.0)
            backoff_total += wait
            t += wait
            retries += 1

    # -- serving ---------------------------------------------------------------

    def serve_next(self, interrupt_ns: Optional[float] = None):
        """Pop the queue head and run it to completion on this device.

        Returns a :class:`ServedPhases` on a terminal disposition, or a
        :class:`Preempted` when *interrupt_ns* (the device's next
        scheduled loss) lands inside the service window — the caller
        re-admits the request elsewhere via the router.
        """
        result = self._serve_next(interrupt_ns)
        if isinstance(result, ServedPhases):
            self._observe_service(result.end_ns - result.start_ns)
        return result

    def _serve_next(self, interrupt_ns: Optional[float] = None):
        head = self.queue.peek()
        if head is None:
            raise RuntimeError("serve_next on an empty queue")
        est = max(head.arrival_ns, self.clock)

        # prefix-locality credit: tokens already resident here are not
        # re-prefilled (the KV scheduler's prefix sharing, fleet-grade)
        priced_tokens = head.prefill_tokens
        prefix_hit = False
        covered = min(head.context_tokens, self.resident_tokens(head.conversation_id))
        if covered > 0 and self.spec.prefix_sharing:
            priced_tokens = max(1, head.prefill_tokens - covered)
            prefix_hit = True

        route = self._route(head, est, priced_tokens)
        start = max(est, self.free[route.prefill_resource])
        if interrupt_ns is not None and start >= interrupt_ns:
            self.queue.pop(interrupt_ns)
            self.degraded.pop(head.req_id, None)
            return Preempted(head, interrupt_ns)
        self.queue.pop(start)
        self.clock = start
        was_degraded = self.degraded.pop(head.req_id, False)

        # boundary 1: admission -> prefill
        if start > head.deadline_abs_ns:
            return ServedPhases(
                start_ns=start, prefill_end_ns=start, end_ns=start,
                status="timed-out", policy_served=route.policy,
                decode_tokens_served=0, retries=0, backoff_ns=0.0,
                fallbacks=route.fallbacks,
                prefill_tokens_priced=priced_tokens, prefix_hit=prefix_hit,
            )

        prefill_end, ok, retries_p, backoff_p = self._run_phase(
            start, route.prefill_ns, route.prefill_component
        )
        self.free[route.prefill_resource] = prefill_end
        if interrupt_ns is not None and prefill_end > interrupt_ns:
            # the device dies mid-prefill: burned work, no outcome
            return Preempted(head, interrupt_ns)
        if not ok:
            return ServedPhases(
                start_ns=start, prefill_end_ns=prefill_end, end_ns=prefill_end,
                status="aborted", policy_served=route.policy,
                decode_tokens_served=0, retries=retries_p, backoff_ns=backoff_p,
                fallbacks=route.fallbacks,
                prefill_tokens_priced=priced_tokens, prefix_hit=prefix_hit,
            )

        # boundary 2: prefill -> decode (first token must be in budget)
        if prefill_end > head.deadline_abs_ns:
            return ServedPhases(
                start_ns=start, prefill_end_ns=prefill_end, end_ns=prefill_end,
                status="timed-out", policy_served=route.policy,
                decode_tokens_served=0, retries=retries_p, backoff_ns=backoff_p,
                fallbacks=route.fallbacks,
                prefill_tokens_priced=priced_tokens, prefix_hit=prefix_hit,
            )

        decode_tokens = head.decode_tokens
        if was_degraded:
            decode_tokens = max(
                1, min(decode_tokens, self.spec.degraded_decode_tokens)
            )
        fallbacks = route.fallbacks
        decode_pim = decode_on_pim(route.policy) and route.pim_allowed
        if decode_pim and route.brownout_active:
            pim_ns = self.engine.decode_total_ns(
                head.prefill_tokens, decode_tokens, True
            )
            soc_ns = self.engine.decode_total_ns(
                head.prefill_tokens, decode_tokens, False
            )
            if max(prefill_end, self.free["soc"]) + soc_ns < (
                max(prefill_end, self.free["pim"]) + pim_ns
            ):
                decode_pim = False
                fallbacks = fallbacks + ("pim->soc (brown-out)",)
        decode_ns = self.engine.decode_total_ns(
            head.prefill_tokens, decode_tokens, decode_pim
        )
        decode_resource = "pim" if decode_pim else "soc"
        decode_start = max(prefill_end, self.free[decode_resource])
        decode_end, ok, retries_d, backoff_d = self._run_phase(
            decode_start, decode_ns, decode_resource
        )
        self.free[decode_resource] = decode_end
        if interrupt_ns is not None and decode_end > interrupt_ns:
            # the device dies mid-service: all work burned, no outcome
            return Preempted(head, interrupt_ns)
        if not ok:
            return ServedPhases(
                start_ns=start, prefill_end_ns=prefill_end, end_ns=decode_end,
                status="aborted", policy_served=route.policy,
                decode_tokens_served=0, retries=retries_p + retries_d,
                backoff_ns=backoff_p + backoff_d, fallbacks=fallbacks,
                prefill_tokens_priced=priced_tokens, prefix_hit=prefix_hit,
            )

        self.served += 1
        if prefix_hit:
            self.prefix_hits += 1
            self.prefill_tokens_saved += head.prefill_tokens - priced_tokens
        self._grow_residency(
            head, head.prefill_tokens + decode_tokens, decode_end
        )
        return ServedPhases(
            start_ns=start, prefill_end_ns=prefill_end, end_ns=decode_end,
            status="served-degraded" if was_degraded else "served",
            policy_served=route.policy,
            decode_tokens_served=decode_tokens,
            retries=retries_p + retries_d,
            backoff_ns=backoff_p + backoff_d, fallbacks=fallbacks,
            prefill_tokens_priced=priced_tokens, prefix_hit=prefix_hit,
        )

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict:
        return {
            "device_id": self.spec.device_id,
            "platform": self.spec.platform.name,
            "state": self.state.value,
            "transitions": [(t, a, b) for t, a, b in self.transitions],
            "served": self.served,
            "kills": self.kills,
            "revives": self.revives,
            "audit_findings": len(self.audit_findings),
            "prefix_hits": self.prefix_hits,
            "prefill_tokens_saved": self.prefill_tokens_saved,
            "kv_evicted_conversations": self.kv_evicted_conversations,
            "kv_used_blocks": self.pool.used,
            "health": self.monitor.summary(),
            "breakers": {
                name: brk.snapshot() for name, brk in sorted(self._breakers.items())
            },
            "queue": {
                "offered": self.queue.stats.offered,
                "admitted": self.queue.stats.admitted,
                "rejected": self.queue.stats.rejected,
                "dropped": self.queue.stats.dropped,
                "peak_occupancy": self.queue.stats.peak_occupancy,
            },
        }
