"""The fleet event loop: N failure domains, one virtual clock.

:class:`FleetRuntime` merges four event sources onto one virtual
timeline — request arrivals, per-device service completions, timed
kill/revive events, and the autoscaler cadence — and advances whichever
comes first.  Devices never share state: each serves strictly from its
own queue on its own SoC/PIM timelines, so the fleet loop is pure
scheduling glue plus accounting.

**Failover** (preempt-and-recompute): a kill at time *t* drains the dead
device's admission queue and preempts any request whose service window
straddles *t*; every refugee is offered back through the router onto a
survivor, where it recomputes from scratch (the dead device's journal
recovery already proved no KV state needed to survive).  A refugee with
no routable device left, or rejected by the survivor's own admission
policy, is accounted as shed — the conservation law, checked in
:meth:`FleetReport.to_dict` and asserted by the chaos campaign, is that
**every offered request reaches exactly one terminal outcome**: served,
served-degraded, rejected, dropped, shed-unroutable, timed-out, or
aborted.  Nothing is silently lost, including mid-flight work on a
killed device.

A device **quarantined by sustained fault pressure** (``update_health``
crossing the quarantine watermark mid-run, no kill event involved) takes
the same failover edge: its admitted queue drains through the router
onto survivors and a timed revive (``recovery_ms``) returns it to
rotation — exactly the ``revive`` edge the device docstring draws.

Determinism: arrivals ride the workload stream; each device's phase
faults ride its own derived substream; kills ride the campaign's
separate stream (see :mod:`repro.fleet.chaos`).  Ties across devices
break by device id; ties across event kinds break timed-events-first so
a kill at *t* always beats a service starting at *t*, and revives
process before kills at the same instant so a kill scheduled exactly at
a revive timestamp still applies to the freshly revived device.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.metrics import LatencyStats
from repro.fleet.autoscaler import Autoscaler
from repro.fleet.device import DeviceSpec, DeviceState, FleetDevice, Preempted
from repro.fleet.router import FleetRouter
from repro.fleet.workloads import ArrivalShape, shaped_workload
from repro.platforms.specs import ALL_PLATFORMS
from repro.serving.workload import Request, TenantSpec

__all__ = ["FleetConfig", "FleetOutcome", "FleetReport", "FleetRuntime", "build_fleet"]

SERVED = "served"
SERVED_DEGRADED = "served-degraded"
REJECTED = "rejected"
DROPPED = "dropped"
SHED_UNROUTABLE = "shed-unroutable"
TIMED_OUT = "timed-out"
ABORTED = "aborted"

TERMINAL_STATUSES = (
    SERVED, SERVED_DEGRADED, REJECTED, DROPPED, SHED_UNROUTABLE,
    TIMED_OUT, ABORTED,
)


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for one fleet run."""

    n_devices: int = 4
    standby_devices: int = 0  # tail of the catalog parked for scale-up
    seed: int = 0
    queue_capacity: int = 8
    shed_policy: str = "reject"
    spill_backlog_ns: float = 2e9
    pim_fault_rate: float = 0.0
    mapping_fault_rate: float = 0.0
    soc_fault_rate: float = 0.0
    kv_blocks: int = 64
    block_tokens: int = 16
    #: quarantined-device dwell time before the timed revive
    recovery_ms: float = 50.0
    autoscale: bool = False
    autoscale_interval_ms: float = 100.0
    autoscale_high_backlog_ns: float = 2e9
    autoscale_low_backlog_ns: float = 2e8
    autoscale_patience: int = 2

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if not 0 <= self.standby_devices < self.n_devices:
            raise ValueError("need 0 <= standby_devices < n_devices")
        if self.recovery_ms <= 0:
            raise ValueError("recovery_ms must be positive")


@dataclass(frozen=True)
class FleetOutcome:
    """Terminal disposition of one offered request."""

    req_id: int
    tenant: str
    policy: str
    status: str
    arrival_ns: float
    deadline_ns: float
    device_id: int = -1  # -1: never placed on a device
    start_ns: float = 0.0
    first_token_ns: float = 0.0
    finish_ns: float = 0.0
    retries: int = 0
    failovers: int = 0
    prefix_hit: bool = False

    @property
    def served(self) -> bool:
        return self.status in (SERVED, SERVED_DEGRADED)

    @property
    def ttft_ns(self) -> float:
        return self.first_token_ns - self.arrival_ns

    @property
    def ttlt_ns(self) -> float:
        return self.finish_ns - self.arrival_ns


@dataclass
class FleetReport:
    """Fleet-wide aggregation plus per-device telemetry lanes."""

    config: FleetConfig
    outcomes: List[FleetOutcome] = field(default_factory=list)
    duration_ns: float = 0.0
    devices: List[Dict] = field(default_factory=list)
    router: Dict = field(default_factory=dict)
    autoscaler: Optional[Dict] = None
    kills: int = 0
    revives: int = 0
    #: devices quarantined by sustained fault pressure (not by a kill)
    health_quarantines: int = 0
    audit_findings: List[str] = field(default_factory=list)
    #: the ids the workload actually offered, recorded by the runtime so
    #: ``none_lost`` can detect a request that got *no* outcome at all
    offered_req_ids: List[int] = field(default_factory=list)

    def _count(self, *statuses: str) -> int:
        return sum(1 for o in self.outcomes if o.status in statuses)

    @property
    def offered(self) -> int:
        if self.offered_req_ids:
            return len(self.offered_req_ids)
        return len(self.outcomes)

    @property
    def served(self) -> int:
        return self._count(SERVED, SERVED_DEGRADED)

    @property
    def shed(self) -> int:
        return self._count(REJECTED, DROPPED, SHED_UNROUTABLE)

    @property
    def unserved(self) -> int:
        """Broken promises: admitted but never completed."""
        return self._count(TIMED_OUT, ABORTED)

    @property
    def failovers(self) -> int:
        return sum(o.failovers for o in self.outcomes)

    @property
    def goodput_qps(self) -> float:
        return self.served / (self.duration_ns / 1e9) if self.duration_ns else 0.0

    @property
    def slo_attainment(self) -> float:
        return self.served / self.offered if self.offered else 0.0

    @property
    def ttft(self) -> LatencyStats:
        return LatencyStats.from_values(
            [o.ttft_ns for o in self.outcomes if o.served]
        )

    @property
    def none_lost(self) -> bool:
        """The conservation law: every offered request has exactly one
        terminal outcome, every outcome status is terminal, and — when
        the runtime recorded the offered ids — the outcome ids match the
        offered ids exactly, so a stranded request with *no* outcome
        fails the law rather than slipping past a uniqueness check."""
        ids = [o.req_id for o in self.outcomes]
        if len(ids) != len(set(ids)):
            return False
        if any(o.status not in TERMINAL_STATUSES for o in self.outcomes):
            return False
        if self.offered_req_ids:
            return set(ids) == set(self.offered_req_ids)
        return True

    @property
    def ok(self) -> bool:
        return self.none_lost and not self.audit_findings

    def to_dict(self) -> Dict:
        return {
            "seed": self.config.seed,
            "n_devices": self.config.n_devices,
            "duration_ms": self.duration_ns / 1e6,
            "offered": self.offered,
            "served": self.served,
            "served_degraded": self._count(SERVED_DEGRADED),
            "shed": self.shed,
            "rejected": self._count(REJECTED),
            "dropped": self._count(DROPPED),
            "shed_unroutable": self._count(SHED_UNROUTABLE),
            "timed_out": self._count(TIMED_OUT),
            "aborted": self._count(ABORTED),
            "unserved": self.unserved,
            "failovers": self.failovers,
            "kills": self.kills,
            "revives": self.revives,
            "health_quarantines": self.health_quarantines,
            "goodput_qps": self.goodput_qps,
            "slo_attainment": self.slo_attainment,
            "ttft": self.ttft.to_dict(),
            "router": dict(self.router),
            "autoscaler": self.autoscaler,
            "devices": [dict(d) for d in self.devices],
            "audit_findings": list(self.audit_findings),
            "none_lost": self.none_lost,
            "ok": self.ok,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        from repro.telemetry.render import render_text

        d = self.to_dict()
        header = (
            f"fleet run: seed={d['seed']} devices={d['n_devices']} "
            f"duration={d['duration_ms']:.1f} ms"
        )
        pairs = [
            ("offered", d["offered"]),
            ("served", d["served"]),
            ("shed", d["shed"]),
            ("unserved", d["unserved"]),
            ("failovers", d["failovers"]),
            ("kills", d["kills"]),
            ("health quarantines", d["health_quarantines"]),
            ("goodput", f"{d['goodput_qps']:.1f} qps"),
            ("p99 TTFT", f"{d['ttft']['p99_ms']:.2f} ms"),
            ("none lost", d["none_lost"]),
            ("ok", d["ok"]),
        ]
        lanes = [
            f"  dev{lane['device_id']} [{lane['platform']}] "
            f"state={lane['state']} served={lane['served']} "
            f"kills={lane['kills']} prefix_hits={lane['prefix_hits']}"
            for lane in d["devices"]
        ]
        return "\n".join([render_text(header, pairs)] + lanes)


def build_fleet(config: FleetConfig) -> List[FleetDevice]:
    """Instantiate the device catalog, heterogeneous across the Table II
    platforms (cycled in order).  The last ``standby_devices`` members
    start parked in STANDBY as the autoscaler's spare pool."""
    devices: List[FleetDevice] = []
    for device_id in range(config.n_devices):
        spec = DeviceSpec(
            device_id=device_id,
            platform=ALL_PLATFORMS[device_id % len(ALL_PLATFORMS)],
            queue_capacity=config.queue_capacity,
            shed_policy=config.shed_policy,
            pim_fault_rate=config.pim_fault_rate,
            mapping_fault_rate=config.mapping_fault_rate,
            soc_fault_rate=config.soc_fault_rate,
            kv_blocks=config.kv_blocks,
            block_tokens=config.block_tokens,
        )
        device = FleetDevice(spec, seed=config.seed)
        if device_id >= config.n_devices - config.standby_devices:
            device._move(DeviceState.STANDBY, 0.0)
        devices.append(device)
    return devices


class FleetRuntime:
    """Drive one fleet through a workload (see the module docstring)."""

    def __init__(
        self,
        config: FleetConfig,
        devices: Optional[List[FleetDevice]] = None,
        telemetry: Optional[object] = None,
    ) -> None:
        self.config = config
        self.devices = devices if devices is not None else build_fleet(config)
        self.by_id = {d.spec.device_id: d for d in self.devices}
        self.router = FleetRouter(
            self.devices, spill_backlog_ns=config.spill_backlog_ns
        )
        self.autoscaler = (
            Autoscaler(
                self.devices,
                interval_ms=config.autoscale_interval_ms,
                high_backlog_ns=config.autoscale_high_backlog_ns,
                low_backlog_ns=config.autoscale_low_backlog_ns,
                patience=config.autoscale_patience,
            )
            if config.autoscale
            else None
        )
        self.telemetry = telemetry

    # -- accounting helpers ----------------------------------------------------

    def _shed_outcome(
        self, request: Request, status: str, device_id: int, failovers: int
    ) -> FleetOutcome:
        return FleetOutcome(
            req_id=request.req_id,
            tenant=request.tenant,
            policy=request.policy,
            status=status,
            arrival_ns=request.arrival_ns,
            deadline_ns=request.deadline_ns,
            device_id=device_id,
            failovers=failovers,
        )

    def _admit(
        self,
        request: Request,
        now_ns: float,
        outcomes: List[FleetOutcome],
        failovers: Dict[int, int],
        failover: bool = False,
    ) -> None:
        """Route one request and offer it; records shed outcomes."""
        n_failovers = failovers.get(request.req_id, 0)
        device = self.router.route(request, now_ns, failover=failover)
        if device is None:
            outcomes.append(
                self._shed_outcome(request, SHED_UNROUTABLE, -1, n_failovers)
            )
            failovers.pop(request.req_id, None)
            return
        verdict, evicted = device.offer(request, now_ns)
        if verdict == "rejected":
            outcomes.append(
                self._shed_outcome(
                    request, REJECTED, device.spec.device_id, n_failovers
                )
            )
            failovers.pop(request.req_id, None)
        if evicted is not None:
            outcomes.append(
                self._shed_outcome(
                    evicted, DROPPED, device.spec.device_id,
                    failovers.pop(evicted.req_id, 0),
                )
            )

    def _fail_over_device(
        self,
        device: FleetDevice,
        now_ns: float,
        carried: List[Request],
        outcomes: List[FleetOutcome],
        failovers: Dict[int, int],
    ) -> None:
        """Re-admit a dead device's queue (plus any preempted in-flight
        requests) on the survivors."""
        refugees: List[Request] = list(carried)
        refugees.extend(device.queue.drain(now_ns))
        device.degraded.clear()
        self.router.on_device_lost(device.spec.device_id, now_ns)
        for refugee in refugees:
            failovers[refugee.req_id] = failovers.get(refugee.req_id, 0) + 1
            self._admit(refugee, now_ns, outcomes, failovers, failover=True)

    # -- the loop --------------------------------------------------------------

    def run(
        self,
        requests: Sequence[Request],
        kills: Sequence[Tuple[float, int]] = (),
    ) -> FleetReport:
        """Serve *requests* while applying the timed *kills* schedule
        (each ``(t_ns, device_id)``; revive follows ``recovery_ms``
        later).  Returns the fleet report; every request in *requests*
        is guaranteed a terminal outcome."""
        cfg = self.config
        outcomes: List[FleetOutcome] = []
        failovers: Dict[int, int] = {}
        pending = sorted(requests, key=lambda r: (r.arrival_ns, r.req_id))
        kill_schedule = sorted(kills)
        kill_idx = 0
        arrival_idx = 0
        revives: List[Tuple[float, int]] = []  # (t_ns, device_id), sorted
        #: requests preempted mid-service, parked until their device's
        #: kill event lands (the device stays routable until then, so
        #: re-admitting early would bounce them straight back onto it)
        carried: Dict[int, List[Request]] = {}
        kills_applied = 0
        revives_applied = 0
        health_quarantines = 0
        clock = 0.0
        next_autoscale = (
            self.autoscaler.interval_ns if self.autoscaler is not None else None
        )

        def next_kill_for(device_id: int) -> Optional[float]:
            for t, did in kill_schedule[kill_idx:]:
                if did == device_id:
                    return t
            return None

        while True:
            t_arrival = (
                pending[arrival_idx].arrival_ns
                if arrival_idx < len(pending)
                else float("inf")
            )
            t_kill = (
                kill_schedule[kill_idx][0]
                if kill_idx < len(kill_schedule)
                else float("inf")
            )
            t_revive = revives[0][0] if revives else float("inf")
            serve_dev: Optional[FleetDevice] = None
            t_serve = float("inf")
            for device in self.devices:
                if device.serving and len(device.queue):
                    est = device.est_start()
                    if est < t_serve:
                        t_serve, serve_dev = est, device
            t_real = min(t_arrival, t_kill, t_revive, t_serve)
            if t_real == float("inf"):
                break  # the autoscaler alone cannot keep the clock alive
            t_scale = next_autoscale if next_autoscale is not None else float("inf")
            t_next = min(t_real, t_scale)
            clock = max(clock, t_next)

            # timed events first: a kill at t beats a service starting at
            # t, and a revive at t beats a kill at t (so a kill scheduled
            # exactly at a revive timestamp hits the revived device
            # instead of being skipped as already-quarantined)
            if t_revive <= t_next and t_revive <= t_kill:
                t, device_id = revives.pop(0)
                if self.by_id[device_id].revive(t):
                    revives_applied += 1
                continue
            if t_kill <= t_next:
                t, device_id = kill_schedule[kill_idx]
                kill_idx += 1
                device = self.by_id[device_id]
                if device.state is DeviceState.QUARANTINED:
                    continue  # already down; the campaign retargets, not us
                if device.state in (DeviceState.STANDBY, DeviceState.DRAINING):
                    # parked out of rotation: killing it would revive it
                    # into ACTIVE, pulling standby capacity into rotation
                    # behind the autoscaler's back
                    continue
                device.kill(t, kill_index=kills_applied)
                kills_applied += 1
                self._fail_over_device(
                    device, t, carried.pop(device_id, []), outcomes, failovers
                )
                revives.append((t + cfg.recovery_ms * 1e6, device_id))
                revives.sort()
                continue
            if t_scale <= t_next:
                if self.autoscaler is None or next_autoscale is None:
                    raise RuntimeError("autoscale event fired without an autoscaler")
                self.autoscaler.evaluate(next_autoscale)
                for device in self.devices:
                    device.finish_drain_if_idle(next_autoscale)
                next_autoscale += self.autoscaler.interval_ns
                continue
            if t_arrival <= t_next:
                request = pending[arrival_idx]
                arrival_idx += 1
                self._admit(request, request.arrival_ns, outcomes, failovers)
                continue

            # service: run the earliest-startable queue head to completion
            if serve_dev is None:
                raise RuntimeError("service event selected with no serviceable device")
            interrupt = next_kill_for(serve_dev.spec.device_id)
            head = serve_dev.queue.peek()
            if head is None:
                raise RuntimeError("serviceable device reported an empty queue head")
            result = serve_dev.serve_next(interrupt_ns=interrupt)
            if isinstance(result, Preempted):
                # park it; the pending kill event fails it over
                carried.setdefault(serve_dev.spec.device_id, []).append(
                    result.request
                )
            if serve_dev.update_health(serve_dev.clock) is DeviceState.QUARANTINED:
                # sustained fault pressure quarantined the device: drain
                # its admitted queue (plus any just-parked preemption)
                # onto survivors now and schedule the timed revive —
                # the same edge as an injected kill, minus the crash
                health_quarantines += 1
                self._fail_over_device(
                    serve_dev, serve_dev.clock,
                    carried.pop(serve_dev.spec.device_id, []),
                    outcomes, failovers,
                )
                revives.append(
                    (serve_dev.clock + cfg.recovery_ms * 1e6,
                     serve_dev.spec.device_id)
                )
                revives.sort()
            if isinstance(result, Preempted):
                continue
            outcomes.append(
                FleetOutcome(
                    req_id=head.req_id,
                    tenant=head.tenant,
                    policy=head.policy,
                    status=result.status,
                    arrival_ns=head.arrival_ns,
                    deadline_ns=head.deadline_ns,
                    device_id=serve_dev.spec.device_id,
                    start_ns=result.start_ns,
                    first_token_ns=result.prefill_end_ns,
                    finish_ns=result.end_ns,
                    retries=result.retries,
                    failovers=failovers.pop(head.req_id, 0),
                    prefix_hit=result.prefix_hit,
                )
            )

        # conservation backstop: a carried request whose kill event never
        # landed (cannot happen with a well-formed schedule) is still
        # accounted, never silently lost
        for device_id in sorted(carried):
            for refugee in carried[device_id]:
                outcomes.append(
                    self._shed_outcome(
                        refugee, SHED_UNROUTABLE, device_id,
                        failovers.pop(refugee.req_id, 0) + 1,
                    )
                )

        end_ns = max(
            [clock]
            + [o.finish_ns for o in outcomes]
            + [o.arrival_ns for o in outcomes]
        )
        for device in self.devices:
            device.brownout.finish(end_ns)
        outcomes.sort(key=lambda o: o.req_id)
        findings: List[str] = []
        for device in self.devices:
            findings.extend(
                f"dev{device.spec.device_id}: {finding}"
                for finding in device.audit_findings
            )
        report = FleetReport(
            config=cfg,
            outcomes=outcomes,
            duration_ns=end_ns,
            devices=[d.summary() for d in self.devices],
            router=self.router.summary(),
            autoscaler=(
                self.autoscaler.summary() if self.autoscaler is not None else None
            ),
            kills=kills_applied,
            revives=revives_applied,
            health_quarantines=health_quarantines,
            audit_findings=findings,
            offered_req_ids=sorted(r.req_id for r in requests),
        )
        self._publish_lanes(report)
        return report

    def _publish_lanes(self, report: FleetReport) -> None:
        """Per-device telemetry lanes on the shared metrics registry."""
        tel = self.telemetry
        if tel is None:
            return
        served = tel.metrics.counter(
            "fleet_device_served_total",
            "requests served, by device",
            labelnames=("device",),
        )
        kills = tel.metrics.counter(
            "fleet_device_kills_total",
            "injected device losses, by device",
            labelnames=("device",),
        )
        state = tel.metrics.gauge(
            "fleet_device_state",
            "device health state rank (0=active..4=standby)",
            labelnames=("device",),
        )
        ranks = {s.value: i for i, s in enumerate(DeviceState)}
        for lane in report.devices:
            label = f"dev{lane['device_id']}"
            served.inc(lane["served"], device=label)
            kills.inc(lane["kills"], device=label)
            state.set(float(ranks[lane["state"]]), device=label)


def fleet_workload(
    tenants: Sequence[TenantSpec],
    duration_ms: float,
    shape: Optional[ArrivalShape] = None,
    seed: int = 0,
) -> List[Request]:
    """Convenience wrapper: the fleet's shaped arrival stream."""
    return shaped_workload(tenants, duration_ms, shape=shape, seed=seed)
