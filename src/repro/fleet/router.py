"""Prefix-locality-aware placement with load-aware spill and failover.

The router owns one piece of state: the **affinity map** from
conversation id to the device holding that conversation's shared-prefix
KV blocks.  Placement policy, in order:

1. **Locality** — a conversation with affinity goes back to its device
   while that device is routable (ACTIVE or DEGRADED) *and* its backlog
   is under the spill threshold.  Re-prefilling a resident prefix is
   pure waste; riding a drowning device is worse — hence the spill.
2. **Spill / fresh placement** — least-loaded routable device, ACTIVE
   preferred over DEGRADED, ties broken by device id (determinism).
   Spilled conversations *move*: affinity follows the placement, and
   the old residency is evicted so the pool does not pin dead prefixes.
3. **Shed** — no routable device: the caller accounts the request as
   shed (never silently dropped).

**Failover** is re-placement under duress: when a device dies, the
runtime drains its queue (plus the preempted in-flight request) and
offers each refugee back through :meth:`route` — the dead device is
QUARANTINED, so placement lands on a survivor and the conversation's
next turn re-prefills from scratch there (preempt-and-recompute; the
journals already proved device loss is crash-equivalent, so no KV state
needs to survive).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.fleet.device import DeviceState, FleetDevice
from repro.serving.workload import Request

__all__ = ["FleetRouter"]

#: placement preference by health (lower is better); non-routable
#: states are absent on purpose
_STATE_RANK = {DeviceState.ACTIVE: 0, DeviceState.DEGRADED: 1}


class FleetRouter:
    """Place requests on fleet devices (see the module docstring)."""

    def __init__(
        self,
        devices: Iterable[FleetDevice],
        spill_backlog_ns: float = 2e9,
    ) -> None:
        if spill_backlog_ns <= 0:
            raise ValueError("spill_backlog_ns must be positive")
        self.devices: Dict[int, FleetDevice] = {
            d.spec.device_id: d for d in devices
        }
        if not self.devices:
            raise ValueError("a fleet needs at least one device")
        self.spill_backlog_ns = spill_backlog_ns
        #: conversation id -> device id currently holding its prefix KV
        self.affinity: Dict[int, int] = {}
        self.placements = 0
        self.locality_hits = 0
        self.spills = 0
        self.failovers = 0
        self.shed_unroutable = 0

    # -- placement -------------------------------------------------------------

    def _candidates(self) -> List[FleetDevice]:
        return [
            self.devices[did]
            for did in sorted(self.devices)
            if self.devices[did].state in _STATE_RANK
        ]

    def _least_loaded(self, now_ns: float) -> Optional[FleetDevice]:
        best: Optional[FleetDevice] = None
        best_key = None
        for dev in self._candidates():
            # backlog_ns already weights queued-but-unstarted work by
            # the device's service estimate (see FleetDevice.backlog_ns)
            key = (
                _STATE_RANK[dev.state],
                dev.backlog_ns(now_ns),
                dev.spec.device_id,
            )
            if best_key is None or key < best_key:
                best, best_key = dev, key
        return best

    def route(
        self, request: Request, now_ns: float, failover: bool = False
    ) -> Optional[FleetDevice]:
        """Pick the device for one arrival; ``None`` means shed.

        Does **not** enqueue — the caller offers to the returned
        device's admission queue (which may still reject under its own
        shed policy; that accounting stays per-device).
        """
        conv_id = request.conversation_id
        home: Optional[FleetDevice] = None
        if conv_id is not None and conv_id in self.affinity:
            home = self.devices.get(self.affinity[conv_id])
        if (
            home is not None
            and home.state in _STATE_RANK
            and home.backlog_ns(now_ns) < self.spill_backlog_ns
        ):
            self.placements += 1
            self.locality_hits += 1
            if failover:
                self.failovers += 1
            return home

        # locality miss: fresh or spilled placement
        chosen = self._least_loaded(now_ns)
        if chosen is None:
            self.shed_unroutable += 1
            return None
        self.placements += 1
        if failover:
            self.failovers += 1
        if conv_id is not None:
            previous = self.affinity.get(conv_id)
            if previous is not None and previous != chosen.spec.device_id:
                self.spills += 1
                old = self.devices.get(previous)
                if old is not None:
                    # the prefix moves with the conversation; a pinned
                    # copy on the old device would never be read again
                    old.evict_conversation(conv_id, now_ns)
            self.affinity[conv_id] = chosen.spec.device_id
        return chosen

    # -- failure / lifecycle hooks --------------------------------------------

    def on_device_lost(self, device_id: int, now_ns: float) -> List[int]:
        """Forget every affinity pinned to a dead device; returns the
        orphaned conversation ids (their next turn re-places fresh)."""
        orphans = [
            conv_id
            for conv_id in sorted(self.affinity)
            if self.affinity[conv_id] == device_id
        ]
        for conv_id in orphans:
            del self.affinity[conv_id]
        return orphans

    def summary(self) -> Dict[str, int]:
        return {
            "placements": self.placements,
            "locality_hits": self.locality_hits,
            "spills": self.spills,
            "failovers": self.failovers,
            "shed_unroutable": self.shed_unroutable,
        }
