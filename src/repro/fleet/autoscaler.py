"""Health-gated simulated autoscaling over a fixed device catalog.

Simulation-native autoscaling: the fleet is built with its maximum
footprint up front (every device's engine and pool exist from t=0), and
the autoscaler moves members between the **standby pool** (STANDBY:
powered down, holds no KV) and rotation.  "Adding a device" is therefore
deterministic and instant apart from the activation timestamp — no
model-loading simulation is smuggled into the serving numbers.

Policy, evaluated on a fixed cadence:

* **Scale up** when mean backlog across routable devices has exceeded
  ``high_backlog_ns`` for ``patience`` consecutive evaluations and a
  STANDBY device exists.  *Health gate*: while more than
  ``max_quarantined_fraction`` of the fleet is QUARANTINED, scale-up is
  suppressed — backlog during a fault storm is a symptom, and recruiting
  spares into whatever is killing devices burns the standby pool without
  fixing latency (the storm also churns affinity, so new capacity mostly
  re-prefills).
* **Drain** the least-loaded ACTIVE device when mean backlog has stayed
  under ``low_backlog_ns`` for ``patience`` evaluations, floored at
  ``min_active`` routable members.  Draining devices finish their queue
  and power down (DRAINING -> STANDBY); an in-flight adaptive canary is
  rolled back on entry (see :meth:`FleetDevice.drain`).

The high/low watermark gap plus patience is the same hysteresis idiom as
the brown-out controller: both edges damped, so diurnal swells produce a
clean up-peak/down-trough cycle instead of flapping at one threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fleet.device import DeviceState, FleetDevice

__all__ = ["AutoscaleEvent", "Autoscaler"]


@dataclass(frozen=True)
class AutoscaleEvent:
    """One autoscaler decision, for the report ledger."""

    t_ns: float
    action: str  # "scale-up" | "drain" | "hold-unhealthy"
    device_id: int  # -1 for fleet-wide holds
    reason: str

    def to_dict(self) -> Dict:
        return {
            "t_ns": self.t_ns,
            "action": self.action,
            "device_id": self.device_id,
            "reason": self.reason,
        }


class Autoscaler:
    """Move devices between standby and rotation (module docstring)."""

    def __init__(
        self,
        devices: List[FleetDevice],
        interval_ms: float = 100.0,
        high_backlog_ns: float = 2e9,
        low_backlog_ns: float = 2e8,
        patience: int = 2,
        min_active: int = 1,
        max_quarantined_fraction: float = 0.5,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if not 0 <= low_backlog_ns < high_backlog_ns:
            raise ValueError("need 0 <= low_backlog_ns < high_backlog_ns")
        if patience <= 0:
            raise ValueError("patience must be positive")
        if min_active <= 0:
            raise ValueError("min_active must be positive")
        if not 0.0 < max_quarantined_fraction <= 1.0:
            raise ValueError("max_quarantined_fraction must be in (0, 1]")
        self.devices = devices
        self.interval_ns = interval_ms * 1e6
        self.high_backlog_ns = high_backlog_ns
        self.low_backlog_ns = low_backlog_ns
        self.patience = patience
        self.min_active = min_active
        self.max_quarantined_fraction = max_quarantined_fraction
        self._high_streak = 0
        self._low_streak = 0
        self.events: List[AutoscaleEvent] = []

    # -- signals ---------------------------------------------------------------

    def _routable(self) -> List[FleetDevice]:
        return [d for d in self.devices if d.routable]

    def _mean_backlog_ns(self, now_ns: float) -> float:
        routable = self._routable()
        if not routable:
            return float("inf")  # everything is down: maximal pressure
        return sum(d.backlog_ns(now_ns) for d in routable) / len(routable)

    def _quarantined_fraction(self) -> float:
        quarantined = sum(
            1 for d in self.devices if d.state is DeviceState.QUARANTINED
        )
        return quarantined / len(self.devices)

    def _standby(self) -> Optional[FleetDevice]:
        for dev in self.devices:  # catalog order: deterministic
            if dev.state is DeviceState.STANDBY:
                return dev
        return None

    def _drain_candidate(self, now_ns: float) -> Optional[FleetDevice]:
        active = [d for d in self.devices if d.state is DeviceState.ACTIVE]
        if len(self._routable()) <= self.min_active or not active:
            return None
        return min(
            active, key=lambda d: (d.backlog_ns(now_ns), d.spec.device_id)
        )

    # -- the decision ----------------------------------------------------------

    def evaluate(self, now_ns: float) -> List[AutoscaleEvent]:
        """One cadence tick; applies at most one action and returns the
        events it logged (possibly a ``hold-unhealthy`` marker)."""
        backlog = self._mean_backlog_ns(now_ns)
        if backlog >= self.high_backlog_ns:
            self._high_streak += 1
            self._low_streak = 0
        elif backlog <= self.low_backlog_ns:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0

        fired: List[AutoscaleEvent] = []
        if self._high_streak >= self.patience:
            fraction = self._quarantined_fraction()
            if fraction > self.max_quarantined_fraction:
                event = AutoscaleEvent(
                    now_ns, "hold-unhealthy", -1,
                    f"{fraction:.0%} of fleet quarantined; backlog is a "
                    "fault symptom, not demand",
                )
                self.events.append(event)
                fired.append(event)
                self._high_streak = 0
                return fired
            spare = self._standby()
            if spare is not None:
                spare.activate(now_ns)
                event = AutoscaleEvent(
                    now_ns, "scale-up", spare.spec.device_id,
                    f"mean backlog {backlog / 1e6:.1f} ms >= "
                    f"{self.high_backlog_ns / 1e6:.1f} ms for "
                    f"{self.patience} evaluations",
                )
                self.events.append(event)
                fired.append(event)
            self._high_streak = 0
        elif self._low_streak >= self.patience:
            victim = self._drain_candidate(now_ns)
            if victim is not None:
                victim.drain(now_ns)
                event = AutoscaleEvent(
                    now_ns, "drain", victim.spec.device_id,
                    f"mean backlog {backlog / 1e6:.1f} ms <= "
                    f"{self.low_backlog_ns / 1e6:.1f} ms for "
                    f"{self.patience} evaluations",
                )
                self.events.append(event)
                fired.append(event)
            self._low_streak = 0
        return fired

    def summary(self) -> Dict:
        return {
            "scale_ups": sum(1 for e in self.events if e.action == "scale-up"),
            "drains": sum(1 for e in self.events if e.action == "drain"),
            "holds_unhealthy": sum(
                1 for e in self.events if e.action == "hold-unhealthy"
            ),
            "events": [e.to_dict() for e in self.events],
        }
