"""The kill-K-devices chaos campaign.

Hundreds of seeded device losses and recoveries against a live fleet
under multi-turn traffic, with the full audit battery after every loss:

* each kill drives the dead device's KV journal into an armed crash
  site (cycling all of :data:`~repro.kvcache.pool.KV_CRASH_SITES`),
  recovers, and reconciles refcounts — **zero findings** tolerated;
* every request the workload offered must reach exactly one terminal
  outcome — served on some device, or accounted as shed during failover
  — **none silently lost**;
* every declared KV crash site must actually fire (the fleet-level
  extension of the crash-site completeness oracle).

Determinism discipline: the kill schedule rides its **own** RNG stream
(``random.Random(spec.seed * 9973 + 65537)``), disjoint from the
workload stream and from every device's phase-fault substream.  Running
the campaign therefore perturbs no existing bench: the serving and
chaos BENCH baselines reproduce byte-identically whether or not a fleet
campaign ran in the same process.

The schedule is built kill-by-kill, round-robin over the catalog with a
uniform-jittered gap wider than the recovery dwell, so every scheduled
kill lands on a revived (killable) device; when the jitter would still
land on a down device, the kill retargets to the lowest-id alive one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fleet.runtime import FleetConfig, FleetReport, FleetRuntime
from repro.fleet.workloads import DIURNAL, shaped_workload
from repro.kvcache.pool import KV_CRASH_SITES
from repro.llm.datasets import ALPACA_LIKE
from repro.serving.workload import TenantSpec

__all__ = ["FleetChaosReport", "FleetChaosSpec", "run_fleet_chaos"]


@dataclass(frozen=True)
class FleetChaosSpec:
    """One campaign's shape."""

    n_devices: int = 4
    kills: int = 300
    seed: int = 0
    #: mean gap between consecutive kills (fleet-wide)
    kill_gap_ms: float = 20.0
    #: quarantine dwell before the timed revive; the per-device kill
    #: cadence is ``n_devices * kill_gap_ms``, which must exceed this
    recovery_ms: float = 10.0
    qps: float = 200.0
    deadline_ms: float = 400.0
    mean_turns: float = 3.0
    queue_capacity: int = 8
    shed_policy: str = "drop-oldest"

    def __post_init__(self) -> None:
        if self.n_devices <= 1:
            raise ValueError("a chaos campaign needs at least 2 devices")
        if self.kills <= 0:
            raise ValueError("kills must be positive")
        if self.kill_gap_ms <= 0 or self.recovery_ms <= 0:
            raise ValueError("kill_gap_ms and recovery_ms must be positive")
        if self.n_devices * self.kill_gap_ms * 0.5 <= self.recovery_ms:
            raise ValueError(
                "per-device kill cadence must exceed recovery_ms "
                "(raise kill_gap_ms or lower recovery_ms)"
            )

    @property
    def horizon_ms(self) -> float:
        """Workload horizon: arrivals span the whole kill window."""
        return self.kills * self.kill_gap_ms


@dataclass
class FleetChaosReport:
    """Campaign outcome plus the oracle verdicts."""

    spec: FleetChaosSpec
    kills_applied: int = 0
    revives_applied: int = 0
    retargeted: int = 0
    crashes_by_site: Dict[str, int] = field(default_factory=dict)
    offered: int = 0
    served: int = 0
    shed: int = 0
    unserved: int = 0
    failover_requests: int = 0
    audit_findings: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    fleet: Optional[FleetReport] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "seed": self.spec.seed,
            "n_devices": self.spec.n_devices,
            "kills_requested": self.spec.kills,
            "kills_applied": self.kills_applied,
            "revives_applied": self.revives_applied,
            "retargeted": self.retargeted,
            "crashes_by_site": dict(self.crashes_by_site),
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "unserved": self.unserved,
            "failover_requests": self.failover_requests,
            "audit_findings": list(self.audit_findings),
            "failures": list(self.failures),
            "ok": self.ok,
        }


def _build_schedule(
    spec: FleetChaosSpec, rng: random.Random
) -> Tuple[List[Tuple[float, int]], int]:
    """Round-robin kill schedule with jittered gaps; returns the sorted
    ``(t_ns, device_id)`` list and how many kills were retargeted off a
    device still inside its recovery dwell."""
    gap_ns = spec.kill_gap_ms * 1e6
    recovery_ns = spec.recovery_ms * 1e6
    down_until = [0.0] * spec.n_devices
    schedule: List[Tuple[float, int]] = []
    retargeted = 0
    t = gap_ns
    for index in range(spec.kills):
        # uniform jitter in [0.5, 1.5) gaps keeps order but varies spacing
        t += gap_ns * (rng.random() - 0.5)
        target = index % spec.n_devices
        if down_until[target] > t:
            alive = [
                d for d in range(spec.n_devices) if down_until[d] <= t
            ]
            if not alive:
                # wait for the first revive, landing strictly *after* its
                # timestamp: a kill scheduled at exactly the revive instant
                # would depend on the runtime's tie-breaking to apply
                t = min(down_until) + 1.0
                alive = [
                    d for d in range(spec.n_devices) if down_until[d] <= t
                ]
            target = alive[0]
            retargeted += 1
        schedule.append((t, target))
        down_until[target] = t + recovery_ns
        t += gap_ns
    return sorted(schedule), retargeted


def run_fleet_chaos(spec: FleetChaosSpec) -> FleetChaosReport:
    """Run one campaign; the report's ``failures`` list is the verdict
    (empty = every oracle passed)."""
    report = FleetChaosReport(spec=spec)
    kill_rng = random.Random(spec.seed * 9973 + 65537)
    schedule, report.retargeted = _build_schedule(spec, kill_rng)

    config = FleetConfig(
        n_devices=spec.n_devices,
        seed=spec.seed,
        queue_capacity=spec.queue_capacity,
        shed_policy=spec.shed_policy,
        recovery_ms=spec.recovery_ms,
    )
    runtime = FleetRuntime(config)
    tenants = (
        TenantSpec(
            name="chat",
            dataset=ALPACA_LIKE,
            policy="facil",
            qps=spec.qps,
            deadline_ms=spec.deadline_ms,
            mean_turns=spec.mean_turns,
        ),
    )
    workload = shaped_workload(
        tenants, spec.horizon_ms, shape=DIURNAL, seed=spec.seed
    )
    fleet = runtime.run(workload, kills=schedule)
    report.fleet = fleet
    report.kills_applied = fleet.kills
    report.revives_applied = fleet.revives
    report.offered = fleet.offered
    report.served = fleet.served
    report.shed = fleet.shed
    report.unserved = fleet.unserved
    report.failover_requests = sum(1 for o in fleet.outcomes if o.failovers)
    report.audit_findings = list(fleet.audit_findings)
    for device in runtime.devices:
        for site in device.kill_sites:
            report.crashes_by_site[site] = report.crashes_by_site.get(site, 0) + 1

    # -- oracles ---------------------------------------------------------------
    if report.kills_applied != spec.kills:
        report.failures.append(
            f"{report.kills_applied} of {spec.kills} scheduled kills applied"
        )
    if report.audit_findings:
        report.failures.append(
            f"{len(report.audit_findings)} post-recovery audit finding(s): "
            f"{report.audit_findings[0]}"
        )
    offered_ids = {r.req_id for r in workload}
    outcome_ids = [o.req_id for o in fleet.outcomes]
    if len(outcome_ids) != len(set(outcome_ids)):
        report.failures.append("a request reached two terminal outcomes")
    missing = offered_ids - set(outcome_ids)
    if missing:
        report.failures.append(
            f"{len(missing)} request(s) silently lost (e.g. req "
            f"{sorted(missing)[0]})"
        )
    extra = set(outcome_ids) - offered_ids
    if extra:
        report.failures.append(
            f"{len(extra)} outcome(s) for requests never offered"
        )
    unfired = [s for s in KV_CRASH_SITES if not report.crashes_by_site.get(s)]
    if unfired:
        report.failures.append(
            f"KV crash site(s) never fired: {', '.join(unfired)}"
        )
    return report
