"""Fleet-scale serving: device failure domains, failover, autoscaling.

One simulated device (``repro.serving``) cannot distinguish a device
loss from total outage.  This package scales the serving stack to a
**fleet** of N simulated devices — heterogeneous across the Table II
platform catalog — each an isolated failure domain wrapping its own
engine, journaled KV pool, fault injector, health monitor, and circuit
breakers:

* :mod:`repro.fleet.device` — :class:`FleetDevice`: the per-device
  serving machinery plus the ACTIVE → DEGRADED → QUARANTINED → DRAINING
  health state machine fed by the reliability subsystem's fault-rate
  windows.  Device loss is *crash-equivalent*: a kill arms the device's
  own :class:`~repro.reliability.faults.FaultInjector` at a KV journal
  crash site, recovers with :func:`~repro.kvcache.pool.recover_pool`,
  and audits the recovered pool with the same oracles the chaos
  campaigns use.
* :mod:`repro.fleet.router` — :class:`FleetRouter`: prefix-locality-
  aware placement (conversations ride the device holding their shared-
  prefix KV blocks) with load-aware spill and failover re-admission.
* :mod:`repro.fleet.autoscaler` — health-gated scale-up from a standby
  pool and drain-down under low load, with hysteresis and patience.
* :mod:`repro.fleet.runtime` — the fleet event loop, timed kill/revive
  events, preempt-and-recompute failover, and the fleet-wide
  :class:`FleetReport` (per-device lanes + p99 TTFT / goodput).
* :mod:`repro.fleet.chaos` — the kill-K-devices campaign: hundreds of
  seeded device losses/recoveries on an RNG stream separate from the
  workload's, audited to zero findings with no conversation lost.
* :mod:`repro.fleet.workloads` — millions-of-users traffic shapes as
  first-class specs: diurnal Poisson mixtures and bursty overload.

The single-device path is untouched: nothing here is imported by
``repro.serving``, so existing seeded runs stay byte-identical with the
fleet code off.  See docs/FLEET.md.
"""

from repro.fleet.autoscaler import Autoscaler, AutoscaleEvent
from repro.fleet.chaos import FleetChaosReport, FleetChaosSpec, run_fleet_chaos
from repro.fleet.device import (
    DEVICE_STATES,
    DeviceSpec,
    DeviceState,
    FleetDevice,
)
from repro.fleet.router import FleetRouter
from repro.fleet.runtime import (
    FleetConfig,
    FleetReport,
    FleetRuntime,
    build_fleet,
)
from repro.fleet.workloads import (
    BURSTY_OVERLOAD,
    DIURNAL,
    ArrivalShape,
    BurstyShape,
    DiurnalShape,
    SteadyShape,
    shaped_workload,
)

__all__ = [
    "ArrivalShape",
    "Autoscaler",
    "AutoscaleEvent",
    "BURSTY_OVERLOAD",
    "BurstyShape",
    "DEVICE_STATES",
    "DIURNAL",
    "DeviceSpec",
    "DeviceState",
    "DiurnalShape",
    "FleetChaosReport",
    "FleetChaosSpec",
    "FleetConfig",
    "FleetDevice",
    "FleetReport",
    "FleetRouter",
    "FleetRuntime",
    "SteadyShape",
    "build_fleet",
    "run_fleet_chaos",
    "shaped_workload",
]
