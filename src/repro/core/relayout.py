"""Re-layout: the cost FACIL eliminates (paper Fig. 5b, Fig. 6).

The SoC-PIM hybrid baseline keeps a single copy of each weight matrix in
the PIM-optimized layout.  Before every GEMM it must copy the matrix into
a conventionally-mapped scratch buffer (on-demand re-layout), then run the
GEMM there.  This module provides

* :func:`relayout_functional` — actually performs the copy in the
  functional system (read through the PIM MapID, write through MapID 0),
  used to validate that the baseline is numerically equivalent;
* :func:`relayout_cost_ns` — the latency model.  ``peak-bw`` mode matches
  the paper's conservative DRAMSim estimate (pure memory-copy time at full
  bandwidth, no CPU rearrangement cost, no bandwidth contention);
  ``simulated`` mode replays the actual read/write streams through our
  DRAM timing simulator, which typically reports a *higher* cost because
  reading a PIM layout sequentially is bank-serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.controller import CONVENTIONAL_MAP_ID, MemoryController
from repro.core.pimalloc import PimAllocator, PimTensor
from repro.dram.config import DramConfig
from repro.dram.system import DramTimingSimulator

__all__ = ["RelayoutCost", "relayout_cost_ns", "relayout_functional"]


@dataclass(frozen=True)
class RelayoutCost:
    """Latency and traffic of one matrix re-layout."""

    total_ns: float
    bytes_read: int
    bytes_written: int
    mode: str


def relayout_cost_ns(
    nbytes: int,
    dram: DramConfig,
    mode: str = "peak-bw",
    controller: Optional[MemoryController] = None,
    pim_map_id: Optional[int] = None,
    sample_transfers: int = 32768,
) -> RelayoutCost:
    """Cost of copying *nbytes* from the PIM layout to the conventional one.

    Args:
        mode: ``"peak-bw"`` (paper-conservative: read+write at full peak
            bandwidth) or ``"simulated"`` (replay the streams through the
            DRAM timing simulator; needs *controller* and *pim_map_id*).
    """
    org = dram.org
    if mode == "peak-bw":
        total_ns = 2.0 * nbytes / org.peak_bandwidth_gbps
        return RelayoutCost(total_ns, nbytes, nbytes, mode)
    if mode != "simulated":
        raise ValueError(f"unknown re-layout mode {mode!r}")
    if controller is None or pim_map_id is None:
        raise ValueError("simulated mode needs a controller and the PIM MapID")
    simulator = DramTimingSimulator(dram)
    pas = np.arange(0, nbytes, org.transfer_bytes, dtype=np.int64)
    read_bw = simulator.measure_bandwidth(
        controller.translate_array(pas, pim_map_id),
        is_write=False,
        sample_transfers=sample_transfers,
    )
    write_bw = simulator.measure_bandwidth(
        controller.translate_array(pas, CONVENTIONAL_MAP_ID),
        is_write=True,
        sample_transfers=sample_transfers,
    )
    total_ns = nbytes / read_bw + nbytes / write_bw
    return RelayoutCost(total_ns, nbytes, nbytes, mode)


def relayout_functional(tensor: PimTensor) -> np.ndarray:
    """Perform the baseline's on-demand re-layout in the functional system.

    Allocates a conventional (MapID 0) scratch region of the padded matrix
    size, copies the tensor into it through virtual addresses, and returns
    the scratch VA's contents as bytes.  Callers free the scratch by
    munmap'ing the returned region (see :class:`ScratchRegion`).
    """
    allocator: PimAllocator = tensor.allocator
    nbytes = tensor.nbytes_padded
    scratch_va = allocator.malloc(nbytes, huge=True)
    data = allocator.read_virtual(tensor.va, nbytes)
    allocator.write_virtual(scratch_va, data)
    out = allocator.read_virtual(scratch_va, nbytes)
    allocator.space.munmap(scratch_va)
    return out
