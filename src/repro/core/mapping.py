"""PA-to-DA address mappings: conventional and PIM-optimized (paper §IV-B).

Every mapping is a **bit permutation** over the page-offset bits of a huge
page: each physical-address bit feeds exactly one bit of one DRAM
coordinate field.  This is precisely the formulation FACIL's augmented
memory-controller frontend implements with an array of N-to-1 multiplexers
(paper Fig. 12), so representing mappings this way keeps the software model
and the proposed hardware in one-to-one correspondence.

Two families are provided:

* :func:`conventional_mapping` — the SoC's default interleaving, built from
  a spec string such as ``"row rank col bank channel"`` (MSB to LSB; the
  paper's baseline, verified to reach near-peak sequential bandwidth).
* :func:`pim_optimized_mapping` — the FACIL family parameterized by
  ``map_id``, supporting both AiM-style chunks (1, 1024) and HBM-PIM-style
  chunks (8, 128).  ``map_id`` counts the DRAM-row bits placed between the
  chunk bits and the PU-changing (bank/rank/channel) bits, i.e. it encodes
  how many chunk-columns of a matrix row live in one bank before the
  placement moves to the next PU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.bitfield import (
    deposit_bits,
    extract_bits,
    extract_bits_array,
    ilog2,
    is_pow2,
)
from repro.dram.address import FIELDS, DramCoord, Field
from repro.dram.config import DramOrganization

__all__ = [
    "Field",
    "FIELDS",
    "AddressMapping",
    "conventional_mapping",
    "pim_optimized_mapping",
    "max_map_id",
    "CONVENTIONAL_SPEC",
]


#: The paper's assumed SoC mapping: ``row:rank:column:bank:channel``
#: (MSB to LSB), which it verifies achieves near-peak sequential read
#: bandwidth (§VI-A).
CONVENTIONAL_SPEC = "row rank col bank channel"


@dataclass(frozen=True)
class AddressMapping:
    """A bit permutation from page-offset bits to DRAM coordinate fields.

    Attributes:
        name: human-readable identifier (e.g. ``"conventional"``,
            ``"aim-map3"``).
        n_bits: number of physical-address bits this mapping covers
            (``log2(huge page size)`` in FACIL).
        fields: for each field, the tuple of PA bit positions feeding it,
            LSB first.  The union of all tuples must be exactly
            ``{0, ..., n_bits-1}``.
    """

    name: str
    n_bits: int
    fields: Mapping[str, Tuple[int, ...]]

    def __post_init__(self) -> None:
        seen: List[int] = []
        for fname, positions in self.fields.items():
            if fname not in FIELDS:
                raise ValueError(f"unknown field {fname!r}")
            seen.extend(positions)
        if sorted(seen) != list(range(self.n_bits)):
            raise ValueError(
                f"mapping {self.name!r} is not a permutation of "
                f"{self.n_bits} bits: positions={sorted(seen)}"
            )

    # -- basic queries ------------------------------------------------------

    def field_width(self, fname: str) -> int:
        return len(self.fields.get(fname, ()))

    def positions(self, fname: str) -> Tuple[int, ...]:
        return tuple(self.fields.get(fname, ()))

    @property
    def row_bits(self) -> int:
        """In-page row bits (the page's share of the DRAM row index)."""
        return self.field_width(Field.ROW)

    # -- translation ---------------------------------------------------------

    def decode(self, pa: int) -> DramCoord:
        """Translate an in-page physical address to a DRAM coordinate.

        The returned ``row`` holds only the in-page row bits; the memory
        controller prepends the page frame number as the row MSBs.
        """
        if not 0 <= pa < (1 << self.n_bits):
            raise ValueError(f"pa {pa:#x} outside {self.n_bits}-bit page")
        return DramCoord(
            channel=extract_bits(pa, self.positions(Field.CHANNEL)),
            rank=extract_bits(pa, self.positions(Field.RANK)),
            bank=extract_bits(pa, self.positions(Field.BANK)),
            row=extract_bits(pa, self.positions(Field.ROW)),
            col=extract_bits(pa, self.positions(Field.COL)),
            offset=extract_bits(pa, self.positions(Field.OFFSET)),
        )

    def encode(self, coord: DramCoord) -> int:
        """Inverse of :func:`decode` (in-page row bits only)."""
        pa = 0
        pa |= deposit_bits(coord.channel, self.positions(Field.CHANNEL))
        pa |= deposit_bits(coord.rank, self.positions(Field.RANK))
        pa |= deposit_bits(coord.bank, self.positions(Field.BANK))
        pa |= deposit_bits(coord.row, self.positions(Field.ROW))
        pa |= deposit_bits(coord.col, self.positions(Field.COL))
        pa |= deposit_bits(coord.offset, self.positions(Field.OFFSET))
        return pa

    def decode_array(self, pas: np.ndarray) -> Dict[str, np.ndarray]:
        """Vectorised decode of many in-page addresses at once."""
        return {
            fname: extract_bits_array(pas, self.positions(fname))
            for fname in FIELDS
        }

    # -- introspection --------------------------------------------------------

    def bit_layout(self) -> List[Tuple[str, int]]:
        """Per-PA-bit view: entry *i* is ``(field, bit-within-field)`` for
        PA bit *i*.  This is what each hardware mux in Fig. 12 selects."""
        layout: List[Tuple[str, int]] = [("", 0)] * self.n_bits
        for fname, positions in self.fields.items():
            for bit_index, pa_pos in enumerate(positions):
                layout[pa_pos] = (fname, bit_index)
        return layout

    def describe(self) -> str:
        """Render the MSB-to-LSB field layout, grouping adjacent bits."""
        layout = self.bit_layout()
        groups: List[Tuple[str, int]] = []
        for fname, _ in layout:
            if groups and groups[-1][0] == fname:
                groups[-1] = (fname, groups[-1][1] + 1)
            else:
                groups.append((fname, 1))
        return ":".join(
            f"{fname}[{count}]" for fname, count in reversed(groups)
        )

    def matches_organization(self, org: DramOrganization) -> bool:
        """Check the field widths agree with *org* (row width may vary with
        page size, so only its non-negativity is implied)."""
        return (
            self.field_width(Field.CHANNEL) == org.channel_bits
            and self.field_width(Field.RANK) == org.rank_bits
            and self.field_width(Field.BANK) == org.bank_bits
            and self.field_width(Field.COL) == org.col_bits
            and self.field_width(Field.OFFSET) == org.offset_bits
        )


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def _fields_from_groups(
    groups: Sequence[Tuple[str, int]],
) -> Dict[str, Tuple[int, ...]]:
    """Assign consecutive PA bit positions (starting at 0) to *groups*,
    given LSB-first.  A field may appear in multiple groups; later groups
    extend the field's higher-order bits."""
    fields: Dict[str, List[int]] = {}
    position = 0
    for fname, count in groups:
        if count < 0:
            raise ValueError(f"negative width for {fname}: {count}")
        fields.setdefault(fname, []).extend(range(position, position + count))
        position += count
    return {fname: tuple(pos) for fname, pos in fields.items()}


def conventional_mapping(
    org: DramOrganization,
    n_bits: int,
    spec: str = CONVENTIONAL_SPEC,
    name: str = "conventional",
) -> AddressMapping:
    """Build the SoC's default mapping from an MSB-to-LSB field spec.

    The transfer-offset bits always occupy the LSBs and are not named in
    the spec.  The ``row`` field absorbs whatever bits remain after the
    fixed-width fields, so the same spec works for any page size.
    """
    widths = {
        Field.CHANNEL: org.channel_bits,
        Field.RANK: org.rank_bits,
        Field.BANK: org.bank_bits,
        Field.COL: org.col_bits,
    }
    tokens = spec.split()
    if sorted(tokens) != sorted(list(widths) + [Field.ROW]):
        raise ValueError(
            f"spec must name each of channel/rank/bank/col/row once, got {spec!r}"
        )
    fixed = org.offset_bits + sum(widths.values())
    row_width = n_bits - fixed
    if row_width < 0:
        raise ValueError(
            f"page of {n_bits} bits too small for organization needing {fixed}"
        )
    widths[Field.ROW] = row_width
    groups: List[Tuple[str, int]] = [(Field.OFFSET, org.offset_bits)]
    groups.extend((token, widths[token]) for token in reversed(tokens))
    return AddressMapping(name=name, n_bits=n_bits, fields=_fields_from_groups(groups))


def max_map_id(org: DramOrganization, huge_page_bytes: int) -> int:
    """Theoretical maximum MapID (paper §IV-B):

    ``log2(huge page size / (total bank count * DRAM transfer size))``

    i.e. the number of positions at which the PU-changing bits can sit
    between the page-offset MSB and the transfer-offset bits.
    """
    denominator = org.total_banks * org.transfer_bytes
    if huge_page_bytes < denominator:
        raise ValueError(
            f"huge page ({huge_page_bytes} B) smaller than one transfer per "
            f"bank ({denominator} B); cannot interleave across all PUs"
        )
    return ilog2(huge_page_bytes // denominator)


def pim_optimized_mapping(
    org: DramOrganization,
    chunk_rows: int,
    chunk_cols: int,
    dtype_bytes: int,
    map_id: int,
    n_bits: int,
    name: str = "",
    pu_order: Tuple[str, str, str] = (Field.BANK, Field.RANK, Field.CHANNEL),
) -> AddressMapping:
    """Build a PIM-optimized mapping for the given chunk shape and MapID.

    Bit layout, LSB to MSB (paper Fig. 8):

    1. transfer-offset bits;
    2. *chunk-column* bits — enough column (and, if a chunk exceeds one
       DRAM row, row) bits to keep one chunk row contiguous in a bank;
    3. ``map_id`` DRAM-row bits (``log2(matrix columns / chunk columns)``
       chosen by the selector) so a whole matrix row stays in one bank;
    4. for chunk_rows > 1 (HBM-PIM style), ``log2(chunk_rows)`` further
       column bits, keeping a chunk's rows inside one DRAM row;
    5. the PU-changing bits: bank, then rank, then channel;
    6. remaining row bits fill the page-offset MSBs.

    ``map_id`` therefore counts the bits between the PU-changing bits and
    the chunk bits, exactly the paper's MapID definition for both styles.

    ``pu_order`` gives the LSB-to-MSB order of the PU-changing bits.  The
    default (bank, rank, channel) matches Fig. 8.  When a matrix row is
    column-wise partitioned across PUs (Fig. 10), the selector flips it to
    (channel, rank, bank) so that partitions of one row land in *different
    channels* — each channel/rank has its own input global buffer, so the
    all-bank lock-step constraint (every bank of a rank consumes the same
    input segment) is preserved.
    """
    if not is_pow2(chunk_rows) or not is_pow2(chunk_cols):
        raise ValueError("chunk dimensions must be powers of two")
    if not is_pow2(dtype_bytes):
        raise ValueError("dtype size must be a power of two")
    if map_id < 0:
        raise ValueError(f"map_id must be non-negative, got {map_id}")

    chunk_col_bytes = chunk_cols * dtype_bytes
    if chunk_col_bytes < org.transfer_bytes:
        raise ValueError(
            f"one chunk row ({chunk_col_bytes} B) is smaller than a DRAM "
            f"transfer ({org.transfer_bytes} B)"
        )
    chunk_bits_total = ilog2(chunk_col_bytes // org.transfer_bytes)
    chunk_col_part = min(chunk_bits_total, org.col_bits)
    chunk_row_part = chunk_bits_total - chunk_col_part  # chunk > one DRAM row

    chunk_row_bits = ilog2(chunk_rows)
    if chunk_col_part + chunk_row_bits > org.col_bits:
        raise ValueError(
            f"chunk ({chunk_rows}x{chunk_cols}) needs "
            f"{chunk_col_part + chunk_row_bits} column bits but the DRAM row "
            f"provides only {org.col_bits}"
        )

    pu_bits = org.interleave_bits()
    used = (
        org.offset_bits
        + chunk_col_part
        + chunk_row_part
        + map_id
        + chunk_row_bits
        + pu_bits
    )
    if used > n_bits:
        raise ValueError(
            f"map_id={map_id} does not fit: layout needs {used} bits, page "
            f"has {n_bits} (max map_id here is {n_bits - used + map_id})"
        )
    row_hi = n_bits - used

    if sorted(pu_order) != sorted((Field.BANK, Field.RANK, Field.CHANNEL)):
        raise ValueError(f"pu_order must permute bank/rank/channel, got {pu_order}")
    pu_widths = {
        Field.BANK: org.bank_bits,
        Field.RANK: org.rank_bits,
        Field.CHANNEL: org.channel_bits,
    }
    pu_groups = [(fname, pu_widths[fname]) for fname in pu_order]
    groups: List[Tuple[str, int]] = [
        (Field.OFFSET, org.offset_bits),
        (Field.COL, chunk_col_part),
        (Field.ROW, chunk_row_part),
        (Field.ROW, map_id),
        (Field.COL, chunk_row_bits),
        *pu_groups,
        (Field.ROW, row_hi),
    ]
    # The row field inside a page may be narrower than the bank's full row
    # index; remaining column bits beyond what the chunk uses must still be
    # assigned.  For AiM (chunk == full DRAM row) there are none; for
    # smaller chunks the leftover column bits sit directly above the chunk
    # bits so that consecutive chunks of the same matrix row share a DRAM
    # row when map_id > 0.  The MapID counts *all* bits between the chunk
    # and the PU-changing bits, column or row: when the matrix row fills
    # less than one DRAM row (map_id < leftover_col) the surplus column
    # bits move above the PU bits, so a bank's DRAM row then holds
    # 2**(leftover_col - map_id) distant page segments — reduced locality,
    # but each matrix row still lives wholly in one PU.
    leftover_col = org.col_bits - chunk_col_part - chunk_row_bits
    if leftover_col:
        mid_col = min(map_id, leftover_col)
        spill_col = leftover_col - mid_col
        if spill_col > row_hi:
            raise ValueError(
                f"map_id={map_id} does not fit: {spill_col} leftover column "
                f"bits spill past the page MSB ({row_hi} bits remain)"
            )
        groups = [
            (Field.OFFSET, org.offset_bits),
            (Field.COL, chunk_col_part),
            (Field.ROW, chunk_row_part),
            (Field.COL, mid_col),
            (Field.ROW, map_id - mid_col),
            (Field.COL, chunk_row_bits),
            *pu_groups,
            (Field.COL, spill_col),
            (Field.ROW, row_hi - spill_col),
        ]
    if not name:
        style = "aim" if chunk_rows == 1 else "hbmpim"
        name = f"{style}-map{map_id}"
    return AddressMapping(name=name, n_bits=n_bits, fields=_fields_from_groups(groups))
