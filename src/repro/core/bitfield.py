"""Bit-level utilities for address manipulation.

Every DRAM address mapping in this library is expressed as a *bit
permutation*: each bit of a physical address feeds exactly one bit of one
DRAM coordinate field (channel, rank, bank, row, column, offset).  This
module provides the primitives for gathering and scattering bits according
to such permutations, plus small helpers shared across the code base.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "is_pow2",
    "ilog2",
    "ceil_log2",
    "ceil_div",
    "bit",
    "bits_of",
    "extract_bits",
    "deposit_bits",
    "extract_bits_array",
    "deposit_bits_array",
]


def is_pow2(value: int) -> bool:
    """Return True iff *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Exact integer log2 of a power of two.

    Raises:
        ValueError: if *value* is not a positive power of two.
    """
    if not is_pow2(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def ceil_log2(value: int) -> int:
    """Smallest ``k`` such that ``2**k >= value`` (for positive *value*)."""
    if value <= 0:
        raise ValueError(f"ceil_log2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def bit(value: int, position: int) -> int:
    """Return bit *position* (0 = LSB) of *value* as 0 or 1."""
    return (value >> position) & 1


def bits_of(value: int, width: int) -> Tuple[int, ...]:
    """Return the *width* least-significant bits of *value*, LSB first."""
    return tuple((value >> i) & 1 for i in range(width))


def extract_bits(value: int, positions: Sequence[int]) -> int:
    """Gather the bits of *value* at *positions* into a packed integer.

    ``positions[0]`` supplies the LSB of the result, ``positions[1]`` the
    next bit, and so on.  This is the software analogue of the mux array in
    FACIL's memory-controller frontend (paper Fig. 12): each output bit
    selects one input bit.
    """
    result = 0
    for out_pos, in_pos in enumerate(positions):
        result |= ((value >> in_pos) & 1) << out_pos
    return result


def deposit_bits(field_value: int, positions: Sequence[int]) -> int:
    """Scatter the low bits of *field_value* to *positions* (inverse of
    :func:`extract_bits`)."""
    result = 0
    for out_pos, in_pos in enumerate(positions):
        result |= ((field_value >> out_pos) & 1) << in_pos
    return result


#: LUT chunk width for the vectorised bit movers: each 8-bit slice of the
#: input is one table lookup, so a 21-bit page offset needs 3 gathers
#: instead of one full-array pass per bit
_LUT_BITS = 8
_LUT_SIZE = 1 << _LUT_BITS
_LUT_MASK = np.int64(_LUT_SIZE - 1)

#: cached (shift, table) pairs keyed by the kind of move and the exact
#: bit-position tuple; tables are tiny (2 KiB) and position tuples are
#: one-per-mapping-field, so the cache stays small
_MOVE_LUTS: dict = {}


def _move_luts(positions: Tuple[int, ...], deposit: bool):
    """Tables for a vectorised bit gather/scatter: chunk ``c`` of the
    input maps through ``table[c]`` to its contribution to the output."""
    key = (deposit, positions)
    cached = _MOVE_LUTS.get(key)
    if cached is not None:
        return cached
    # for extract, the input is the value whose bits live at *positions*;
    # for deposit, the input is the packed field (bit i at position i)
    pairs = (
        [(in_pos, out_pos) for out_pos, in_pos in enumerate(positions)]
        if deposit
        else [(out_pos, in_pos) for out_pos, in_pos in enumerate(positions)]
    )
    luts = []
    span = max((src for _, src in pairs), default=-1) + 1
    for lo in range(0, span, _LUT_BITS):
        sel = [(dst, src - lo) for dst, src in pairs if lo <= src < lo + _LUT_BITS]
        if not sel:
            continue
        index = np.arange(_LUT_SIZE, dtype=np.int64)
        table = np.zeros(_LUT_SIZE, dtype=np.int64)
        for dst, src in sel:
            table |= ((index >> np.int64(src)) & np.int64(1)) << np.int64(dst)
        luts.append((np.int64(lo), table))
    _MOVE_LUTS[key] = luts
    return luts


def _apply_luts(values: np.ndarray, luts) -> np.ndarray:
    if not luts:
        return np.zeros_like(values)
    shift, table = luts[0]
    result = table[(values >> shift) & _LUT_MASK]
    for shift, table in luts[1:]:
        result |= table[(values >> shift) & _LUT_MASK]
    return result


def extract_bits_array(values: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Vectorised :func:`extract_bits` over a numpy integer array."""
    values = np.asarray(values, dtype=np.int64)
    return _apply_luts(values, _move_luts(tuple(positions), deposit=False))


def deposit_bits_array(values: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Vectorised :func:`deposit_bits` over a numpy integer array."""
    values = np.asarray(values, dtype=np.int64)
    return _apply_luts(values, _move_luts(tuple(positions), deposit=True))
