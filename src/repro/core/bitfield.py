"""Bit-level utilities for address manipulation.

Every DRAM address mapping in this library is expressed as a *bit
permutation*: each bit of a physical address feeds exactly one bit of one
DRAM coordinate field (channel, rank, bank, row, column, offset).  This
module provides the primitives for gathering and scattering bits according
to such permutations, plus small helpers shared across the code base.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "is_pow2",
    "ilog2",
    "ceil_log2",
    "ceil_div",
    "bit",
    "bits_of",
    "extract_bits",
    "deposit_bits",
    "extract_bits_array",
    "deposit_bits_array",
]


def is_pow2(value: int) -> bool:
    """Return True iff *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Exact integer log2 of a power of two.

    Raises:
        ValueError: if *value* is not a positive power of two.
    """
    if not is_pow2(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def ceil_log2(value: int) -> int:
    """Smallest ``k`` such that ``2**k >= value`` (for positive *value*)."""
    if value <= 0:
        raise ValueError(f"ceil_log2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def bit(value: int, position: int) -> int:
    """Return bit *position* (0 = LSB) of *value* as 0 or 1."""
    return (value >> position) & 1


def bits_of(value: int, width: int) -> Tuple[int, ...]:
    """Return the *width* least-significant bits of *value*, LSB first."""
    return tuple((value >> i) & 1 for i in range(width))


def extract_bits(value: int, positions: Sequence[int]) -> int:
    """Gather the bits of *value* at *positions* into a packed integer.

    ``positions[0]`` supplies the LSB of the result, ``positions[1]`` the
    next bit, and so on.  This is the software analogue of the mux array in
    FACIL's memory-controller frontend (paper Fig. 12): each output bit
    selects one input bit.
    """
    result = 0
    for out_pos, in_pos in enumerate(positions):
        result |= ((value >> in_pos) & 1) << out_pos
    return result


def deposit_bits(field_value: int, positions: Sequence[int]) -> int:
    """Scatter the low bits of *field_value* to *positions* (inverse of
    :func:`extract_bits`)."""
    result = 0
    for out_pos, in_pos in enumerate(positions):
        result |= ((field_value >> out_pos) & 1) << in_pos
    return result


def extract_bits_array(values: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Vectorised :func:`extract_bits` over a numpy integer array."""
    values = np.asarray(values, dtype=np.int64)
    result = np.zeros_like(values)
    for out_pos, in_pos in enumerate(positions):
        result |= ((values >> np.int64(in_pos)) & np.int64(1)) << np.int64(out_pos)
    return result


def deposit_bits_array(values: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Vectorised :func:`deposit_bits` over a numpy integer array."""
    values = np.asarray(values, dtype=np.int64)
    result = np.zeros_like(values)
    for out_pos, in_pos in enumerate(positions):
        result |= ((values >> np.int64(out_pos)) & np.int64(1)) << np.int64(in_pos)
    return result
