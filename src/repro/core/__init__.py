"""FACIL core: flexible DRAM address mapping (the paper's contribution).

Attributes load lazily (PEP 562): :mod:`repro.core.bitfield` is imported
by the DRAM substrate, which the rest of this package depends on, so an
eager package init would cycle.
"""

__all__ = [
    "AddressMapping",
    "CONVENTIONAL_MAP_ID",
    "CONVENTIONAL_SPEC",
    "Field",
    "MappingSelection",
    "MappingTable",
    "MatrixConfig",
    "MemoryController",
    "MuxSpec",
    "PimAllocator",
    "PimSystem",
    "PimTensor",
    "RelayoutCost",
    "build_selected_mapping",
    "conventional_mapping",
    "max_map_id",
    "pim_optimized_mapping",
    "pu_order_for",
    "relayout_cost_ns",
    "relayout_functional",
    "select_mapping",
    "MappingCandidate",
    "enumerate_candidates",
    "optimize_mapping",
    "emit_verilog",
    "mux_gate_estimate",
]

_LAZY = {
    "CONVENTIONAL_MAP_ID": "repro.core.controller",
    "MappingTable": "repro.core.controller",
    "MemoryController": "repro.core.controller",
    "MuxSpec": "repro.core.controller",
    "AddressMapping": "repro.core.mapping",
    "CONVENTIONAL_SPEC": "repro.core.mapping",
    "Field": "repro.core.mapping",
    "conventional_mapping": "repro.core.mapping",
    "max_map_id": "repro.core.mapping",
    "pim_optimized_mapping": "repro.core.mapping",
    "PimAllocator": "repro.core.pimalloc",
    "PimSystem": "repro.core.pimalloc",
    "PimTensor": "repro.core.pimalloc",
    "RelayoutCost": "repro.core.relayout",
    "relayout_cost_ns": "repro.core.relayout",
    "relayout_functional": "repro.core.relayout",
    "MappingSelection": "repro.core.selector",
    "MatrixConfig": "repro.core.selector",
    "build_selected_mapping": "repro.core.selector",
    "pu_order_for": "repro.core.selector",
    "select_mapping": "repro.core.selector",
    "MappingCandidate": "repro.core.optimizer",
    "enumerate_candidates": "repro.core.optimizer",
    "optimize_mapping": "repro.core.optimizer",
    "emit_verilog": "repro.core.hardware",
    "mux_gate_estimate": "repro.core.hardware",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
