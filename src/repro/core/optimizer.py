"""Exhaustive mapping-space search (validation of the Fig. 9 selector).

FACIL's selector picks the MapID with a closed-form rule.  This module
enumerates *every* feasible PIM mapping for a matrix — all MapIDs, both
PU-bit orders — prices each with the GEMV timing model plus the SoC-side
reduction cost, and returns the optimum.  The headline result (see
``bench_ablation_optimizer``) is that the paper's one-line formula picks
the search optimum for every layer of every evaluated model: the rule is
not a heuristic approximation but the exact argmin under the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.bitfield import ilog2
from repro.core.mapping import AddressMapping, Field, pim_optimized_mapping
from repro.core.selector import MappingSelection, MatrixConfig, select_mapping
from repro.dram.config import DramConfig
from repro.pim.config import PimConfig
from repro.pim.gemv import gemv_latency
from repro.soc.processor import SocProcessor

__all__ = ["MappingCandidate", "enumerate_candidates", "optimize_mapping"]

_PU_ORDERS = (
    (Field.BANK, Field.RANK, Field.CHANNEL),
    (Field.CHANNEL, Field.RANK, Field.BANK),
)


@dataclass(frozen=True)
class MappingCandidate:
    """One feasible mapping with its priced cost."""

    map_id: int
    pu_order: Tuple[str, str, str]
    partitions_per_row: int
    mapping: AddressMapping
    gemv_ns: float
    reduce_ns: float

    @property
    def total_ns(self) -> float:
        return self.gemv_ns + self.reduce_ns


def _selection_for(
    matrix: MatrixConfig,
    dram: DramConfig,
    pim: PimConfig,
    map_id: int,
    huge_page_bytes: int,
) -> Optional[MappingSelection]:
    """Build the selection a forced *map_id* implies, or None if it is
    infeasible for this matrix."""
    org = dram.org
    base = select_mapping(matrix, org, pim, huge_page_bytes)
    per_bank_row_share = pim.chunk_row_bytes << map_id
    row_bytes = base.padded_row_bytes
    if per_bank_row_share >= row_bytes:
        partitions = 1
        if map_id > ilog2(row_bytes) - ilog2(pim.chunk_row_bytes):
            # More row bits below the PU bits than the matrix row fills:
            # rows would leave holes inside banks (wasted placement).
            return None
    else:
        partitions = row_bytes // per_bank_row_share
        # lock-step feasibility: partitions must fit in PU groups that
        # own private global buffers (channels x ranks)
        if partitions > org.n_channels * org.ranks_per_channel:
            return None
    return replace(
        base,
        map_id=map_id,
        needs_partition=partitions > 1,
        partitions_per_row=partitions,
    )


def enumerate_candidates(
    matrix: MatrixConfig,
    dram: DramConfig,
    pim: PimConfig,
    soc: SocProcessor,
    huge_page_bytes: int = 2 << 20,
) -> List[MappingCandidate]:
    """Every feasible (MapID, PU order) mapping with its priced cost."""
    org = dram.org
    page_bits = ilog2(huge_page_bytes)
    max_bits = (
        page_bits
        - org.offset_bits
        - org.interleave_bits()
        - ilog2(pim.chunk_bytes // org.transfer_bytes)
    )
    candidates: List[MappingCandidate] = []
    for map_id in range(max_bits + 1):
        selection = _selection_for(matrix, dram, pim, map_id, huge_page_bytes)
        if selection is None:
            continue
        for pu_order in _PU_ORDERS:
            if selection.partitions_per_row > 1 and pu_order[0] != Field.CHANNEL:
                continue  # bank-first breaks lock-step under partitioning
            try:
                mapping = pim_optimized_mapping(
                    org,
                    pim.chunk_rows,
                    pim.chunk_cols,
                    pim.dtype_bytes,
                    map_id,
                    page_bits,
                    pu_order=pu_order,
                )
            except ValueError:
                continue
            latency = gemv_latency(
                matrix, dram, pim, huge_page_bytes, selection=selection
            )
            reduce_ns = soc.stream_time_ns(latency.soc_reduce_bytes)
            candidates.append(
                MappingCandidate(
                    map_id=map_id,
                    pu_order=pu_order,
                    partitions_per_row=selection.partitions_per_row,
                    mapping=mapping,
                    gemv_ns=latency.total_ns,
                    reduce_ns=reduce_ns,
                )
            )
    return candidates


def optimize_mapping(
    matrix: MatrixConfig,
    dram: DramConfig,
    pim: PimConfig,
    soc: SocProcessor,
    huge_page_bytes: int = 2 << 20,
) -> MappingCandidate:
    """Brute-force argmin over the mapping space (GEMV + reduction time;
    partition count breaks ties toward fewer cross-PU rows)."""
    candidates = enumerate_candidates(matrix, dram, pim, soc, huge_page_bytes)
    if not candidates:
        raise ValueError("no feasible PIM mapping for this configuration")
    return min(
        candidates, key=lambda c: (c.total_ns, c.partitions_per_row, c.map_id)
    )
