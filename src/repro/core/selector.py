"""The FACIL mapping selector (paper §IV-C, Fig. 9 and Fig. 10).

Given the configurations of a weight matrix, the memory system, and the
PIM architecture, the selector decides which PA-to-DA mapping (MapID) each
huge page of the matrix should use:

* If an entire (power-of-two padded) matrix row fits in the share of a
  huge page owned by one bank, the MapID places the PU-changing bits right
  above the matrix row, so each row lives wholly in one bank — no partial
  sums cross banks.
* Otherwise (Fig. 10) the PU-changing bits move to the MSB of the page
  offset; the row is column-wise partitioned across PUs in different
  channels and the SoC reduces the per-channel partial sums afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Tuple

from repro.core.bitfield import ceil_log2, ilog2

if TYPE_CHECKING:
    import numpy as np
from repro.core.mapping import AddressMapping, Field, pim_optimized_mapping
from repro.dram.config import DramOrganization
from repro.pim.config import PimConfig

__all__ = [
    "MatrixConfig",
    "MappingSelection",
    "build_selected_mapping",
    "pu_order_for",
    "select_mapping",
]


@dataclass(frozen=True)
class MatrixConfig:
    """Shape and element type of a weight matrix, as passed to pimalloc.

    ``kind`` is ``"float"`` (FP16/BF16/FP32 by size) or ``"int"``
    (INT8/INT16 quantized weights, as AWQ-style on-device deployments
    use); it selects the PIM PU's accumulation datapath.
    """

    rows: int
    cols: int
    dtype_bytes: int = 2
    kind: str = "float"

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        if self.kind not in ("float", "int"):
            raise ValueError(f"kind must be 'float' or 'int', got {self.kind!r}")

    @property
    def numpy_dtype(self) -> "np.dtype[Any]":
        """The numpy dtype matching (kind, dtype_bytes)."""
        import numpy as np

        prefix = "f" if self.kind == "float" else "i"
        return np.dtype(f"{prefix}{self.dtype_bytes}")

    @property
    def padded_cols(self) -> int:
        """Columns padded to the next power of two (Fig. 9: ``pow(2,
        ceil(log2(matrix_col)))``)."""
        return 1 << ceil_log2(self.cols)

    @property
    def padded_row_bytes(self) -> int:
        return self.padded_cols * self.dtype_bytes

    @property
    def nbytes(self) -> int:
        return self.rows * self.cols * self.dtype_bytes

    @property
    def padded_nbytes(self) -> int:
        return self.rows * self.padded_row_bytes


@dataclass(frozen=True)
class MappingSelection:
    """Outcome of :func:`select_mapping`.

    Attributes:
        map_id: the selected MapID (row bits between chunk and PU bits).
        needs_partition: True when one matrix row exceeds the per-bank
            share of a huge page and must be split across PUs (Fig. 10).
        partitions_per_row: number of PUs sharing one matrix row (1 when
            not partitioned); the SoC reduces this many partial sums.
        bytes_per_bank_per_page: per-PU share of each huge page.
        padded_row_bytes: the allocated leading dimension in bytes —
            matrix columns padded to a power of two *and* to at least one
            chunk row, so every stored row is a whole number of chunks.
    """

    map_id: int
    needs_partition: bool
    partitions_per_row: int
    bytes_per_bank_per_page: int
    padded_row_bytes: int


def select_mapping(
    matrix: MatrixConfig,
    org: DramOrganization,
    pim: PimConfig,
    huge_page_bytes: int = 2 << 20,
) -> MappingSelection:
    """Select the MapID for *matrix* (paper Fig. 9, generalized to chunks
    with more than one row so it covers HBM-PIM as well as AiM).

    The per-bank footprint of one *chunk-row group* — ``chunk_rows``
    consecutive matrix rows, of which each bank stores full rows — is
    ``chunk_rows * padded_row_bytes``.  If that exceeds the bank's share of
    a huge page, rows are partitioned column-wise across PUs.
    """
    memory_per_bank = huge_page_bytes // org.total_banks
    if memory_per_bank < pim.chunk_row_bytes:
        raise ValueError(
            f"huge page ({huge_page_bytes} B) cannot give each of "
            f"{org.total_banks} banks one chunk row ({pim.chunk_row_bytes} B)"
        )
    if pim.chunk_row_bytes < org.transfer_bytes:
        raise ValueError(
            f"one chunk row ({pim.chunk_row_bytes} B) is smaller than a "
            f"DRAM transfer ({org.transfer_bytes} B)"
        )
    # A multi-row chunk must fit the bank's DRAM row: its chunk_rows
    # segments share one row buffer (lock-step MAC sweeps never cross
    # DRAM rows), so the same column-bit budget the mapping builder
    # enforces must already hold here.
    chunk_col_part = min(
        ilog2(pim.chunk_row_bytes // org.transfer_bytes), org.col_bits
    )
    if chunk_col_part + ilog2(pim.chunk_rows) > org.col_bits:
        raise ValueError(
            f"chunk ({pim.chunk_rows}x{pim.chunk_cols}) needs "
            f"{chunk_col_part + ilog2(pim.chunk_rows)} column bits but a "
            f"DRAM row of this organization provides only {org.col_bits}"
        )

    # Rows narrower than one chunk are padded up to it: the PU always
    # consumes whole chunk rows.
    row_bytes = max(matrix.padded_row_bytes, pim.chunk_row_bytes)
    group_bytes = pim.chunk_rows * row_bytes
    needs_partition = memory_per_bank < group_bytes

    if needs_partition:
        per_bank_row_share = memory_per_bank // pim.chunk_rows
        if per_bank_row_share < pim.chunk_row_bytes:
            raise ValueError(
                f"huge page ({huge_page_bytes} B) cannot give each bank "
                f"{pim.chunk_rows} chunk rows of {pim.chunk_row_bytes} B; "
                "partitioned placement would split a chunk row"
            )
        map_id = ilog2(per_bank_row_share) - ilog2(pim.chunk_row_bytes)
        partitions = row_bytes // per_bank_row_share
    else:
        map_id = ilog2(row_bytes) - ilog2(pim.chunk_row_bytes)
        partitions = 1

    map_id = max(0, map_id)
    # map_id cannot exceed the bits available between chunk and page MSB.
    available = (
        ilog2(huge_page_bytes)
        - org.offset_bits
        - org.interleave_bits()
        - ilog2(pim.chunk_bytes // org.transfer_bytes)
    )
    if map_id > available:
        raise AssertionError(
            f"selector produced map_id={map_id} > available {available}; "
            "partition logic is inconsistent"
        )
    return MappingSelection(
        map_id=map_id,
        needs_partition=needs_partition,
        partitions_per_row=partitions,
        bytes_per_bank_per_page=memory_per_bank,
        padded_row_bytes=row_bytes,
    )


def pu_order_for(selection: MappingSelection) -> Tuple[str, str, str]:
    """PU-changing bit order for a selection (see
    :func:`repro.core.mapping.pim_optimized_mapping`): partitioned rows
    spread across channels first, so each partition gets its own global
    buffer."""
    if selection.needs_partition:
        return (Field.CHANNEL, Field.RANK, Field.BANK)
    return (Field.BANK, Field.RANK, Field.CHANNEL)


def build_selected_mapping(
    matrix: MatrixConfig,
    org: DramOrganization,
    pim: PimConfig,
    huge_page_bytes: int = 2 << 20,
) -> AddressMapping:
    """Convenience: run the selector and materialize the chosen mapping."""
    selection = select_mapping(matrix, org, pim, huge_page_bytes)
    return pim_optimized_mapping(
        org=org,
        chunk_rows=pim.chunk_rows,
        chunk_cols=pim.chunk_cols,
        dtype_bytes=pim.dtype_bytes,
        map_id=selection.map_id,
        n_bits=ilog2(huge_page_bytes),
        pu_order=pu_order_for(selection),
    )
