"""Crash-consistent MapID journaling for pimalloc (extension).

``pimalloc`` and ``PimTensor.free`` are *multi-step* mutations of shared
state: the controller's mapping table (a refcounted hardware resource),
the page table (MapID-carrying PTEs), and the buddy allocator.  A crash
between any two steps leaves that state half-mutated — a registered
MapID no region references (a leaked table slot), an unmapped region
whose mapping was never released, or a phase-switched region where some
huge pages translate through the new mapping and some through the old
(DReAM's live-remapping hazard).

:class:`MapJournal` is a write-ahead *intent* journal closing that hole:

* every mutating operation opens a transaction (:meth:`begin`) recording
  its intent **before** touching shared state;
* each completed step appends a redo/undo record (:meth:`step`);
* :meth:`checkpoint` marks the crash-injection sites between steps — a
  :class:`~repro.reliability.faults.FaultInjector` armed with
  ``schedule_crash(site)`` raises :class:`InjectedCrash` there;
* :func:`recover` replays uncommitted transactions after a crash:
  allocations roll **back** (undo), frees and phase switches roll
  **forward** (redo), so post-recovery state is always the state of some
  crash-free history.

The journal itself survives the crash by construction (a real
implementation puts it in a persistent region written before each step;
the simulation keeps it on the side of the :class:`PimSystem` whose
state models everything that persists).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pimalloc import PimAllocator

__all__ = [
    "CRASH_SITES",
    "MIGRATE_CRASH_SITES",
    "InjectedCrash",
    "JournalTxn",
    "MapJournal",
    "RecoveryAction",
    "RecoveryReport",
    "recover",
]


class InjectedCrash(RuntimeError):
    """A simulated process crash at a journal checkpoint.

    Raised by an armed fault injector's ``on_journal`` hook; everything
    the crashed operation had already done to shared state stays in
    place, exactly like a real kill -9 mid-syscall.
    """

    def __init__(self, site: str):
        self.site = site
        super().__init__(f"injected crash at journal site {site!r}")


#: Every checkpoint the allocator announces, in operation order.  The
#: crash campaign sweeps all of them.
CRASH_SITES = (
    "alloc:begin",
    "alloc:registered",
    "alloc:mapped",
    "free:begin",
    "free:unmapped",
    "switch:begin",
    "switch:staged",
    "switch:registered",
    "switch:pte",
    "switch:rewritten",
)

#: Checkpoints of the two-phase MIGRATE operation (adaptive remapping's
#: partial-range page migration).  Kept out of :data:`CRASH_SITES` so
#: the existing campaign sweep stays byte-identical; the migration
#: campaign sweeps these.  The commit point is the ``committed`` journal
#: step: a crash strictly before it rolls the migrated range **back** to
#: the old MapID, a crash at or after it rolls **forward** — recovery
#: never leaves the range torn between the two.
MIGRATE_CRASH_SITES = (
    "migrate:begin",
    "migrate:staged",
    "migrate:registered",
    "migrate:page",
    "migrate:rewritten",
    "migrate:committed",
    "migrate:cleanup",
)


@dataclass
class JournalTxn:
    """One journaled operation: declared intent plus completed steps."""

    txn_id: int
    op: str  # "alloc" | "free" | "switch"
    intent: Dict[str, Any]
    steps: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    committed: bool = False

    def step_names(self) -> List[str]:
        return [name for name, _ in self.steps]

    def find_step(self, name: str) -> Optional[Dict[str, Any]]:
        for step_name, detail in self.steps:
            if step_name == name:
                return detail
        return None

    def count_steps(self, name: str) -> int:
        return sum(1 for step_name, _ in self.steps if step_name == name)


class MapJournal:
    """Write-ahead intent journal over one allocator's mutations."""

    def __init__(self) -> None:
        self._txns: List[JournalTxn] = []
        self._next_id = 0
        #: reliability hook: ``fault_hook.on_journal(site)`` runs at every
        #: checkpoint and may raise :class:`InjectedCrash`.
        self.fault_hook: Optional[Any] = None

    # -- transaction lifecycle -----------------------------------------

    def begin(self, op: str, **intent: Any) -> JournalTxn:
        txn = JournalTxn(txn_id=self._next_id, op=op, intent=dict(intent))
        self._next_id += 1
        self._txns.append(txn)
        return txn

    def step(self, txn: JournalTxn, name: str, **detail: Any) -> None:
        if txn.committed:
            raise ValueError(f"txn {txn.txn_id} already committed")
        txn.steps.append((name, dict(detail)))

    def checkpoint(self, site: str) -> None:
        """A crash-injection site between journal steps."""
        if self.fault_hook is not None:
            self.fault_hook.on_journal(site)

    def commit(self, txn: JournalTxn) -> None:
        txn.committed = True

    # -- queries --------------------------------------------------------

    def uncommitted(self) -> List[JournalTxn]:
        return [txn for txn in self._txns if not txn.committed]

    def cursor(self) -> Tuple[int, int, int]:
        """Cheap progress fingerprint for the replay-diff oracle:
        ``(next txn id, live txns, uncommitted txns)``.  Two replays of
        the same workload must agree on all three at every barrier."""
        open_txns = sum(1 for txn in self._txns if not txn.committed)
        return (self._next_id, len(self._txns), open_txns)

    def transactions(self) -> List[JournalTxn]:
        return list(self._txns)

    def __len__(self) -> int:
        return len(self._txns)

    def truncate_committed(self) -> int:
        """Drop committed transactions (log compaction); returns how
        many were dropped."""
        before = len(self._txns)
        self._txns = [txn for txn in self._txns if not txn.committed]
        return before - len(self._txns)


@dataclass(frozen=True)
class RecoveryAction:
    """How one uncommitted transaction was resolved by replay."""

    txn_id: int
    op: str
    resolution: str  # "rolled-back" | "rolled-forward" | "no-op"
    detail: Dict[str, Any]


@dataclass
class RecoveryReport:
    """Outcome of one :func:`recover` replay."""

    actions: List[RecoveryAction] = field(default_factory=list)

    @property
    def rolled_back(self) -> int:
        return sum(1 for a in self.actions if a.resolution == "rolled-back")

    @property
    def rolled_forward(self) -> int:
        return sum(1 for a in self.actions if a.resolution == "rolled-forward")

    def action_for(self, txn_id: int) -> Optional[RecoveryAction]:
        for action in self.actions:
            if action.txn_id == txn_id:
                return action
        return None


def _undo_alloc(allocator: "PimAllocator", txn: JournalTxn) -> Dict[str, Any]:
    """Roll an interrupted allocation back to nothing."""
    detail: Dict[str, Any] = {}
    mapped = txn.find_step("mapped")
    registered = txn.find_step("registered")
    if mapped is not None:
        va = mapped["va"]
        if va in allocator.space.areas:
            allocator.space.munmap(va)
            detail["unmapped_va"] = va
    if registered is not None:
        allocator.controller.table.release(registered["map_id"])
        detail["released_map_id"] = registered["map_id"]
    return detail


def _redo_free(allocator: "PimAllocator", txn: JournalTxn) -> Dict[str, Any]:
    """Roll an interrupted free forward to completion."""
    detail: Dict[str, Any] = {}
    va = txn.intent["va"]
    map_id = txn.intent["map_id"]
    if txn.find_step("unmapped") is None and va in allocator.space.areas:
        allocator.space.munmap(va)
        detail["unmapped_va"] = va
    if txn.find_step("released") is None:
        allocator.controller.table.release(map_id)
        detail["released_map_id"] = map_id
    return detail


def _redo_switch(allocator: "PimAllocator", txn: JournalTxn) -> Dict[str, Any]:
    """Roll an interrupted phase switch forward (or back when it never
    registered the new mapping)."""
    detail: Dict[str, Any] = {}
    registered = txn.find_step("registered")
    staged = txn.find_step("staged")
    if registered is None:
        # Nothing downstream of staging happened: drop the staging copy
        # (if any) and leave the region exactly as it was.
        if staged is not None and staged["staging_va"] in allocator.space.areas:
            allocator.space.munmap(staged["staging_va"])
            detail["dropped_staging_va"] = staged["staging_va"]
        detail["kept_map_id"] = txn.intent["old_map_id"]
        return detail

    new_map_id = registered["map_id"]
    va = txn.intent["va"]
    nbytes = txn.intent["nbytes"]
    n_pages = txn.intent["n_pages"]
    page_bytes = txn.intent["page_bytes"]

    # (1) finish the PTE walk from wherever it stopped.
    done = txn.count_steps("pte")
    for index in range(done, n_pages):
        allocator.space.set_area_map_id(va, index, new_map_id)
    detail["ptes_completed"] = n_pages - done

    # (2) rewrite the bytes from the staging copy through the new
    # mapping (idempotent: rewriting identical bytes is harmless).
    if staged is not None and txn.find_step("rewritten") is None:
        data = allocator.read_virtual(staged["staging_va"], nbytes)
        allocator.write_virtual(va, data)
        detail["rewritten_bytes"] = nbytes
    if staged is not None and staged["staging_va"] in allocator.space.areas:
        allocator.space.munmap(staged["staging_va"])

    # (3) release exactly one reference to the old mapping.
    if txn.find_step("released-old") is None:
        allocator.controller.table.release(txn.intent["old_map_id"])
        detail["released_map_id"] = txn.intent["old_map_id"]
    detail["new_map_id"] = new_map_id
    return detail


def _resolve_migrate(allocator: "PimAllocator", txn: JournalTxn) -> Dict[str, Any]:
    """Resolve an interrupted partial-range page migration.

    The ``committed`` journal step is the commit point.  Before it the
    migration rolls **back**: every flipped PTE is restored to its
    recorded old MapID, the range's bytes are rewritten from the staging
    copy through the restored mapping, and the new mapping's table
    reference is dropped.  At or after it the migration rolls
    **forward**: the PTE walk is already complete (the step is only
    written after the data rewrite), so recovery just finishes the
    reference releases and drops the staging region.  Either way the
    range lands uniformly in one mapping — never torn.
    """
    detail: Dict[str, Any] = {}
    va = txn.intent["va"]
    page_start = txn.intent["page_start"]
    page_bytes = txn.intent["page_bytes"]
    nbytes = txn.intent["nbytes"]
    old_ids: List[int] = txn.intent["old_page_map_ids"]
    staged = txn.find_step("staged")
    registered = txn.find_step("registered")

    if registered is None:
        # The shared mapping table was never touched: drop the staging
        # copy (if any) and keep the range exactly as it was.
        if staged is not None and staged["staging_va"] in allocator.space.areas:
            allocator.space.munmap(staged["staging_va"])
            detail["dropped_staging_va"] = staged["staging_va"]
        detail["kept_map_ids"] = sorted(set(old_ids))
        return detail

    new_map_id = registered["map_id"]
    if txn.find_step("committed") is None:
        # -- roll back: restore flipped PTEs, then the bytes ------------
        flipped = [
            step_detail["index"]
            for step_name, step_detail in txn.steps
            if step_name == "page"
        ]
        for index in flipped:
            allocator.space.set_area_map_id(
                va, index, old_ids[index - page_start]
            )
        detail["ptes_restored"] = len(flipped)
        if staged is not None:
            data = allocator.read_virtual(staged["staging_va"], nbytes)
            allocator.write_virtual(va + page_start * page_bytes, data)
            detail["restored_bytes"] = nbytes
            if staged["staging_va"] in allocator.space.areas:
                allocator.space.munmap(staged["staging_va"])
        allocator.controller.table.release(new_map_id)
        detail["released_map_id"] = new_map_id
        detail["kept_map_ids"] = sorted(set(old_ids))
        return detail

    # -- roll forward: the range already reads through the new mapping --
    # Reference discipline (one table reference per distinct MapID the
    # area's pages use): ids the migration erased from the area lose
    # their reference, and when the new id was already present the
    # registration's extra reference is surplus.
    before = set(txn.intent["area_map_ids_before"])
    after = set(allocator.space.area_page_map_ids(va))
    planned = sorted(before - after)
    if new_map_id in before:
        planned.append(new_map_id)
    already = [
        step_detail["map_id"]
        for step_name, step_detail in txn.steps
        if step_name == "released"
    ]
    released = []
    for map_id in planned:
        if map_id in already:
            already.remove(map_id)
            continue
        allocator.controller.table.release(map_id)
        released.append(map_id)
    if staged is not None and staged["staging_va"] in allocator.space.areas:
        allocator.space.munmap(staged["staging_va"])
        detail["dropped_staging_va"] = staged["staging_va"]
    detail["released_map_ids"] = released
    detail["promoted_map_id"] = new_map_id
    return detail


def recover(allocator: "PimAllocator") -> RecoveryReport:
    """Replay the allocator's journal after a (simulated) crash.

    Uncommitted allocations are undone, uncommitted frees and phase
    switches are completed; committed transactions are untouched.  The
    replay is idempotent — recovering twice is a no-op the second time.
    """
    journal = allocator.journal
    if journal is None:
        raise ValueError("allocator has no journal attached")
    report = RecoveryReport()
    # Newest first: a later txn may depend on state older txns created,
    # but undo/redo of *uncommitted* txns never conflicts because the
    # allocator serializes mutations.
    for txn in reversed(journal.uncommitted()):
        if txn.op == "alloc":
            detail = _undo_alloc(allocator, txn)
            resolution = "rolled-back" if detail else "no-op"
        elif txn.op == "free":
            detail = _redo_free(allocator, txn)
            resolution = "rolled-forward" if detail else "no-op"
        elif txn.op == "switch":
            detail = _redo_switch(allocator, txn)
            resolution = (
                "rolled-forward" if "new_map_id" in detail else "rolled-back"
            )
        elif txn.op == "migrate":
            detail = _resolve_migrate(allocator, txn)
            resolution = (
                "rolled-forward" if "promoted_map_id" in detail else "rolled-back"
            )
        else:
            raise ValueError(f"journal holds unknown op {txn.op!r}")
        journal.commit(txn)
        report.actions.append(
            RecoveryAction(
                txn_id=txn.txn_id, op=txn.op, resolution=resolution, detail=detail
            )
        )
    return report
