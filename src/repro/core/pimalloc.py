"""pimalloc: FACIL's user-level allocation library (paper Fig. 7a).

``pimalloc`` is the programmer-facing entry point.  Given a weight
matrix's dimensions and datatype it

1. runs the **mapping selector** to pick the optimal PIM mapping (MapID),
2. registers that mapping with the memory controller's mapping table,
3. allocates huge pages through the extended ``mmap`` with the MapID
   recorded in the page-table entries, and
4. returns a tensor handle whose loads/stores go through ordinary
   contiguous virtual addresses — the controller transparently applies the
   PIM-optimized PA-to-DA mapping.

The same physical bytes are then directly operable by the PIM processing
units (see :mod:`repro.pim.functional`) with no re-layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.bitfield import ceil_div, ilog2
from repro.core.controller import MemoryController
from repro.core.journal import JournalTxn, MapJournal
from repro.core.mapping import AddressMapping, pim_optimized_mapping
from repro.core.selector import (
    MappingSelection,
    MatrixConfig,
    pu_order_for,
    select_mapping,
)
from repro.dram.config import DramOrganization
from repro.dram.memory import PhysicalMemory
from repro.os.buddy import BuddyAllocator
from repro.os.page_table import PAGE_SHIFT
from repro.os.vm import AddressSpace
from repro.pim.config import PimConfig

__all__ = ["PimTensor", "PimAllocator", "PimSystem"]


@dataclass
class PimTensor:
    """Handle to a matrix stored with a PIM-optimized mapping.

    The virtual-address view is a plain row-major matrix with a
    power-of-two leading dimension (``lda``) — exactly what BLAS kernels
    consume — while the physical placement satisfies the PIM constraints.
    """

    va: int
    matrix: MatrixConfig
    selection: MappingSelection
    mapping: AddressMapping
    map_id: int
    allocator: "PimAllocator"

    @property
    def lda(self) -> int:
        """Leading dimension: columns padded to a power of two and to at
        least one chunk row (the selector's padded row)."""
        return self.selection.padded_row_bytes // self.matrix.dtype_bytes

    @property
    def nbytes_padded(self) -> int:
        return self.matrix.rows * self.selection.padded_row_bytes

    def element_va(self, row: int, col: int) -> int:
        """Virtual address of element (row, col)."""
        if not (0 <= row < self.matrix.rows and 0 <= col < self.matrix.cols):
            raise IndexError(f"({row}, {col}) outside matrix")
        return self.va + (row * self.lda + col) * self.matrix.dtype_bytes

    # -- data movement (the SoC's view) -----------------------------------

    def store(self, array: np.ndarray) -> None:
        """Write *array* (shape ``rows x cols``) through virtual addresses."""
        array = np.asarray(array)
        if array.shape != (self.matrix.rows, self.matrix.cols):
            raise ValueError(
                f"expected {(self.matrix.rows, self.matrix.cols)}, "
                f"got {array.shape}"
            )
        if array.dtype.itemsize != self.matrix.dtype_bytes:
            raise ValueError(
                f"dtype {array.dtype} has {array.dtype.itemsize} B elements; "
                f"tensor expects {self.matrix.dtype_bytes} B"
            )
        padded = np.zeros((self.matrix.rows, self.lda), dtype=array.dtype)
        padded[:, : self.matrix.cols] = array
        self.allocator.write_virtual(self.va, padded.reshape(-1).view(np.uint8))

    def load(self, dtype: np.dtype) -> np.ndarray:
        """Read the matrix back through virtual addresses."""
        dtype = np.dtype(dtype)
        if dtype.itemsize != self.matrix.dtype_bytes:
            raise ValueError(f"dtype {dtype} does not match element size")
        raw = self.allocator.read_virtual(self.va, self.nbytes_padded)
        padded = raw.view(dtype).reshape(self.matrix.rows, self.lda)
        return padded[:, : self.matrix.cols].copy()

    def free(self) -> None:
        """Unmap the region and drop its mapping-table reference.

        Without the release, alloc/free churn over distinct mappings
        leaks MapIDs until the controller's table fills — the table is a
        hardware resource bounded at 16 entries.  With a journal attached
        to the allocator the two steps are crash-consistent: a crash
        between them rolls forward on recovery.
        """
        self.allocator.free(self)


class PimAllocator:
    """Implements pimalloc over an address space and a memory controller."""

    def __init__(
        self,
        org: DramOrganization,
        pim: PimConfig,
        controller: MemoryController,
        space: AddressSpace,
        huge_page_bytes: int = 2 << 20,
    ) -> None:
        if controller.page_bytes != huge_page_bytes:
            raise ValueError("controller page size must equal the huge page size")
        self.org = org
        self.pim = pim
        self.controller = controller
        self.space = space
        self.huge_page_bytes = huge_page_bytes
        #: reliability hook (see :mod:`repro.reliability.faults`): when
        #: set, ``fault_hook.on_pimalloc(matrix)`` runs before each
        #: allocation and may raise (injected buddy OOM, PU failures).
        self.fault_hook = None
        #: optional write-ahead intent journal; when attached, every
        #: multi-step mutation (alloc, free, phase switch) records its
        #: intent and completed steps so :func:`repro.core.journal.recover`
        #: can replay a crash back to a consistent state.
        self.journal: Optional[MapJournal] = None

    # -- journal plumbing --------------------------------------------------

    def _jstep(self, txn: Optional[JournalTxn], name: str, **detail) -> None:
        if txn is not None and self.journal is not None:
            self.journal.step(txn, name, **detail)

    def _jcheckpoint(self, site: str) -> None:
        if self.journal is not None:
            self.journal.checkpoint(site)

    def _build_mapping(
        self,
        selection: MappingSelection,
        pu_order: Optional[Tuple[str, str, str]] = None,
    ) -> AddressMapping:
        return pim_optimized_mapping(
            org=self.org,
            chunk_rows=self.pim.chunk_rows,
            chunk_cols=self.pim.chunk_cols,
            dtype_bytes=self.pim.dtype_bytes,
            map_id=selection.map_id,
            n_bits=ilog2(self.huge_page_bytes),
            pu_order=pu_order if pu_order is not None else pu_order_for(selection),
        )

    # -- the pimalloc interface ----------------------------------------------

    def pimalloc(self, matrix: MatrixConfig) -> PimTensor:
        """Allocate *matrix* with the selector-chosen PIM mapping."""
        if self.fault_hook is not None:
            self.fault_hook.on_pimalloc(matrix)
        selection = select_mapping(matrix, self.org, self.pim, self.huge_page_bytes)
        mapping = self._build_mapping(selection)
        nbytes = matrix.rows * selection.padded_row_bytes
        txn = None
        if self.journal is not None:
            txn = self.journal.begin(
                "alloc",
                rows=matrix.rows,
                cols=matrix.cols,
                dtype_bytes=matrix.dtype_bytes,
                nbytes=nbytes,
            )
        self._jcheckpoint("alloc:begin")
        map_id = self.controller.table.register(mapping)
        self._jstep(txn, "registered", map_id=map_id)
        self._jcheckpoint("alloc:registered")
        try:
            va = self.space.mmap(nbytes, huge=True, map_id=map_id)
        except Exception:
            # Unwound synchronously: the failed txn leaves nothing for
            # recovery to undo, so it is committed as a no-op.
            self.controller.table.release(map_id)
            if txn is not None and self.journal is not None:
                self.journal.commit(txn)
            raise
        self._jstep(txn, "mapped", va=va, nbytes=nbytes)
        self._jcheckpoint("alloc:mapped")
        if txn is not None and self.journal is not None:
            self.journal.commit(txn)
        return PimTensor(
            va=va,
            matrix=matrix,
            selection=selection,
            mapping=mapping,
            map_id=map_id,
            allocator=self,
        )

    def free(self, tensor: PimTensor) -> None:
        """Tear down *tensor*: unmap the region, release the mapping."""
        txn = None
        if self.journal is not None:
            txn = self.journal.begin("free", va=tensor.va, map_id=tensor.map_id)
        self._jcheckpoint("free:begin")
        self.space.munmap(tensor.va)
        self._jstep(txn, "unmapped", va=tensor.va)
        self._jcheckpoint("free:unmapped")
        self.controller.table.release(tensor.map_id)
        self._jstep(txn, "released", map_id=tensor.map_id)
        if txn is not None and self.journal is not None:
            self.journal.commit(txn)

    def switch_mapping(
        self,
        tensor: PimTensor,
        pu_order: Optional[Tuple[str, str, str]] = None,
    ) -> PimTensor:
        """Phase switch: re-route a live tensor through a different
        PIM-admissible mapping (default: the alternate PU-bit order),
        migrating the stored bytes so the virtual-address contents are
        preserved.

        The migration is the classic live-remapping hazard: once any
        huge page's PTE carries the new MapID, reads through it scramble
        until the bytes are rewritten.  With a journal attached, every
        step (staging copy, register, per-page PTE rewrite, data
        rewrite, release of the old mapping) is journaled, and the bytes
        are staged in a conventional-mapping scratch region that
        survives a crash — recovery rolls the switch forward to
        completion.  Without a journal the switch still works but a
        crash mid-way is unrecoverable (exactly the gap the journal
        closes).
        """
        if pu_order is None:
            # Toggle relative to the tensor's *current* mapping: whichever
            # of the two PU-bit orders it is not using now.
            default = pu_order_for(tensor.selection)
            flipped = (default[2], default[1], default[0])
            candidate = self._build_mapping(tensor.selection, pu_order=flipped)
            pu_order = flipped if candidate.fields != tensor.mapping.fields else default
        new_mapping = self._build_mapping(tensor.selection, pu_order=pu_order)
        if new_mapping.fields == tensor.mapping.fields:
            return tensor
        area = self.space.areas.get(tensor.va)
        if area is None:
            raise ValueError(f"tensor va {tensor.va:#x} is not mapped")
        nbytes = tensor.nbytes_padded
        n_pages = area.n_pages
        functional = self.controller.memory is not None

        txn = None
        if self.journal is not None:
            txn = self.journal.begin(
                "switch",
                va=tensor.va,
                old_map_id=tensor.map_id,
                nbytes=nbytes,
                n_pages=n_pages,
                page_bytes=area.page_bytes,
            )
        self._jcheckpoint("switch:begin")

        staging_va = None
        if functional:
            staging_va = self.space.mmap(nbytes, huge=True, map_id=0)
            self.write_virtual(staging_va, self.read_virtual(tensor.va, nbytes))
            self._jstep(txn, "staged", staging_va=staging_va, nbytes=nbytes)
        self._jcheckpoint("switch:staged")

        new_map_id = self.controller.table.register(new_mapping)
        self._jstep(txn, "registered", map_id=new_map_id)
        self._jcheckpoint("switch:registered")

        for index in range(n_pages):
            self.space.set_area_map_id(tensor.va, index, new_map_id)
            self._jstep(txn, "pte", index=index)
            self._jcheckpoint("switch:pte")

        if staging_va is not None:
            self.write_virtual(tensor.va, self.read_virtual(staging_va, nbytes))
            self._jstep(txn, "rewritten")
        self._jcheckpoint("switch:rewritten")

        self.controller.table.release(tensor.map_id)
        self._jstep(txn, "released-old", map_id=tensor.map_id)
        if staging_va is not None:
            self.space.munmap(staging_va)
        if txn is not None and self.journal is not None:
            self.journal.commit(txn)

        tensor.mapping = new_mapping
        tensor.map_id = new_map_id
        return tensor

    def migrate_pages(
        self,
        tensor: PimTensor,
        map_id: int,
        page_start: int = 0,
        page_count: Optional[int] = None,
        pu_order: Optional[Tuple[str, str, str]] = None,
    ) -> dict:
        """Migrate a contiguous huge-page range of *tensor* to the FACIL
        MapID *map_id* (the mapping-spec parameter the advisor
        recommends, not a table slot) — the adaptive controller's canary
        and promotion primitive.

        Unlike :meth:`switch_mapping`, the range may be a strict subset
        of the area, leaving the area *mixed*: some pages translate
        through the old mapping, some through the new.  The PTEs (read
        via ``AddressSpace.area_page_map_ids``) are the ground truth for
        the split.  The table-reference discipline is one reference per
        distinct MapID the area's pages use.

        With a journal attached the operation is a two-phase MIGRATE
        transaction: intent (old per-page MapIDs) is recorded first,
        each PTE flip is a journaled step, and the ``committed`` step —
        written only after the data rewrite — is the commit point.  A
        crash before it rolls the range back to the old mapping; at or
        after it, forward to the new one; never torn (see
        :func:`repro.core.journal._resolve_migrate`).
        """
        area = self.space.areas.get(tensor.va)
        if area is None:
            raise ValueError(f"tensor va {tensor.va:#x} is not mapped")
        if page_count is None:
            page_count = area.n_pages - page_start
        if page_count <= 0 or not (
            0 <= page_start and page_start + page_count <= area.n_pages
        ):
            raise ValueError(
                f"page range [{page_start}, {page_start + page_count}) outside "
                f"area of {area.n_pages} pages"
            )
        new_mapping = pim_optimized_mapping(
            org=self.org,
            chunk_rows=self.pim.chunk_rows,
            chunk_cols=self.pim.chunk_cols,
            dtype_bytes=self.pim.dtype_bytes,
            map_id=map_id,
            n_bits=ilog2(self.huge_page_bytes),
            pu_order=pu_order if pu_order is not None else pu_order_for(tensor.selection),
        )
        page_bytes = area.page_bytes
        nbytes = page_count * page_bytes
        range_va = tensor.va + page_start * page_bytes
        area_ids_before = self.space.area_page_map_ids(tensor.va)
        old_ids = area_ids_before[page_start : page_start + page_count]
        functional = self.controller.memory is not None

        txn = None
        if self.journal is not None:
            txn = self.journal.begin(
                "migrate",
                va=tensor.va,
                page_start=page_start,
                n_pages=page_count,
                page_bytes=page_bytes,
                nbytes=nbytes,
                old_page_map_ids=list(old_ids),
                area_map_ids_before=list(area_ids_before),
                facil_map_id=map_id,
            )
        self._jcheckpoint("migrate:begin")

        staging_va = None
        if functional:
            staging_va = self.space.mmap(nbytes, huge=True, map_id=0)
            self.write_virtual(staging_va, self.read_virtual(range_va, nbytes))
            self._jstep(txn, "staged", staging_va=staging_va, nbytes=nbytes)
        self._jcheckpoint("migrate:staged")

        new_map_id = self.controller.table.register(new_mapping)
        self._jstep(txn, "registered", map_id=new_map_id)
        self._jcheckpoint("migrate:registered")

        for index in range(page_start, page_start + page_count):
            self.space.set_area_map_id(tensor.va, index, new_map_id)
            self._jstep(txn, "page", index=index)
            self._jcheckpoint("migrate:page")

        if staging_va is not None:
            self.write_virtual(range_va, self.read_virtual(staging_va, nbytes))
            self._jstep(txn, "rewritten")
        self._jcheckpoint("migrate:rewritten")

        self._jstep(txn, "committed")
        self._jcheckpoint("migrate:committed")

        # Reference reconciliation: ids the migration erased from the
        # area lose their reference; when the new id was already present
        # the registration's extra reference is surplus.
        after = set(area_ids_before[:page_start]) | set(
            area_ids_before[page_start + page_count :]
        ) | {new_map_id}
        released = sorted(set(area_ids_before) - after)
        if new_map_id in area_ids_before:
            released.append(new_map_id)
        for released_id in released:
            self.controller.table.release(released_id)
            self._jstep(txn, "released", map_id=released_id)
            self._jcheckpoint("migrate:cleanup")
        if staging_va is not None:
            self.space.munmap(staging_va)
        self._jcheckpoint("migrate:cleanup")
        if txn is not None and self.journal is not None:
            self.journal.commit(txn)

        if all(pid == new_map_id for pid in self.space.area_page_map_ids(tensor.va)):
            tensor.mapping = new_mapping
            tensor.map_id = new_map_id
        return {
            "new_map_id": new_map_id,
            "pages": page_count,
            "released_map_ids": released,
        }

    def malloc(self, nbytes: int, huge: bool = False) -> int:
        """Plain allocation with the conventional mapping (MapID 0)."""
        # single-step mmap of the conventional mapping: no table
        # reference taken, nothing for recovery to undo
        return self.space.mmap(nbytes, huge=huge, map_id=0)  # lint: waive[JD001]

    def release_mapping(self, map_id: int) -> None:
        """Drop one reference to a registered mapping (see
        :meth:`PimTensor.free`)."""
        # single-step reference drop; crash-atomic on its own, and the
        # journaled free() path never routes through here
        self.controller.table.release(map_id)  # lint: waive[JD001]

    # -- virtual-address data path ----------------------------------------------

    def write_virtual(self, va: int, data: np.ndarray) -> None:
        """Store bytes at a virtual address: MMU translation, then the
        controller applies each page's MapID (paper Fig. 7b)."""
        data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        offset = 0
        for pa, length, map_id in self.space.mmu.translate_range(va, len(data)):
            self.controller.write(pa, data[offset : offset + length], map_id)
            offset += length

    def read_virtual(self, va: int, nbytes: int) -> np.ndarray:
        """Load bytes from a virtual address (paper Fig. 7c)."""
        out = np.empty(nbytes, dtype=np.uint8)
        offset = 0
        for pa, length, map_id in self.space.mmu.translate_range(va, nbytes):
            out[offset : offset + length] = self.controller.read(pa, length, map_id)
            offset += length
        return out


class PimSystem:
    """Convenience bundle: DRAM + controller + OS + allocator.

    This is the one-line setup used by the examples and tests::

        system = PimSystem.build(org, pim)
        tensor = system.pimalloc(MatrixConfig(rows=64, cols=2048))
    """

    def __init__(
        self,
        org: DramOrganization,
        pim: PimConfig,
        huge_page_bytes: int = 2 << 20,
        functional: bool = True,
        ecc: bool = False,
        integrity: bool = False,
        journal: bool = False,
    ) -> None:
        from repro.os.page_table import HUGE_SHIFT

        if huge_page_bytes != 1 << HUGE_SHIFT:
            raise ValueError(
                f"PimSystem's OS substrate uses {1 << HUGE_SHIFT}-byte huge "
                "pages; for other page sizes use MemoryController/"
                "select_mapping directly (they are fully parametric)"
            )
        self.org = org
        self.pim = pim
        self.huge_page_bytes = huge_page_bytes
        memory = PhysicalMemory(org) if functional else None
        self.memory = memory
        # Reliability options (lazy imports keep the base stack free of
        # a repro.reliability dependency).
        ecc_engine = None
        if ecc:
            if not functional:
                raise ValueError("ECC protects functional storage; needs functional=True")
            from repro.reliability.ecc import EccEngine

            ecc_engine = EccEngine()
        self.ecc = ecc_engine
        table = None
        if integrity:
            from repro.core.mapping import CONVENTIONAL_SPEC, conventional_mapping
            from repro.reliability.integrity import ParityMappingTable

            table = ParityMappingTable(
                conventional_mapping(org, ilog2(huge_page_bytes), CONVENTIONAL_SPEC)
            )
        self.controller = MemoryController(
            org, page_bytes=huge_page_bytes, memory=memory, table=table, ecc=ecc_engine
        )
        total_pages = org.capacity_bytes >> PAGE_SHIFT
        huge_order = ilog2(huge_page_bytes) - PAGE_SHIFT
        self.buddy = BuddyAllocator(total_pages, max_order=max(huge_order, 9))
        self.space = AddressSpace(self.buddy)
        self.allocator = PimAllocator(
            org, pim, self.controller, self.space, huge_page_bytes
        )
        self.journal: Optional[MapJournal] = None
        if journal:
            self.journal = MapJournal()
            self.allocator.journal = self.journal

    @classmethod
    def build(
        cls,
        org: DramOrganization,
        pim: PimConfig,
        huge_page_bytes: int = 2 << 20,
        functional: bool = True,
        ecc: bool = False,
        integrity: bool = False,
        journal: bool = False,
    ) -> "PimSystem":
        return cls(org, pim, huge_page_bytes, functional, ecc, integrity, journal)

    def recover(self):
        """Replay the journal after a simulated crash (see
        :func:`repro.core.journal.recover`)."""
        from repro.core.journal import recover as _recover

        return _recover(self.allocator)

    def pimalloc(self, matrix: MatrixConfig) -> PimTensor:
        return self.allocator.pimalloc(matrix)
