"""pimalloc: FACIL's user-level allocation library (paper Fig. 7a).

``pimalloc`` is the programmer-facing entry point.  Given a weight
matrix's dimensions and datatype it

1. runs the **mapping selector** to pick the optimal PIM mapping (MapID),
2. registers that mapping with the memory controller's mapping table,
3. allocates huge pages through the extended ``mmap`` with the MapID
   recorded in the page-table entries, and
4. returns a tensor handle whose loads/stores go through ordinary
   contiguous virtual addresses — the controller transparently applies the
   PIM-optimized PA-to-DA mapping.

The same physical bytes are then directly operable by the PIM processing
units (see :mod:`repro.pim.functional`) with no re-layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.bitfield import ceil_div, ilog2
from repro.core.controller import MemoryController
from repro.core.mapping import AddressMapping, pim_optimized_mapping
from repro.core.selector import (
    MappingSelection,
    MatrixConfig,
    pu_order_for,
    select_mapping,
)
from repro.dram.config import DramOrganization
from repro.dram.memory import PhysicalMemory
from repro.os.buddy import BuddyAllocator
from repro.os.page_table import PAGE_SHIFT
from repro.os.vm import AddressSpace
from repro.pim.config import PimConfig

__all__ = ["PimTensor", "PimAllocator", "PimSystem"]


@dataclass
class PimTensor:
    """Handle to a matrix stored with a PIM-optimized mapping.

    The virtual-address view is a plain row-major matrix with a
    power-of-two leading dimension (``lda``) — exactly what BLAS kernels
    consume — while the physical placement satisfies the PIM constraints.
    """

    va: int
    matrix: MatrixConfig
    selection: MappingSelection
    mapping: AddressMapping
    map_id: int
    allocator: "PimAllocator"

    @property
    def lda(self) -> int:
        """Leading dimension: columns padded to a power of two and to at
        least one chunk row (the selector's padded row)."""
        return self.selection.padded_row_bytes // self.matrix.dtype_bytes

    @property
    def nbytes_padded(self) -> int:
        return self.matrix.rows * self.selection.padded_row_bytes

    def element_va(self, row: int, col: int) -> int:
        """Virtual address of element (row, col)."""
        if not (0 <= row < self.matrix.rows and 0 <= col < self.matrix.cols):
            raise IndexError(f"({row}, {col}) outside matrix")
        return self.va + (row * self.lda + col) * self.matrix.dtype_bytes

    # -- data movement (the SoC's view) -----------------------------------

    def store(self, array: np.ndarray) -> None:
        """Write *array* (shape ``rows x cols``) through virtual addresses."""
        array = np.asarray(array)
        if array.shape != (self.matrix.rows, self.matrix.cols):
            raise ValueError(
                f"expected {(self.matrix.rows, self.matrix.cols)}, "
                f"got {array.shape}"
            )
        if array.dtype.itemsize != self.matrix.dtype_bytes:
            raise ValueError(
                f"dtype {array.dtype} has {array.dtype.itemsize} B elements; "
                f"tensor expects {self.matrix.dtype_bytes} B"
            )
        padded = np.zeros((self.matrix.rows, self.lda), dtype=array.dtype)
        padded[:, : self.matrix.cols] = array
        self.allocator.write_virtual(self.va, padded.reshape(-1).view(np.uint8))

    def load(self, dtype: np.dtype) -> np.ndarray:
        """Read the matrix back through virtual addresses."""
        dtype = np.dtype(dtype)
        if dtype.itemsize != self.matrix.dtype_bytes:
            raise ValueError(f"dtype {dtype} does not match element size")
        raw = self.allocator.read_virtual(self.va, self.nbytes_padded)
        padded = raw.view(dtype).reshape(self.matrix.rows, self.lda)
        return padded[:, : self.matrix.cols].copy()

    def free(self) -> None:
        """Unmap the region and drop its mapping-table reference.

        Without the release, alloc/free churn over distinct mappings
        leaks MapIDs until the controller's table fills — the table is a
        hardware resource bounded at 16 entries.
        """
        self.allocator.space.munmap(self.va)
        self.allocator.release_mapping(self.map_id)


class PimAllocator:
    """Implements pimalloc over an address space and a memory controller."""

    def __init__(
        self,
        org: DramOrganization,
        pim: PimConfig,
        controller: MemoryController,
        space: AddressSpace,
        huge_page_bytes: int = 2 << 20,
    ) -> None:
        if controller.page_bytes != huge_page_bytes:
            raise ValueError("controller page size must equal the huge page size")
        self.org = org
        self.pim = pim
        self.controller = controller
        self.space = space
        self.huge_page_bytes = huge_page_bytes
        #: reliability hook (see :mod:`repro.reliability.faults`): when
        #: set, ``fault_hook.on_pimalloc(matrix)`` runs before each
        #: allocation and may raise (injected buddy OOM, PU failures).
        self.fault_hook = None

    # -- the pimalloc interface ----------------------------------------------

    def pimalloc(self, matrix: MatrixConfig) -> PimTensor:
        """Allocate *matrix* with the selector-chosen PIM mapping."""
        if self.fault_hook is not None:
            self.fault_hook.on_pimalloc(matrix)
        selection = select_mapping(matrix, self.org, self.pim, self.huge_page_bytes)
        mapping = pim_optimized_mapping(
            org=self.org,
            chunk_rows=self.pim.chunk_rows,
            chunk_cols=self.pim.chunk_cols,
            dtype_bytes=self.pim.dtype_bytes,
            map_id=selection.map_id,
            n_bits=ilog2(self.huge_page_bytes),
            pu_order=pu_order_for(selection),
        )
        map_id = self.controller.table.register(mapping)
        nbytes = matrix.rows * selection.padded_row_bytes
        try:
            va = self.space.mmap(nbytes, huge=True, map_id=map_id)
        except Exception:
            self.controller.table.release(map_id)
            raise
        return PimTensor(
            va=va,
            matrix=matrix,
            selection=selection,
            mapping=mapping,
            map_id=map_id,
            allocator=self,
        )

    def malloc(self, nbytes: int, huge: bool = False) -> int:
        """Plain allocation with the conventional mapping (MapID 0)."""
        return self.space.mmap(nbytes, huge=huge, map_id=0)

    def release_mapping(self, map_id: int) -> None:
        """Drop one reference to a registered mapping (see
        :meth:`PimTensor.free`)."""
        self.controller.table.release(map_id)

    # -- virtual-address data path ----------------------------------------------

    def write_virtual(self, va: int, data: np.ndarray) -> None:
        """Store bytes at a virtual address: MMU translation, then the
        controller applies each page's MapID (paper Fig. 7b)."""
        data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        offset = 0
        for pa, length, map_id in self.space.mmu.translate_range(va, len(data)):
            self.controller.write(pa, data[offset : offset + length], map_id)
            offset += length

    def read_virtual(self, va: int, nbytes: int) -> np.ndarray:
        """Load bytes from a virtual address (paper Fig. 7c)."""
        out = np.empty(nbytes, dtype=np.uint8)
        offset = 0
        for pa, length, map_id in self.space.mmu.translate_range(va, nbytes):
            out[offset : offset + length] = self.controller.read(pa, length, map_id)
            offset += length
        return out


class PimSystem:
    """Convenience bundle: DRAM + controller + OS + allocator.

    This is the one-line setup used by the examples and tests::

        system = PimSystem.build(org, pim)
        tensor = system.pimalloc(MatrixConfig(rows=64, cols=2048))
    """

    def __init__(
        self,
        org: DramOrganization,
        pim: PimConfig,
        huge_page_bytes: int = 2 << 20,
        functional: bool = True,
        ecc: bool = False,
        integrity: bool = False,
    ) -> None:
        from repro.os.page_table import HUGE_SHIFT

        if huge_page_bytes != 1 << HUGE_SHIFT:
            raise ValueError(
                f"PimSystem's OS substrate uses {1 << HUGE_SHIFT}-byte huge "
                "pages; for other page sizes use MemoryController/"
                "select_mapping directly (they are fully parametric)"
            )
        self.org = org
        self.pim = pim
        self.huge_page_bytes = huge_page_bytes
        memory = PhysicalMemory(org) if functional else None
        self.memory = memory
        # Reliability options (lazy imports keep the base stack free of
        # a repro.reliability dependency).
        ecc_engine = None
        if ecc:
            if not functional:
                raise ValueError("ECC protects functional storage; needs functional=True")
            from repro.reliability.ecc import EccEngine

            ecc_engine = EccEngine()
        self.ecc = ecc_engine
        table = None
        if integrity:
            from repro.core.mapping import CONVENTIONAL_SPEC, conventional_mapping
            from repro.reliability.integrity import ParityMappingTable

            table = ParityMappingTable(
                conventional_mapping(org, ilog2(huge_page_bytes), CONVENTIONAL_SPEC)
            )
        self.controller = MemoryController(
            org, page_bytes=huge_page_bytes, memory=memory, table=table, ecc=ecc_engine
        )
        total_pages = org.capacity_bytes >> PAGE_SHIFT
        huge_order = ilog2(huge_page_bytes) - PAGE_SHIFT
        self.buddy = BuddyAllocator(total_pages, max_order=max(huge_order, 9))
        self.space = AddressSpace(self.buddy)
        self.allocator = PimAllocator(
            org, pim, self.controller, self.space, huge_page_bytes
        )

    @classmethod
    def build(
        cls,
        org: DramOrganization,
        pim: PimConfig,
        huge_page_bytes: int = 2 << 20,
        functional: bool = True,
        ecc: bool = False,
        integrity: bool = False,
    ) -> "PimSystem":
        return cls(org, pim, huge_page_bytes, functional, ecc, integrity)

    def pimalloc(self, matrix: MatrixConfig) -> PimTensor:
        return self.allocator.pimalloc(matrix)
