"""FACIL's augmented memory-controller frontend (paper §V-B, Fig. 12).

A conventional controller frontend applies one fixed PA-to-DA mapping.
FACIL replaces it with a small *mapping table*: MapID 0 is the SoC's
default mapping and each additional entry is one PIM-optimized mapping.
Because every mapping is a bit permutation with identical field widths,
the hardware realization is an array of N-to-1 multiplexers — one per DRAM
address bit — selecting which physical-address bit feeds it.
:meth:`MemoryController.mux_array` exposes exactly that view.

The controller also owns the functional data path: reads and writes take a
``(physical address, MapID)`` pair — as delivered by the page-table walk —
and move bytes to/from the per-bank arrays of a :class:`PhysicalMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.reliability.ecc import EccEngine

from repro.core.bitfield import ilog2
from repro.core.mapping import (
    AddressMapping,
    CONVENTIONAL_SPEC,
    Field,
    conventional_mapping,
)
from repro.dram.address import DramCoord
from repro.dram.config import DramOrganization
from repro.dram.memory import PhysicalMemory

__all__ = ["MappingTable", "MemoryController", "MuxSpec"]

CONVENTIONAL_MAP_ID = 0

#: Chunk size for vectorised byte moves, bounding temporary memory.
_MOVE_CHUNK = 1 << 22


@dataclass(frozen=True)
class MuxSpec:
    """Hardware view of one DRAM-address bit: which PA bit each MapID
    selects (paper Fig. 12)."""

    field: str
    bit: int
    source_by_map_id: Tuple[int, ...]

    @property
    def fan_in(self) -> int:
        """Distinct PA sources — the N of this bit's N-to-1 mux."""
        return len(set(self.source_by_map_id))


class MappingTable:
    """The controller's table of PA-to-DA mappings, indexed by MapID.

    Entry 0 is always the conventional mapping.  Registering an equal
    mapping twice returns the existing MapID with its reference count
    bumped, so the table stays as small as the number of *distinct*
    mappings in use (the paper bounds this at ``max(MapID)+1``, 14 in the
    LPDDR5 worst case).  :meth:`release` drops a reference; a slot whose
    count reaches zero is recycled by later registrations, so long-lived
    systems with allocation churn never exhaust the table.
    """

    def __init__(self, conventional: AddressMapping, max_entries: int = 16) -> None:
        self._entries: List[Optional[AddressMapping]] = [conventional]
        self._refcounts: List[int] = [1]
        self._max_entries = max_entries

    def __len__(self) -> int:
        """Number of live (registered, unreleased) entries."""
        return sum(entry is not None for entry in self._entries)

    def __getitem__(self, map_id: int) -> AddressMapping:
        if not 0 <= map_id < len(self._entries):
            raise KeyError(f"MapID {map_id} not registered")
        entry = self._entries[map_id]
        if entry is None:
            raise KeyError(f"MapID {map_id} was released")
        return entry

    @property
    def conventional(self) -> AddressMapping:
        return self._entries[CONVENTIONAL_MAP_ID]

    def entries(self) -> Sequence[AddressMapping]:
        """Slot-ordered view, one entry per MapID.  Released slots report
        the conventional mapping (a free mux may route anything; routing
        MapID 0 keeps the hardware view well-defined)."""
        conventional = self.conventional
        return tuple(
            entry if entry is not None else conventional
            for entry in self._entries
        )

    def refcount(self, map_id: int) -> int:
        self[map_id]  # raises KeyError for dead slots
        return self._refcounts[map_id]

    def register(self, mapping: AddressMapping) -> int:
        """Add *mapping* (if new) and return its MapID.

        Every ``register`` must be paired with a :meth:`release` once the
        last region using the mapping is gone.
        """
        if mapping.n_bits != self.conventional.n_bits:
            raise ValueError(
                f"mapping covers {mapping.n_bits} bits; table expects "
                f"{self.conventional.n_bits}"
            )
        for map_id, existing in enumerate(self._entries):
            if existing is not None and existing.fields == mapping.fields:
                self._refcounts[map_id] += 1
                return map_id
        for map_id, existing in enumerate(self._entries):
            if existing is None:
                self._install(map_id, mapping)
                return map_id
        if len(self._entries) >= self._max_entries:
            raise ValueError(
                f"mapping table full ({self._max_entries} entries); FACIL "
                "bounds the table by the MapID formulation"
            )
        self._entries.append(None)
        self._refcounts.append(0)
        map_id = len(self._entries) - 1
        self._install(map_id, mapping)
        return map_id

    def _install(self, map_id: int, mapping: AddressMapping) -> None:
        """Write *mapping* into a free slot (subclass hook point)."""
        self._entries[map_id] = mapping
        self._refcounts[map_id] = 1

    def live_ids(self) -> Tuple[int, ...]:
        """MapIDs of live (registered, unreleased) slots, slot order."""
        return tuple(
            map_id
            for map_id, entry in enumerate(self._entries)
            if entry is not None
        )

    def refcounts(self) -> Dict[int, int]:
        """Live MapID -> reference count (the crash-recovery audit's
        ground truth: must equal the number of live regions per MapID,
        plus the conventional mapping's pin)."""
        return {
            map_id: self._refcounts[map_id]
            for map_id, entry in enumerate(self._entries)
            if entry is not None
        }

    def release(self, map_id: int) -> None:
        """Drop one reference to *map_id*; free the slot at zero.

        MapID 0 (the conventional mapping) is pinned and never released.
        """
        if map_id == CONVENTIONAL_MAP_ID:
            return
        self[map_id]  # raises KeyError for unknown/already-freed ids
        self._refcounts[map_id] -= 1
        if self._refcounts[map_id] <= 0:
            self._entries[map_id] = None
            self._refcounts[map_id] = 0


class MemoryController:
    """Frontend translation plus the functional data path.

    Args:
        org: DRAM organization being controlled.
        page_bytes: huge-page size; mappings cover its offset bits, and
            the page frame number supplies the DRAM row MSBs.
        table: mapping table (created with the default conventional
            mapping when omitted).
        memory: functional byte store; omit for translation-only use.
        ecc: optional :class:`repro.reliability.ecc.EccEngine`; when
            present every functional write re-protects the touched
            8-byte words and every read scrubs them first (correcting
            single-bit flips, raising on double-bit errors).
    """

    def __init__(
        self,
        org: DramOrganization,
        page_bytes: int = 2 << 20,
        table: Optional[MappingTable] = None,
        memory: Optional[PhysicalMemory] = None,
        ecc: Optional["EccEngine"] = None,
    ) -> None:
        self.org = org
        self.page_bytes = page_bytes
        self.page_bits = ilog2(page_bytes)
        if table is None:
            table = MappingTable(
                conventional_mapping(org, self.page_bits, CONVENTIONAL_SPEC)
            )
        if table.conventional.n_bits != self.page_bits:
            raise ValueError("mapping table bit width does not match page size")
        self.table = table
        self.memory = memory
        self.ecc = ecc
        self._row_bits_in_page = table.conventional.row_bits
        for mapping in table.entries():
            if mapping.row_bits != self._row_bits_in_page:
                raise ValueError(
                    "all mappings over one organization must agree on the "
                    "in-page row width"
                )
        #: optional telemetry MetricsRegistry (duck-typed — the core
        #: layer never imports the telemetry package)
        self.metrics: Optional[object] = None
        self._page_last_map_id: Dict[int, int] = {}
        self._page_switch_counts: Dict[int, int] = {}

    # -- telemetry -----------------------------------------------------------

    def attach_metrics(self, registry: object) -> None:
        """Count translations and per-page MapID-mux switches into
        *registry* (a :class:`repro.telemetry.MetricsRegistry`)."""
        self.metrics = registry

    def _note_translations(
        self, map_id: int, pages: Sequence[int], n_translations: int
    ) -> None:
        registry = self.metrics
        if registry is None:
            return
        registry.counter(  # type: ignore[attr-defined]
            "controller_translations_total",
            "PA-to-DA translations by MapID",
            labelnames=("map_id",),
        ).inc(n_translations, map_id=str(map_id))
        switches = 0
        for page in pages:
            last = self._page_last_map_id.get(page)
            if last is not None and last != map_id:
                switches += 1
                self._page_switch_counts[page] = (
                    self._page_switch_counts.get(page, 0) + 1
                )
            self._page_last_map_id[page] = map_id
        if switches:
            registry.counter(  # type: ignore[attr-defined]
                "controller_mapid_mux_switches_total",
                "per-page MapID mux reconfigurations",
            ).inc(switches)

    def finalize_metrics(self) -> None:
        """Publish the per-page switch distribution (call at run end)."""
        registry = self.metrics
        if registry is None:
            return
        histogram = registry.histogram(  # type: ignore[attr-defined]
            "controller_mapid_switches_per_page",
            "MapID-mux switches observed per page",
            buckets=(0, 1, 2, 5, 10, 20, 50, 100),
        )
        for page in sorted(self._page_switch_counts):
            histogram.observe(self._page_switch_counts[page])
        registry.gauge(  # type: ignore[attr-defined]
            "controller_pages_tracked", "pages seen by the MapID mux"
        ).set(len(self._page_last_map_id))

    # -- translation -----------------------------------------------------

    @property
    def rows_per_page(self) -> int:
        return 1 << self._row_bits_in_page

    def translate(self, pa: int, map_id: int = CONVENTIONAL_MAP_ID) -> DramCoord:
        """Full PA-to-DA translation: in-page mapping per MapID, page frame
        number as the row MSBs."""
        mapping = self.table[map_id]
        page_index, page_offset = divmod(pa, self.page_bytes)
        if self.metrics is not None:
            self._note_translations(map_id, (page_index,), 1)
        coord = mapping.decode(page_offset)
        row = (page_index << self._row_bits_in_page) | coord.row
        if row >= self.org.rows_per_bank:
            raise ValueError(
                f"pa {pa:#x} maps to row {row}, beyond the organization's "
                f"{self.org.rows_per_bank} rows per bank"
            )
        return DramCoord(
            channel=coord.channel,
            rank=coord.rank,
            bank=coord.bank,
            row=row,
            col=coord.col,
            offset=coord.offset,
        )

    def translate_array(
        self, pas: np.ndarray, map_id: int = CONVENTIONAL_MAP_ID
    ) -> Dict[str, np.ndarray]:
        """Vectorised :meth:`translate`; returns field arrays, with ``row``
        already including the page-frame MSBs."""
        pas = np.asarray(pas, dtype=np.int64)
        mapping = self.table[map_id]
        page_index = pas >> np.int64(self.page_bits)
        if self.metrics is not None:
            self._note_translations(
                map_id,
                [int(p) for p in np.unique(page_index)],
                int(pas.size),
            )
        fields = mapping.decode_array(pas & np.int64(self.page_bytes - 1))
        fields[Field.ROW] = fields[Field.ROW] | (
            page_index << np.int64(self._row_bits_in_page)
        )
        return fields

    # -- hardware view ------------------------------------------------------

    def mux_array(self) -> List[MuxSpec]:
        """The Fig. 12 multiplexer array: for each DRAM address bit, the PA
        bit each registered MapID routes into it."""
        specs: List[MuxSpec] = []
        entries = self.table.entries()
        reference = entries[0]
        for fname in (
            Field.CHANNEL,
            Field.RANK,
            Field.BANK,
            Field.ROW,
            Field.COL,
            Field.OFFSET,
        ):
            for bit_index in range(reference.field_width(fname)):
                sources = tuple(
                    mapping.positions(fname)[bit_index] for mapping in entries
                )
                specs.append(
                    MuxSpec(field=fname, bit=bit_index, source_by_map_id=sources)
                )
        return specs

    # -- functional data path ---------------------------------------------------

    def _require_memory(self) -> PhysicalMemory:
        if self.memory is None:
            raise RuntimeError(
                "controller has no functional memory attached (timing-only)"
            )
        return self.memory

    def write(self, pa: int, data: np.ndarray, map_id: int = CONVENTIONAL_MAP_ID) -> None:
        """Store *data* (a byte array) starting at physical address *pa*,
        routed through the MapID's PA-to-DA mapping."""
        memory = self._require_memory()
        data = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(
            data, (bytes, bytearray)
        ) else np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        for start in range(0, len(data), _MOVE_CHUNK):
            stop = min(start + _MOVE_CHUNK, len(data))
            pas = np.arange(pa + start, pa + stop, dtype=np.int64)
            fields = self.translate_array(pas, map_id)
            byte_index = (
                fields[Field.ROW] * self.org.row_bytes
                + fields[Field.COL] * self.org.transfer_bytes
                + fields[Field.OFFSET]
            )
            memory.scatter(
                fields[Field.CHANNEL],
                fields[Field.RANK],
                fields[Field.BANK],
                byte_index,
                data[start:stop],
            )
            if self.ecc is not None:
                self.ecc.protect(
                    memory,
                    fields[Field.CHANNEL],
                    fields[Field.RANK],
                    fields[Field.BANK],
                    byte_index,
                )

    def read(
        self, pa: int, nbytes: int, map_id: int = CONVENTIONAL_MAP_ID
    ) -> np.ndarray:
        """Load *nbytes* starting at physical address *pa* through the
        MapID's mapping; returns a byte array."""
        memory = self._require_memory()
        out = np.empty(nbytes, dtype=np.uint8)
        for start in range(0, nbytes, _MOVE_CHUNK):
            stop = min(start + _MOVE_CHUNK, nbytes)
            pas = np.arange(pa + start, pa + stop, dtype=np.int64)
            fields = self.translate_array(pas, map_id)
            byte_index = (
                fields[Field.ROW] * self.org.row_bytes
                + fields[Field.COL] * self.org.transfer_bytes
                + fields[Field.OFFSET]
            )
            if self.ecc is not None:
                # Scrub + gather in one bank access: the returned bytes
                # are corrected in flight, as real SECDED read logic is.
                out[start:stop] = self.ecc.fetch(
                    memory,
                    fields[Field.CHANNEL],
                    fields[Field.RANK],
                    fields[Field.BANK],
                    byte_index,
                )
            else:
                out[start:stop] = memory.gather(
                    fields[Field.CHANNEL],
                    fields[Field.RANK],
                    fields[Field.BANK],
                    byte_index,
                )
        return out
