"""Repository lint rules (part of pass 3 of ``repro-facil analyze``).

Custom AST rules that encode this repo's conventions — things generic
linters don't know:

* ``RL001`` — no bare ``assert`` in ``src/``: asserts vanish under
  ``python -O``, so library invariants must raise real exceptions
  (asserts are fine in tests).
* ``RL002`` — no raw single-bit probing (``(x >> k) & 1``) outside
  :mod:`repro.core.bitfield`: bit manipulation is centralized so the
  mapping verifier has one place to trust.
* ``RL003`` — mapping/config types must be frozen dataclasses: an
  :class:`AddressMapping` that mutates after validation voids every
  static proof about it.
* ``RL004`` — no ``print()`` outside the CLI: library code reports
  through return values and findings, not stdout.
* ``RL005`` — no module-level randomness in ``src/``: calls through the
  global ``random.*`` state (or numpy's legacy ``np.random.*``) make
  runs irreproducible.  Construct a seeded generator instead
  (``random.Random(seed)`` / ``np.random.default_rng(seed)``) and pass
  it down — the discipline every campaign and the serving runtime
  follow.
* ``RL006`` — no wall-clock reads (``time.time`` / ``time.perf_counter``
  / ``time.monotonic`` and their ``_ns`` variants, argless
  ``datetime.now()`` / ``utcnow()``) outside :mod:`repro.telemetry`:
  every simulator and report runs on *simulated* time, and a stray wall
  clock silently breaks reproducibility and the telemetry overhead
  guarantee.  Benchmarks (outside ``src/``) time themselves freely.

Four further **determinism** rules guard the byte-identical replay
guarantee every bench and campaign relies on.  They are registered here
but executed by the ``sanitize`` pass (see
:mod:`repro.analysis.sanitize`), so plain ``repolint`` stays what it
always was:

* ``RL007`` — no iteration over an unordered ``set`` (literal,
  constructor, comprehension, or set-algebra result) without
  ``sorted()``: set order is salted per process, so any state it feeds
  differs between two runs at the same seed.  ``dict`` views are
  insertion-ordered and exempt.
* ``RL008`` — no ``sorted(..., key=id)`` / ``key=hash`` (or ``id()`` /
  ``hash()`` inside the key): memory addresses and salted hashes order
  differently every run.
* ``RL009`` — no unseeded generator construction: an argless
  ``random.Random()`` / ``default_rng()`` seeds from the OS, and
  ``SystemRandom`` is OS entropy by definition.
* ``RL010`` — no ``os.environ`` / ``os.getenv`` reads or
  filesystem-order enumeration (``os.listdir`` / ``os.scandir`` /
  ``iterdir`` / ``glob``) outside the CLI unless wrapped in
  ``sorted()``: the environment and directory order are host state.

A violation can be waived in place with a trailing comment::

    assert invariant  # lint: waive[RL001] -- benchmark-only helper

Rule IDs are ``RL001``-``RL010``; see ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import LEVEL_ERROR, Finding, register_rules

__all__ = [
    "REPOLINT_RULES",
    "DETERMINISM_RULES",
    "lint_source",
    "lint_tree",
    "lint_determinism_source",
    "lint_determinism_tree",
    "default_source_root",
]

REPOLINT_RULES: Dict[str, str] = {
    "RL001": "bare assert in library code (stripped under python -O); "
             "raise an exception instead",
    "RL002": "raw single-bit twiddling outside repro.core.bitfield",
    "RL003": "mapping/config dataclass is not frozen",
    "RL004": "print() outside the CLI module",
    "RL005": "module-level randomness (global random.* / np.random.*) "
             "instead of an injected seeded generator",
    "RL006": "wall-clock read (time.time / perf_counter / monotonic / "
             "datetime.now) outside repro.telemetry",
}
register_rules(REPOLINT_RULES)

#: Determinism rules: registered here, run by the ``sanitize`` pass.
DETERMINISM_RULES: Dict[str, str] = {
    "RL007": "iteration over an unordered set without sorted(); set "
             "order is salted per process",
    "RL008": "sort keyed on id()/hash(); memory-address order differs "
             "every run",
    "RL009": "unseeded RNG construction (argless random.Random() / "
             "default_rng(), or SystemRandom)",
    "RL010": "os.environ / filesystem-order read outside the CLI "
             "without sorted()",
}
register_rules(DETERMINISM_RULES)

#: Modules whose dataclasses define mappings or hardware configuration
#: and therefore must be immutable (RL003), relative to the source root.
FROZEN_MODULES = (
    "repro/core/mapping.py",
    "repro/core/selector.py",
    "repro/core/optimizer.py",
    "repro/dram/address.py",
    "repro/dram/config.py",
    "repro/pim/config.py",
    "repro/platforms/specs.py",
)

#: Modules allowed to twiddle bits directly (RL002).
BITFIELD_MODULES = ("repro/core/bitfield.py",)

#: Modules allowed to print (RL004).
PRINT_MODULES = ("repro/cli.py",)

#: Package prefix allowed to read wall clocks (RL006): the telemetry
#: plane owns the boundary between simulated and host time.
WALLCLOCK_PREFIX = "repro/telemetry/"

#: ``time``-module attributes that read a host clock (RL006).
_WALLCLOCK_TIME_FUNCS = (
    "time", "time_ns",
    "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
)

#: random-module attributes that *construct* generators (fine) rather
#: than draw from hidden global state (RL005)
_RANDOM_CONSTRUCTORS = ("Random", "SystemRandom")

_WAIVE_RE = re.compile(r"#\s*lint:\s*waive\[([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)\]")


def _waivers(source_lines: Sequence[str]) -> Dict[int, Tuple[str, ...]]:
    """Line number -> rule IDs waived on that line."""
    out: Dict[int, Tuple[str, ...]] = {}
    for number, line in enumerate(source_lines, start=1):
        match = _WAIVE_RE.search(line)
        if match:
            out[number] = tuple(
                rule.strip() for rule in match.group(1).split(",")
            )
    return out


def _is_bit_probe(node: ast.BinOp) -> bool:
    """Matches ``(x >> k) & 1`` / ``1 & (x >> k)`` (plain int 1 only —
    ``np.uint8(1)`` and friends are deliberate, dtype-stable forms)."""
    if not isinstance(node.op, ast.BitAnd):
        return False
    for one, shifted in ((node.right, node.left), (node.left, node.right)):
        if (
            isinstance(one, ast.Constant)
            and one.value == 1
            and isinstance(one.value, int)
            and not isinstance(one.value, bool)
            and isinstance(shifted, ast.BinOp)
            and isinstance(shifted.op, ast.RShift)
        ):
            return True
    return False


def _global_random_call(node: ast.Call) -> str:
    """Return a description when *node* draws from hidden global random
    state — ``random.<fn>(...)`` (except generator constructors) or
    numpy's legacy ``np.random.<fn>(...)`` (except ``default_rng``) —
    else the empty string."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return ""
    owner = func.value
    if isinstance(owner, ast.Name) and owner.id == "random":
        if func.attr in _RANDOM_CONSTRUCTORS:
            return ""
        return f"random.{func.attr}()"
    if (
        isinstance(owner, ast.Attribute)
        and owner.attr == "random"
        and isinstance(owner.value, ast.Name)
        and owner.value.id in ("np", "numpy")
        and func.attr != "default_rng"
    ):
        return f"{owner.value.id}.random.{func.attr}()"
    return ""


def _wallclock_call(node: ast.Call) -> str:
    """Return a description when *node* reads a host clock —
    ``time.<fn>()`` for the clock functions, or an argless
    ``datetime.now()`` / ``datetime.utcnow()`` (with or without the
    module prefix) — else the empty string."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return ""
    owner = func.value
    if (
        isinstance(owner, ast.Name)
        and owner.id == "time"
        and func.attr in _WALLCLOCK_TIME_FUNCS
    ):
        return f"time.{func.attr}()"
    if func.attr in ("now", "utcnow") and not node.args and not node.keywords:
        if isinstance(owner, ast.Name) and owner.id == "datetime":
            return f"datetime.{func.attr}()"
        if (
            isinstance(owner, ast.Attribute)
            and owner.attr == "datetime"
            and isinstance(owner.value, ast.Name)
            and owner.value.id == "datetime"
        ):
            return f"datetime.datetime.{func.attr}()"
    return ""


def _dataclass_frozen(decorator: ast.expr) -> Tuple[bool, bool]:
    """``(is_dataclass_decorator, is_frozen)`` for one decorator node."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    name = ""
    if isinstance(target, ast.Name):
        name = target.id
    elif isinstance(target, ast.Attribute):
        name = target.attr
    if name != "dataclass":
        return False, False
    if isinstance(decorator, ast.Call):
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                value = keyword.value
                return True, bool(
                    isinstance(value, ast.Constant) and value.value is True
                )
    return True, False


def lint_source(source: str, rel_path: str) -> List[Finding]:
    """Lint one module's source text.  *rel_path* is the path relative
    to the source root (``repro/...``), used for the per-module rule
    scoping and finding locations."""
    findings: List[Finding] = []
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [
            Finding(
                "RL001",
                LEVEL_ERROR,
                f"file does not parse: {exc.msg}",
                location=f"{rel_path}:{exc.lineno or 0}",
            )
        ]
    waivers = _waivers(source.splitlines())
    posix = rel_path.replace("\\", "/")

    def emit(rule_id: str, message: str, node: ast.AST, detail: str = "") -> None:
        line = getattr(node, "lineno", 0)
        if rule_id in waivers.get(line, ()):
            return
        findings.append(
            Finding(rule_id, LEVEL_ERROR, message,
                    location=f"{rel_path}:{line}", detail=detail)
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            emit("RL001", "bare assert in library code", node)
        elif isinstance(node, ast.BinOp):
            if _is_bit_probe(node) and posix not in BITFIELD_MODULES:
                emit(
                    "RL002",
                    "raw single-bit probe; use repro.core.bitfield "
                    "helpers or a dtype-stable mask",
                    node,
                )
        elif isinstance(node, ast.ClassDef) and posix in FROZEN_MODULES:
            for decorator in node.decorator_list:
                is_dc, frozen = _dataclass_frozen(decorator)
                if is_dc and not frozen:
                    emit(
                        "RL003",
                        f"dataclass {node.name} in a mapping module "
                        "must be frozen=True",
                        node,
                    )
        elif isinstance(node, ast.Call):
            if posix not in PRINT_MODULES:
                func = node.func
                if isinstance(func, ast.Name) and func.id == "print":
                    emit("RL004", "print() in library code", node)
            drawn = _global_random_call(node)
            if drawn:
                emit(
                    "RL005",
                    f"{drawn} draws from hidden global state; construct "
                    "a seeded generator (random.Random(seed) / "
                    "np.random.default_rng(seed)) and pass it down",
                    node,
                )
            clocked = _wallclock_call(node)
            if clocked and not posix.startswith(WALLCLOCK_PREFIX):
                emit(
                    "RL006",
                    f"{clocked} reads the wall clock; simulated code "
                    "takes its timestamps from the run's clocks (only "
                    "repro.telemetry may touch host time)",
                    node,
                )
    return findings


def default_source_root() -> Path:
    """The ``src/`` directory this installed package was imported from."""
    return Path(__file__).resolve().parents[2]


def lint_tree(source_root: Path | None = None) -> Tuple[List[Finding], int]:
    """Lint every ``.py`` file under *source_root* (default: the live
    ``src/`` tree).  Returns ``(findings, files_checked)``."""
    root = source_root if source_root is not None else default_source_root()
    findings: List[Finding] = []
    checked = 0
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_source(path.read_text(encoding="utf-8"), rel))
        checked += 1
    return findings, checked


# -- determinism rules (RL007-RL010, run by the sanitize pass) ------------

#: Calls whose result does not expose iteration order, so an unordered
#: enumeration fed *directly* into one of them is harmless.
_ORDER_INSENSITIVE_WRAPPERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)

#: Set-algebra operators whose operands keep the result a set.
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: ``os``-module enumerations whose order is the filesystem's (RL010).
_FS_ORDER_OS_FUNCS = frozenset({"listdir", "scandir"})

#: attribute calls that enumerate a directory in filesystem order.
_FS_ORDER_ATTR_FUNCS = frozenset({"iterdir", "glob", "iglob", "rglob"})


def _is_set_expr(node: ast.expr) -> bool:
    """Whether *node* evaluates to a ``set`` (statically recognizable
    forms: literal, comprehension, constructor, set algebra)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _hash_order_key(key: ast.expr) -> bool:
    """Whether a sort *key* orders by ``id()`` or ``hash()``."""
    if isinstance(key, ast.Name) and key.id in ("id", "hash"):
        return True
    for node in ast.walk(key):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("id", "hash")
        ):
            return True
    return False


def _unseeded_rng(node: ast.Call) -> str:
    """Describe an unseeded/OS-entropy generator construction, or ''."""
    func = node.func
    name = ""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name == "SystemRandom":
        return "SystemRandom(...)"
    if name in ("Random", "default_rng") and not node.args and not node.keywords:
        return f"{name}()"
    return ""


def _fs_order_read(node: ast.Call) -> str:
    """Describe a filesystem-order enumeration call, or ''."""
    func = node.func
    if isinstance(func, ast.Attribute):
        owner = func.value
        if (
            isinstance(owner, ast.Name)
            and owner.id == "os"
            and func.attr in _FS_ORDER_OS_FUNCS
        ):
            return f"os.{func.attr}()"
        if (
            isinstance(owner, ast.Name)
            and owner.id == "glob"
            and func.attr in ("glob", "iglob")
        ):
            return f"glob.{func.attr}()"
        if func.attr in _FS_ORDER_ATTR_FUNCS:
            return f".{func.attr}()"
    return ""


def lint_determinism_source(source: str, rel_path: str) -> List[Finding]:
    """Run the RL007-RL010 determinism rules over one module."""
    findings: List[Finding] = []
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [
            Finding(
                "RL007",
                LEVEL_ERROR,
                f"file does not parse: {exc.msg}",
                location=f"{rel_path}:{exc.lineno or 0}",
            )
        ]
    waivers = _waivers(source.splitlines())
    posix = rel_path.replace("\\", "/")

    def emit(rule_id: str, message: str, node: ast.AST, detail: str = "") -> None:
        line = getattr(node, "lineno", 0)
        if rule_id in waivers.get(line, ()):
            return
        findings.append(
            Finding(rule_id, LEVEL_ERROR, message,
                    location=f"{rel_path}:{line}", detail=detail)
        )

    # direct arguments of order-insensitive wrappers are exempt from the
    # "must be sorted" rules (``sorted(p.rglob(...))`` is the idiom)
    wrapped: set[int] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE_WRAPPERS
        ):
            for arg in node.args:
                wrapped.add(id(arg))

    for node in ast.walk(tree):
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            emit(
                "RL007",
                "for-loop over an unordered set; wrap the iterable in "
                "sorted()",
                node.iter,
            )
        elif isinstance(node, ast.comprehension) and _is_set_expr(node.iter):
            emit(
                "RL007",
                "comprehension over an unordered set; wrap the iterable "
                "in sorted()",
                node.iter,
            )
        elif isinstance(node, ast.Call):
            func = node.func
            is_sort = (
                isinstance(func, ast.Name) and func.id == "sorted"
            ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
            if is_sort:
                for keyword in node.keywords:
                    if keyword.arg == "key" and _hash_order_key(keyword.value):
                        emit(
                            "RL008",
                            "sort keyed on id()/hash(); order by a stable "
                            "field instead",
                            node,
                        )
            drawn = _unseeded_rng(node)
            if drawn:
                emit(
                    "RL009",
                    f"{drawn} seeds from the OS; pass an explicit seed "
                    "so replays reproduce the stream",
                    node,
                )
            if posix not in PRINT_MODULES:
                enumerated = _fs_order_read(node)
                if enumerated and id(node) not in wrapped:
                    emit(
                        "RL010",
                        f"{enumerated} enumerates in filesystem order; "
                        "wrap it in sorted() (only the CLI may read "
                        "host-ordered state)",
                        node,
                    )
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("get", "__getitem__")
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "environ"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "os"
                ):
                    emit("RL010", "os.environ read outside the CLI", node)
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "getenv"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                ):
                    emit("RL010", "os.getenv read outside the CLI", node)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "environ"
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == "os"
            and posix not in PRINT_MODULES
        ):
            emit("RL010", "os.environ read outside the CLI", node)
    return findings


def lint_determinism_tree(
    source_root: Path | None = None,
) -> Tuple[List[Finding], int]:
    """Run the determinism rules over every ``.py`` file under
    *source_root* (default: the live ``src/`` tree)."""
    root = source_root if source_root is not None else default_source_root()
    findings: List[Finding] = []
    checked = 0
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        findings.extend(
            lint_determinism_source(path.read_text(encoding="utf-8"), rel)
        )
        checked += 1
    return findings, checked
