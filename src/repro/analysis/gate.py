"""External-tool gate (part of pass 3 of ``repro-facil analyze``).

Runs ``ruff check`` and ``mypy --strict`` (on the strictly-typed
packages) when those tools are installed, folding their diagnostics into
the analysis report.  The container this repo develops in does not ship
them, so absence is a recorded *skip*, never a crash — CI installs the
real tools and the same gate then enforces them.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import LEVEL_ERROR, Finding, register_rules

__all__ = [
    "GATE_RULES",
    "STRICT_PACKAGES",
    "run_ruff",
    "run_mypy",
]

GATE_RULES: Dict[str, str] = {
    "GT001": "ruff check reported a diagnostic",
    "GT002": "mypy --strict reported an error",
    "GT003": "external tool exited abnormally",
}
register_rules(GATE_RULES)

#: Packages held to ``mypy --strict`` (satellite: ``repro.core`` ships
#: ``py.typed``; the analysis package holds itself to the same bar).
STRICT_PACKAGES = ("src/repro/core", "src/repro/analysis")

_TOOL_TIMEOUT_S = 300


def _run(argv: List[str], cwd: Path) -> Optional[Tuple[int, str]]:
    """Run *argv*; ``(returncode, stdout+stderr)`` or None if missing."""
    if shutil.which(argv[0]) is None:
        return None
    proc = subprocess.run(
        argv, cwd=cwd, capture_output=True, text=True,
        timeout=_TOOL_TIMEOUT_S,
    )
    return proc.returncode, (proc.stdout + proc.stderr).strip()


def run_ruff(repo_root: Path) -> Optional[List[Finding]]:
    """``ruff check src tests``; None when ruff is not installed."""
    result = _run(["ruff", "check", "src", "tests"], repo_root)
    if result is None:
        return None
    code, output = result
    if code == 0:
        return []
    findings: List[Finding] = []
    lines = [line for line in output.splitlines() if line.strip()]
    for line in lines[:50]:
        findings.append(
            Finding("GT001", LEVEL_ERROR, line.strip(), location="ruff")
        )
    if not findings:  # nonzero exit with no parsable output
        findings.append(
            Finding("GT003", LEVEL_ERROR,
                    f"ruff exited {code} with no diagnostics",
                    location="ruff", detail=output[:500])
        )
    return findings


def run_mypy(repo_root: Path) -> Optional[List[Finding]]:
    """``mypy --strict`` over :data:`STRICT_PACKAGES`; None when mypy is
    not installed."""
    result = _run(
        ["mypy", "--strict", *STRICT_PACKAGES], repo_root
    )
    if result is None:
        return None
    code, output = result
    if code == 0:
        return []
    findings: List[Finding] = []
    for line in output.splitlines():
        if ": error:" in line:
            location, _, message = line.partition(": error:")
            findings.append(
                Finding("GT002", LEVEL_ERROR, message.strip(),
                        location=location.strip())
            )
    if not findings:
        findings.append(
            Finding("GT003", LEVEL_ERROR,
                    f"mypy exited {code} with no parsable errors",
                    location="mypy", detail=output[:500])
        )
    return findings[:50]
